"""Tests for functional (numpy) gradient checkpointing in the runtime."""

import pytest

from repro.core import TransferPolicy
from repro.graph import NetworkBuilder
from repro.numerics import TrainingRuntime, make_batch

from conftest import make_deep_cnn, make_fork_join_cnn, make_linear_cnn


def losses(factory, steps=3, **kwargs):
    runtime = TrainingRuntime(factory(), **kwargs)
    shape = runtime.network.input_node.output_spec.shape
    batches = [make_batch(shape, 10, s) for s in range(steps)]
    return [runtime.train_step(x, y).loss for x, y in batches], runtime


class TestBitIdentity:
    @pytest.mark.parametrize("segments", [1, 2, 4])
    def test_deep_network(self, segments):
        def factory():
            return make_deep_cnn(depth=8, batch=4, size=16)
        ref, _ = losses(factory, seed=0)
        got, runtime = losses(factory, seed=0, recompute_segments=segments)
        assert got == ref
        assert runtime.recompute_count > 0

    def test_fork_join_network(self):
        ref, _ = losses(make_fork_join_cnn, seed=0)
        got, _ = losses(make_fork_join_cnn, seed=0, recompute_segments=2)
        assert got == ref

    def test_dropout_masks_replayed_identically(self):
        def factory():
            return (NetworkBuilder("drop", (4, 3, 12, 12))
                    .conv(8, kernel=3, pad=1).relu()
                    .conv(8, kernel=3, pad=1).relu()
                    .conv(8, kernel=3, pad=1).relu().pool()
                    .fc(16).relu().dropout(0.5)
                    .fc(10).softmax().build())
        ref, _ = losses(factory, seed=4)
        got, _ = losses(factory, seed=4, recompute_segments=2)
        assert got == ref

    def test_parameters_identical(self):
        def factory():
            return make_deep_cnn(depth=6, batch=2, size=8)
        _, a = losses(factory, seed=0)
        _, b = losses(factory, seed=0, recompute_segments=3)
        assert a.parameter_fingerprint() == b.parameter_fingerprint()


class TestMemoryEffect:
    def test_reduces_device_peak(self):
        def factory():
            return make_deep_cnn(depth=10, batch=4, size=16)
        _, ref = losses(factory, steps=1, seed=0)
        _, rec = losses(factory, steps=1, seed=0, recompute_segments=3)
        assert rec.device.peak_bytes < ref.device.peak_bytes

    def test_no_host_traffic(self):
        def factory():
            return make_deep_cnn(depth=6)
        _, runtime = losses(factory, seed=0, recompute_segments=2)
        assert runtime.host.offload_count == 0
        assert runtime.host.prefetch_count == 0

    def test_transient_buffers_cleared(self):
        def factory():
            return make_deep_cnn(depth=6)
        _, runtime = losses(factory, seed=0, recompute_segments=2)
        assert runtime.transient_keys() == set()


class TestHybridOffloadRecompute:
    """Offload + recompute combined (the SuperNeurons-style hybrid)."""

    def test_offloaded_storages_never_dropped(self, deep_cnn):
        runtime = TrainingRuntime(deep_cnn, TransferPolicy.vdnn_conv(),
                                  recompute_segments=3)
        offloaded = {
            s.owner for s in runtime.liveness.all_storages()
            if s.needed_backward and runtime.policy.wants_offload(
                runtime.network[s.forward_release_at])
        }
        assert runtime._dropped.isdisjoint(offloaded)

    def test_bit_identical_to_plain_training(self):
        def factory():
            return make_deep_cnn(depth=8, batch=4, size=16)
        ref, _ = losses(factory, seed=0)
        got, runtime = losses(factory, seed=0,
                              policy=TransferPolicy.vdnn_conv(),
                              recompute_segments=3)
        assert got == ref
        assert runtime.host.offload_count > 0

    def test_hybrid_beats_either_alone_on_peak(self):
        def factory():
            return make_deep_cnn(depth=10, batch=4, size=16)
        _, offload_only = losses(factory, steps=1, seed=0,
                                 policy=TransferPolicy.vdnn_conv())
        _, recompute_only = losses(factory, steps=1, seed=0,
                                   recompute_segments=3)
        _, hybrid = losses(factory, steps=1, seed=0,
                           policy=TransferPolicy.vdnn_conv(),
                           recompute_segments=3)
        assert hybrid.device.peak_bytes <= offload_only.device.peak_bytes
        assert hybrid.device.peak_bytes <= recompute_only.device.peak_bytes

    def test_none_policy_combination_allowed(self, deep_cnn):
        runtime = TrainingRuntime(deep_cnn, TransferPolicy.none(),
                                  recompute_segments=2)
        assert runtime._dropped

"""Tests for UsageTracker and the pinned host allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.alloc import (
    PinnedHostAllocator,
    PinnedMemoryError,
    UsageTracker,
)


class TestUsageTracker:
    def test_empty_tracker(self):
        tracker = UsageTracker()
        assert tracker.max_bytes == 0
        assert tracker.average_bytes == 0.0

    def test_max_is_peak_sample(self):
        tracker = UsageTracker()
        for t, v in [(0, 10), (1, 50), (2, 20)]:
            tracker.record(t, v)
        assert tracker.max_bytes == 50

    def test_time_weighted_average(self):
        tracker = UsageTracker()
        tracker.record(0.0, 100)   # 100 bytes for 1s
        tracker.record(1.0, 0)     # 0 bytes for 3s
        tracker.record(4.0, 0)
        assert tracker.average_bytes == pytest.approx(25.0)

    def test_step_function_semantics(self):
        # The value recorded at t holds until the next sample.
        tracker = UsageTracker()
        tracker.record(0.0, 10)
        tracker.record(9.0, 1000)
        tracker.record(10.0, 1000)
        assert tracker.average_bytes == pytest.approx((10 * 9 + 1000) / 10)

    def test_zero_duration_falls_back_to_mean(self):
        tracker = UsageTracker()
        tracker.record(0.0, 10)
        tracker.record(0.0, 30)
        assert tracker.average_bytes == pytest.approx(20.0)

    def test_time_must_not_go_backwards(self):
        tracker = UsageTracker()
        tracker.record(1.0, 10)
        with pytest.raises(ValueError):
            tracker.record(0.5, 10)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            UsageTracker().record(0.0, -1)

    def test_curve_roundtrip(self):
        tracker = UsageTracker()
        tracker.record(0.0, 1)
        tracker.record(1.0, 2)
        assert tracker.curve() == [(0.0, 1), (1.0, 2)]

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10 ** 9),
                    min_size=1, max_size=50))
    def test_property_average_bounded_by_min_max(self, values):
        tracker = UsageTracker()
        for t, v in enumerate(values):
            tracker.record(float(t), v)
        assert min(values) <= tracker.average_bytes <= max(values)
        assert tracker.max_bytes == max(values)


class TestPinnedHostAllocator:
    def test_alloc_and_free(self):
        pinned = PinnedHostAllocator(1000)
        buf = pinned.alloc(600)
        assert pinned.live_bytes == 600
        pinned.free(buf)
        assert pinned.live_bytes == 0

    def test_budget_enforced(self):
        pinned = PinnedHostAllocator(1000)
        pinned.alloc(600)
        with pytest.raises(PinnedMemoryError):
            pinned.alloc(600)

    def test_peak_and_traffic_counters(self):
        pinned = PinnedHostAllocator(10_000)
        a = pinned.alloc(1000)
        pinned.free(a)
        pinned.alloc(500)
        assert pinned.peak_bytes == 1000
        assert pinned.total_allocated == 1500

    def test_double_free_rejected(self):
        pinned = PinnedHostAllocator(1000)
        buf = pinned.alloc(10)
        pinned.free(buf)
        with pytest.raises(ValueError):
            pinned.free(buf)

    def test_free_all(self):
        pinned = PinnedHostAllocator(1000)
        pinned.alloc(10)
        pinned.alloc(20)
        pinned.free_all()
        assert pinned.live_bytes == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PinnedHostAllocator(0)
        with pytest.raises(ValueError):
            PinnedHostAllocator(10).alloc(-1)

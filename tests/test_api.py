"""Tests for the high-level evaluate/compare_policies API."""

import pytest

from repro.core import compare_policies, evaluate, oracular_baseline
from repro.hw import PAPER_SYSTEM

from conftest import make_linear_cnn


class TestEvaluate:
    def test_policy_strings(self, linear_cnn):
        for policy in ("all", "conv", "none", "base", "dyn"):
            result = evaluate(linear_cnn, policy=policy)
            assert result.trainable

    def test_invalid_policy_rejected(self, linear_cnn):
        with pytest.raises(ValueError, match="policy"):
            evaluate(linear_cnn, policy="bogus")

    def test_invalid_algo_rejected(self, linear_cnn):
        with pytest.raises(ValueError, match="algo"):
            evaluate(linear_cnn, policy="all", algo="q")

    def test_default_system_is_paper_testbed(self, linear_cnn):
        result = evaluate(linear_cnn, policy="base", algo="m")
        assert result.trainable  # tiny network on a 12 GB card

    def test_algo_label_propagates(self, linear_cnn):
        assert evaluate(linear_cnn, policy="all", algo="m").algo_label == "m"
        assert evaluate(linear_cnn, policy="all", algo="p").algo_label == "p"

    def test_base_ignores_offload_machinery(self, linear_cnn):
        result = evaluate(linear_cnn, policy="base", algo="p")
        assert result.offload_bytes == 0


class TestComparePolicies:
    def test_returns_paper_column_labels(self, linear_cnn):
        sweep = compare_policies(linear_cnn)
        assert set(sweep) == {"all(m)", "all(p)", "conv(m)", "conv(p)",
                              "comp(m)", "comp(p)", "dyn", "joint",
                              "base(m)", "base(p)"}

    def test_dynamic_excludable(self, linear_cnn):
        sweep = compare_policies(linear_cnn, include_dynamic=False)
        assert "dyn" not in sweep
        assert "joint" not in sweep

    def test_memory_ordering_invariant(self, linear_cnn):
        sweep = compare_policies(linear_cnn, include_dynamic=False)
        assert sweep["all(m)"].avg_usage_bytes <= \
            sweep["conv(m)"].avg_usage_bytes <= \
            sweep["base(m)"].avg_usage_bytes


class TestOracularBaseline:
    def test_always_trainable(self, linear_cnn):
        assert oracular_baseline(linear_cnn).trainable

    def test_same_speed_as_fitting_baseline(self, linear_cnn):
        # For a network that fits, the oracle is just baseline(p).
        oracle = oracular_baseline(linear_cnn)
        base = evaluate(linear_cnn, policy="base", algo="p")
        assert oracle.total_time == pytest.approx(base.total_time)

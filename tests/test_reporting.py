"""Tests for table rendering and the figure drivers (on small inputs)."""

import pytest

from repro.reporting import (
    fig01_baseline_usage,
    fig04_breakdown,
    fig05_per_layer,
    fig06_reuse_distance,
    fig09_timeline,
    fig11_memory_usage,
    fig12_offload_size,
    fig13_dram_bandwidth,
    fig14_performance,
    format_bar,
    format_bar_chart,
    format_table,
    gb_str,
    mb_str,
    ms_str,
    pct_str,
)
from repro.zoo import build

from conftest import make_linear_cnn


class TestFormatters:
    def test_table_alignment(self):
        text = format_table(["a", "bb"], [["x", "y"], ["long", "z"]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert all(len(l) <= max(len(x) for x in lines) for l in lines)

    def test_table_title(self):
        text = format_table(["c"], [["v"]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == "========"

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_bar_scales(self):
        assert len(format_bar(5, 10, width=10)) == 5
        assert len(format_bar(10, 10, width=10)) == 10
        assert format_bar(20, 10, width=10) == "#" * 10  # clamped

    def test_bar_chart(self):
        text = format_bar_chart(["a", "bb"], [1.0, 2.0], unit="x")
        assert "a " in text and "bb" in text and "2.0x" in text

    def test_bar_chart_length_mismatch(self):
        with pytest.raises(ValueError):
            format_bar_chart(["a"], [1.0, 2.0])

    def test_unit_strings(self):
        assert mb_str(1 << 20) == "1 MB"
        assert gb_str(1 << 30) == "1.00 GB"
        assert ms_str(0.5) == "500.00 ms"
        assert pct_str(0.123) == "12.3%"


@pytest.fixture(scope="module")
def small_networks():
    return [build("alexnet", 8), build("vgg16", 8)]


class TestFigureDrivers:
    def test_fig01(self, small_networks):
        result = fig01_baseline_usage(small_networks)
        assert len(result.rows) == 2
        assert "Figure 1" in result.text
        for row in result.rows:
            usage_pct = float(row[3].rstrip("%"))
            unused_pct = float(row[4].rstrip("%"))
            assert usage_pct + unused_pct == pytest.approx(100.0, abs=0.2)

    def test_fig04_total_consistency(self, small_networks):
        result = fig04_breakdown(small_networks)
        for row in result.rows:
            parts = [float(c.replace(" MB", "").replace(",", ""))
                     for c in row[1:5]]
            total = float(row[5].replace(" MB", "").replace(",", ""))
            assert sum(parts) == pytest.approx(total, abs=2.0)

    def test_fig05_row_per_weighted_layer(self, small_networks):
        result = fig05_per_layer(small_networks[0])
        assert len(result.rows) == 8  # AlexNet: 5 CONV + 3 FC

    def test_fig06_rows_and_note(self, small_networks):
        result = fig06_reuse_distance(small_networks[1])
        assert len(result.rows) == 19
        assert "reuse distance" in result.notes[0]

    def test_fig09_ascii_timeline(self, linear_cnn):
        result = fig09_timeline(linear_cnn)
        assert "stream_compute" in result.notes[0]

    def test_fig11_star_marks_untrainable(self):
        result = fig11_memory_usage([build("vgg16", 256)])
        configs = {row[1] for row in result.rows}
        assert "base(p)*" in configs
        assert "dyn" in configs  # dyn trains, no star

    def test_fig12_columns(self, small_networks):
        result = fig12_offload_size(small_networks)
        assert result.headers[1].startswith("vDNN_all")

    def test_fig13_utilization_bounded(self, small_networks):
        result = fig13_dram_bandwidth(small_networks[0])
        for row in result.rows:
            assert float(row[3].rstrip("%")) <= 100.0

    def test_fig14_oracle_normalization(self, small_networks):
        result = fig14_performance([small_networks[0]])
        by_config = {r[1].rstrip("*"): float(r[3]) for r in result.rows}
        assert by_config["base(p)"] == pytest.approx(1.0, abs=0.01)
        assert by_config["all(m)"] < 1.0

    def test_text_rendering_includes_notes(self, small_networks):
        result = fig01_baseline_usage(small_networks)
        assert "note:" in result.text

    def test_to_dict_and_save_json(self, small_networks, tmp_path):
        import json

        result = fig01_baseline_usage(small_networks)
        payload = result.to_dict()
        assert payload["figure_id"] == "Figure 1"
        assert len(payload["rows"]) == len(result.rows)
        path = tmp_path / "fig01.json"
        result.save_json(str(path))
        assert json.loads(path.read_text()) == payload

"""Tests for the hardware models: GPU, PCIe, host, system config."""

import pytest

from repro.hw import (
    GPU_PRESETS,
    GPUSpec,
    HBM_CLASS,
    HostSpec,
    I7_5930K,
    JETSON_CLASS,
    PAPER_SYSTEM,
    PCIE_GEN3,
    PCIeLink,
    SystemConfig,
    TITAN_X,
    TransferMode,
    gpu_preset,
    oracular,
)


class TestGPUSpec:
    def test_titan_x_matches_paper(self):
        assert TITAN_X.peak_flops == 7.0e12
        assert TITAN_X.dram_bandwidth == 336.0e9
        assert TITAN_X.memory_bytes == 12 * (1 << 30)

    def test_effective_rates_below_peak(self):
        assert 0 < TITAN_X.effective_flops < TITAN_X.peak_flops
        assert 0 < TITAN_X.effective_bandwidth < TITAN_X.dram_bandwidth

    def test_validation(self):
        with pytest.raises(ValueError):
            GPUSpec("bad", peak_flops=0, dram_bandwidth=1, memory_bytes=1)
        with pytest.raises(ValueError):
            GPUSpec("bad", peak_flops=1, dram_bandwidth=1, memory_bytes=0)
        with pytest.raises(ValueError):
            GPUSpec("bad", peak_flops=1, dram_bandwidth=1, memory_bytes=1,
                    compute_efficiency=1.5)

    def test_oracular_keeps_throughput(self):
        oracle = oracular(TITAN_X)
        assert oracle.peak_flops == TITAN_X.peak_flops
        assert oracle.memory_bytes > TITAN_X.memory_bytes * 1000

    def test_frozen(self):
        with pytest.raises(Exception):
            TITAN_X.memory_bytes = 0


class TestGPUPresets:
    def test_registry_contents(self):
        assert GPU_PRESETS == {"titanx": TITAN_X, "hbm": HBM_CLASS,
                               "jetson": JETSON_CLASS}

    def test_lookup_normalizes_names(self):
        assert gpu_preset("hbm") is HBM_CLASS
        assert gpu_preset("HBM") is HBM_CLASS
        assert gpu_preset("Titan-X") is TITAN_X
        assert gpu_preset("titan_x ") is TITAN_X
        assert gpu_preset("jetson") is JETSON_CLASS

    def test_unknown_preset_lists_available(self):
        with pytest.raises(KeyError, match="hbm"):
            gpu_preset("tpu")

    def test_hbm_class_outclasses_titan(self):
        # A100-class HBM: more compute, and memory bandwidth well
        # beyond GDDR5 even after efficiency derating.
        assert HBM_CLASS.effective_flops > TITAN_X.effective_flops
        assert HBM_CLASS.effective_bandwidth > 3 * TITAN_X.effective_bandwidth
        assert HBM_CLASS.memory_bytes > TITAN_X.memory_bytes

    def test_jetson_class_is_edge_constrained(self):
        # TX2-class edge module: far less of everything, and the lower
        # sustained efficiencies of an SoC memory system.
        assert JETSON_CLASS.effective_flops < TITAN_X.effective_flops / 3
        assert JETSON_CLASS.effective_bandwidth < TITAN_X.effective_bandwidth
        assert JETSON_CLASS.memory_bytes < TITAN_X.memory_bytes

    def test_presets_derate_below_peak(self):
        for spec in GPU_PRESETS.values():
            assert 0 < spec.effective_flops < spec.peak_flops
            assert 0 < spec.effective_bandwidth < spec.dram_bandwidth


class TestPCIe:
    def test_dma_beats_page_migration_by_orders_of_magnitude(self):
        nbytes = 100 * (1 << 20)
        dma = PCIE_GEN3.effective_bandwidth(nbytes, TransferMode.DMA)
        paging = PCIE_GEN3.effective_bandwidth(nbytes, TransferMode.PAGE_MIGRATION)
        assert dma / paging > 50

    def test_page_migration_bandwidth_in_paper_band(self):
        # The paper quotes 80-200 MB/s for page-in at 20-50 us per page.
        bw = PCIE_GEN3.effective_bandwidth(1 << 30, TransferMode.PAGE_MIGRATION)
        assert 80e6 <= bw <= 200e6

    def test_dma_bandwidth_near_12_8_gbs(self):
        bw = PCIE_GEN3.effective_bandwidth(1 << 30, TransferMode.DMA)
        assert 12.0e9 <= bw <= 12.8e9

    def test_zero_transfer_is_free(self):
        assert PCIE_GEN3.dma_time(0) == 0.0

    def test_dma_has_setup_latency(self):
        assert PCIE_GEN3.dma_time(1) >= PCIE_GEN3.dma_setup_latency

    def test_page_count_rounds_up(self):
        one = PCIE_GEN3.page_migration_time(1)
        full = PCIE_GEN3.page_migration_time(4096)
        assert one == full

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            PCIE_GEN3.dma_time(-1)
        with pytest.raises(ValueError):
            PCIE_GEN3.page_migration_time(-1)

    def test_dma_cannot_exceed_line_rate(self):
        with pytest.raises(ValueError):
            PCIeLink(max_bandwidth=1e9, dma_bandwidth=2e9)


class TestInterconnectPresets:
    """Every sweep preset states its knobs; none inherits silently.

    ``PCIE_GEN4`` once inherited gen3's 10 us ``dma_setup_latency``
    while the NVLink presets set 5 us, so adjacent points of
    ``interconnect_sweep()`` conflated a bandwidth change with a
    silently inherited setup latency.
    """

    #: Knobs that differ between link generations and must therefore be
    #: stated explicitly in every non-default preset.
    KNOBS = {"max_bandwidth", "dma_bandwidth", "dma_setup_latency"}

    def _preset_keywords(self):
        import ast
        import inspect

        from repro.hw import interconnects

        tree = ast.parse(inspect.getsource(interconnects))
        out = {}
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            if len(node.targets) != 1 or \
                    not isinstance(node.targets[0], ast.Name):
                continue
            name = node.targets[0].id
            if not isinstance(node.value, ast.Call):
                continue
            func = node.value.func
            if getattr(func, "id", None) != "PCIeLink":
                continue
            out[name] = {kw.arg for kw in node.value.keywords}
        return out

    def test_every_preset_states_every_generation_knob(self):
        presets = self._preset_keywords()
        assert set(presets) == {"PCIE_GEN4", "NVLINK_1", "NVLINK_2"}
        for name, stated in presets.items():
            assert self.KNOBS <= stated, (
                f"{name} inherits {sorted(self.KNOBS - stated)} from the "
                f"PCIeLink defaults; state each generation knob "
                f"explicitly so the sweep's deltas are intentional")

    def test_gen4_setup_latency_explicit_and_modern(self):
        from repro.hw import NVLINK_1, NVLINK_2, PCIE_GEN4

        assert PCIE_GEN4.dma_setup_latency == 5e-6
        assert PCIE_GEN4.dma_setup_latency == NVLINK_1.dma_setup_latency
        assert PCIE_GEN4.dma_setup_latency == NVLINK_2.dma_setup_latency
        # Gen3 (the paper's testbed) keeps the slower 10 us engines.
        assert PCIE_GEN3.dma_setup_latency == 10e-6

    def test_sweep_orders_by_bandwidth(self):
        from repro.hw import interconnect_sweep

        rates = [system.pcie.dma_bandwidth
                 for _label, system in interconnect_sweep()]
        assert rates == sorted(rates)


class TestClusterTopology:
    def test_presets_cover_both_fabric_families(self):
        from repro.hw import available_topologies

        assert available_topologies() == \
            ["nvlink-mesh", "nvlink-ring", "pcie-switch"]

    def test_unknown_preset_lists_available(self):
        from repro.hw import make_topology

        with pytest.raises(KeyError, match="pcie-switch"):
            make_topology("torus", 4)

    def test_switch_tree_shares_one_uplink(self):
        from repro.hw import make_topology

        topo = make_topology("pcie-switch", 4)
        uplinks = {topo.dma_path(gpu)[-1] for gpu in range(4)}
        assert len(uplinks) == 1  # all four workers contend for it

    def test_switch_tree_peer_routes(self):
        from repro.hw import pcie_switch_tree

        topo = pcie_switch_tree(num_gpus=4, gpus_per_switch=2)
        # Same switch: turn around at the switch, no uplink crossed.
        same = set(topo.route(0, 1))
        assert not same & {topo.dma_path(0)[-1], topo.dma_path(2)[-1]}
        # Cross switch: both uplinks crossed — allreduce meets DMA.
        cross = set(topo.route(1, 2))
        assert {topo.dma_path(1)[-1], topo.dma_path(2)[-1]} <= cross

    def test_nvlink_ring_separates_traffic_classes(self):
        from repro.hw import make_topology

        topo = make_topology("nvlink-ring", 4)
        dma_links = {link for gpu in range(4)
                     for link in topo.dma_path(gpu)}
        # Each worker has a private host link...
        assert len(dma_links) == 4
        # ...and ring-neighbour peer routes never touch any of them.
        for a in range(4):
            b = (a + 1) % 4
            assert not set(topo.route(a, b)) & dma_links

    def test_nvlink_ring_walks_shorter_direction(self):
        from repro.hw import make_topology

        topo = make_topology("nvlink-ring", 6)
        assert len(topo.route(0, 1)) == 1
        assert len(topo.route(0, 2)) == 2
        assert len(topo.route(0, 3)) == 3  # antipode: either way is 3

    def test_mesh_is_single_hop_everywhere(self):
        from repro.hw import make_topology

        topo = make_topology("nvlink-mesh", 4)
        for a in range(4):
            for b in range(4):
                assert len(topo.route(a, b)) == (0 if a == b else 1)

    def test_route_table_validation(self):
        from repro.hw import ClusterTopology, PCIE_GEN3

        with pytest.raises(ValueError, match="at least one GPU"):
            ClusterTopology("bad", 0, (), (), (), ())
        with pytest.raises(ValueError, match="host DMA path"):
            ClusterTopology("bad", 1, (PCIE_GEN3,), ("l",), ((),),
                            (((),),))

    def test_per_gpu_system_uses_local_host_link(self):
        from repro.hw import NVLINK_1, nvlink_ring

        topo = nvlink_ring(4, host_link=NVLINK_1)
        assert topo.system(2).pcie is NVLINK_1


class TestHost:
    def test_paper_host_is_64gb(self):
        assert I7_5930K.memory_bytes == 64 * (1 << 30)

    def test_pinned_budget_below_capacity(self):
        assert 0 < I7_5930K.max_pinned_bytes < I7_5930K.memory_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            HostSpec(memory_bytes=0)
        with pytest.raises(ValueError):
            HostSpec(max_pinned_fraction=0.0)


class TestSystemConfig:
    def test_paper_system_composition(self):
        assert PAPER_SYSTEM.gpu is not None
        assert PAPER_SYSTEM.gpu.name == TITAN_X.name

    def test_with_oracular_gpu(self):
        oracle = PAPER_SYSTEM.with_oracular_gpu()
        assert oracle.gpu.memory_bytes > PAPER_SYSTEM.gpu.memory_bytes
        assert oracle.host is PAPER_SYSTEM.host

    def test_with_gpu_memory(self):
        small = PAPER_SYSTEM.with_gpu_memory(1 << 30)
        assert small.gpu.memory_bytes == 1 << 30
        assert small.gpu.peak_flops == PAPER_SYSTEM.gpu.peak_flops

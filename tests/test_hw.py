"""Tests for the hardware models: GPU, PCIe, host, system config."""

import pytest

from repro.hw import (
    GPU_PRESETS,
    GPUSpec,
    HBM_CLASS,
    HostSpec,
    I7_5930K,
    JETSON_CLASS,
    PAPER_SYSTEM,
    PCIE_GEN3,
    PCIeLink,
    SystemConfig,
    TITAN_X,
    TransferMode,
    gpu_preset,
    oracular,
)


class TestGPUSpec:
    def test_titan_x_matches_paper(self):
        assert TITAN_X.peak_flops == 7.0e12
        assert TITAN_X.dram_bandwidth == 336.0e9
        assert TITAN_X.memory_bytes == 12 * (1 << 30)

    def test_effective_rates_below_peak(self):
        assert 0 < TITAN_X.effective_flops < TITAN_X.peak_flops
        assert 0 < TITAN_X.effective_bandwidth < TITAN_X.dram_bandwidth

    def test_validation(self):
        with pytest.raises(ValueError):
            GPUSpec("bad", peak_flops=0, dram_bandwidth=1, memory_bytes=1)
        with pytest.raises(ValueError):
            GPUSpec("bad", peak_flops=1, dram_bandwidth=1, memory_bytes=0)
        with pytest.raises(ValueError):
            GPUSpec("bad", peak_flops=1, dram_bandwidth=1, memory_bytes=1,
                    compute_efficiency=1.5)

    def test_oracular_keeps_throughput(self):
        oracle = oracular(TITAN_X)
        assert oracle.peak_flops == TITAN_X.peak_flops
        assert oracle.memory_bytes > TITAN_X.memory_bytes * 1000

    def test_frozen(self):
        with pytest.raises(Exception):
            TITAN_X.memory_bytes = 0


class TestGPUPresets:
    def test_registry_contents(self):
        assert GPU_PRESETS == {"titanx": TITAN_X, "hbm": HBM_CLASS,
                               "jetson": JETSON_CLASS}

    def test_lookup_normalizes_names(self):
        assert gpu_preset("hbm") is HBM_CLASS
        assert gpu_preset("HBM") is HBM_CLASS
        assert gpu_preset("Titan-X") is TITAN_X
        assert gpu_preset("titan_x ") is TITAN_X
        assert gpu_preset("jetson") is JETSON_CLASS

    def test_unknown_preset_lists_available(self):
        with pytest.raises(KeyError, match="hbm"):
            gpu_preset("tpu")

    def test_hbm_class_outclasses_titan(self):
        # A100-class HBM: more compute, and memory bandwidth well
        # beyond GDDR5 even after efficiency derating.
        assert HBM_CLASS.effective_flops > TITAN_X.effective_flops
        assert HBM_CLASS.effective_bandwidth > 3 * TITAN_X.effective_bandwidth
        assert HBM_CLASS.memory_bytes > TITAN_X.memory_bytes

    def test_jetson_class_is_edge_constrained(self):
        # TX2-class edge module: far less of everything, and the lower
        # sustained efficiencies of an SoC memory system.
        assert JETSON_CLASS.effective_flops < TITAN_X.effective_flops / 3
        assert JETSON_CLASS.effective_bandwidth < TITAN_X.effective_bandwidth
        assert JETSON_CLASS.memory_bytes < TITAN_X.memory_bytes

    def test_presets_derate_below_peak(self):
        for spec in GPU_PRESETS.values():
            assert 0 < spec.effective_flops < spec.peak_flops
            assert 0 < spec.effective_bandwidth < spec.dram_bandwidth


class TestPCIe:
    def test_dma_beats_page_migration_by_orders_of_magnitude(self):
        nbytes = 100 * (1 << 20)
        dma = PCIE_GEN3.effective_bandwidth(nbytes, TransferMode.DMA)
        paging = PCIE_GEN3.effective_bandwidth(nbytes, TransferMode.PAGE_MIGRATION)
        assert dma / paging > 50

    def test_page_migration_bandwidth_in_paper_band(self):
        # The paper quotes 80-200 MB/s for page-in at 20-50 us per page.
        bw = PCIE_GEN3.effective_bandwidth(1 << 30, TransferMode.PAGE_MIGRATION)
        assert 80e6 <= bw <= 200e6

    def test_dma_bandwidth_near_12_8_gbs(self):
        bw = PCIE_GEN3.effective_bandwidth(1 << 30, TransferMode.DMA)
        assert 12.0e9 <= bw <= 12.8e9

    def test_zero_transfer_is_free(self):
        assert PCIE_GEN3.dma_time(0) == 0.0

    def test_dma_has_setup_latency(self):
        assert PCIE_GEN3.dma_time(1) >= PCIE_GEN3.dma_setup_latency

    def test_page_count_rounds_up(self):
        one = PCIE_GEN3.page_migration_time(1)
        full = PCIE_GEN3.page_migration_time(4096)
        assert one == full

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            PCIE_GEN3.dma_time(-1)
        with pytest.raises(ValueError):
            PCIE_GEN3.page_migration_time(-1)

    def test_dma_cannot_exceed_line_rate(self):
        with pytest.raises(ValueError):
            PCIeLink(max_bandwidth=1e9, dma_bandwidth=2e9)


class TestHost:
    def test_paper_host_is_64gb(self):
        assert I7_5930K.memory_bytes == 64 * (1 << 30)

    def test_pinned_budget_below_capacity(self):
        assert 0 < I7_5930K.max_pinned_bytes < I7_5930K.memory_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            HostSpec(memory_bytes=0)
        with pytest.raises(ValueError):
            HostSpec(max_pinned_fraction=0.0)


class TestSystemConfig:
    def test_paper_system_composition(self):
        assert PAPER_SYSTEM.gpu is not None
        assert PAPER_SYSTEM.gpu.name == TITAN_X.name

    def test_with_oracular_gpu(self):
        oracle = PAPER_SYSTEM.with_oracular_gpu()
        assert oracle.gpu.memory_bytes > PAPER_SYSTEM.gpu.memory_bytes
        assert oracle.host is PAPER_SYSTEM.host

    def test_with_gpu_memory(self):
        small = PAPER_SYSTEM.with_gpu_memory(1 << 30)
        assert small.gpu.memory_bytes == 1 << 30
        assert small.gpu.peak_flops == PAPER_SYSTEM.gpu.peak_flops

"""Tests for residual networks: ADD/BN layers, the zoo builders, and
end-to-end behaviour under every memory strategy."""

import numpy as np
import pytest

from repro.core import AlgoConfig, TransferPolicy, evaluate, simulate_recompute
from repro.graph import (
    BatchNorm,
    EltwiseAdd,
    LayerKind,
    NetworkBuilder,
    TensorSpec,
)
from repro.hw import PAPER_SYSTEM
from repro.numerics import TrainingRuntime, make_batch, ops
from repro.zoo import build, build_deep_resnet, build_resnet

X = TensorSpec((2, 8, 4, 4))


def mini_resnet(blocks=2, batch=4, size=16):
    b = NetworkBuilder("mini-resnet", (batch, 3, size, size))
    b.conv(8, kernel=3, pad=1, name="stem").batchnorm().relu(name="stem_relu")
    for i in range(blocks):
        shortcut = b.tap()
        b.conv(8, kernel=3, pad=1, name=f"b{i}_c1").batchnorm().relu()
        b.conv(8, kernel=3, pad=1, name=f"b{i}_c2").batchnorm()
        main = b.tap()
        b.add([main, shortcut], name=f"b{i}_add").relu(name=f"b{i}_out")
    b.pool().fc(10).softmax()
    return b.build()


class TestEltwiseAddLayer:
    def test_shape_preserving(self):
        add = EltwiseAdd("a", inputs=["x", "y"])
        assert add.infer_output([X, X]) == X

    def test_rejects_mismatched_shapes(self):
        add = EltwiseAdd("a", inputs=["x", "y"])
        with pytest.raises(ValueError):
            add.infer_output([X, TensorSpec((2, 8, 2, 2))])

    def test_rejects_single_input(self):
        with pytest.raises(ValueError):
            EltwiseAdd("a", inputs=["x"]).infer_output([X])

    def test_backward_needs_nothing(self):
        add = EltwiseAdd("a", inputs=["x", "y"])
        assert not add.backward_needs_x and not add.backward_needs_y


class TestBatchNormLayer:
    def test_shape_preserving(self):
        bn = BatchNorm("b", inputs=["x"])
        assert bn.infer_output([X]) == X

    def test_per_channel_parameters(self):
        bn = BatchNorm("b", inputs=["x"])
        assert bn.weight_spec([X]).shape == (8,)
        assert bn.bias_spec([X]).shape == (8,)
        assert bn.has_weights

    def test_backward_reads_x(self):
        bn = BatchNorm("b", inputs=["x"])
        assert bn.backward_needs_x and not bn.backward_needs_y

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            BatchNorm("b", epsilon=0.0)


class TestBatchNormNumerics:
    def test_normalizes_to_zero_mean_unit_var(self):
        rng = np.random.default_rng(0)
        x = (rng.standard_normal((8, 4, 6, 6)) * 3 + 5).astype(np.float32)
        gamma = np.ones(4, dtype=np.float32)
        beta = np.zeros(4, dtype=np.float32)
        y = ops.batchnorm_forward(x, gamma, beta, 1e-5)
        assert abs(float(y.mean())) < 1e-4
        assert abs(float(y.var()) - 1.0) < 1e-2

    def test_gamma_beta_applied(self):
        x = np.random.default_rng(1).standard_normal((4, 2, 3, 3)).astype(np.float32)
        gamma = np.array([2.0, 1.0], dtype=np.float32)
        beta = np.array([0.0, 10.0], dtype=np.float32)
        y = ops.batchnorm_forward(x, gamma, beta, 1e-5)
        assert abs(float(y[:, 1].mean()) - 10.0) < 1e-3
        assert abs(float(y[:, 0].std()) - 2.0) < 2e-2

    def test_gradient_check(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((3, 2, 4, 4)).astype(np.float32)
        gamma = rng.standard_normal(2).astype(np.float32)
        beta = rng.standard_normal(2).astype(np.float32)
        dy = rng.standard_normal(x.shape).astype(np.float32)
        eps = 1e-5

        def loss():
            return float((ops.batchnorm_forward(x, gamma, beta, eps) * dy).sum())

        dx, dgamma, dbeta = ops.batchnorm_backward(x, gamma, dy, eps)

        from test_numerics_ops import numeric_grad
        np.testing.assert_allclose(dx, numeric_grad(loss, x), rtol=5e-2,
                                   atol=5e-3)
        np.testing.assert_allclose(dgamma, numeric_grad(loss, gamma),
                                   rtol=2e-2, atol=1e-2)
        np.testing.assert_allclose(dbeta, numeric_grad(loss, beta),
                                   rtol=2e-2, atol=1e-2)

    def test_eltwise_add(self):
        a = np.ones((2, 2), dtype=np.float32)
        b = np.full((2, 2), 2.0, dtype=np.float32)
        np.testing.assert_array_equal(
            ops.eltwise_add_forward([a, b]), np.full((2, 2), 3.0)
        )


class TestResNetZoo:
    def test_resnet18_structure(self):
        net = build_resnet(18, 8)
        assert len(net.conv_layers) == 1 + 16 + 3  # stem + blocks + projections
        assert len(net.layers_of_kind(LayerKind.ADD)) == 8
        assert len(net.layers_of_kind(LayerKind.BN)) == \
            len(net.conv_layers)

    def test_resnet34_conv_count(self):
        net = build_resnet(34, 8)
        # stem + 2*16 block convs + 3 projection convs.
        assert len(net.conv_layers) == 36

    def test_spatial_chain(self):
        net = build_resnet(18, 4)
        assert net.node("stem_conv").output_spec.shape[2:] == (112, 112)
        assert net.node("head_pool").output_spec.shape == (4, 512, 1, 1)

    def test_residual_fanout_refcounts(self):
        net = build_resnet(18, 4)
        # Every non-downsampling block input feeds both the main path
        # and the shortcut: refcount 2.
        fanouts = [n for n in net if n.refcount == 2]
        assert len(fanouts) >= 4

    def test_resnet50_structure(self):
        net = build_resnet(50, 8)
        # stem + 3*16 block convs + 4 projections (one per stage).
        assert len(net.conv_layers) == 53
        assert net.node("head_pool").output_spec.shape == (8, 2048, 1, 1)

    def test_resnet152_conv_count(self):
        # The paper's "more than a hundred convolutional layers" winner.
        net = build_resnet(152, 4)
        assert len(net.conv_layers) == 155

    def test_bottleneck_expansion(self):
        net = build_resnet(50, 4)
        assert net.node("s1b1_conv3").output_spec.shape[1] == 256
        assert net.node("s4b1_conv3").output_spec.shape[1] == 2048

    def test_resnet152_needs_vdnn_at_batch_64(self):
        """The headline motivation, on the actual ImageNet winner."""
        net = build_resnet(152, 64)
        assert not evaluate(net, policy="base", algo="p").trainable
        assert evaluate(net, policy="all", algo="m").trainable

    def test_deep_resnet_rule(self):
        net = build_deep_resnet(5, 8)
        assert "ResNet-42" in net.name
        assert len(net.layers_of_kind(LayerKind.ADD)) == 20

    def test_invalid_depths_rejected(self):
        with pytest.raises(ValueError):
            build_resnet(20, 8)
        with pytest.raises(ValueError):
            build_deep_resnet(0, 8)

    def test_registry_integration(self):
        assert build("resnet34").batch_size == 128


class TestResNetUnderManagers:
    def test_simulation_all_policies(self):
        net = build_resnet(18, 32)
        for policy in ("all", "conv", "none", "base", "dyn"):
            result = evaluate(net, policy=policy)
            assert result.trainable, policy
        vdnn = evaluate(net, policy="all", algo="m")
        demand = [e for e in vdnn.timeline.events if "(demand)" in e.label]
        assert demand == []

    def test_vdnn_saves_memory_on_resnet(self):
        net = build_resnet(34, 128)
        base = evaluate(net, policy="base", algo="p")
        vdnn = evaluate(net, policy="all", algo="m")
        assert vdnn.avg_usage_bytes < base.max_usage_bytes * 0.35

    @pytest.mark.parametrize("strategy", ["all", "conv", "recompute"])
    def test_training_bit_identical(self, strategy):
        imgs, labels = make_batch((4, 3, 16, 16), 10, 0)
        ref = TrainingRuntime(mini_resnet(), TransferPolicy.none(), seed=0)
        if strategy == "recompute":
            alt = TrainingRuntime(mini_resnet(), TransferPolicy.none(),
                                  seed=0, recompute_segments=3)
        else:
            policy = (TransferPolicy.vdnn_all if strategy == "all"
                      else TransferPolicy.vdnn_conv)()
            alt = TrainingRuntime(mini_resnet(), policy, seed=0)
        for _ in range(3):
            a = ref.train_step(imgs, labels)
            b = alt.train_step(imgs, labels)
            assert a.loss == b.loss
        assert ref.parameter_fingerprint() == alt.parameter_fingerprint()

    def test_bn_gamma_initialized_to_ones(self):
        runtime = TrainingRuntime(mini_resnet(), TransferPolicy.none(), seed=0)
        bn_index = runtime.network.node("bn_01").index
        gamma = runtime.device.get(f"W{bn_index}")
        assert np.all(gamma == 1.0)

    def test_recompute_simulation(self):
        # On residual networks the gradient twins dominate backward, so
        # coarse sqrt(L) checkpointing saves little; fine segmentation
        # must still beat keeping everything resident.
        net = build_resnet(18, 32)
        rec = simulate_recompute(net, PAPER_SYSTEM,
                                 AlgoConfig.memory_optimal(net),
                                 segment_count=16)
        base = evaluate(net, policy="none", algo="m")
        assert rec.max_usage_bytes < base.max_usage_bytes

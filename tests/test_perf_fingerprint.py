"""Tests for canonical simulation-point fingerprints.

The cache is only sound if (a) identical points always collide and
(b) any parameter that changes the simulation changes the digest —
across processes and hash seeds.
"""

import os
import subprocess
import sys

import pytest

from repro.core.algo_config import AlgoConfig
from repro.core.policy import TransferPolicy
from repro.hw import PAPER_SYSTEM
from repro.perf import (
    canonical_json,
    fingerprint,
    fingerprint_network,
    fingerprint_point,
)
from repro.zoo import build


class TestNetworkFingerprint:
    def test_identical_builds_fingerprint_identically(self):
        assert fingerprint_network(build("alexnet", 64)) == \
            fingerprint_network(build("alexnet", 64))

    def test_memoized_digest_matches_fresh_digest(self):
        network = build("alexnet", 64)
        first = fingerprint_network(network)   # computes + memoizes
        assert fingerprint_network(network) == first
        assert fingerprint_network(build("alexnet", 64)) == first

    def test_different_networks_differ(self):
        assert fingerprint_network(build("alexnet", 64)) != \
            fingerprint_network(build("vgg16", 64))

    def test_batch_size_perturbs_digest(self):
        assert fingerprint_network(build("alexnet", 64)) != \
            fingerprint_network(build("alexnet", 65))

    def test_dtype_perturbs_digest(self):
        fp32 = build("alexnet", 64)
        fp16 = fp32.with_dtype_bytes(2)
        assert fingerprint_network(fp32) != fingerprint_network(fp16)


class TestPointFingerprint:
    def _point(self, **overrides):
        defaults = dict(
            kind="vdnn",
            network=build("alexnet", 64),
            system=PAPER_SYSTEM,
            policy=TransferPolicy.vdnn_all(),
            algos=AlgoConfig.memory_optimal(build("alexnet", 64)),
        )
        defaults.update(overrides)
        return fingerprint_point(**defaults)

    def test_identical_points_collide(self):
        assert self._point() == self._point()

    def test_system_memory_perturbs_digest(self):
        assert self._point() != self._point(
            system=PAPER_SYSTEM.with_gpu_memory(6 << 30))

    def test_policy_perturbs_digest(self):
        assert self._point() != self._point(policy=TransferPolicy.vdnn_conv())

    def test_algos_perturb_digest(self):
        network = build("alexnet", 64)
        assert self._point() != self._point(
            algos=AlgoConfig.performance_optimal(network))

    def test_kind_namespaces_simulators(self):
        assert self._point() != self._point(kind="baseline")

    def test_extra_parameters_perturb_digest(self):
        assert self._point(extra={"segment_count": 4}) != \
            self._point(extra={"segment_count": 5})


class TestCanonicalJson:
    def test_dict_key_order_is_irrelevant(self):
        assert canonical_json({"a": 1, "b": 2}) == \
            canonical_json({"b": 2, "a": 1})

    def test_set_order_is_irrelevant(self):
        assert fingerprint({3, 1, 2}) == fingerprint({2, 3, 1})

    def test_live_objects_are_rejected(self):
        with pytest.raises(TypeError, match="canonicalize"):
            canonical_json(object())


def _digest_in_subprocess(hash_seed: str) -> str:
    """Fingerprint one point in a child interpreter with a fixed seed."""
    code = (
        "from repro.perf import fingerprint_point\n"
        "from repro.hw import PAPER_SYSTEM\n"
        "from repro.core.algo_config import AlgoConfig\n"
        "from repro.zoo import build\n"
        "net = build('alexnet', 32)\n"
        "print(fingerprint_point('baseline', net, PAPER_SYSTEM,\n"
        "                        algos=AlgoConfig.memory_optimal(net)))\n"
    )
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src")]
        + env.get("PYTHONPATH", "").split(os.pathsep))
    output = subprocess.run(
        [sys.executable, "-c", code], env=env,
        capture_output=True, text=True, check=True,
    )
    return output.stdout.strip()


def test_fingerprints_stable_across_processes_and_hash_seeds():
    digest_a = _digest_in_subprocess("0")
    digest_b = _digest_in_subprocess("1")
    assert digest_a == digest_b
    assert len(digest_a) == 64  # sha256 hex

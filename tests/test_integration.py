"""End-to-end integration tests: the paper's stories, asserted.

These tie the whole stack together — zoo networks through the executor,
dynamic planner, profilers and figure drivers — and pin down the
qualitative results EXPERIMENTS.md records.
"""

import pytest

from repro.core import (
    AlgoConfig,
    TransferPolicy,
    evaluate,
    oracular_baseline,
    plan_dynamic,
    simulate_vdnn,
)
from repro.graph import gb
from repro.hw import PAPER_SYSTEM
from repro.zoo import build


class TestTrainabilityTable:
    """The paper: 6 of 10 studied DNNs exceed 12 GB under the baseline."""

    def test_six_of_ten_fail_baseline(self):
        failures = 0
        for name, batch in [("alexnet", 128), ("overfeat", 128),
                            ("googlenet", 128), ("vgg16", 64),
                            ("vgg16", 128), ("vgg16", 256),
                            ("vgg116", 32), ("vgg216", 32),
                            ("vgg316", 32), ("vgg416", 32)]:
            result = evaluate(build(name, batch), policy="base", algo="p")
            if not result.trainable:
                failures += 1
        assert failures == 6

    def test_failing_networks_span_14_to_67_gb(self):
        sizes = []
        for name, batch in [("vgg16", 128), ("vgg16", 256), ("vgg116", 32),
                            ("vgg216", 32), ("vgg316", 32), ("vgg416", 32)]:
            result = evaluate(build(name, batch), policy="base", algo="p")
            assert not result.trainable
            sizes.append(gb(result.max_usage_bytes))
        assert min(sizes) > 12
        assert 60 < max(sizes) < 75  # paper: up to 67 GB

    def test_vdnn_dyn_trains_all_ten(self):
        for name, batch in [("alexnet", 128), ("overfeat", 128),
                            ("googlenet", 128), ("vgg16", 64),
                            ("vgg16", 128), ("vgg16", 256),
                            ("vgg116", 32), ("vgg216", 32),
                            ("vgg316", 32), ("vgg416", 32)]:
            plan = plan_dynamic(build(name, batch), PAPER_SYSTEM)
            assert plan.result.trainable, f"{name}({batch})"


class TestVGG256Story:
    """The headline: 28 GB workload on a 12 GB card at bounded cost."""

    @pytest.fixture(scope="class")
    def network(self):
        return build("vgg16", 256)

    def test_baseline_needs_28gb_scale(self, network):
        base = evaluate(network, policy="base", algo="p")
        assert 25 <= gb(base.max_usage_bytes) <= 35

    def test_dyn_fits_and_offloads(self, network):
        plan = plan_dynamic(network, PAPER_SYSTEM)
        assert plan.result.trainable
        assert plan.result.offload_bytes > 0  # forced into offloading
        assert gb(plan.result.max_usage_bytes) <= 12

    def test_dyn_performance_within_paper_band(self, network):
        plan = plan_dynamic(network, PAPER_SYSTEM)
        oracle = oracular_baseline(network)
        loss = 1 - oracle.feature_extraction_time / \
            plan.result.feature_extraction_time
        assert 0.0 <= loss <= 0.25  # paper: 18%

    def test_static_all_m_also_fits(self, network):
        result = evaluate(network, policy="all", algo="m")
        assert result.trainable


class TestGoogLeNetRefcounts:
    """Fork/join (Figure 3): refcount-gated offload on a real topology."""

    def test_simulation_has_no_demand_fetches(self):
        network = build("googlenet", 32)
        result = evaluate(network, policy="all", algo="m")
        demand = [e for e in result.timeline.events if "(demand)" in e.label]
        assert demand == []
        assert result.trainable

    def test_offload_only_at_last_consumer(self):
        network = build("googlenet", 32)
        from repro.core import LivenessAnalysis
        result = evaluate(network, policy="all", algo="m")
        liveness = LivenessAnalysis(network)
        for trigger in result.offloaded_layers:
            for storage in liveness.input_storages(trigger):
                if storage.forward_release_at == trigger:
                    # This trigger is indeed the storage's last consumer.
                    consumers = [
                        c for idx in storage.chain
                        for c in network[idx].consumers
                        if network[c].storage_index != storage.owner
                    ]
                    assert trigger == max(consumers)


class TestMemorySavingsBand:
    def test_paper_headline_savings(self):
        expectations = {"alexnet": 0.80, "overfeat": 0.85, "googlenet": 0.85}
        for name, floor in expectations.items():
            network = build(name, 128)
            base = evaluate(network, policy="base", algo="p")
            vdnn = evaluate(network, policy="all", algo="m")
            savings = 1 - vdnn.managed_avg_bytes / base.max_usage_bytes
            assert savings >= floor, f"{name}: {savings:.0%}"


class TestPerformanceOrdering:
    """Figure 14's qualitative ordering, asserted per network."""

    @pytest.mark.parametrize("name,batch", [
        ("alexnet", 128), ("googlenet", 128), ("vgg16", 64),
    ])
    def test_dyn_at_least_as_fast_as_static(self, name, batch):
        network = build(name, batch)
        dyn = evaluate(network, policy="dyn")
        all_m = evaluate(network, policy="all", algo="m")
        conv_m = evaluate(network, policy="conv", algo="m")
        assert dyn.feature_extraction_time <= all_m.feature_extraction_time
        assert dyn.feature_extraction_time <= conv_m.feature_extraction_time

    def test_offload_cost_shrinks_with_faster_interconnect(self):
        """The stall time is interconnect-bound: doubling PCIe DMA
        bandwidth must shrink vDNN_all's overhead."""
        import dataclasses
        from repro.hw import PCIeLink, SystemConfig
        network = build("vgg16", 64)
        fast_pcie = PCIeLink(max_bandwidth=32e9, dma_bandwidth=25.6e9)
        fast = SystemConfig(gpu=PAPER_SYSTEM.gpu, host=PAPER_SYSTEM.host,
                            pcie=fast_pcie)
        algos = AlgoConfig.memory_optimal(network)
        slow_r = simulate_vdnn(network, PAPER_SYSTEM,
                               TransferPolicy.vdnn_all(), algos)
        fast_r = simulate_vdnn(network, fast,
                               TransferPolicy.vdnn_all(), algos)
        assert fast_r.compute_stall_seconds < slow_r.compute_stall_seconds
        assert fast_r.total_time < slow_r.total_time


class TestVeryDeepScaling:
    def test_gpu_footprint_stays_flat(self):
        peaks = []
        for name in ("vgg116", "vgg216", "vgg316", "vgg416"):
            plan = plan_dynamic(build(name, 32), PAPER_SYSTEM)
            peaks.append(plan.result.max_usage_bytes)
        # Baseline grows ~3.2x over this range; dyn's GPU side must grow
        # far slower (paper: essentially flat).
        assert peaks[-1] / peaks[0] < 1.8

    def test_cpu_share_grows_with_depth(self):
        shares = []
        for name in ("vgg116", "vgg416"):
            plan = plan_dynamic(build(name, 32), PAPER_SYSTEM)
            cpu = plan.result.pinned_peak_bytes
            shares.append(cpu / (cpu + plan.result.max_usage_bytes))
        assert shares[1] > shares[0] > 0.7

"""Tests for the parallel sweep executor and its bit-identical contract."""

import pytest

from repro.cli import main
from repro.core import compare_policies, evaluate
from repro.hw import PAPER_SYSTEM
from repro.perf import SweepPoint, configure_cache, get_cache, set_cache, sweep
from repro.perf.sweep import point_key, resolve_jobs
from repro.zoo import build


@pytest.fixture(autouse=True)
def fresh_cache():
    cache = configure_cache()
    yield cache
    set_cache(None)


class TestSweepPoint:
    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            SweepPoint(network="alexnet", policy="bogus")

    def test_zoo_key_and_prebuilt_network_share_a_cache_key(self):
        by_key = SweepPoint(network="alexnet", batch=16, policy="all",
                            algo="m")
        by_object = SweepPoint(network=build("alexnet", 16), policy="all",
                               algo="m")
        assert point_key(by_key) == point_key(by_object)

    def test_resolve_jobs(self, monkeypatch):
        assert resolve_jobs(4) == 4
        assert resolve_jobs(0) == 1
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3
        monkeypatch.delenv("REPRO_JOBS")
        assert resolve_jobs() == 1


class TestSerialSweep:
    def test_matches_per_point_evaluate(self):
        points = [
            SweepPoint(network="alexnet", batch=8, policy="all", algo="m"),
            SweepPoint(network="alexnet", batch=8, policy="base", algo="p"),
            SweepPoint(network="alexnet", batch=8, policy="dyn"),
        ]
        results = sweep(points, jobs=1)
        network = build("alexnet", 8)
        assert results[0] == evaluate(network, PAPER_SYSTEM, "all", "m",
                                      use_cache=False)
        assert results[1] == evaluate(network, PAPER_SYSTEM, "base", "p",
                                      use_cache=False)
        assert results[2] == evaluate(network, PAPER_SYSTEM, "dyn",
                                      use_cache=False)


class TestParallelSweep:
    POINTS = [
        SweepPoint(network="alexnet", batch=8, policy=policy, algo=algo)
        for policy, algo in (("all", "m"), ("all", "p"),
                             ("conv", "m"), ("base", "p"))
    ]

    def test_parallel_equals_serial(self):
        serial = sweep(self.POINTS, jobs=1)
        configure_cache()
        parallel = sweep(self.POINTS, jobs=2)
        assert serial == parallel

    def test_parallel_sweep_warms_the_parent_cache(self):
        sweep(self.POINTS, jobs=2)
        cache = get_cache()
        assert all(point_key(p) in cache for p in self.POINTS)
        hits_before = cache.stats.hits
        network = build("alexnet", 8)
        evaluate(network, PAPER_SYSTEM, "all", "m")
        assert cache.stats.hits == hits_before + 1

    def test_cached_points_do_not_fan_out_again(self):
        sweep(self.POINTS, jobs=2)
        stores_before = get_cache().stats.stores
        again = sweep(self.POINTS, jobs=2)
        assert get_cache().stats.stores == stores_before
        assert again == sweep(self.POINTS, jobs=1)

    def test_hybrid_policy_round_trips(self):
        point = SweepPoint(network="alexnet", batch=8, policy="hybrid",
                           algo="m")
        serial = sweep([point, self.POINTS[0]], jobs=1)
        configure_cache()
        parallel = sweep([point, self.POINTS[0]], jobs=2)
        assert serial == parallel


class TestFigureParity:
    def test_fig11_rows_identical_serial_vs_parallel(self):
        from repro.reporting.figures import fig11_memory_usage

        networks = [build("alexnet", 16)]
        serial = fig11_memory_usage(networks)
        configure_cache()
        parallel = fig11_memory_usage(networks, jobs=2)
        assert serial.rows == parallel.rows

    def test_compare_policies_identical_serial_vs_parallel(self):
        network = build("alexnet", 8)
        serial = compare_policies(network, jobs=1)
        configure_cache()
        parallel = compare_policies(network, jobs=2)
        assert serial == parallel


class TestCli:
    def test_sweep_accepts_jobs_flag(self, capsys):
        assert main(["sweep", "alexnet", "--batch", "8", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "policy sweep" in out
        assert "all(m)" in out

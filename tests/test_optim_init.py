"""Tests for the optimizers and deterministic initializers."""

import numpy as np
import pytest

from repro.numerics import Adam, SGD, init_bias, init_weight, make_batch
from repro.zoo import build_vgg16

from conftest import make_linear_cnn


class TestSGD:
    def test_plain_step(self):
        sgd = SGD(learning_rate=0.1)
        param = np.array([1.0, 2.0], dtype=np.float32)
        grad = np.array([1.0, -1.0], dtype=np.float32)
        sgd.step("w", param, grad)
        np.testing.assert_allclose(param, [0.9, 2.1], rtol=1e-6)

    def test_momentum_accumulates(self):
        sgd = SGD(learning_rate=0.1, momentum=0.9)
        param = np.zeros(1, dtype=np.float32)
        grad = np.ones(1, dtype=np.float32)
        sgd.step("w", param, grad)   # v = -0.1
        sgd.step("w", param, grad)   # v = -0.19
        np.testing.assert_allclose(param, [-0.29], rtol=1e-5)

    def test_momentum_state_per_parameter(self):
        sgd = SGD(learning_rate=0.1, momentum=0.9)
        a = np.zeros(1, dtype=np.float32)
        b = np.zeros(2, dtype=np.float32)
        sgd.step("a", a, np.ones(1, dtype=np.float32))
        sgd.step("b", b, np.ones(2, dtype=np.float32))
        assert sgd.state_bytes() == a.nbytes + b.nbytes

    def test_no_momentum_state_when_disabled(self):
        sgd = SGD(learning_rate=0.1)
        sgd.step("w", np.zeros(3, dtype=np.float32),
                 np.ones(3, dtype=np.float32))
        assert sgd.state_bytes() == 0

    def test_shape_mismatch_rejected(self):
        sgd = SGD()
        with pytest.raises(ValueError):
            sgd.step("w", np.zeros(2, dtype=np.float32),
                     np.zeros(3, dtype=np.float32))

    def test_hyperparameter_validation(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD(momentum=1.0)


class TestSGDWeightDecay:
    def test_decay_shrinks_weights_with_zero_grad(self):
        sgd = SGD(learning_rate=0.1, weight_decay=0.5)
        param = np.array([1.0], dtype=np.float32)
        sgd.step("w", param, np.zeros(1, dtype=np.float32))
        np.testing.assert_allclose(param, [0.95], rtol=1e-6)

    def test_negative_decay_rejected(self):
        with pytest.raises(ValueError):
            SGD(weight_decay=-0.1)


class TestAdam:
    def test_first_step_magnitude_is_lr(self):
        # With bias correction, |update| ~= lr on step 1 for any grad.
        adam = Adam(learning_rate=0.1)
        param = np.zeros(3, dtype=np.float32)
        adam.step("w", param, np.array([5.0, -2.0, 0.1], dtype=np.float32))
        np.testing.assert_allclose(np.abs(param), [0.1] * 3, rtol=1e-3)

    def test_converges_on_quadratic(self):
        adam = Adam(learning_rate=0.2)
        param = np.array([4.0], dtype=np.float32)
        for _ in range(200):
            adam.step("w", param, 2 * param)  # d/dx x^2
        assert abs(float(param[0])) < 0.1

    def test_state_is_two_buffers_per_parameter(self):
        adam = Adam()
        param = np.zeros(10, dtype=np.float32)
        adam.step("w", param, np.ones(10, dtype=np.float32))
        assert adam.state_bytes() == 2 * param.nbytes

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Adam().step("w", np.zeros(2, dtype=np.float32),
                        np.zeros(3, dtype=np.float32))

    def test_hyperparameter_validation(self):
        with pytest.raises(ValueError):
            Adam(learning_rate=0)
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam(epsilon=0)

    def test_runtime_integration_bit_identical_under_offload(self):
        from repro.core import TransferPolicy
        from repro.numerics import TrainingRuntime

        def run(policy):
            runtime = TrainingRuntime(
                make_linear_cnn(), policy, seed=0,
                optimizer=Adam(learning_rate=0.01),
            )
            images, labels = make_batch((4, 3, 16, 16), 10, 0)
            return [runtime.train_step(images, labels).loss
                    for _ in range(3)]

        assert run(TransferPolicy.none()) == run(TransferPolicy.vdnn_all())


class TestInitializers:
    def test_weight_deterministic_per_seed(self, linear_cnn):
        node = linear_cnn.node("conv_1")
        a = init_weight(node, seed=0)
        b = init_weight(node, seed=0)
        np.testing.assert_array_equal(a, b)

    def test_weight_differs_across_seeds(self, linear_cnn):
        node = linear_cnn.node("conv_1")
        assert not np.array_equal(init_weight(node, 0), init_weight(node, 1))

    def test_weight_differs_across_layers(self, linear_cnn):
        a = init_weight(linear_cnn.node("conv_1"), 0)
        b = init_weight(linear_cnn.node("conv_2"), 0)
        assert a.shape != b.shape or not np.array_equal(a, b)

    def test_he_scaling(self):
        # Deep-layer fan-in controls the std.
        net = build_vgg16(2)
        w = init_weight(net.node("conv_10"), 0)
        fan_in = np.prod(w.shape[1:])
        assert w.std() == pytest.approx(np.sqrt(2.0 / fan_in), rel=0.1)

    def test_bias_is_zero(self, linear_cnn):
        b = init_bias(linear_cnn.node("conv_1"), 0)
        assert np.all(b == 0)

    def test_weightless_layers_return_none(self, linear_cnn):
        assert init_weight(linear_cnn.node("relu_1"), 0) is None
        assert init_bias(linear_cnn.node("pool_1"), 0) is None


class TestMakeBatch:
    def test_deterministic(self):
        a_img, a_lbl = make_batch((4, 3, 8, 8), 10, seed=5)
        b_img, b_lbl = make_batch((4, 3, 8, 8), 10, seed=5)
        np.testing.assert_array_equal(a_img, b_img)
        np.testing.assert_array_equal(a_lbl, b_lbl)

    def test_labels_in_range(self):
        _, labels = make_batch((64, 3, 4, 4), 7, seed=0)
        assert labels.min() >= 0 and labels.max() < 7

    def test_float32_images(self):
        images, _ = make_batch((2, 3, 4, 4), 10, seed=0)
        assert images.dtype == np.float32

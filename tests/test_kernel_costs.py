"""Cost-model tests for the newer layer kinds (ADD / BN / SLICE / tying)."""

import pytest

from repro.graph import NetworkBuilder
from repro.kernels import backward_cost, forward_cost
from repro.zoo import build_unrolled_rnn

from conftest import make_fork_join_cnn


def residual_net():
    b = NetworkBuilder("res", (2, 3, 8, 8))
    b.conv(4, kernel=3, pad=1, name="c1")
    left = b.tap()
    b.conv(4, kernel=3, pad=1, name="c2", after=left)
    b.batchnorm(name="bn")
    right = b.tap()
    b.add([right, left], name="join")
    b.slice(0, 2, name="cut")
    b.fc(10, name="head").softmax().build()
    return b.build()


class TestNewKernelCosts:
    def test_add_reads_every_branch(self):
        net = residual_net()
        node = net.node("join")
        input_spec = net[node.producers[0]].output_spec
        cost = forward_cost(node, input_spec)
        # Two branch reads + one write of equal-size tensors.
        assert cost.dram_bytes == 3.0 * node.output_spec.nbytes

    def test_add_backward_is_bandwidth_only(self):
        net = residual_net()
        node = net.node("join")
        input_spec = net[node.producers[0]].output_spec
        cost = backward_cost(node, input_spec)
        assert cost.flops == 0.0
        assert cost.dram_bytes > 0

    def test_bn_costs_scale_with_elements(self):
        net = residual_net()
        node = net.node("bn")
        input_spec = net[node.producers[0]].output_spec
        fwd = forward_cost(node, input_spec)
        bwd = backward_cost(node, input_spec)
        assert fwd.flops == 8 * node.output_spec.count
        assert bwd.flops == 12 * node.output_spec.count

    def test_slice_is_pure_copy(self):
        net = residual_net()
        node = net.node("cut")
        input_spec = net[node.producers[0]].output_spec
        fwd = forward_cost(node, input_spec)
        assert fwd.flops == 0.0
        assert fwd.dram_bytes == 2.0 * node.output_spec.nbytes

    def test_tied_fc_still_touches_weight_bytes(self):
        """Weight tying changes ownership, not the DRAM a kernel reads."""
        net = build_unrolled_rnn(timesteps=3, input_dim=8, hidden_dim=16,
                                 num_classes=4, batch_size=2)
        owner = net.node("W_xh")
        tied = net.node("W_xh_t02")
        assert tied.is_weight_tied and not owner.is_weight_tied
        spec_owner = net[owner.producers[0]].output_spec
        spec_tied = net[tied.producers[0]].output_spec
        assert forward_cost(tied, spec_tied).dram_bytes == \
            forward_cost(owner, spec_owner).dram_bytes

    def test_concat_backward_cost(self, fork_join_cnn):
        node = fork_join_cnn.node("join")
        input_spec = fork_join_cnn[node.producers[0]].output_spec
        assert backward_cost(node, input_spec).flops == 0.0

"""Tests for the vDNN_dyn profiling-pass planner."""

import pytest

from repro.core import (
    AlgoConfig,
    PolicyKind,
    TransferPolicy,
    UntrainableError,
    plan_dynamic,
    simulate_dynamic,
)
from repro.hw import PAPER_SYSTEM

from conftest import make_deep_cnn, make_linear_cnn


class TestPassSelection:
    def test_plenty_of_memory_picks_no_offload_fastest(self, deep_cnn):
        plan = plan_dynamic(deep_cnn, PAPER_SYSTEM)
        assert plan.policy.kind is PolicyKind.NONE
        assert plan.algos.label == "p"
        # Only two probes were needed: feasibility + best-performance.
        assert len(plan.passes) == 2

    def test_pass1_always_runs_first(self, deep_cnn):
        plan = plan_dynamic(deep_cnn, PAPER_SYSTEM)
        assert "pass1" in plan.passes[0].description
        assert plan.passes[0].policy.kind is PolicyKind.ALL

    def test_tight_memory_falls_back_to_offloading(self):
        net = make_deep_cnn(depth=8, batch=8, size=32)
        # Find a budget between the all(m) peak and the none(p) peak.
        from repro.core import simulate_vdnn
        floor = simulate_vdnn(net, PAPER_SYSTEM, TransferPolicy.vdnn_all(),
                              AlgoConfig.memory_optimal(net)).max_usage_bytes
        ceiling = simulate_vdnn(net, PAPER_SYSTEM, TransferPolicy.none(),
                                AlgoConfig.performance_optimal(net)).max_usage_bytes
        assert floor < ceiling
        system = PAPER_SYSTEM.with_gpu_memory((floor + ceiling) // 2)
        plan = plan_dynamic(net, system)
        assert plan.result.trainable
        assert plan.policy.kind is not PolicyKind.NONE or plan.algos.label != "p"

    def test_untrainable_raises(self, deep_cnn):
        tiny = PAPER_SYSTEM.with_gpu_memory(1 << 12)
        with pytest.raises(UntrainableError):
            plan_dynamic(deep_cnn, tiny)

    def test_adopted_result_is_trainable(self, linear_cnn):
        plan = plan_dynamic(linear_cnn, PAPER_SYSTEM)
        assert plan.result.trainable

    def test_probe_history_records_failures(self):
        net = make_deep_cnn(depth=8, batch=8, size=32)
        from repro.core import simulate_vdnn
        floor = simulate_vdnn(net, PAPER_SYSTEM, TransferPolicy.vdnn_all(),
                              AlgoConfig.memory_optimal(net)).max_usage_bytes
        system = PAPER_SYSTEM.with_gpu_memory(int(floor * 1.05))
        plan = plan_dynamic(net, system)
        assert any(not p.trainable for p in plan.passes)
        assert plan.result.trainable


class TestGreedyDowngrade:
    def test_downgrade_reduces_workspace(self, deep_cnn):
        algos = AlgoConfig.performance_optimal(deep_cnn)
        target = max(algos.profiles, key=lambda i: algos.profiles[i].workspace_bytes)
        before = algos.profiles[target].workspace_bytes
        assert before > 0
        assert algos.downgrade(deep_cnn, target)
        assert algos.profiles[target].workspace_bytes < before
        assert algos.label == "dyn"

    def test_downgrade_stops_at_zero_workspace(self, deep_cnn):
        algos = AlgoConfig.memory_optimal(deep_cnn)
        conv = deep_cnn.conv_layers[0].index
        assert not algos.downgrade(deep_cnn, conv)

    def test_downgrade_rejects_non_conv(self, deep_cnn):
        algos = AlgoConfig.performance_optimal(deep_cnn)
        with pytest.raises(ValueError):
            algos.downgrade(deep_cnn, deep_cnn.node("fc").index)


class TestSimulateDynamic:
    def test_relabels_result(self, linear_cnn):
        result = simulate_dynamic(linear_cnn, PAPER_SYSTEM)
        assert result.policy_label == "vDNN_dyn"
        assert result.trainable


class TestAlgoConfig:
    def test_memory_optimal_has_zero_workspace(self, deep_cnn):
        algos = AlgoConfig.memory_optimal(deep_cnn)
        assert algos.max_workspace_bytes() == 0
        assert algos.total_workspace_bytes() == 0

    def test_performance_optimal_covers_every_conv(self, deep_cnn):
        algos = AlgoConfig.performance_optimal(deep_cnn)
        assert set(algos.profiles) == {n.index for n in deep_cnn.conv_layers}

    def test_workspace_limit_respected(self, deep_cnn):
        algos = AlgoConfig.performance_optimal(deep_cnn, workspace_limit=0)
        assert algos.max_workspace_bytes() == 0

    def test_copy_is_independent(self, deep_cnn):
        algos = AlgoConfig.performance_optimal(deep_cnn)
        clone = algos.copy()
        target = deep_cnn.conv_layers[0].index
        clone.downgrade(deep_cnn, target)
        assert algos.profiles[target].workspace_bytes >= \
            clone.profiles[target].workspace_bytes

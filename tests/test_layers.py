"""Tests for the layer taxonomy: shape inference, weights, backward needs."""

import pytest

from repro.graph import (
    Activation,
    ActivationKind,
    Concat,
    Conv2D,
    Dropout,
    FullyConnected,
    Input,
    LayerKind,
    LRN,
    Pool2D,
    PoolMode,
    Softmax,
    TensorSpec,
)

X = TensorSpec((4, 3, 32, 32))


class TestInput:
    def test_emits_configured_shape(self):
        layer = Input("in", shape=(8, 3, 224, 224))
        assert layer.infer_output([]).shape == (8, 3, 224, 224)

    def test_rejects_inputs(self):
        with pytest.raises(ValueError):
            Input("in").infer_output([X])

    def test_no_backward_needs(self):
        assert not Input("in").backward_needs_x
        assert not Input("in").backward_needs_y


class TestConv2D:
    def test_output_shape(self):
        conv = Conv2D("c", inputs=["in"], out_channels=16, kernel=3, pad=1)
        assert conv.infer_output([X]).shape == (4, 16, 32, 32)

    def test_strided_output_shape(self):
        conv = Conv2D("c", inputs=["in"], out_channels=8, kernel=5, stride=2)
        assert conv.infer_output([X]).shape == (4, 8, 14, 14)

    def test_weight_spec_is_oihw(self):
        conv = Conv2D("c", inputs=["in"], out_channels=16, kernel=3)
        assert conv.weight_spec([X]).shape == (16, 3, 3, 3)

    def test_bias_spec(self):
        conv = Conv2D("c", inputs=["in"], out_channels=16)
        assert conv.bias_spec([X]).shape == (16,)

    def test_bias_disabled(self):
        conv = Conv2D("c", inputs=["in"], out_channels=16, bias=False)
        assert conv.bias_spec([X]) is None

    def test_backward_needs_x_not_y(self):
        conv = Conv2D("c", inputs=["in"], out_channels=4)
        assert conv.backward_needs_x and not conv.backward_needs_y

    def test_not_in_place(self):
        assert not Conv2D("c", inputs=["in"], out_channels=4).in_place

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            Conv2D("c", out_channels=0)
        with pytest.raises(ValueError):
            Conv2D("c", out_channels=4, stride=0)
        with pytest.raises(ValueError):
            Conv2D("c", out_channels=4, pad=-1)

    def test_requires_exactly_one_input(self):
        conv = Conv2D("c", inputs=["a", "b"], out_channels=4)
        with pytest.raises(ValueError):
            conv.infer_output([X, X])


class TestActivation:
    def test_shape_preserving(self):
        relu = Activation("r", inputs=["c"])
        assert relu.infer_output([X]) == X

    def test_in_place_and_backward_contract(self):
        relu = Activation("r", inputs=["c"])
        assert relu.in_place
        assert not relu.backward_needs_x
        assert relu.backward_needs_y

    def test_kinds(self):
        for kind in ActivationKind:
            assert Activation("a", inputs=["c"], activation=kind).kind is LayerKind.ACTV

    def test_no_weights(self):
        assert not Activation("r", inputs=["c"]).has_weights


class TestPool2D:
    def test_max_pool_shape(self):
        pool = Pool2D("p", inputs=["c"], kernel=2, stride=2)
        assert pool.infer_output([X]).shape == (4, 3, 16, 16)

    def test_ceil_mode_shape(self):
        pool = Pool2D("p", inputs=["c"], kernel=3, stride=2)
        spec = pool.infer_output([TensorSpec((4, 3, 112, 112))])
        assert spec.shape == (4, 3, 56, 56)

    def test_max_backward_needs_x_and_y(self):
        pool = Pool2D("p", inputs=["c"], mode=PoolMode.MAX)
        assert pool.backward_needs_x and pool.backward_needs_y

    def test_avg_backward_needs_nothing(self):
        pool = Pool2D("p", inputs=["c"], mode=PoolMode.AVG)
        assert not pool.backward_needs_x and not pool.backward_needs_y

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            Pool2D("p", kernel=0)


class TestLRN:
    def test_shape_preserving(self):
        assert LRN("l", inputs=["c"]).infer_output([X]) == X

    def test_backward_needs_both(self):
        lrn = LRN("l", inputs=["c"])
        assert lrn.backward_needs_x and lrn.backward_needs_y

    def test_not_in_place(self):
        assert not LRN("l", inputs=["c"]).in_place


class TestFullyConnected:
    def test_flattens_4d_input(self):
        fc = FullyConnected("f", inputs=["p"], out_features=10)
        assert fc.infer_output([X]).shape == (4, 10)

    def test_weight_spec(self):
        fc = FullyConnected("f", inputs=["p"], out_features=10)
        assert fc.weight_spec([X]).shape == (10, 3 * 32 * 32)

    def test_accepts_2d_input(self):
        fc = FullyConnected("f", inputs=["p"], out_features=5)
        assert fc.infer_output([TensorSpec((4, 100))]).shape == (4, 5)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            FullyConnected("f", out_features=0)


class TestDropout:
    def test_in_place_shape_preserving(self):
        drop = Dropout("d", inputs=["f"], rate=0.5)
        assert drop.in_place
        assert drop.infer_output([X]) == X

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            Dropout("d", rate=1.0)
        with pytest.raises(ValueError):
            Dropout("d", rate=-0.1)


class TestConcat:
    def test_channel_concatenation(self):
        concat = Concat("j", inputs=["a", "b"])
        a = TensorSpec((4, 8, 16, 16))
        b = TensorSpec((4, 24, 16, 16))
        assert concat.infer_output([a, b]).shape == (4, 32, 16, 16)

    def test_rejects_single_input(self):
        with pytest.raises(ValueError):
            Concat("j", inputs=["a"]).infer_output([X])

    def test_rejects_spatial_mismatch(self):
        concat = Concat("j", inputs=["a", "b"])
        with pytest.raises(ValueError):
            concat.infer_output([X, TensorSpec((4, 3, 8, 8))])

    def test_backward_is_pure_split(self):
        assert not Concat("j", inputs=["a", "b"]).backward_needs_x


class TestSoftmax:
    def test_shape_preserving(self):
        sm = Softmax("s", inputs=["f"])
        assert sm.infer_output([TensorSpec((4, 10))]).shape == (4, 10)

    def test_backward_needs_y_only(self):
        sm = Softmax("s", inputs=["f"])
        assert sm.backward_needs_y and not sm.backward_needs_x

"""Tests for the Figure-10 prefetch search."""

import pytest

from repro.core import PrefetchState, find_prefetch_layer

from conftest import make_deep_cnn, make_linear_cnn


@pytest.fixture
def net():
    return make_deep_cnn(depth=4)


class TestFindPrefetchLayer:
    def test_finds_closest_offloaded_layer(self, net):
        state = PrefetchState.for_network(net)
        conv2 = net.node("conv_2").index
        conv3 = net.node("conv_3").index
        state.mark_offloaded(conv2)
        assert find_prefetch_layer(net, state, conv3) == conv2

    def test_claims_each_layer_once(self, net):
        state = PrefetchState.for_network(net)
        conv2 = net.node("conv_2").index
        conv3 = net.node("conv_3").index
        state.mark_offloaded(conv2)
        assert find_prefetch_layer(net, state, conv3) == conv2
        # Second call during a later layer must not return it again.
        assert find_prefetch_layer(net, state, conv3) is None

    def test_window_bounded_by_conv(self, net):
        # conv_1 is offloaded but conv_2 (not offloaded, CONV) sits in
        # between: the search from conv_3 stops at conv_2 (Fig. 10 line 14).
        state = PrefetchState.for_network(net)
        conv1 = net.node("conv_1").index
        conv3 = net.node("conv_3").index
        state.mark_offloaded(conv1)
        assert find_prefetch_layer(net, state, conv3) is None

    def test_unbounded_window_reaches_past_conv(self, net):
        state = PrefetchState.for_network(net)
        conv1 = net.node("conv_1").index
        conv3 = net.node("conv_3").index
        state.mark_offloaded(conv1)
        assert find_prefetch_layer(net, state, conv3,
                                   bounded_window=False) == conv1

    def test_search_skips_non_conv_layers(self, net):
        # relu between current and the offloaded conv does not stop it.
        state = PrefetchState.for_network(net)
        conv3 = net.node("conv_3").index
        relu3 = net.node("relu_3").index
        state.mark_offloaded(conv3)
        assert find_prefetch_layer(net, state, relu3 + 1) == conv3

    def test_nothing_pending_returns_none(self, net):
        state = PrefetchState.for_network(net)
        assert find_prefetch_layer(net, state, len(net) - 1) is None

    def test_layer_zero_has_no_predecessors(self, net):
        state = PrefetchState.for_network(net)
        assert find_prefetch_layer(net, state, 0) is None


class TestPrefetchState:
    def test_pending_lists_unprefetched(self, net):
        state = PrefetchState.for_network(net)
        conv1 = net.node("conv_1").index
        conv2 = net.node("conv_2").index
        state.mark_offloaded(conv1)
        state.mark_offloaded(conv2)
        assert state.pending() == [conv1, conv2]
        find_prefetch_layer(net, state, conv2 + 1)  # claims conv2
        assert state.pending() == [conv1]

    def test_every_offloaded_layer_eventually_claimed(self):
        """Walking backward layer-by-layer drains all offloaded flags —
        the guarantee that makes the end-of-layer sync sufficient."""
        net = make_deep_cnn(depth=6)
        state = PrefetchState.for_network(net)
        from repro.graph import LayerKind
        for node in net:
            if node.kind in (LayerKind.CONV, LayerKind.POOL):
                state.mark_offloaded(node.index)
        claimed = []
        for index in net.backward_schedule():
            target = find_prefetch_layer(net, state, index)
            if target is not None:
                claimed.append(target)
                # Claimed strictly before its own backward step runs.
                assert target < index
        assert state.pending() == []

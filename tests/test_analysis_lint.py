"""AST lint rules over synthetic snippets, plus the repo-clean gate."""

from pathlib import Path

import repro
from repro.analysis.lint import lint_file, lint_paths


def lint_snippet(tmp_path, source, rel="repro/sim/snippet.py"):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return lint_file(path, tmp_path)


def rules(findings):
    return sorted(d.rule for d in findings)


class TestFingerprintRules:
    REL = "repro/perf/fingerprint.py"

    def test_dumps_without_sort_keys_fires_lint201(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "import json\nx = json.dumps({})\n", rel=self.REL)
        assert rules(findings) == ["LINT201"]

    def test_dumps_with_sort_keys_false_fires_lint201(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "import json\nx = json.dumps({}, sort_keys=False)\n",
            rel=self.REL)
        assert rules(findings) == ["LINT201"]

    def test_canonical_dumps_is_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "import json\nx = json.dumps({}, sort_keys=True)\n",
            rel=self.REL)
        assert findings == []

    def test_unsorted_dumps_outside_fingerprint_paths_is_allowed(
            self, tmp_path):
        findings = lint_snippet(
            tmp_path, "import json\nx = json.dumps({})\n",
            rel="repro/reporting/render.py")
        assert findings == []

    def test_default_str_fires_lint202_anywhere(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "import json\nx = json.dumps({}, default=str)\n",
            rel="repro/reporting/render.py")
        assert rules(findings) == ["LINT202"]


class TestPurityRules:
    def test_wall_clock_in_pure_module_fires_lint203(self, tmp_path):
        findings = lint_snippet(tmp_path, "import time\nt = time.time()\n")
        assert rules(findings) == ["LINT203"]

    def test_module_level_random_fires_lint203(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "import random\nr = random.random()\n")
        assert rules(findings) == ["LINT203"]

    def test_unseeded_random_instance_fires_lint203(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "import random\nrng = random.Random()\n")
        assert rules(findings) == ["LINT203"]

    def test_seeded_random_instance_is_allowed(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "import random\nrng = random.Random(1234)\n")
        assert findings == []

    def test_wall_clock_outside_pure_packages_is_allowed(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "import time\nt = time.time()\n",
            rel="repro/profiler/wall.py")
        assert findings == []


class TestQuantityComparisonRule:
    def test_float_eq_on_quantity_fires_lint204(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "def f(a, b):\n    return a.latency_seconds == b\n")
        assert rules(findings) == ["LINT204"]

    def test_neq_on_bytes_fires_lint204(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "def f(a, b):\n    return a.live_bytes != b.nbytes\n")
        assert rules(findings) == ["LINT204"]

    def test_zero_sentinel_comparison_is_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "def f(a):\n"
            "    return a.stall_seconds == 0 or a.total_seconds == 0.0\n")
        assert findings == []

    def test_none_sentinel_comparison_is_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "def f(a):\n    return a.finish_seconds != None\n")
        assert findings == []

    def test_non_quantity_names_are_not_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "def f(a, b):\n    return a.name == b.name\n")
        assert findings == []


class TestSuppression:
    def test_allow_comment_suppresses_the_rule_on_that_line(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "import time\nt = time.time()  # repro: allow(LINT203)\n")
        assert findings == []

    def test_allow_comment_for_a_different_rule_does_not(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "import time\nt = time.time()  # repro: allow(LINT204)\n")
        assert rules(findings) == ["LINT203"]


class TestRepoGate:
    def test_repo_source_is_lint_clean(self):
        package = Path(repro.__file__).parent
        report = lint_paths([package])
        assert report.ok, report.render_text()

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n")
        findings = lint_file(path, tmp_path)
        assert len(findings) == 1 and "does not parse" in findings[0].message

"""AST lint rules over synthetic snippets, plus the repo-clean gate."""

from pathlib import Path

import repro
from repro.analysis.lint import lint_file, lint_paths


def lint_snippet(tmp_path, source, rel="repro/sim/snippet.py"):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return lint_file(path, tmp_path)


def rules(findings):
    return sorted(d.rule for d in findings)


class TestFingerprintRules:
    REL = "repro/perf/fingerprint.py"

    def test_dumps_without_sort_keys_fires_lint201(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "import json\nx = json.dumps({})\n", rel=self.REL)
        assert rules(findings) == ["LINT201"]

    def test_dumps_with_sort_keys_false_fires_lint201(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "import json\nx = json.dumps({}, sort_keys=False)\n",
            rel=self.REL)
        assert rules(findings) == ["LINT201"]

    def test_canonical_dumps_is_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "import json\nx = json.dumps({}, sort_keys=True)\n",
            rel=self.REL)
        assert findings == []

    def test_unsorted_dumps_outside_fingerprint_paths_is_allowed(
            self, tmp_path):
        findings = lint_snippet(
            tmp_path, "import json\nx = json.dumps({})\n",
            rel="repro/reporting/render.py")
        assert findings == []

    def test_default_str_fires_lint202_anywhere(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "import json\nx = json.dumps({}, default=str)\n",
            rel="repro/reporting/render.py")
        assert rules(findings) == ["LINT202"]


class TestPurityRules:
    def test_wall_clock_in_pure_module_fires_lint203(self, tmp_path):
        findings = lint_snippet(tmp_path, "import time\nt = time.time()\n")
        assert rules(findings) == ["LINT203"]

    def test_module_level_random_fires_lint203(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "import random\nr = random.random()\n")
        assert rules(findings) == ["LINT203"]

    def test_unseeded_random_instance_fires_lint203(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "import random\nrng = random.Random()\n")
        assert rules(findings) == ["LINT203"]

    def test_seeded_random_instance_is_allowed(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "import random\nrng = random.Random(1234)\n")
        assert findings == []

    def test_wall_clock_outside_pure_packages_is_allowed(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "import time\nt = time.time()\n",
            rel="repro/profiler/wall.py")
        assert findings == []


class TestQuantityComparisonRule:
    def test_float_eq_on_quantity_fires_lint204(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "def f(a, b):\n    return a.latency_seconds == b\n")
        assert rules(findings) == ["LINT204"]

    def test_neq_on_bytes_fires_lint204(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "def f(a, b):\n    return a.live_bytes != b.nbytes\n")
        assert rules(findings) == ["LINT204"]

    def test_zero_sentinel_comparison_is_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "def f(a):\n"
            "    return a.stall_seconds == 0 or a.total_seconds == 0.0\n")
        assert findings == []

    def test_none_sentinel_comparison_is_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "def f(a):\n    return a.finish_seconds != None\n")
        assert findings == []

    def test_non_quantity_names_are_not_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "def f(a, b):\n    return a.name == b.name\n")
        assert findings == []

    def test_named_zero_constant_is_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "NO_STALL = 0.0\n"
            "def f(a):\n    return a.stall_seconds == NO_STALL\n")
        assert findings == []

    def test_float_inf_sentinel_is_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "def f(a):\n"
            "    return a.deadline_seconds == float('inf') or "
            "a.budget_bytes != -float('inf')\n")
        assert findings == []

    def test_math_inf_sentinel_is_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "import math\n"
            "def f(a):\n    return a.deadline_seconds != math.inf\n")
        assert findings == []

    def test_nonzero_named_constant_still_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "LIMIT = 5.0\n"
            "def f(a):\n    return a.stall_seconds == LIMIT\n")
        assert rules(findings) == ["LINT204"]


class TestHotRegionRule:
    def test_list_literal_in_hot_loop_fires_lint205(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "def f(items):\n"
            "    out = None\n"
            "    for item in items:  # repro: hot\n"
            "        out = [item]\n"
            "    return out\n")
        assert rules(findings) == ["LINT205"]

    def test_fstring_and_sorted_in_hot_function_fire(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "# repro: hot\n"
            "def f(self, step):\n"
            "    label = f'go {step}'\n"
            "    return sorted(label)\n")
        assert rules(findings) == ["LINT205", "LINT205"]

    def test_unmarked_loop_is_not_checked(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "def f(items):\n"
            "    return [i for i in items]\n")
        assert findings == []

    def test_cold_guard_branch_is_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "def f(self, items):  # repro: hot\n"
            "    for item in items:\n"
            "        if self.trace is not None:\n"
            "            self.trace.add([item])\n"
            "        if self.obs:\n"
            "            self.obs.emit(f'saw {item}')\n")
        assert findings == []

    def test_raise_path_is_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "def f(self, items):  # repro: hot\n"
            "    for item in items:\n"
            "        if item < 0:\n"
            "            raise ValueError(f'negative {item}')\n")
        assert findings == []


class TestStructureRules:
    def test_network_annotation_in_plan_class_fires_lint206(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "class ShadowPlan:\n"
            "    network: Network\n"
            "    label: str\n")
        assert rules(findings) == ["LINT206"]

    def test_self_network_store_in_record_class_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "class CacheRecord:\n"
            "    def __init__(self, network):\n"
            "        self.net = network\n")
        assert rules(findings) == ["LINT206"]

    def test_heavy_ref_in_non_struct_class_is_allowed(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "class Simulation:\n"
            "    def __init__(self, network):\n"
            "        self.network = network\n")
        assert findings == []

    def test_plan_class_mutating_itself_outside_init_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "class CompiledPlan:\n"
            "    def __init__(self):\n"
            "        self.forward = ()\n"
            "    def rewire(self):\n"
            "        self.forward = None\n")
        assert rules(findings) == ["LINT208"]

    def test_external_plan_field_store_fires_lint208(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "def corrupt(step):\n"
            "    step.dead_releases = ()\n")
        assert rules(findings) == ["LINT208"]

    def test_plan_home_module_is_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "def build(step):\n"
            "    step.dead_releases = ()\n",
            rel="repro/core/plan.py")
        assert findings == []


class TestSuppression:
    def test_allow_comment_suppresses_the_rule_on_that_line(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "import time\nt = time.time()  # repro: allow(LINT203)\n")
        assert findings == []

    def test_allow_comment_for_a_different_rule_does_not(self, tmp_path):
        # The stale LINT204 allow itself now draws a LINT207 warning.
        findings = lint_snippet(
            tmp_path,
            "import time\nt = time.time()  # repro: allow(LINT204)\n")
        assert rules(findings) == ["LINT203", "LINT207"]

    def test_unused_allow_fires_lint207(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "x = 1  # repro: allow(LINT203)\n")
        assert rules(findings) == ["LINT207"]
        assert findings[0].severity.value == "warning"

    def test_firing_allow_is_not_stale(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "import time\nt = time.time()  # repro: allow(LINT203)\n")
        assert findings == []

    def test_allow_lint207_is_exempt_from_staleness(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "x = 1  # repro: allow(LINT207)\n")
        assert findings == []


class TestStrictMode:
    def test_warning_only_file_passes_default_but_fails_strict(
            self, tmp_path, capsys):
        from repro.analysis.lint import main

        path = tmp_path / "repro" / "sim" / "mod.py"
        path.parent.mkdir(parents=True)
        path.write_text("x = 1  # repro: allow(LINT203)\n")
        assert main([str(tmp_path / "repro")]) == 0
        assert main([str(tmp_path / "repro"), "--strict"]) == 1
        assert "LINT207" in capsys.readouterr().out


class TestRepoGate:
    def test_repo_source_is_lint_clean(self):
        package = Path(repro.__file__).parent
        report = lint_paths([package])
        assert report.ok, report.render_text()

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n")
        findings = lint_file(path, tmp_path)
        assert len(findings) == 1 and "does not parse" in findings[0].message

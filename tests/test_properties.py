"""Property-based tests on core invariants (hypothesis).

Random network topologies and random policies must preserve the
invariants the paper's mechanism rests on: schedules are consistent,
liveness release points are safe, simulated usage is conservative, and
— the strongest — functional training is bit-identical under any
offload policy.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.alloc import ALIGNMENT, PoolAllocator
from repro.core import (
    AlgoConfig,
    LivenessAnalysis,
    TransferPolicy,
    simulate_vdnn,
)
from repro.graph import NetworkBuilder, PoolMode, TensorSpec
from repro.graph.shapes import conv_out_dim, pool_out_dim
from repro.hw import PAPER_SYSTEM
from repro.numerics import TrainingRuntime, make_batch


# ----------------------------------------------------------------------
# Random-network generator
# ----------------------------------------------------------------------
@st.composite
def random_linear_network(draw):
    """A random but valid CONV/ACTV/POOL stack + classifier."""
    size = draw(st.sampled_from([8, 12, 16]))
    batch = draw(st.integers(min_value=1, max_value=4))
    builder = NetworkBuilder("random", (batch, 3, size, size))
    blocks = draw(st.integers(min_value=1, max_value=4))
    for _ in range(blocks):
        channels = draw(st.sampled_from([4, 8, 12]))
        builder.conv(channels, kernel=3, pad=1)
        if draw(st.booleans()):
            builder.relu()
        if size >= 4 and draw(st.booleans()):
            mode = draw(st.sampled_from([PoolMode.MAX, PoolMode.AVG]))
            builder.pool(mode=mode)
            size //= 2
    builder.fc(10).softmax()
    return builder.build()


@st.composite
def random_dag_network(draw):
    """A random network with fork/join structure (adds and concats)."""
    size = draw(st.sampled_from([8, 16]))
    batch = draw(st.integers(min_value=1, max_value=3))
    builder = NetworkBuilder("random-dag", (batch, 3, size, size))
    channels = draw(st.sampled_from([4, 8]))
    builder.conv(channels, kernel=3, pad=1)
    if draw(st.booleans()):
        builder.relu()

    blocks = draw(st.integers(min_value=1, max_value=3))
    for _ in range(blocks):
        kind = draw(st.sampled_from(["residual", "inception", "plain"]))
        if kind == "residual":
            shortcut = builder.tap()
            builder.conv(channels, kernel=3, pad=1)
            if draw(st.booleans()):
                builder.batchnorm()
            builder.relu()
            builder.conv(channels, kernel=3, pad=1)
            main = builder.tap()
            builder.add([main, shortcut])
            builder.relu()
        elif kind == "inception":
            source = builder.tap()
            builder.conv(channels, kernel=1, after=source).relu()
            left = builder.tap()
            builder.conv(channels, kernel=3, pad=1, after=source).relu()
            right = builder.tap()
            builder.concat([left, right])
            channels *= 2
        else:
            builder.conv(channels, kernel=3, pad=1).relu()
    builder.fc(10).softmax()
    return builder.build()


@settings(max_examples=25, deadline=None)
@given(network=random_dag_network())
def test_property_dag_simulation_invariants(network):
    """Fork/join topologies preserve every simulator invariant."""
    result = simulate_vdnn(network, PAPER_SYSTEM, TransferPolicy.vdnn_all(),
                           AlgoConfig.memory_optimal(network))
    assert result.offload_bytes == result.prefetch_bytes
    assert not [e for e in result.timeline.events if "(demand)" in e.label]
    times = [t for t, _ in result.usage.curve()]
    assert times == sorted(times)


@settings(max_examples=6, deadline=None)
@given(network=random_dag_network(), seed=st.integers(0, 2 ** 16))
def test_property_dag_training_bit_identical(network, seed):
    """Random fork/join networks train bitwise-identically offloaded."""
    shape = network.input_node.output_spec.shape
    images, labels = make_batch(shape, 10, seed)
    reference = TrainingRuntime(network, TransferPolicy.none(), seed=seed)
    offloaded = TrainingRuntime(network, TransferPolicy.vdnn_all(), seed=seed)
    for _ in range(2):
        assert reference.train_step(images, labels).loss == \
            offloaded.train_step(images, labels).loss


@settings(max_examples=25, deadline=None)
@given(network=random_linear_network())
def test_property_schedules_consistent(network):
    forward = network.forward_schedule()
    backward = network.backward_schedule()
    assert sorted(forward) == list(range(len(network)))
    assert set(backward) == set(forward) - {0}
    for index in forward:
        for producer in network[index].producers:
            assert forward.index(producer) < forward.index(index)


@settings(max_examples=25, deadline=None)
@given(network=random_linear_network())
def test_property_liveness_release_points_safe(network):
    """No storage is released (forward or backward) before its last use."""
    liveness = LivenessAnalysis(network)
    for storage in liveness.all_storages():
        consumers = [
            c for idx in storage.chain for c in network[idx].consumers
            if network[c].storage_index != storage.owner
        ]
        if consumers:
            assert storage.forward_release_at == max(consumers)
        if storage.needed_backward:
            assert storage.backward_release_after == min(storage.backward_users)
            assert storage.first_backward_use == max(storage.backward_users)


@settings(max_examples=15, deadline=None)
@given(network=random_linear_network(),
       policy_kind=st.sampled_from(["all", "conv", "none"]))
def test_property_simulation_invariants(network, policy_kind):
    policy = {"all": TransferPolicy.vdnn_all,
              "conv": TransferPolicy.vdnn_conv,
              "none": TransferPolicy.none}[policy_kind]()
    result = simulate_vdnn(network, PAPER_SYSTEM, policy,
                           AlgoConfig.memory_optimal(network))
    # Usage is non-negative and avg <= max.
    assert 0 <= result.avg_usage_bytes <= result.max_usage_bytes
    # Offload and prefetch traffic balance.
    assert result.offload_bytes == result.prefetch_bytes
    # Timeline timestamps are sane.
    for event in result.timeline.events:
        assert event.end >= event.start >= 0
    # Never a demand fetch under the Figure-10 prefetcher.
    assert not [e for e in result.timeline.events if "(demand)" in e.label]


@settings(max_examples=8, deadline=None)
@given(network=random_linear_network(), seed=st.integers(0, 2 ** 16))
def test_property_training_bit_identical_under_offload(network, seed):
    """The big one: any random network trains bitwise-identically with
    and without vDNN_all offloading."""
    shape = network.input_node.output_spec.shape
    images, labels = make_batch(shape, 10, seed)
    reference = TrainingRuntime(network, TransferPolicy.none(), seed=seed)
    offloaded = TrainingRuntime(network, TransferPolicy.vdnn_all(), seed=seed)
    for _ in range(2):
        a = reference.train_step(images, labels)
        b = offloaded.train_step(images, labels)
        assert a.loss == b.loss
    assert reference.parameter_fingerprint() == offloaded.parameter_fingerprint()


@settings(max_examples=40, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=64),
    kernel=st.integers(min_value=1, max_value=7),
    stride=st.integers(min_value=1, max_value=3),
)
def test_property_pool_dim_at_least_conv_dim_unpadded(size, kernel, stride):
    """Ceil-mode pooling never loses elements vs. floor mode (pad = 0;
    with padding Caffe clips windows that start inside the pad, so the
    relation only holds unpadded)."""
    if size < kernel:
        return
    conv = conv_out_dim(size, kernel, stride, 0)
    pool = pool_out_dim(size, kernel, stride, 0)
    assert pool >= conv


@settings(max_examples=40, deadline=None)
@given(shape=st.lists(st.integers(min_value=1, max_value=64),
                      min_size=1, max_size=5),
       batch=st.integers(min_value=1, max_value=512))
def test_property_tensor_spec_batch_rescale(shape, batch):
    spec = TensorSpec(tuple(shape))
    rescaled = spec.with_batch(batch)
    assert rescaled.count * shape[0] == spec.count * batch


# ----------------------------------------------------------------------
# Multi-tenant pool allocator
# ----------------------------------------------------------------------
_TENANTS = 3

#: One tenant operation: (tenant, is_alloc, size-or-pick).  ``size`` is
#: the allocation request for allocs; ``pick`` selects which of the
#: tenant's live blocks to free (modulo its live count) for frees.
_pool_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=_TENANTS - 1),
        st.booleans(),
        st.integers(min_value=0, max_value=4096),
    ),
    min_size=1,
    max_size=120,
)


@settings(max_examples=60, deadline=None)
@given(ops=_pool_ops)
def test_property_pool_multitenant_interleaved(ops):
    """The shared pool survives interleaved traffic from N tenants.

    Invariants, checked after every operation: the free list and the
    live set tile the pool exactly (no block overlap), a freed block
    cannot be freed again, live bytes never exceed capacity, and after
    every tenant releases everything the pool coalesces back to one
    free block spanning the whole capacity.
    """
    pool = PoolAllocator(capacity=64 * 1024)
    live = {tenant: [] for tenant in range(_TENANTS)}

    for tenant, is_alloc, value in ops:
        if is_alloc:
            try:
                block = pool.alloc(value, tag=f"tenant{tenant}")
            except MemoryError:
                continue  # OOM under pressure is legal, corruption is not
            live[tenant].append(block)
        elif live[tenant]:
            block = live[tenant].pop(value % len(live[tenant]))
            pool.free(block)
            # Double-free of the same handle must be refused.
            with pytest.raises(ValueError):
                pool.free(block)
        pool.check_invariants()
        assert 0 <= pool.live_bytes <= pool.capacity
        assert pool.largest_free_block <= pool.free_bytes
        # No two live blocks (any tenant) overlap.
        spans = sorted(
            (b.offset, b.offset + b.size)
            for blocks in live.values() for b in blocks
        )
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start

    # Tenants release in round-robin order: full coalescing must follow.
    while any(live.values()):
        for tenant in range(_TENANTS):
            if live[tenant]:
                pool.free(live[tenant].pop())
                pool.check_invariants()
    assert pool.live_bytes == 0
    assert pool.largest_free_block == pool.capacity == pool.free_bytes
    assert pool.fragmentation == 0.0
    # And the empty pool can serve a capacity-sized allocation again.
    whole = pool.alloc(pool.capacity)
    assert whole.size == pool.capacity
    pool.free(whole)


@settings(max_examples=40, deadline=None)
@given(nbytes=st.integers(min_value=0, max_value=128 * 1024))
def test_property_pool_can_fit_matches_alloc(nbytes):
    """``can_fit`` exactly predicts whether ``alloc`` succeeds."""
    pool = PoolAllocator(capacity=64 * 1024)
    pool.alloc(10 * ALIGNMENT)      # leave a dented pool, not pristine
    fits = pool.can_fit(nbytes)
    try:
        pool.alloc(nbytes)
        assert fits
    except MemoryError:
        assert not fits

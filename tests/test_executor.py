"""Tests for the baseline and vDNN iteration simulators."""

import pytest

from repro.core import (
    AlgoConfig,
    LivenessAnalysis,
    TransferPolicy,
    baseline_allocation_bytes,
    simulate_baseline,
    simulate_vdnn,
)
from repro.graph import LayerKind
from repro.hw import PAPER_SYSTEM
from repro.sim import COMPUTE_STREAM, EventKind, MEMORY_STREAM

from conftest import make_deep_cnn, make_fork_join_cnn, make_linear_cnn


def run_vdnn(network, policy="all", algo="m", **kwargs):
    policies = {
        "all": TransferPolicy.vdnn_all,
        "conv": TransferPolicy.vdnn_conv,
        "none": TransferPolicy.none,
    }
    algos = (AlgoConfig.memory_optimal(network) if algo == "m"
             else AlgoConfig.performance_optimal(network))
    return simulate_vdnn(network, PAPER_SYSTEM, policies[policy](), algos, **kwargs)


class TestBaselineSimulation:
    def test_breakdown_total_is_component_sum(self, linear_cnn):
        algos = AlgoConfig.performance_optimal(linear_cnn)
        b = baseline_allocation_bytes(linear_cnn, algos)
        assert b["total"] == (b["weights"] + b["weight_gradients"]
                              + b["feature_maps"] + b["gradient_maps"]
                              + b["workspace"])

    def test_gradient_maps_are_two_pingpong_buffers(self, linear_cnn):
        algos = AlgoConfig.memory_optimal(linear_cnn)
        b = baseline_allocation_bytes(linear_cnn, algos)
        liveness = LivenessAnalysis(linear_cnn)
        assert b["gradient_maps"] == 2 * liveness.max_gradient_bytes()

    def test_max_equals_avg(self, linear_cnn):
        result = simulate_baseline(
            linear_cnn, PAPER_SYSTEM, AlgoConfig.memory_optimal(linear_cnn)
        )
        assert result.max_usage_bytes == result.avg_usage_bytes

    def test_trainable_on_large_gpu(self, linear_cnn):
        result = simulate_baseline(
            linear_cnn, PAPER_SYSTEM, AlgoConfig.memory_optimal(linear_cnn)
        )
        assert result.trainable
        assert result.failure is None

    def test_untrainable_when_total_exceeds_capacity(self, linear_cnn):
        tiny = PAPER_SYSTEM.with_gpu_memory(1 << 10)
        result = simulate_baseline(
            linear_cnn, tiny, AlgoConfig.memory_optimal(linear_cnn)
        )
        assert not result.trainable
        assert "exceeds GPU capacity" in result.failure

    def test_no_memory_stream_activity(self, linear_cnn):
        result = simulate_baseline(
            linear_cnn, PAPER_SYSTEM, AlgoConfig.memory_optimal(linear_cnn)
        )
        assert result.offload_bytes == 0
        assert not result.timeline.on_stream(MEMORY_STREAM)

    def test_kernels_for_every_layer_both_directions(self, linear_cnn):
        result = simulate_baseline(
            linear_cnn, PAPER_SYSTEM, AlgoConfig.memory_optimal(linear_cnn)
        )
        fwd = result.timeline.of_kind(EventKind.FORWARD)
        bwd = result.timeline.of_kind(EventKind.BACKWARD)
        assert len(fwd) == len(linear_cnn) - 1   # input has no kernel
        assert len(bwd) == len(linear_cnn) - 1

    def test_performance_optimal_is_faster(self, deep_cnn):
        slow = simulate_baseline(
            deep_cnn, PAPER_SYSTEM, AlgoConfig.memory_optimal(deep_cnn)
        )
        fast = simulate_baseline(
            deep_cnn, PAPER_SYSTEM, AlgoConfig.performance_optimal(deep_cnn)
        )
        assert fast.total_time < slow.total_time


class TestVDNNSimulation:
    def test_peak_below_baseline(self, deep_cnn):
        base = simulate_baseline(
            deep_cnn, PAPER_SYSTEM, AlgoConfig.memory_optimal(deep_cnn)
        )
        vdnn = run_vdnn(deep_cnn, "all", "m")
        assert vdnn.max_usage_bytes < base.max_usage_bytes

    def test_avg_below_max(self, deep_cnn):
        result = run_vdnn(deep_cnn, "all", "m")
        assert result.avg_usage_bytes < result.max_usage_bytes

    def test_no_demand_fetches_under_standard_policies(self, deep_cnn):
        for policy in ("all", "conv"):
            result = run_vdnn(deep_cnn, policy, "m")
            demand = [e for e in result.timeline.events if "(demand)" in e.label]
            assert demand == [], f"policy {policy} needed demand fetches"

    def test_offload_prefetch_byte_symmetry(self, deep_cnn):
        result = run_vdnn(deep_cnn, "all", "m")
        assert result.offload_bytes == result.prefetch_bytes > 0

    def test_pinned_peak_equals_total_offload(self, deep_cnn):
        # Every offloaded buffer stays pinned until its prefetch, so the
        # high-water mark equals the per-iteration offload traffic.
        result = run_vdnn(deep_cnn, "all", "m")
        assert result.pinned_peak_bytes == result.offload_bytes

    def test_conv_policy_offloads_less(self, deep_cnn):
        r_all = run_vdnn(deep_cnn, "all", "m")
        r_conv = run_vdnn(deep_cnn, "conv", "m")
        assert 0 < r_conv.offload_bytes <= r_all.offload_bytes

    def test_none_policy_moves_nothing(self, deep_cnn):
        result = run_vdnn(deep_cnn, "none", "m")
        assert result.offload_bytes == 0
        assert result.pinned_peak_bytes == 0

    def test_offload_overlaps_forward_kernel(self, deep_cnn):
        result = run_vdnn(deep_cnn, "all", "m")
        offloads = result.timeline.of_kind(EventKind.OFFLOAD)
        forwards = {e.layer_index: e for e in result.timeline.of_kind(EventKind.FORWARD)}
        assert offloads
        for off in offloads:
            fwd = forwards[off.layer_index]
            assert off.start >= fwd.start  # launched with the layer's FWD

    def test_prefetch_completes_before_consumer_backward(self, deep_cnn):
        """Every offloaded storage is back before its first backward user."""
        result = run_vdnn(deep_cnn, "all", "m")
        liveness = LivenessAnalysis(deep_cnn)
        backwards = {e.layer_index: e for e in result.timeline.of_kind(EventKind.BACKWARD)}
        prefetches = result.timeline.of_kind(EventKind.PREFETCH)
        assert prefetches
        by_name = {e.label: e for e in prefetches}
        for trigger in result.offloaded_layers:
            for storage in liveness.input_storages(trigger):
                if storage.forward_release_at != trigger:
                    continue
                owner_name = deep_cnn[storage.owner].name
                pre = by_name.get(owner_name)
                if pre is None:
                    continue
                first_user = storage.first_backward_use
                assert pre.end <= backwards[first_user].end

    def test_end_of_layer_sync_stalls_recorded(self):
        # A fast layer with a big offload must show compute stall.
        net = make_deep_cnn(depth=3, batch=8, size=64)
        result = run_vdnn(net, "all", "m")
        assert result.compute_stall_seconds > 0
        assert result.timeline.of_kind(EventKind.STALL)

    def test_usage_curve_timestamps_monotonic(self, deep_cnn):
        result = run_vdnn(deep_cnn, "all", "m")
        times = [t for t, _ in result.usage.curve()]
        assert times == sorted(times)

    def test_pool_drains_to_persistent_at_end(self, deep_cnn):
        result = run_vdnn(deep_cnn, "all", "m")
        final_live = result.usage.curve()[-1][1]
        # Only feature-extraction weights + their gradients remain.
        expected = sum(
            2 * n.weight_bytes for n in deep_cnn if n.is_feature_extraction
        )
        # Pool alignment may round each block up slightly.
        assert final_live >= expected
        assert final_live < expected + 4096 * len(deep_cnn.nodes)

    def test_classifier_weights_external(self, deep_cnn):
        result = run_vdnn(deep_cnn, "all", "m")
        expected = sum(
            2 * n.weight_bytes for n in deep_cnn if not n.is_feature_extraction
        )
        assert result.external_bytes == expected

    def test_untrainable_on_tiny_gpu(self, deep_cnn):
        tiny = PAPER_SYSTEM.with_gpu_memory(1 << 12)
        algos = AlgoConfig.memory_optimal(deep_cnn)
        result = simulate_vdnn(deep_cnn, tiny, TransferPolicy.vdnn_all(), algos)
        assert not result.trainable

    def test_fork_join_network_simulates_cleanly(self, fork_join_cnn):
        result = run_vdnn(fork_join_cnn, "all", "m")
        assert result.trainable
        demand = [e for e in result.timeline.events if "(demand)" in e.label]
        assert demand == []

    def test_memory_stream_serializes_transfers(self, deep_cnn):
        result = run_vdnn(deep_cnn, "all", "m")
        events = sorted(result.timeline.on_stream(MEMORY_STREAM),
                        key=lambda e: e.start)
        for first, second in zip(events, events[1:]):
            assert second.start >= first.end

    def test_policy_label_propagates(self, deep_cnn):
        assert run_vdnn(deep_cnn, "all", "m").policy_label == "vDNN_all"
        assert run_vdnn(deep_cnn, "all", "m").algo_label == "m"


class TestAblations:
    def test_unbounded_prefetch_window_raises_peak(self):
        """Prefetching too early camps data in GPU memory (Section III-B)."""
        net = make_deep_cnn(depth=8, batch=8, size=32)
        bounded = run_vdnn(net, "conv", "m")
        unbounded = run_vdnn(net, "conv", "m", bounded_prefetch_window=False)
        assert unbounded.max_usage_bytes >= bounded.max_usage_bytes
        # Correctness is preserved either way (demand fetches allowed).
        assert unbounded.trainable or not bounded.trainable

    def test_disabling_sync_removes_stalls(self):
        net = make_deep_cnn(depth=3, batch=8, size=64)
        synced = run_vdnn(net, "all", "m")
        unsynced = run_vdnn(net, "all", "m", sync_after_offload=False)
        assert unsynced.compute_stall_seconds <= synced.compute_stall_seconds
        assert unsynced.total_time <= synced.total_time

"""Tests for the memory/timing/bandwidth profilers."""

import pytest

from repro.core import AlgoConfig
from repro.hw import PAPER_SYSTEM
from repro.profiler import (
    baseline_memory_profile,
    dram_bandwidth_profile,
    feature_extraction_share,
    layer_timing_profile,
    memory_breakdown,
    per_layer_profile,
    worst_case_interference,
)
from repro.zoo import build

from conftest import make_linear_cnn


class TestBaselineProfile:
    def test_usage_fraction_in_unit_interval(self, linear_cnn):
        algos = AlgoConfig.performance_optimal(linear_cnn)
        profile = baseline_memory_profile(linear_cnn, algos)
        assert 0.0 < profile.max_usage_fraction <= 1.0
        assert profile.unused_fraction == pytest.approx(
            1.0 - profile.max_usage_fraction
        )

    def test_deeper_network_wastes_more(self):
        # The paper: underutilization grows with depth.
        shallow = build("alexnet", 32)
        deep = build("vgg116", 32)
        a = baseline_memory_profile(
            shallow, AlgoConfig.memory_optimal(shallow))
        d = baseline_memory_profile(deep, AlgoConfig.memory_optimal(deep))
        assert d.unused_fraction > a.unused_fraction

    def test_max_layer_usage_below_total(self, linear_cnn):
        algos = AlgoConfig.memory_optimal(linear_cnn)
        profile = baseline_memory_profile(linear_cnn, algos)
        assert profile.max_layer_usage_bytes < profile.allocation_bytes


class TestBreakdown:
    def test_fraction_matches_components(self, linear_cnn):
        algos = AlgoConfig.memory_optimal(linear_cnn)
        b = memory_breakdown(linear_cnn, algos)
        assert b["feature_map_fraction"] == pytest.approx(
            b["feature_maps"] / b["total"]
        )

    def test_memory_optimal_has_no_workspace(self, linear_cnn):
        b = memory_breakdown(linear_cnn, AlgoConfig.memory_optimal(linear_cnn))
        assert b["workspace"] == 0

    def test_feature_extraction_share_band(self):
        # Paper: 81% for AlexNet, 96% for VGG-16 (256).
        assert feature_extraction_share(build("alexnet", 128)) > 0.7
        assert feature_extraction_share(build("vgg16", 256)) > 0.9


class TestPerLayerProfile:
    def test_only_weighted_layers(self, linear_cnn):
        rows = per_layer_profile(
            linear_cnn, AlgoConfig.memory_optimal(linear_cnn))
        assert [r.kind for r in rows] == ["CONV", "CONV", "FC"]

    def test_regions_annotated(self, linear_cnn):
        rows = per_layer_profile(
            linear_cnn, AlgoConfig.memory_optimal(linear_cnn))
        assert rows[0].region == "feature extraction"
        assert rows[-1].region == "classifier"

    def test_vgg_weights_concentrate_in_classifier(self):
        net = build("vgg16", 64)
        rows = per_layer_profile(net, AlgoConfig.memory_optimal(net))
        fc_weights = sum(r.weight_bytes for r in rows if r.kind == "FC")
        conv_weights = sum(r.weight_bytes for r in rows if r.kind == "CONV")
        assert fc_weights > conv_weights


class TestTimingProfile:
    def test_reuse_distance_monotone_decreasing(self):
        net = build("vgg16", 8)
        rows = layer_timing_profile(
            net, PAPER_SYSTEM, AlgoConfig.memory_optimal(net))
        distances = [r.reuse_distance_seconds for r in rows]
        assert all(a >= b for a, b in zip(distances, distances[1:]))

    def test_positive_latencies(self, linear_cnn):
        rows = layer_timing_profile(
            linear_cnn, PAPER_SYSTEM, AlgoConfig.memory_optimal(linear_cnn))
        for row in rows:
            assert row.forward_seconds > 0
            assert row.backward_seconds > 0


class TestBandwidthProfile:
    def test_rows_for_weighted_layers(self, linear_cnn):
        rows = dram_bandwidth_profile(
            linear_cnn, PAPER_SYSTEM, AlgoConfig.memory_optimal(linear_cnn))
        assert len(rows) == 3

    def test_utilization_below_one(self, linear_cnn):
        rows = dram_bandwidth_profile(
            linear_cnn, PAPER_SYSTEM, AlgoConfig.memory_optimal(linear_cnn))
        peak = PAPER_SYSTEM.gpu.dram_bandwidth
        for row in rows:
            assert 0 <= row.forward_utilization(peak) <= 1.0
            assert 0 <= row.backward_utilization(peak) <= 1.0

    def test_worst_case_interference_is_paper_constant(self):
        assert worst_case_interference(PAPER_SYSTEM) == pytest.approx(
            16.0 / 336.0, rel=1e-6
        )

"""Numerical tests for the numpy kernels, including gradient checks."""

import numpy as np
import pytest

from repro.numerics import ops

RNG = np.random.default_rng(42)


def numeric_grad(f, x, eps=1e-3):
    """Central-difference gradient of scalar f w.r.t. array x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        hi = f()
        flat[i] = original - eps
        lo = f()
        flat[i] = original
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def rand(*shape):
    return RNG.standard_normal(shape).astype(np.float32)


class TestConv2D:
    def test_forward_matches_manual_1x1(self):
        x = rand(1, 2, 3, 3)
        w = rand(4, 2, 1, 1)
        y = ops.conv2d_forward(x, w, None, stride=1, pad=0)
        expected = np.einsum("nchw,kc->nkhw", x, w[:, :, 0, 0])
        np.testing.assert_allclose(y, expected, rtol=1e-5)

    def test_forward_shape_with_stride_and_pad(self):
        y = ops.conv2d_forward(rand(2, 3, 8, 8), rand(4, 3, 3, 3), None, 2, 1)
        assert y.shape == (2, 4, 4, 4)

    def test_bias_added_per_channel(self):
        x = np.zeros((1, 1, 2, 2), dtype=np.float32)
        w = np.zeros((3, 1, 1, 1), dtype=np.float32)
        b = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        y = ops.conv2d_forward(x, w, b, 1, 0)
        for k in range(3):
            assert np.all(y[0, k] == b[k])

    def test_gradient_check_dx(self):
        x, w = rand(2, 2, 5, 5), rand(3, 2, 3, 3)
        dy = rand(2, 3, 5, 5)

        def loss():
            return float((ops.conv2d_forward(x, w, None, 1, 1) * dy).sum())

        dx, _, _ = ops.conv2d_backward(x, w, dy, 1, 1, bias=False)
        np.testing.assert_allclose(dx, numeric_grad(loss, x), rtol=3e-2,
                                   atol=5e-3)

    def test_gradient_check_dw(self):
        x, w = rand(2, 2, 5, 5), rand(3, 2, 3, 3)
        dy = rand(2, 3, 3, 3)

        def loss():
            return float((ops.conv2d_forward(x, w, None, 1, 0) * dy).sum())

        _, dw, _ = ops.conv2d_backward(x, w, dy, 1, 0, bias=False)
        np.testing.assert_allclose(dw, numeric_grad(loss, w), rtol=1e-2,
                                   atol=1e-3)

    def test_db_is_dy_sum(self):
        x, w = rand(2, 2, 4, 4), rand(3, 2, 1, 1)
        dy = rand(2, 3, 4, 4)
        _, _, db = ops.conv2d_backward(x, w, dy, 1, 0, bias=True)
        np.testing.assert_allclose(db, dy.sum(axis=(0, 2, 3)), rtol=1e-5)


class TestActivations:
    def test_relu_zeroes_negatives(self):
        y = ops.relu_forward(np.array([-1.0, 0.0, 2.0], dtype=np.float32))
        np.testing.assert_array_equal(y, [0.0, 0.0, 2.0])

    def test_relu_backward_masks_by_y(self):
        y = np.array([0.0, 0.0, 2.0], dtype=np.float32)
        dy = np.array([5.0, 5.0, 5.0], dtype=np.float32)
        np.testing.assert_array_equal(ops.relu_backward(y, dy), [0, 0, 5])

    def test_sigmoid_gradient_from_y_only(self):
        x = rand(10)
        y = ops.sigmoid_forward(x)
        dy = rand(10)

        def loss():
            return float((ops.sigmoid_forward(x) * dy).sum())

        np.testing.assert_allclose(
            ops.sigmoid_backward(y, dy), numeric_grad(loss, x),
            rtol=1e-2, atol=1e-4,
        )

    def test_tanh_gradient_from_y_only(self):
        x = rand(10)
        y = ops.tanh_forward(x)
        dy = rand(10)

        def loss():
            return float((ops.tanh_forward(x) * dy).sum())

        np.testing.assert_allclose(
            ops.tanh_backward(y, dy), numeric_grad(loss, x),
            rtol=1e-2, atol=1e-4,
        )


class TestPooling:
    def test_maxpool_forward_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        y = ops.maxpool_forward(x, 2, 2, 0, 2, 2)
        np.testing.assert_array_equal(y[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_backward_routes_to_argmax(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        y = ops.maxpool_forward(x, 2, 2, 0, 2, 2)
        dy = np.ones((1, 1, 2, 2), dtype=np.float32)
        dx = ops.maxpool_backward(x, y, dy, 2, 2, 0)
        assert dx.sum() == 4.0
        assert dx[0, 0, 1, 1] == 1.0 and dx[0, 0, 0, 0] == 0.0

    def test_avgpool_forward_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        y = ops.avgpool_forward(x, 2, 2, 0, 2, 2)
        np.testing.assert_allclose(y[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool_backward_spreads_uniformly(self):
        dy = np.ones((1, 1, 2, 2), dtype=np.float32)
        dx = ops.avgpool_backward((1, 1, 4, 4), dy, 2, 2, 0)
        np.testing.assert_allclose(dx, np.full((1, 1, 4, 4), 0.25))

    def test_ceil_mode_window_clipping(self):
        # 5x5 input, 3x3 stride-2 pooling (ceil) -> 2x2 output.
        x = rand(1, 1, 5, 5)
        y = ops.maxpool_forward(x, 3, 2, 0, 2, 2)
        assert y.shape == (1, 1, 2, 2)


class TestLRN:
    def test_forward_is_scale_invariant_shape(self):
        x = rand(2, 8, 4, 4)
        y = ops.lrn_forward(x, 5, 1e-4, 0.75, 1.0)
        assert y.shape == x.shape

    def test_forward_normalizes_large_activations(self):
        x = np.full((1, 8, 1, 1), 10.0, dtype=np.float32)
        y = ops.lrn_forward(x, 5, 1.0, 0.75, 1.0)
        assert np.all(y < x)

    def test_gradient_check(self):
        x = rand(1, 6, 2, 2)
        dy = rand(1, 6, 2, 2)
        args = (5, 0.1, 0.75, 2.0)

        def loss():
            return float((ops.lrn_forward(x, *args) * dy).sum())

        y = ops.lrn_forward(x, *args)
        dx = ops.lrn_backward(x, y, dy, *args)
        np.testing.assert_allclose(dx, numeric_grad(loss, x), rtol=2e-2,
                                   atol=1e-3)


class TestFC:
    def test_forward_flattens(self):
        x = rand(2, 3, 2, 2)
        w = rand(5, 12)
        assert ops.fc_forward(x, w, None).shape == (2, 5)

    def test_gradient_check(self):
        x, w = rand(3, 7), rand(4, 7)
        dy = rand(3, 4)

        def loss():
            return float((ops.fc_forward(x, w, None) * dy).sum())

        dx, dw, _ = ops.fc_backward(x, w, dy, bias=False)
        np.testing.assert_allclose(dx, numeric_grad(loss, x), rtol=1e-2,
                                   atol=1e-4)
        np.testing.assert_allclose(dw, numeric_grad(loss, w), rtol=1e-2,
                                   atol=1e-4)


class TestDropout:
    def test_same_seed_same_mask(self):
        x = rand(4, 8)
        a = ops.dropout_forward(x, 0.5, seed=3)
        b = ops.dropout_forward(x, 0.5, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_different_seed_different_mask(self):
        x = np.ones((32, 32), dtype=np.float32)
        a = ops.dropout_forward(x, 0.5, seed=1)
        b = ops.dropout_forward(x, 0.5, seed=2)
        assert not np.array_equal(a, b)

    def test_inverted_scaling_preserves_expectation(self):
        x = np.ones((200, 200), dtype=np.float32)
        y = ops.dropout_forward(x, 0.5, seed=0)
        assert abs(y.mean() - 1.0) < 0.05

    def test_inference_is_identity(self):
        x = rand(4, 4)
        np.testing.assert_array_equal(
            ops.dropout_forward(x, 0.5, seed=0, training=False), x
        )

    def test_backward_uses_same_mask(self):
        dy = np.ones((8, 8), dtype=np.float32)
        fwd_mask = ops.dropout_forward(np.ones((8, 8), dtype=np.float32), 0.5, 9)
        bwd = ops.dropout_backward(dy, 0.5, 9)
        np.testing.assert_array_equal(fwd_mask, bwd)


class TestConcatSoftmax:
    def test_concat_roundtrip(self):
        a, b = rand(2, 3, 4, 4), rand(2, 5, 4, 4)
        y = ops.concat_forward([a, b])
        parts = ops.concat_backward(y, [3, 5])
        np.testing.assert_array_equal(parts[0], a)
        np.testing.assert_array_equal(parts[1], b)

    def test_softmax_rows_sum_to_one(self):
        probs = ops.softmax_forward(rand(5, 10))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5), rtol=1e-5)

    def test_softmax_numerically_stable(self):
        x = np.array([[1000.0, 1000.0]], dtype=np.float32)
        probs = ops.softmax_forward(x)
        np.testing.assert_allclose(probs, [[0.5, 0.5]])

    def test_cross_entropy_perfect_prediction(self):
        probs = np.array([[1.0, 0.0], [0.0, 1.0]], dtype=np.float32)
        labels = np.array([0, 1])
        assert ops.cross_entropy_loss(probs, labels) < 1e-6

    def test_softmax_ce_gradient_check(self):
        logits = rand(3, 5)
        labels = np.array([0, 2, 4])

        def loss():
            return ops.cross_entropy_loss(ops.softmax_forward(logits), labels)

        probs = ops.softmax_forward(logits)
        dx = ops.softmax_cross_entropy_backward(probs, labels)
        np.testing.assert_allclose(dx, numeric_grad(loss, logits), rtol=1e-2,
                                   atol=1e-4)

"""Tests for the cuDNN convolution-algorithm model."""

import pytest

from repro.graph import Conv2D, TensorSpec
from repro.kernels import (
    ConvAlgo,
    MEMORY_OPTIMAL_ALGO,
    algo_applicable,
    memory_optimal_profile,
    next_cheaper_algo,
    performance_optimal_algo,
    profile_algorithms,
    time_multiplier,
    workspace_bytes,
)


def vgg_conv(kernel=3, stride=1, pad=1, out_channels=64):
    return Conv2D("c", inputs=["in"], out_channels=out_channels,
                  kernel=kernel, stride=stride, pad=pad)


X = TensorSpec((32, 64, 56, 56))
Y = TensorSpec((32, 64, 56, 56))


class TestApplicability:
    def test_implicit_gemm_always_applicable(self):
        assert algo_applicable(ConvAlgo.IMPLICIT_GEMM, vgg_conv(stride=2))

    def test_fft_requires_stride_one(self):
        assert not algo_applicable(ConvAlgo.FFT, vgg_conv(stride=2))
        assert not algo_applicable(ConvAlgo.FFT_TILING, vgg_conv(stride=2))
        assert algo_applicable(ConvAlgo.FFT, vgg_conv(stride=1))

    def test_fft_tiling_kernel_bound(self):
        big = vgg_conv(kernel=33, pad=16)
        assert not algo_applicable(ConvAlgo.FFT_TILING, big)
        assert algo_applicable(ConvAlgo.FFT, big)


class TestWorkspace:
    def test_implicit_gemm_needs_no_workspace(self):
        assert workspace_bytes(ConvAlgo.IMPLICIT_GEMM, vgg_conv(), X, Y) == 0

    def test_direct_needs_no_workspace(self):
        assert workspace_bytes(ConvAlgo.DIRECT, vgg_conv(), X, Y) == 0

    def test_gemm_workspace_is_im2col_buffer(self):
        expected = 64 * 3 * 3 * 56 * 56 * 4  # C*k*k x oh*ow floats
        assert workspace_bytes(ConvAlgo.GEMM, vgg_conv(), X, Y) == expected

    def test_fft_workspace_dominates(self):
        ws = {algo: workspace_bytes(algo, vgg_conv(), X, Y)
              for algo in ConvAlgo if algo_applicable(algo, vgg_conv())}
        assert ws[ConvAlgo.FFT] == max(ws.values())
        assert ws[ConvAlgo.FFT] > ws[ConvAlgo.GEMM]

    def test_fft_tiling_cheaper_than_fft(self):
        conv = vgg_conv()
        assert workspace_bytes(ConvAlgo.FFT_TILING, conv, X, Y) < \
            workspace_bytes(ConvAlgo.FFT, conv, X, Y)

    def test_inapplicable_algo_raises(self):
        with pytest.raises(ValueError):
            workspace_bytes(ConvAlgo.FFT, vgg_conv(stride=2), X, Y)


class TestSpeedModel:
    def test_fft_fastest_for_3x3_stride1(self):
        profiles = profile_algorithms(vgg_conv(), X, Y)
        assert profiles[0].algo is ConvAlgo.FFT

    def test_fft_not_fastest_for_1x1(self):
        conv = vgg_conv(kernel=1, pad=0)
        profiles = profile_algorithms(conv, TensorSpec((32, 64, 56, 56)),
                                      TensorSpec((32, 64, 56, 56)))
        assert profiles[0].algo is ConvAlgo.IMPLICIT_PRECOMP_GEMM

    def test_profiles_sorted_fastest_first(self):
        profiles = profile_algorithms(vgg_conv(), X, Y)
        mults = [p.time_multiplier for p in profiles]
        assert mults == sorted(mults)

    def test_multiplier_penalizes_pointwise_fft(self):
        assert time_multiplier(ConvAlgo.FFT, vgg_conv(kernel=1, pad=0)) > \
            time_multiplier(ConvAlgo.FFT, vgg_conv(kernel=3))


class TestSelection:
    def test_memory_optimal_is_implicit_gemm(self):
        profile = memory_optimal_profile(vgg_conv(), X, Y)
        assert profile.algo is MEMORY_OPTIMAL_ALGO
        assert profile.workspace_bytes == 0

    def test_performance_optimal_unbounded(self):
        profile = performance_optimal_algo(vgg_conv(), X, Y)
        assert profile.algo is ConvAlgo.FFT

    def test_performance_optimal_under_budget(self):
        profile = performance_optimal_algo(vgg_conv(), X, Y, workspace_limit=0)
        assert profile.workspace_bytes == 0

    def test_budget_excludes_expensive_algos(self):
        unbounded = performance_optimal_algo(vgg_conv(), X, Y)
        limited = performance_optimal_algo(
            vgg_conv(), X, Y, workspace_limit=unbounded.workspace_bytes - 1
        )
        assert limited.workspace_bytes < unbounded.workspace_bytes
        assert limited.time_multiplier >= unbounded.time_multiplier

    def test_next_cheaper_descends_to_zero(self):
        conv = vgg_conv()
        current = performance_optimal_algo(conv, X, Y).algo
        seen = []
        while True:
            cheaper = next_cheaper_algo(current, conv, X, Y)
            if cheaper is None:
                break
            assert workspace_bytes(cheaper.algo, conv, X, Y) < \
                workspace_bytes(current, conv, X, Y)
            current = cheaper.algo
            seen.append(current)
        assert workspace_bytes(current, conv, X, Y) == 0
        assert seen  # at least one downgrade happened

    def test_next_cheaper_none_at_bottom(self):
        assert next_cheaper_algo(ConvAlgo.IMPLICIT_GEMM, vgg_conv(), X, Y) is None

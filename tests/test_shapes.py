"""Tests for convolution/pooling shape arithmetic."""

import pytest

from repro.graph.shapes import conv_out_dim, pool_out_dim


class TestConvOutDim:
    def test_same_padding_3x3(self):
        assert conv_out_dim(224, 3, 1, 1) == 224

    def test_alexnet_conv1(self):
        # 227x227 input, 11x11 kernel, stride 4, no pad -> 55.
        assert conv_out_dim(227, 11, 4, 0) == 55

    def test_googlenet_stem(self):
        # 224, 7x7, stride 2, pad 3 -> 112.
        assert conv_out_dim(224, 7, 2, 3) == 112

    def test_pointwise(self):
        assert conv_out_dim(14, 1, 1, 0) == 14

    def test_floor_division(self):
        assert conv_out_dim(5, 3, 2, 0) == 2

    def test_non_positive_output_raises(self):
        with pytest.raises(ValueError):
            conv_out_dim(2, 5, 1, 0)


class TestPoolOutDim:
    def test_even_pooling(self):
        assert pool_out_dim(224, 2, 2, 0) == 112

    def test_ceil_mode_differs_from_conv(self):
        # 112 -> 3x3 stride 2 pooling: Caffe ceil mode gives 56, not 55.
        assert pool_out_dim(112, 3, 2, 0) == 56
        assert conv_out_dim(112, 3, 2, 0) == 55

    def test_googlenet_chain(self):
        # The successive pool outputs of GoogLeNet: 112->56->28->14->7.
        size = 112
        for expected in (56, 28, 14):
            size = pool_out_dim(size, 3, 2, 0)
            assert size == expected

    def test_padded_pooling(self):
        assert pool_out_dim(4, 2, 2, 1) == 3

    def test_padding_clip_rule(self):
        # A window starting entirely inside the padding is clipped.
        assert pool_out_dim(3, 2, 2, 1) == 2

    def test_global_pooling(self):
        assert pool_out_dim(7, 7, 1, 0) == 1

    def test_non_positive_output_raises(self):
        with pytest.raises(ValueError):
            pool_out_dim(1, 5, 1, 0)

"""Tests for the inference simulator and Chrome-trace export."""

import json

import pytest

from repro.core import (
    AlgoConfig,
    baseline_inference_bytes,
    evaluate,
    simulate_inference,
)
from repro.hw import PAPER_SYSTEM
from repro.sim import EventKind, save_trace, timeline_to_trace_events
from repro.zoo import build

from conftest import make_linear_cnn


class TestInferenceSimulation:
    def test_far_below_training_footprint(self):
        net = build("vgg16", 64)
        algos = AlgoConfig.memory_optimal(net)
        inference = simulate_inference(net, PAPER_SYSTEM, algos)
        training = evaluate(net, policy="none", algo="m")
        assert inference.max_usage_bytes < training.max_usage_bytes / 2

    def test_below_network_wide_inference_allocation(self):
        net = build("vgg16", 64)
        algos = AlgoConfig.memory_optimal(net)
        layer_wise = simulate_inference(net, PAPER_SYSTEM, algos)
        network_wide = baseline_inference_bytes(net, algos)
        assert layer_wise.managed_max_bytes < network_wide

    def test_forward_events_only(self, linear_cnn):
        algos = AlgoConfig.memory_optimal(linear_cnn)
        result = simulate_inference(linear_cnn, PAPER_SYSTEM, algos)
        kinds = {e.kind for e in result.timeline.events}
        assert kinds == {EventKind.FORWARD}

    def test_no_transfers(self, linear_cnn):
        algos = AlgoConfig.memory_optimal(linear_cnn)
        result = simulate_inference(linear_cnn, PAPER_SYSTEM, algos)
        assert result.offload_bytes == 0
        assert result.pinned_peak_bytes == 0

    def test_pool_drains_to_weights(self, linear_cnn):
        algos = AlgoConfig.memory_optimal(linear_cnn)
        result = simulate_inference(linear_cnn, PAPER_SYSTEM, algos)
        final = result.usage.curve()[-1][1]
        weights = sum(n.weight_bytes for n in linear_cnn
                      if n.is_feature_extraction)
        assert weights <= final < weights + 4096 * len(linear_cnn.nodes)

    def test_very_deep_network_inference_fits(self):
        """Even VGG-416 runs inference within 12 GB layer-wise."""
        net = build("vgg416", 32)
        algos = AlgoConfig.memory_optimal(net)
        result = simulate_inference(net, PAPER_SYSTEM, algos)
        assert result.trainable  # here: "runnable"


class TestTraceExport:
    def test_events_reference_all_streams(self, linear_cnn):
        result = evaluate(linear_cnn, policy="all", algo="m")
        events = timeline_to_trace_events(result.timeline, result.usage)
        names = {e["args"]["name"] for e in events if e["ph"] == "M"
                 and e["name"] == "thread_name"}
        assert names == {"stream_compute", "stream_memory"}

    def test_durations_in_microseconds(self, linear_cnn):
        result = evaluate(linear_cnn, policy="all", algo="m")
        events = timeline_to_trace_events(result.timeline)
        spans = [e for e in events if e["ph"] == "X"]
        assert spans
        for span in spans:
            assert span["dur"] >= 0
            assert span["cat"] in ("compute", "transfer", "stall")

    def test_counter_events_from_usage(self, linear_cnn):
        result = evaluate(linear_cnn, policy="all", algo="m")
        events = timeline_to_trace_events(result.timeline, result.usage)
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == len(result.usage.samples)

    def test_save_trace_roundtrip(self, linear_cnn, tmp_path):
        result = evaluate(linear_cnn, policy="all", algo="m")
        path = tmp_path / "trace.json"
        save_trace(str(path), result.timeline, result.usage)
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) > 10

    def test_transfer_category_on_offloads(self, linear_cnn):
        result = evaluate(linear_cnn, policy="all", algo="m")
        events = timeline_to_trace_events(result.timeline)
        offloads = [e for e in events
                    if e["ph"] == "X" and e["name"].startswith("OFF")]
        assert offloads
        assert all(e["cat"] == "transfer" for e in offloads)

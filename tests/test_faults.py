"""Tests for the fault-injection subsystem (repro.faults) and the
graceful-degradation reactions wired through the executor, the
scheduler, the allocator and the sanitizer."""

import math

import pytest

from repro.alloc import PoolAllocator
from repro.core.algo_config import AlgoConfig
from repro.core.api import evaluate
from repro.core.executor import simulate_vdnn
from repro.core.policy import TransferPolicy
from repro.core.prefetcher import PrefetchState, find_prefetch_layer
from repro.faults import (
    DEFAULT_BACKOFF_BASE,
    DEFAULT_MAX_ATTEMPTS,
    FaultInjector,
    FaultReport,
    FaultSpec,
    FaultSpecError,
    make_injector,
)
from repro.analysis.verify import verify_result, verify_schedule
from repro.hw import PAPER_SYSTEM
from repro.sched import (
    ContentionModel,
    GPUScheduler,
    Job,
    JobState,
    schedule_jobs,
)
from repro.sim import EventKind
from repro.zoo import build

MB = 1 << 20
GB = 1 << 30


def vdnn_all(network, **kwargs):
    return simulate_vdnn(
        network, PAPER_SYSTEM, TransferPolicy.vdnn_all(),
        AlgoConfig.performance_optimal(network), **kwargs,
    )


# ----------------------------------------------------------------------
# FaultSpec: grammar, validation, backoff
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_parse_full_grammar(self):
        spec = FaultSpec.parse(
            "dma=0.1,dma_prefetch=0.3,pcie=0.5,jitter=0.2,pinned=0.75,"
            "retries=5,backoff=0.01,shrink@30=0.5,evict@10=vgg16#1")
        assert spec.dma_failure_rate == 0.1
        assert spec.failure_rate("prefetch") == 0.3
        assert spec.failure_rate("offload") == 0.1
        assert spec.pcie_bw_factor == 0.5
        assert spec.pcie_jitter == 0.2
        assert spec.pinned_budget_factor == 0.75
        assert spec.max_dma_attempts == 5
        assert spec.backoff_base == 0.01
        assert spec.budget_shrinks == ((30.0, 0.5),)
        assert spec.evictions == ((10.0, "vgg16#1"),)

    def test_label_round_trips(self):
        text = "dma=0.1,pcie=0.5,retries=5,shrink@30=0.5,evict@10=a#1"
        spec = FaultSpec.parse(text)
        assert FaultSpec.parse(spec.label) == spec

    @pytest.mark.parametrize("text", ["", "none"])
    def test_empty_spec_is_neutral(self, text):
        spec = FaultSpec.parse(text)
        assert spec == FaultSpec.none()
        assert not spec.enabled
        assert spec.label == "none"

    @pytest.mark.parametrize("text", [
        "dma=1.5",            # rate out of range
        "pcie=0",             # bandwidth factor must be positive
        "pcie=1.2",           # cannot exceed nominal bandwidth
        "jitter=1.0",         # jitter must stay below full swing
        "retries=0",          # at least one attempt
        "backoff_factor=0.5", # backoff must not shrink
        "shrink@-1=0.5",      # negative time
        "shrink@10=0",        # zero budget
        "evict@5=",           # empty job name
        "warp@3=1",           # unknown timed fault
        "nosuchkey=1",        # unknown key
        "dma",                # missing value
        "dma=abc",            # not a number
        "shrink@abc=0.5",     # bad timestamp
    ])
    def test_invalid_specs_rejected(self, text):
        with pytest.raises(FaultSpecError):
            FaultSpec.parse(text)

    def test_backoff_is_monotone_exponential(self):
        spec = FaultSpec(backoff_base=0.004, backoff_factor=2.0)
        waits = [spec.backoff_seconds(a) for a in range(1, 6)]
        assert waits[0] == 0.004
        assert all(b == 2.0 * a for a, b in zip(waits, waits[1:]))
        with pytest.raises(ValueError):
            spec.backoff_seconds(0)


# ----------------------------------------------------------------------
# FaultInjector: determinism and neutrality
# ----------------------------------------------------------------------
class TestInjector:
    def test_neutral_spec_never_touches_rng(self):
        injector = FaultInjector(FaultSpec.none(), seed=1)
        state = injector.rng.getstate()
        assert injector.dma_seconds(PAPER_SYSTEM.pcie, 64 * MB) \
            == PAPER_SYSTEM.pcie.dma_time(64 * MB)
        assert injector.dma_fails("offload") is False
        assert injector.rng.getstate() == state

    def test_same_seed_same_draw_sequence(self):
        spec = FaultSpec(dma_failure_rate=0.5, pcie_jitter=0.3)
        a = FaultInjector(spec, seed=42)
        b = FaultInjector(spec, seed=42)
        for _ in range(50):
            assert a.dma_fails("offload") == b.dma_fails("offload")
            assert a.dma_seconds(PAPER_SYSTEM.pcie, MB) \
                == b.dma_seconds(PAPER_SYSTEM.pcie, MB)

    def test_degraded_bandwidth_stretches_wire_time_only(self):
        injector = FaultInjector(FaultSpec(pcie_bw_factor=0.5))
        base = PAPER_SYSTEM.pcie.dma_time(64 * MB)
        slowed = injector.dma_seconds(PAPER_SYSTEM.pcie, 64 * MB)
        wire = base - PAPER_SYSTEM.pcie.dma_setup_latency
        assert slowed == pytest.approx(
            PAPER_SYSTEM.pcie.dma_setup_latency + wire / 0.5)

    def test_make_injector_none_passthrough(self):
        assert make_injector(None) is None
        assert make_injector(FaultSpec.none(), seed=3).seed == 3


# ----------------------------------------------------------------------
# Executor: faulted vDNN simulation
# ----------------------------------------------------------------------
class TestExecutorFaults:
    def test_no_faults_bit_identical_to_unfaulted(self):
        network = build("alexnet", 8)
        clean = vdnn_all(network)
        neutral = vdnn_all(network, faults=FaultSpec.none(), fault_seed=9)
        assert neutral.total_time == clean.total_time
        assert neutral.timeline.events == clean.timeline.events
        assert neutral.max_usage_bytes == clean.max_usage_bytes
        assert neutral.fault_report.total_faults == 0

    def test_same_seed_byte_identical_report(self):
        network = build("alexnet", 8)
        spec = FaultSpec.parse("dma=0.2,pcie=0.7,jitter=0.1")
        one = vdnn_all(network, faults=spec, fault_seed=7)
        two = vdnn_all(network, faults=spec, fault_seed=7)
        assert one.fault_report.to_json() == two.fault_report.to_json()
        assert one.total_time == two.total_time

    def test_different_seeds_differ(self):
        network = build("alexnet", 8)
        spec = FaultSpec.parse("dma=0.3,jitter=0.2")
        reports = {
            vdnn_all(network, faults=spec, fault_seed=s)
            .fault_report.to_json()
            for s in range(4)
        }
        assert len(reports) > 1

    def test_transient_failures_recover_via_retry(self):
        network = build("alexnet", 8)
        result = vdnn_all(
            network, faults=FaultSpec.parse("dma=0.2"), fault_seed=7)
        report = result.fault_report
        assert result.trainable and result.failure is None
        assert report.total_faults > 0
        assert report.retries > 0
        assert report.recovery_rate == 1.0
        # Failed attempts occupy the engine (FAULT), backoff idles (RETRY).
        kinds = {e.kind for e in result.timeline.events}
        assert EventKind.FAULT in kinds and EventKind.RETRY in kinds

    def test_attempts_bounded_by_spec(self):
        network = build("alexnet", 8)
        result = vdnn_all(
            network,
            faults=FaultSpec.parse("dma_prefetch=0.9,retries=2"),
            fault_seed=1)
        assert all(e.attempts <= 2 for e in result.fault_report.events)

    def test_exhausted_demand_fetch_is_structured_failure(self):
        network = build("alexnet", 8)
        result = vdnn_all(
            network,
            faults=FaultSpec.parse("dma_prefetch=0.9,retries=2"),
            fault_seed=0)
        assert not result.trainable
        assert "DMA transfer permanently failed" in result.failure
        assert result.fault_report.count("fatal") >= 1
        assert result.fault_report.recovery_rate < 1.0

    def test_abandoned_offload_degrades_without_corruption(self):
        # Offloads that permanently fail are abandoned: the tensor stays
        # resident on the GPU and the run completes without them.
        network = build("alexnet", 8)
        result = vdnn_all(
            network,
            faults=FaultSpec.parse("dma_offload=0.95,retries=1"),
            fault_seed=0)
        assert result.trainable
        degraded = [e for e in result.fault_report.events
                    if e.outcome == "degraded"]
        assert degraded
        assert all(e.kind == "dma-offload" for e in degraded)

    def test_abandoned_prefetch_is_deferred_not_lost(self):
        network = build("alexnet", 8)
        result = vdnn_all(
            network,
            faults=FaultSpec.parse("dma_prefetch=0.6,retries=2"),
            fault_seed=3)
        report = result.fault_report
        deferred = [e for e in report.events if e.outcome == "deferred"]
        assert deferred
        assert all(e.kind == "dma-prefetch" for e in deferred)
        # Deferral falls back to demand fetch; the run still completes.
        assert result.trainable

    def test_degraded_link_slows_but_completes(self):
        network = build("alexnet", 8)
        clean = vdnn_all(network)
        slow = vdnn_all(
            network, faults=FaultSpec.parse("pcie=0.25"), fault_seed=0)
        assert slow.trainable
        assert slow.total_time > clean.total_time

    def test_faulted_traced_run_passes_sanitizer(self):
        network = build("alexnet", 8)
        result = vdnn_all(
            network, faults=FaultSpec.parse("dma=0.2,jitter=0.1"),
            fault_seed=7, verify=True)
        assert verify_result(result, network=network).ok

    def test_evaluate_rejects_faults_on_baseline(self):
        network = build("alexnet", 8)
        with pytest.raises(ValueError, match="baseline"):
            evaluate(network, policy="base",
                     faults=FaultSpec.parse("dma=0.1"))


# ----------------------------------------------------------------------
# Prefetcher: claim / unclaim (satellite fix)
# ----------------------------------------------------------------------
class TestPrefetchUnclaim:
    def test_unclaimed_layer_is_found_again(self):
        network = build("alexnet", 8)
        state = PrefetchState.for_network(network)
        last = len(list(network)) - 1
        for index in range(last):
            state.mark_offloaded(index)
        first = find_prefetch_layer(network, state, last,
                                    bounded_window=False)
        assert first is not None and state.prefetched[first]
        # The caller's DMA failed: roll the claim back and search again.
        state.unclaim(first)
        assert not state.prefetched[first]
        assert find_prefetch_layer(network, state, last,
                                   bounded_window=False) == first


# ----------------------------------------------------------------------
# PoolAllocator: blockers_above / shrink
# ----------------------------------------------------------------------
class TestPoolShrink:
    def test_shrink_free_pool(self):
        pool = PoolAllocator(64 * MB)
        assert pool.blockers_above(32 * MB) == []
        pool.shrink(32 * MB)
        assert pool.capacity == 32 * MB
        assert pool.can_fit(32 * MB) and not pool.can_fit(32 * MB + 1)

    def test_blockers_sorted_highest_first(self):
        pool = PoolAllocator(64 * MB)
        low = pool.alloc(16 * MB)
        high = pool.alloc(16 * MB)
        blockers = pool.blockers_above(24 * MB)
        assert blockers == [high]
        pool.free(high)
        assert pool.blockers_above(24 * MB) == []
        pool.shrink(24 * MB)
        assert pool.capacity == 24 * MB
        assert low.offset == 0

    def test_shrink_with_blockers_raises(self):
        pool = PoolAllocator(64 * MB)
        pool.alloc(48 * MB)
        with pytest.raises(ValueError):
            pool.shrink(32 * MB)

    @pytest.mark.parametrize("new", [0, -1, 128 * MB])
    def test_shrink_invalid_capacity_raises(self, new):
        pool = PoolAllocator(64 * MB)
        with pytest.raises(ValueError):
            pool.shrink(new)


# ----------------------------------------------------------------------
# Scheduler: timed faults, eviction, readmission, shrink
# ----------------------------------------------------------------------
def fleet(iterations=50):
    return [
        Job("vgg16#1", "vgg16", batch_size=64, iterations=iterations,
            submit_time=0.0),
        Job("resnet50#2", "resnet50", batch_size=32, iterations=iterations,
            submit_time=0.1),
        Job("googlenet#3", "googlenet", batch_size=128,
            iterations=iterations, submit_time=0.2),
    ]


class TestSchedulerFaults:
    def test_eviction_requeues_and_finishes(self):
        spec = FaultSpec.parse("evict@0.5=vgg16#1")
        result = schedule_jobs(fleet(), faults=spec, fault_seed=0)
        record = next(r for r in result.records
                      if r.job.name == "vgg16#1")
        assert record.evictions == 1
        assert record.state is JobState.FINISHED
        assert record.requeued_at == 0.5
        event = next(e for e in result.fault_report.events
                     if e.kind == "eviction")
        assert event.outcome == "recovered"
        assert result.fault_report.recovery_rate == 1.0

    def test_evicting_absent_job_is_recorded_noop(self):
        spec = FaultSpec.parse("evict@0.5=ghost")
        result = schedule_jobs(fleet(), faults=spec)
        event = result.fault_report.events[0]
        assert event.target == "ghost" and "no-op" in event.detail
        assert all(r.state is JobState.FINISHED for r in result.records)

    def test_shrink_updates_budget_timeline(self):
        spec = FaultSpec.parse("shrink@0.3=0.25")
        result = schedule_jobs(fleet(), faults=spec, fault_seed=3)
        assert len(result.budget_timeline) == 2
        (t0, full), (t1, cut) = result.budget_timeline
        assert t1 == 0.3 and cut == full // 4
        assert result.budget_bytes == cut
        assert result.budget_at(0.0) == full
        assert result.budget_at(0.3) == cut
        shrink = next(e for e in result.fault_report.events
                      if e.kind == "budget-shrink")
        assert shrink.nbytes == cut

    def test_shrink_evicts_blockers_and_degrades_rungs(self):
        spec = FaultSpec.parse("shrink@0.3=0.25")
        result = schedule_jobs(fleet(), faults=spec, fault_seed=3)
        assert result.evicted
        # Every evicted job either finished (possibly on a cheaper rung)
        # or was rejected with a structured reason — never left limbo.
        for record in result.evicted:
            assert record.state in (JobState.FINISHED, JobState.REJECTED)
            if record.state is JobState.REJECTED:
                assert record.failure

    def test_faulted_schedule_passes_sanitizer(self):
        spec = FaultSpec.parse("shrink@0.3=0.25,evict@0.5=resnet50#2")
        result = schedule_jobs(fleet(), faults=spec, fault_seed=3)
        report = verify_schedule(result)
        assert report.ok, report.render_text()

    def test_scheduler_fault_report_deterministic(self):
        spec = FaultSpec.parse("shrink@0.3=0.5,evict@0.5=vgg16#1")
        one = schedule_jobs(fleet(), faults=spec, fault_seed=5)
        two = schedule_jobs(fleet(), faults=spec, fault_seed=5)
        assert one.fault_report.to_json() == two.fault_report.to_json()

    def test_no_faults_bit_identical_schedule(self):
        clean = schedule_jobs(fleet())
        neutral = schedule_jobs(fleet(), faults=FaultSpec.none())
        assert neutral.timeline.events == clean.timeline.events
        assert [r.finish_time for r in neutral.records] \
            == [r.finish_time for r in clean.records]
        assert neutral.fault_report.total_faults == 0
        assert clean.fault_report is None


# ----------------------------------------------------------------------
# Scheduler liveness regressions (satellite fixes)
# ----------------------------------------------------------------------
class _FixedContention(ContentionModel):
    """Contention model pinning every tenant to one iteration time."""

    def __init__(self, iter_seconds):
        super().__init__()
        self._iter_seconds = iter_seconds

    def iteration_seconds(self, rungs):
        return [self._iter_seconds] * len(rungs)


class TestSchedulerLiveness:
    def run_with_rate(self, iter_seconds, submit_time=0.0):
        scheduler = GPUScheduler(
            budget_bytes=16 * GB,
            contention=_FixedContention(iter_seconds),
        )
        scheduler.submit(Job("j", "alexnet", 8, iterations=100,
                             submit_time=submit_time))
        return scheduler.run()

    def test_zero_cost_rung_completes_immediately(self):
        # Regression: iter_seconds == 0 used to make the event horizon
        # collapse (clock + 0 == clock) and the run loop spin forever.
        result = self.run_with_rate(0.0)
        record = result.records[0]
        assert record.state is JobState.FINISHED
        assert record.finish_time == 0.0
        assert record.residency == [(0.0, 0.0, 1)]
        assert result.final_pool_live_bytes == 0

    def test_float_underflow_progress_still_terminates(self):
        # finish == clock + tiny underflows back to clock at a large
        # submit time; the completion sweep must still collect the job.
        result = self.run_with_rate(1e-12, submit_time=1e9)
        assert result.records[0].state is JobState.FINISHED

    def test_pathological_rates_never_hang(self):
        for rate in (float("inf"), -1.0):
            try:
                result = self.run_with_rate(rate)
            except RuntimeError as error:
                assert "no progress" in str(error)
            else:
                assert result.records[0].state in (
                    JobState.FINISHED, JobState.REJECTED)


# ----------------------------------------------------------------------
# JobRecord metric hygiene (satellite fixes)
# ----------------------------------------------------------------------
class TestJobRecordMetrics:
    def rejected_record(self):
        result = schedule_jobs(
            [Job("big", "vgg16", 64, iterations=5, deadline=1e9)],
            budget_bytes=256 * MB,
        )
        return result.records[0]

    def test_rejected_job_has_no_completion_time(self):
        record = self.rejected_record()
        assert record.state is JobState.REJECTED
        assert record.finish_time is not None  # rejection instant
        assert record.completion_time is None
        assert record.service_time is None
        assert record.slowdown is None

    def test_rejected_job_never_meets_deadline(self):
        record = self.rejected_record()
        assert record.deadline_met is False

    def test_finished_job_deadline_semantics(self):
        result = schedule_jobs(
            [Job("j", "alexnet", 8, iterations=5, deadline=1e9)])
        record = result.records[0]
        assert record.state is JobState.FINISHED
        assert record.deadline_met is True
        assert record.completion_time == pytest.approx(record.finish_time)

    @pytest.mark.parametrize("batch", [0, -8])
    def test_nonpositive_batch_rejected(self, batch):
        with pytest.raises(ValueError, match="batch_size"):
            Job("j", "vgg16", batch_size=batch)

    @pytest.mark.parametrize("spec", ["vgg16:0", "vgg16:-8:10"])
    def test_parse_nonpositive_batch_rejected(self, spec):
        with pytest.raises(ValueError):
            Job.parse(spec)


# ----------------------------------------------------------------------
# FaultReport aggregation
# ----------------------------------------------------------------------
class TestFaultReport:
    def test_empty_report_is_perfect(self):
        report = FaultReport(spec=FaultSpec.none(), seed=0)
        assert report.recovery_rate == 1.0
        assert report.total_faults == 0 and report.retries == 0

    def test_recovery_rate_counts_only_failures(self):
        from repro.faults import FaultEvent

        report = FaultReport(spec=FaultSpec.none(), seed=0)
        for outcome in ("recovered", "degraded", "deferred", "fatal"):
            report.add(FaultEvent(kind="dma-offload", time=0.0,
                                  target="x", outcome=outcome))
        assert report.recovery_rate == pytest.approx(0.75)
        assert report.outcomes == {
            "recovered": 1, "degraded": 1, "deferred": 1, "fatal": 1}

    def test_json_sorted_and_stable(self):
        report = FaultReport(spec=FaultSpec.parse("dma=0.1"), seed=4)
        text = report.to_json()
        assert text == report.to_json()
        assert text.index('"events"') < text.index('"seed"')

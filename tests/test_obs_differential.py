"""Differential suite: instrumentation is bit-neutral.

Every simulated quantity — iteration results, timelines, usage curves,
schedule reports, fault reports — must be *byte-identical* whether a
run carries an :class:`repro.obs.Instrumentation` object or not.  The
hooks only read values the simulation already computed; these tests pin
that contract across the whole zoo, every policy, faulted runs, and
multi-tenant schedules.
"""

import pytest

from repro.cli import DEFAULT_WORKLOAD, main
from repro.core.api import evaluate
from repro.faults import FaultSpec
from repro.obs import Instrumentation
from repro.sched import Job, schedule_jobs, schedule_report
from repro.zoo import available, build

POLICIES = ("all", "conv", "dyn", "base", "none")


def _headline_jobs():
    return [Job.parse(spec, index)
            for index, spec in enumerate(DEFAULT_WORKLOAD.split(","))]


def _assert_results_identical(plain, instrumented):
    assert instrumented == plain
    assert instrumented.timeline.events == plain.timeline.events
    assert instrumented.usage.curve() == plain.usage.curve()


def _assert_schedules_identical(plain, instrumented):
    assert schedule_report(instrumented) == schedule_report(plain)
    assert instrumented.timeline.events == plain.timeline.events
    assert instrumented.usage.curve() == plain.usage.curve()
    assert instrumented.budget_timeline == plain.budget_timeline
    assert instrumented.final_pool_live_bytes == plain.final_pool_live_bytes
    assert instrumented.makespan == plain.makespan
    if plain.fault_report is not None:
        assert (instrumented.fault_report.to_json()
                == plain.fault_report.to_json())


# ----------------------------------------------------------------------
# Single-iteration runs: whole zoo x every policy
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", available())
def test_zoo_network_bit_neutral(name):
    network = build(name)
    for policy in POLICIES:
        plain = evaluate(network, policy=policy, use_cache=False)
        obs = Instrumentation()
        instrumented = evaluate(network, policy=policy, use_cache=False,
                                obs=obs)
        _assert_results_identical(plain, instrumented)
        # The observer must actually have observed: every vDNN policy
        # moves DMA traffic, the baseline at least samples the pool.
        assert len(obs.registry) > 0


# ----------------------------------------------------------------------
# Faulted runs: results AND FaultReport JSON byte-identical
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec_str", [
    "dma=0.15",
    "dma=0.05,pcie=0.7,jitter=0.1",
])
@pytest.mark.parametrize("policy", ["all", "conv"])
def test_faulted_run_bit_neutral(spec_str, policy):
    network = build("alexnet", 128)
    spec = FaultSpec.parse(spec_str)
    plain = evaluate(network, policy=policy, faults=spec, fault_seed=7)
    obs = Instrumentation()
    instrumented = evaluate(network, policy=policy, faults=spec,
                            fault_seed=7, obs=obs)
    _assert_results_identical(plain, instrumented)
    assert (instrumented.fault_report.to_json(indent=2)
            == plain.fault_report.to_json(indent=2))


# ----------------------------------------------------------------------
# Multi-tenant schedules: three workloads
# ----------------------------------------------------------------------
def test_schedule_headline_bit_neutral():
    plain = schedule_jobs(_headline_jobs())
    obs = Instrumentation()
    instrumented = schedule_jobs(_headline_jobs(), obs=obs)
    _assert_schedules_identical(plain, instrumented)
    assert len(obs.spans) > 0


def test_schedule_contended_bit_neutral():
    def jobs():
        import dataclasses

        return [dataclasses.replace(job, submit_time=float(index) * 2.0)
                for index, job in enumerate(_headline_jobs())]

    budget = 4 * (1 << 30)
    for policy in ("fifo", "sjf", "best_fit"):
        plain = schedule_jobs(jobs(), policy=policy, budget_bytes=budget)
        obs = Instrumentation()
        instrumented = schedule_jobs(jobs(), policy=policy,
                                     budget_bytes=budget, obs=obs)
        _assert_schedules_identical(plain, instrumented)


def test_schedule_faulted_bit_neutral():
    spec = FaultSpec.parse("shrink@8=0.4,evict@3=vgg16#1")
    plain = schedule_jobs(_headline_jobs(), faults=spec, fault_seed=1)
    obs = Instrumentation()
    instrumented = schedule_jobs(_headline_jobs(), faults=spec,
                                 fault_seed=1, obs=obs)
    _assert_schedules_identical(plain, instrumented)
    # Settled outcomes were mirrored into the fault counter family.
    fault_counters = [m for m in obs.registry.metrics()
                      if m.name == "repro_faults_total"]
    assert sum(int(c.value) for c in fault_counters) \
        == len(plain.fault_report.events)


# ----------------------------------------------------------------------
# The sanitizer stays clean on instrumented runs
# ----------------------------------------------------------------------
def test_sanitizer_clean_on_instrumented_iteration():
    from repro.analysis.verify import verify_result

    network = build("vgg16", 64)
    obs = Instrumentation()
    result = evaluate(network, policy="all", algo="m", verify=True, obs=obs)
    report = verify_result(result, network=network)
    assert report.ok, report.render_text()


def test_sanitizer_clean_on_instrumented_schedule():
    from repro.analysis.verify import verify_schedule

    obs = Instrumentation()
    result = schedule_jobs(_headline_jobs(), obs=obs)
    report = verify_schedule(result)
    assert report.ok, report.render_text()


# ----------------------------------------------------------------------
# The compiled-plan fast path: warm plan-cache runs stay bit-neutral
# ----------------------------------------------------------------------
# ``compiled_plan`` memoizes per-(network, system, algos) plans in a
# weak-keyed cache, so the second simulation of one network object
# takes the warm fast path (no liveness/latency rebuild).  verify=True
# and Instrumentation must perturb nothing on that path either — the
# debug hooks read plan fields instead of recomputing them, and these
# tests pin that a warm instrumented/traced run is event-for-event
# identical to a cold plain one.
def _warm_plan_case():
    from repro.core.algo_config import AlgoConfig
    from repro.core.executor import simulate_vdnn
    from repro.core.plan import compiled_plan
    from repro.core.policy import TransferPolicy
    from repro.hw import PAPER_SYSTEM

    network = build("googlenet", 64)
    algos = AlgoConfig.memory_optimal(network)
    policy = TransferPolicy.vdnn_all()
    cold = simulate_vdnn(network, PAPER_SYSTEM, policy, algos)
    # Same object out of the cache == the fast path is actually taken.
    plan = compiled_plan(network, PAPER_SYSTEM, algos)
    assert compiled_plan(network, PAPER_SYSTEM, algos) is plan
    return network, PAPER_SYSTEM, policy, algos, cold


def test_warm_plan_instrumented_bit_neutral():
    from repro.core.executor import simulate_vdnn

    network, system, policy, algos, cold = _warm_plan_case()
    obs = Instrumentation()
    warm = simulate_vdnn(network, system, policy, algos, obs=obs)
    _assert_results_identical(cold, warm)
    assert len(obs.registry) > 0


def _assert_traced_matches(plain, traced):
    """Traced == plain, modulo the documented SYNC debug markers.

    ``verify=True`` adds zero-duration SYNC events to the timeline (the
    ordering edges the sanitizer checks) — by design, in the legacy
    core too.  Everything *simulated* must still match bit for bit:
    every non-SYNC event, the usage curve, and all summary quantities.
    """
    from repro.sim.timeline import EventKind

    real = [e for e in traced.timeline.events
            if e.kind is not EventKind.SYNC]
    assert real == plain.timeline.events
    assert traced.usage.curve() == plain.usage.curve()
    for attr in ("trainable", "managed_max_bytes", "managed_avg_bytes",
                 "external_bytes", "persistent_bytes", "total_time",
                 "feature_extraction_time", "offload_bytes",
                 "prefetch_bytes", "pinned_peak_bytes",
                 "compute_stall_seconds", "offloaded_layers"):
        assert getattr(traced, attr) == getattr(plain, attr), attr


def test_warm_plan_verify_bit_neutral():
    from repro.analysis.verify import verify_result
    from repro.core.executor import simulate_vdnn

    network, system, policy, algos, cold = _warm_plan_case()
    traced = simulate_vdnn(network, system, policy, algos, verify=True)
    _assert_traced_matches(cold, traced)
    assert traced.schedule_trace is not None
    assert len(traced.schedule_trace) > 0
    report = verify_result(traced, network=network)
    assert report.ok, report.render_text()


def test_warm_plan_verify_and_obs_together():
    from repro.core.executor import simulate_vdnn

    network, system, policy, algos, cold = _warm_plan_case()
    obs = Instrumentation()
    both = simulate_vdnn(network, system, policy, algos, verify=True,
                         obs=obs)
    _assert_traced_matches(cold, both)


# ----------------------------------------------------------------------
# CLI: --metrics appends an export without touching the report
# ----------------------------------------------------------------------
def test_cli_evaluate_report_unchanged_by_metrics(capsys):
    assert main(["evaluate", "alexnet"]) == 0
    plain = capsys.readouterr().out
    assert main(["evaluate", "alexnet", "--metrics"]) == 0
    with_metrics = capsys.readouterr().out
    assert with_metrics.startswith(plain)
    assert "repro_pcie_bytes_total" in with_metrics


def test_cli_schedule_report_unchanged_by_metrics(capsys):
    assert main(["schedule"]) == 0
    plain = capsys.readouterr().out
    assert main(["schedule", "--metrics"]) == 0
    with_metrics = capsys.readouterr().out
    assert with_metrics.startswith(plain.rstrip("\n"))
    assert "repro_sched_jobs_total" in with_metrics

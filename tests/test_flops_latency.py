"""Tests for FLOP counting and the roofline latency model."""

import pytest

from repro.graph import NetworkBuilder
from repro.hw import TITAN_X
from repro.kernels import (
    AlgoProfile,
    ConvAlgo,
    KERNEL_LAUNCH_OVERHEAD,
    LatencyModel,
    backward_cost,
    forward_cost,
    is_compute_bound,
)

from conftest import make_linear_cnn


def single_conv_net(batch=8, channels=16, size=32):
    return (NetworkBuilder("one-conv", (batch, 3, size, size))
            .conv(channels, kernel=3, pad=1, name="conv")
            .fc(10, name="fc").softmax().build())


class TestFlopCounts:
    def test_conv_forward_flops_formula(self):
        net = single_conv_net(batch=8, channels=16, size=32)
        conv = net.node("conv")
        cost = forward_cost(conv, net[0].output_spec)
        expected = 2.0 * 8 * 16 * 3 * 3 * 3 * 32 * 32
        assert cost.flops == expected

    def test_conv_backward_is_twice_forward(self):
        net = single_conv_net()
        conv = net.node("conv")
        fwd = forward_cost(conv, net[0].output_spec)
        bwd = backward_cost(conv, net[0].output_spec)
        assert bwd.flops == 2 * fwd.flops

    def test_fc_forward_flops(self):
        net = single_conv_net(batch=4, channels=8, size=8)
        fc = net.node("fc")
        input_spec = net[fc.producers[0]].output_spec
        cost = forward_cost(fc, input_spec)
        assert cost.flops == 2.0 * 4 * (8 * 8 * 8) * 10

    def test_actv_is_bandwidth_dominated(self, linear_cnn):
        relu = linear_cnn.node("relu_1")
        input_spec = linear_cnn[relu.producers[0]].output_spec
        cost = forward_cost(relu, input_spec)
        # A few flops per element, two touches per element.
        assert cost.dram_bytes == 2 * relu.output_spec.nbytes

    def test_compute_bound_classification(self, linear_cnn):
        assert is_compute_bound(linear_cnn.node("conv_1"))
        assert is_compute_bound(linear_cnn.node("fc_1"))
        assert not is_compute_bound(linear_cnn.node("pool_1"))
        assert not is_compute_bound(linear_cnn.node("relu_1"))


class TestLatencyModel:
    def test_every_kernel_has_launch_overhead(self, linear_cnn):
        model = LatencyModel(TITAN_X)
        for node in linear_cnn.nodes[1:]:
            assert model.forward(linear_cnn, node).seconds >= KERNEL_LAUNCH_OVERHEAD

    def test_faster_algo_shortens_conv(self):
        net = single_conv_net(batch=64, channels=64, size=64)
        model = LatencyModel(TITAN_X)
        conv = net.node("conv")
        slow = model.forward(net, conv, AlgoProfile(ConvAlgo.IMPLICIT_GEMM, 0, 1.3))
        fast = model.forward(net, conv, AlgoProfile(ConvAlgo.FFT, 1 << 20, 0.62))
        assert fast.seconds < slow.seconds

    def test_bandwidth_floor_applies(self):
        # A pooling layer's latency is set by bytes, not flops.
        net = make_linear_cnn(batch=64, size=64)
        model = LatencyModel(TITAN_X)
        pool = net.node("pool_1")
        timing = model.forward(net, pool)
        expected = timing.dram_bytes / TITAN_X.effective_bandwidth
        assert timing.seconds == pytest.approx(expected + KERNEL_LAUNCH_OVERHEAD)

    def test_dram_bandwidth_never_exceeds_peak(self, linear_cnn):
        model = LatencyModel(TITAN_X)
        for node in linear_cnn.nodes[1:]:
            for timing in (model.forward(linear_cnn, node),
                           model.backward(linear_cnn, node)):
                assert timing.dram_bandwidth <= TITAN_X.dram_bandwidth

    def test_iteration_time_sums_both_directions(self, linear_cnn):
        model = LatencyModel(TITAN_X)
        total = model.iteration_compute_time(linear_cnn)
        fwd = sum(model.forward(linear_cnn, n).seconds
                  for n in linear_cnn.nodes)
        bwd = sum(model.backward(linear_cnn, linear_cnn[i]).seconds
                  for i in linear_cnn.backward_schedule())
        assert total == pytest.approx(fwd + bwd)

    def test_feature_extraction_only_is_shorter(self, linear_cnn):
        model = LatencyModel(TITAN_X)
        assert model.iteration_compute_time(
            linear_cnn, feature_extraction_only=True
        ) < model.iteration_compute_time(linear_cnn)

    def test_vgg16_first_layer_reuse_scale(self):
        # The paper: >1200 ms reuse distance for VGG-16 (64)'s first
        # layer, i.e. a full iteration takes on the order of a second.
        from repro.zoo import build_vgg16
        from repro.core import AlgoConfig
        net = build_vgg16(64)
        model = LatencyModel(TITAN_X)
        algos = AlgoConfig.performance_optimal(net)
        total = model.iteration_compute_time(net, algos.profiles)
        assert 0.4 <= total <= 4.0

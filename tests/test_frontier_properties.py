"""Property suite for the compression model and checkpoint planner.

Hypothesis pins the algebraic laws the cDMA + joint-planner frontier
rests on, over random model parameters and random network topologies:

* **Compression laws** — the wire ratio always lands in ``(0, 1]``, is
  monotone non-increasing in sparsity (more zeros never cost more wire
  bytes), and a compressed transfer never exceeds its raw size.
* **Recompute laws** — every checkpoint plan is a true partition of
  the droppable storages, a budgeted ``plan_recompute`` never adopts a
  plan that misses its budget, and the checkpoint-everything plan
  degenerates to the baseline: nothing dropped, zero replay seconds.
* **Joint laws** — the planner's adopted config keeps its three
  per-layer decision sets disjoint, and only spends actions on actual
  offload triggers.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AlgoConfig, UntrainableError
from repro.core.joint import plan_joint
from repro.core.liveness import LivenessAnalysis
from repro.core.recompute import (
    checkpoint_plan,
    droppable_count,
    plan_recompute,
    simulate_recompute,
)
from repro.hw import PAPER_SYSTEM
from repro.hw.compression import CDMA_ENGINE, CompressionModel

from test_properties import random_dag_network, random_linear_network


# ----------------------------------------------------------------------
# Compression-model laws
# ----------------------------------------------------------------------
@st.composite
def compression_models(draw):
    """Random but physically sane engine parameters."""
    return CompressionModel(
        engine_latency=draw(st.floats(0.0, 1e-3)),
        base_sparsity=draw(st.floats(0.0, 1.0)),
        depth_sparsity=draw(st.floats(0.0, 1.0)),
        metadata_overhead=draw(st.floats(0.0, 0.5)),
        min_ratio=draw(st.floats(0.01, 1.0)),
    )


@settings(max_examples=100, deadline=None)
@given(model=compression_models(), relu=st.booleans(),
       position=st.floats(-1.0, 2.0))
def test_wire_ratio_in_unit_interval(model, relu, position):
    ratio = model.ratio(relu, position)
    assert 0.0 < ratio <= 1.0
    sparsity = model.sparsity(relu, position)
    assert 0.0 <= sparsity <= 1.0


@settings(max_examples=100, deadline=None)
@given(model=compression_models(),
       p1=st.floats(0.0, 1.0), p2=st.floats(0.0, 1.0))
def test_ratio_monotone_in_sparsity(model, p1, p2):
    """More zeros never cost more wire bytes (cDMA Fig. 4 law)."""
    lo, hi = min(p1, p2), max(p1, p2)
    assert model.sparsity(True, lo) <= model.sparsity(True, hi)
    assert model.ratio(True, lo) >= model.ratio(True, hi)
    # Dense (non-ReLU) data is the worst case at any depth.
    assert model.ratio(False, hi) >= model.ratio(True, hi)


@settings(max_examples=100, deadline=None)
@given(model=compression_models(), relu=st.booleans(),
       position=st.floats(0.0, 1.0),
       nbytes=st.integers(0, 1 << 34))
def test_compressed_never_exceeds_raw(model, relu, position, nbytes):
    wire = model.compressed_bytes(nbytes, relu, position)
    assert wire <= nbytes
    if nbytes > 0:
        assert wire >= 1  # a transfer never vanishes entirely
    else:
        assert wire == 0


def test_default_engine_matches_cdma_paper():
    """The stock engine sits inside the paper's measured 45-90% band."""
    assert CDMA_ENGINE.sparsity(True, 0.0) == pytest.approx(0.45)
    assert CDMA_ENGINE.sparsity(True, 1.0) == pytest.approx(0.80)
    assert CDMA_ENGINE.sparsity(False, 0.5) == 0.0


# ----------------------------------------------------------------------
# Checkpoint/recompute laws
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(network=random_dag_network(),
       segments=st.one_of(st.none(), st.integers(1, 12)))
def test_checkpoint_plan_partitions_droppable(network, segments):
    """checkpoints and dropped partition the droppable set exactly."""
    liveness = LivenessAnalysis(network)
    plan = checkpoint_plan(network, liveness, segments)
    droppable = set(plan.droppable_order)
    assert len(plan.droppable_order) == len(droppable)
    assert len(droppable) == droppable_count(network, liveness)
    assert set(plan.checkpoints) | set(plan.dropped) == droppable
    assert not set(plan.checkpoints) & set(plan.dropped)
    if droppable:
        count = len(droppable)
        stride = max(1, math.ceil(count / (segments or
                                           max(1, math.isqrt(count)))))
        assert len(plan.checkpoints) == math.ceil(count / stride)


@settings(max_examples=10, deadline=None)
@given(network=random_linear_network())
def test_checkpoint_everything_is_baseline(network):
    """One checkpoint per droppable storage ≡ no recomputation at all."""
    liveness = LivenessAnalysis(network)
    count = droppable_count(network, liveness)
    if count == 0:
        return
    plan = checkpoint_plan(network, liveness, count)
    assert plan.dropped == frozenset()
    algos = AlgoConfig.memory_optimal(network)
    result = simulate_recompute(network, PAPER_SYSTEM, algos, count)
    assert result.compute_stall_seconds == 0.0  # zero replay seconds


@settings(max_examples=10, deadline=None)
@given(network=random_linear_network())
def test_plan_recompute_respects_budget(network):
    """A plan adopted under budget actually fits that budget."""
    algos = AlgoConfig.memory_optimal(network)
    floor = simulate_recompute(network, PAPER_SYSTEM, algos, 1)
    budget = int(floor.max_usage_bytes * 1.5) + 1
    plan = plan_recompute(network, PAPER_SYSTEM, algos,
                          budget_bytes=budget, use_cache=False)
    assert plan.result.max_usage_bytes <= budget
    # Probes walk descending segment counts; the adopted probe is the
    # first (largest-checkpoint-count) one that fits.
    assert plan.probes[-1][1] is True
    for _segments, fits in plan.probes[:-1]:
        assert fits is False


# ----------------------------------------------------------------------
# Joint-planner laws
# ----------------------------------------------------------------------
@settings(max_examples=8, deadline=None)
@given(network=random_linear_network(),
       fraction=st.floats(0.4, 1.0))
def test_joint_config_sets_disjoint(network, fraction):
    """Adopted joint configs never double-book a layer's strategy."""
    from repro.core.plan import compiled_plan
    from repro.core import TransferPolicy

    floor = compiled_plan(
        network, PAPER_SYSTEM, AlgoConfig.memory_optimal(network))
    triggers = set(floor.offload_indices(
        TransferPolicy.vdnn_all(), network))
    budget = int(PAPER_SYSTEM.gpu.memory_bytes * fraction)
    system = PAPER_SYSTEM.with_gpu_memory(budget)
    try:
        plan = plan_joint(network, system, use_cache=False)
    except UntrainableError:
        return
    config = plan.config
    assert not config.offload & config.compress
    assert not config.offload & config.drop
    assert not config.compress & config.drop
    assert (config.offload | config.compress | config.drop) <= triggers
    assert plan.result.trainable

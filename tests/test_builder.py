"""Tests for the fluent NetworkBuilder."""

import pytest

from repro.graph import LayerKind, NetworkBuilder, PoolMode


class TestLinearBuilding:
    def test_chain_connects_sequentially(self):
        net = (NetworkBuilder("t", (2, 3, 8, 8))
               .conv(4, kernel=3, pad=1).relu().pool()
               .fc(10).softmax().build())
        kinds = [n.kind for n in net]
        assert kinds == [LayerKind.INPUT, LayerKind.CONV, LayerKind.ACTV,
                         LayerKind.POOL, LayerKind.FC, LayerKind.SOFTMAX]

    def test_auto_names_are_unique_and_numbered(self):
        net = (NetworkBuilder("t", (2, 3, 8, 8))
               .conv(4, kernel=1).conv(4, kernel=1)
               .fc(10).softmax().build())
        names = [n.name for n in net]
        assert "conv_01" in names and "conv_02" in names
        assert len(names) == len(set(names))

    def test_explicit_names_respected(self):
        net = (NetworkBuilder("t", (2, 3, 8, 8))
               .conv(4, kernel=1, name="first")
               .fc(10, name="clf").softmax().build())
        assert net.node("first").kind is LayerKind.CONV
        assert net.node("clf").kind is LayerKind.FC

    def test_conv_relu_composite(self):
        net = (NetworkBuilder("t", (2, 3, 8, 8))
               .conv_relu(4, kernel=3, pad=1)
               .fc(10).softmax().build())
        assert [n.kind for n in net][1:3] == [LayerKind.CONV, LayerKind.ACTV]

    def test_pool_modes(self):
        net = (NetworkBuilder("t", (2, 3, 8, 8))
               .pool(mode=PoolMode.AVG, name="avg")
               .fc(10).softmax().build())
        assert net.node("avg").layer.mode is PoolMode.AVG


class TestBranching:
    def test_tap_and_after(self):
        b = NetworkBuilder("t", (2, 3, 8, 8))
        b.conv(4, kernel=3, pad=1, name="trunk")
        fork = b.tap()
        assert fork == "trunk"
        b.conv(2, kernel=1, name="left", after=fork)
        l = b.tap()
        b.conv(2, kernel=1, name="right", after=fork)
        r = b.tap()
        b.concat([l, r], name="join").fc(10).softmax()
        net = b.build()
        assert net.node("trunk").refcount == 2
        assert net.node("join").output_spec.shape[1] == 4

    def test_at_moves_cursor(self):
        b = NetworkBuilder("t", (2, 3, 8, 8))
        b.conv(4, kernel=1, name="a").conv(4, kernel=1, name="b")
        b.at("a").conv(4, kernel=1, name="c")
        net = b.fc(10).softmax().build()
        assert net.node("c").producers == [net.node("a").index]

    def test_at_unknown_layer_raises(self):
        b = NetworkBuilder("t", (2, 3, 8, 8))
        with pytest.raises(ValueError):
            b.at("missing")


class TestInception:
    def test_module_structure(self):
        b = NetworkBuilder("t", (2, 3, 32, 32))
        b.conv(8, kernel=3, pad=1, name="stem").relu(name="stem_relu")
        b.inception(4, 2, 8, 2, 4, 4, name="m")
        net = b.pool().fc(10).softmax().build()

        out = net.node("m_out")
        assert out.kind is LayerKind.CONCAT
        # Output channels = 1x1 + 3x3 + 5x5 + pool-proj branches.
        assert out.output_spec.shape[1] == 4 + 8 + 4 + 4
        # The module input feeds four branches.
        assert net.node("stem_relu").refcount == 4

    def test_module_preserves_spatial_dims(self):
        b = NetworkBuilder("t", (2, 3, 16, 16))
        b.conv(8, kernel=3, pad=1, name="stem").relu()
        b.inception(4, 2, 8, 2, 4, 4, name="m")
        net = b.fc(10).softmax().build()
        assert net.node("m_out").output_spec.shape[2:] == (16, 16)

"""Tests for EltwiseMul and the unrolled LSTM."""

import numpy as np
import pytest

from repro.core import TransferPolicy, evaluate
from repro.graph import EltwiseMul, LayerKind, NetworkBuilder, TensorSpec
from repro.numerics import TrainingRuntime, make_batch, ops
from repro.zoo import build, build_unrolled_lstm

X = TensorSpec((2, 8))


class TestEltwiseMulLayer:
    def test_shape_preserving(self):
        mul = EltwiseMul("m", inputs=["a", "b"])
        assert mul.infer_output([X, X]) == X

    def test_exactly_two_inputs(self):
        with pytest.raises(ValueError):
            EltwiseMul("m", inputs=["a"]).infer_output([X])
        with pytest.raises(ValueError):
            EltwiseMul("m").infer_output([X, X, X])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            EltwiseMul("m").infer_output([X, TensorSpec((2, 4))])

    def test_backward_reads_both_operands(self):
        # The key liveness difference from ADD.
        assert EltwiseMul("m").backward_needs_x

    def test_numerics_gradient(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((3, 4)).astype(np.float32)
        b = rng.standard_normal((3, 4)).astype(np.float32)
        dy = rng.standard_normal((3, 4)).astype(np.float32)
        da, db = ops.eltwise_mul_backward(a, b, dy)
        np.testing.assert_allclose(da, dy * b, rtol=1e-6)
        np.testing.assert_allclose(db, dy * a, rtol=1e-6)

    def test_mul_operand_storages_survive_for_backward(self):
        """Both MUL inputs appear in the storage's backward users."""
        from repro.core import LivenessAnalysis
        b = NetworkBuilder("gate", (2, 8, 1, 1))
        b.fc(8, name="a").sigmoid(name="sa")
        left = b.tap()
        b.fc(8, name="b", after="input_01").tanh(name="tb")
        right = b.tap()
        b.mul([left, right], name="gate")
        net = b.fc(4).softmax().build()
        liveness = LivenessAnalysis(net)
        gate = net.node("gate").index
        for branch in ("a", "b"):
            storage = liveness.storage_of(net.node(branch).index)
            assert gate in storage.backward_users


class TestUnrolledLSTM:
    def test_structure(self):
        net = build_unrolled_lstm(timesteps=3, input_dim=8, hidden_dim=16,
                                  num_classes=4, batch_size=2)
        muls = net.layers_of_kind(LayerKind.MUL)
        # t=1: ig, h; t>=2: ig, fc, h  ->  2 + 3*(T-1).
        assert len(muls) == 2 + 3 * 2
        owners = {n.name for n in net.layers_of_kind(LayerKind.FC)
                  if not n.is_weight_tied}
        assert owners == {"W_xi", "W_xo", "W_xg", "W_xf",
                          "W_hi", "W_hf", "W_ho", "W_hg", "head"}

    def test_no_dead_forget_gate_at_step_one(self):
        net = build_unrolled_lstm(timesteps=3, input_dim=8, hidden_dim=16,
                                  num_classes=4, batch_size=2)
        names = {n.name for n in net}
        assert "f_t01" not in names
        assert "f_t02" in names
        # Every non-terminal node has a consumer (no dead ends).
        for node in net:
            if node is not net.output_node:
                assert node.consumers, f"{node.name} is a dead end"

    def test_simulation_under_all_policies(self):
        net = build_unrolled_lstm(4, 8, 16, 4, 4)
        for policy in ("all", "none", "base", "dyn"):
            assert evaluate(net, policy=policy).trainable, policy

    @pytest.mark.parametrize("strategy", ["offload", "recompute", "hybrid"])
    def test_training_bit_identical(self, strategy):
        def factory():
            return build_unrolled_lstm(4, 8, 16, 4, 4)
        images, labels = make_batch((4, 32, 1, 1), 4, 0)
        ref = TrainingRuntime(factory(), TransferPolicy.none(), seed=0)
        if strategy == "offload":
            alt = TrainingRuntime(factory(), TransferPolicy.vdnn_all(), seed=0)
        elif strategy == "recompute":
            alt = TrainingRuntime(factory(), TransferPolicy.none(), seed=0,
                                  recompute_segments=4)
        else:
            alt = TrainingRuntime(factory(), TransferPolicy.vdnn_all(), seed=0,
                                  recompute_segments=4)
        for _ in range(3):
            a = ref.train_step(images, labels)
            b = alt.train_step(images, labels)
            assert a.loss == b.loss
        assert ref.parameter_fingerprint() == alt.parameter_fingerprint()

    def test_lstm_learns_under_offload(self):
        runtime = TrainingRuntime(build_unrolled_lstm(4, 8, 16, 4, 8),
                                  TransferPolicy.vdnn_all(), seed=1,
                                  learning_rate=0.2)
        images, labels = make_batch((8, 32, 1, 1), 4, 0)
        losses = [runtime.train_step(images, labels).loss
                  for _ in range(20)]
        assert losses[-1] < losses[0] * 0.75
        assert runtime.host.offload_count > 0

    def test_registry(self):
        assert build("lstm", 4).name == "LSTM-T8(4)"

    def test_validation(self):
        with pytest.raises(ValueError):
            build_unrolled_lstm(timesteps=0)

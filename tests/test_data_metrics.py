"""Tests for the synthetic dataset generators and accuracy metrics."""

import numpy as np
import pytest

from repro.core import TransferPolicy
from repro.graph import NetworkBuilder
from repro.numerics import (
    TrainingRuntime,
    accuracy,
    blob_batch,
    blob_stream,
    top_k_accuracy,
)


class TestBlobDataset:
    def test_shapes_and_dtypes(self):
        images, labels = blob_batch(8, image_size=16, num_classes=4, seed=0)
        assert images.shape == (8, 3, 16, 16)
        assert images.dtype == np.float32
        assert labels.shape == (8,)
        assert set(labels) <= set(range(4))

    def test_deterministic_per_seed(self):
        a = blob_batch(4, seed=7)
        b = blob_batch(4, seed=7)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_different_seeds_differ(self):
        a = blob_batch(4, seed=1)
        b = blob_batch(4, seed=2)
        assert not np.array_equal(a[0], b[0])

    def test_blob_brightens_label_region(self):
        # Same-label images share blob placement; the mean image of one
        # class must peak away from the center of another class's blob.
        images, labels = blob_batch(64, image_size=16, num_classes=2,
                                    seed=0, noise=0.05)
        class0 = images[labels == 0].mean(axis=(0, 1))
        class1 = images[labels == 1].mean(axis=(0, 1))
        assert np.unravel_index(class0.argmax(), class0.shape) != \
            np.unravel_index(class1.argmax(), class1.shape)

    def test_stream_is_deterministic(self):
        a = blob_stream(2, seed=3)
        b = blob_stream(2, seed=3)
        for _ in range(3):
            xa, ya = next(a)
            xb, yb = next(b)
            np.testing.assert_array_equal(xa, xb)
            np.testing.assert_array_equal(ya, yb)

    def test_class_count_validation(self):
        with pytest.raises(ValueError):
            blob_batch(4, num_classes=1)


class TestMetrics:
    def test_accuracy_perfect(self):
        probs = np.eye(4, dtype=np.float32)
        labels = np.arange(4)
        assert accuracy(probs, labels) == 1.0

    def test_accuracy_zero(self):
        probs = np.eye(4, dtype=np.float32)
        labels = (np.arange(4) + 1) % 4
        assert accuracy(probs, labels) == 0.0

    def test_top_k_catches_near_misses(self):
        probs = np.array([[0.4, 0.35, 0.25]], dtype=np.float32)
        labels = np.array([1])
        assert accuracy(probs, labels) == 0.0
        assert top_k_accuracy(probs, labels, k=2) == 1.0

    def test_top_k_saturates(self):
        probs = np.random.default_rng(0).random((4, 3)).astype(np.float32)
        labels = np.zeros(4, dtype=int)
        assert top_k_accuracy(probs, labels, k=3) == 1.0


class TestLearnability:
    def test_cnn_learns_blobs_under_offload(self):
        """A tiny CNN beats chance on the blob task while training
        entirely through the vDNN offload path."""
        net = (NetworkBuilder("t", (16, 3, 12, 12))
               .conv(8, kernel=3, pad=1).relu().pool()
               .fc(4).softmax().build())
        runtime = TrainingRuntime(net, TransferPolicy.vdnn_all(), seed=1,
                                  learning_rate=0.08)
        for step in range(40):
            images, labels = blob_batch(16, image_size=12, num_classes=4,
                                        seed=step)
            runtime.train_step(images, labels)
        holdout = blob_batch(16, image_size=12, num_classes=4, seed=10_001)
        acc = accuracy(runtime.predict(holdout[0]), holdout[1])
        assert acc > 0.5  # chance is 0.25
        assert runtime.host.offload_count > 0

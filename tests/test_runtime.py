"""Tests for the functional training runtime under memory managers."""

import numpy as np
import pytest

from repro.core import TransferPolicy
from repro.graph import NetworkBuilder
from repro.numerics import (
    DeviceOOMError,
    HeapError,
    TrainingRuntime,
    make_batch,
)

from conftest import make_deep_cnn, make_fork_join_cnn, make_linear_cnn


POLICIES = {
    "none": TransferPolicy.none,
    "all": TransferPolicy.vdnn_all,
    "conv": TransferPolicy.vdnn_conv,
}


def run_losses(factory, policy_name, steps=4, seed=0, **kwargs):
    runtime = TrainingRuntime(factory(), POLICIES[policy_name](), seed=seed,
                              **kwargs)
    batches = [make_batch(runtime.network.input_node.output_spec.shape, 10, s)
               for s in range(steps)]
    return [runtime.train_step(x, y).loss for x, y in batches], runtime


class TestBitIdenticalTraining:
    @pytest.mark.parametrize("policy", ["all", "conv"])
    def test_linear_network(self, policy):
        ref, _ = run_losses(make_linear_cnn, "none")
        got, runtime = run_losses(make_linear_cnn, policy)
        assert got == ref
        if policy == "all":
            assert runtime.host.offload_count > 0

    @pytest.mark.parametrize("policy", ["all", "conv"])
    def test_fork_join_network(self, policy):
        ref, _ = run_losses(make_fork_join_cnn, "none")
        got, _ = run_losses(make_fork_join_cnn, policy)
        assert got == ref

    def test_deep_network(self):
        ref, _ = run_losses(make_deep_cnn, "none")
        got, _ = run_losses(make_deep_cnn, "all")
        assert got == ref

    def test_parameters_bitwise_identical_after_training(self):
        _, a = run_losses(make_linear_cnn, "none", steps=3)
        _, b = run_losses(make_linear_cnn, "all", steps=3)
        assert a.parameter_fingerprint() == b.parameter_fingerprint()

    def test_momentum_preserves_identity(self):
        ref, _ = run_losses(make_linear_cnn, "none", momentum=0.9)
        got, _ = run_losses(make_linear_cnn, "all", momentum=0.9)
        assert got == ref

    def test_dropout_masks_deterministic_across_policies(self):
        # The network has dropout via the budget-cnn shape.
        def factory():
            return (NetworkBuilder("drop-cnn", (4, 3, 8, 8))
                    .conv(8, kernel=3, pad=1).relu().pool()
                    .fc(16).relu().dropout(0.5)
                    .fc(10).softmax().build())
        ref, _ = run_losses(factory, "none")
        got, _ = run_losses(factory, "all")
        assert got == ref


class TestMemoryBehaviour:
    def test_vdnn_reduces_device_peak_on_deep_net(self):
        def factory():
            return make_deep_cnn(depth=8, batch=4, size=16)
        _, base = run_losses(factory, "none", steps=1)
        _, vdnn = run_losses(factory, "all", steps=1)
        assert vdnn.device.peak_bytes < base.device.peak_bytes

    def test_budget_enforced(self):
        _, probe = run_losses(make_deep_cnn, "none", steps=1)
        budget = int(probe.device.peak_bytes * 0.8)
        runtime = TrainingRuntime(make_deep_cnn(), TransferPolicy.none(),
                                  device_budget_bytes=budget, seed=0)
        images, labels = make_batch((2, 3, 8, 8), 10, 0)
        with pytest.raises(DeviceOOMError):
            runtime.train_step(images, labels)

    def test_vdnn_trains_under_budget_where_baseline_cannot(self):
        def factory():
            return make_deep_cnn(depth=8, batch=4, size=16)
        _, base = run_losses(factory, "none", steps=1)
        _, vdnn = run_losses(factory, "all", steps=1)
        budget = (base.device.peak_bytes + vdnn.device.peak_bytes) // 2

        images, labels = make_batch((4, 3, 16, 16), 10, 0)
        constrained = TrainingRuntime(factory(), TransferPolicy.vdnn_all(),
                                      device_budget_bytes=budget, seed=0)
        result = constrained.train_step(images, labels)
        assert result.loss > 0
        with pytest.raises(DeviceOOMError):
            TrainingRuntime(factory(), TransferPolicy.none(),
                            device_budget_bytes=budget, seed=0
                            ).train_step(images, labels)

    def test_no_transient_buffers_between_steps(self):
        _, runtime = run_losses(make_linear_cnn, "all", steps=2)
        assert runtime.transient_keys() == set()

    def test_offloads_matched_by_prefetches(self):
        _, runtime = run_losses(make_linear_cnn, "all", steps=3)
        assert runtime.host.offload_count == runtime.host.prefetch_count
        assert runtime.host.live_bytes == 0

    def test_no_demand_fetches_with_figure10_prefetcher(self):
        runtime = TrainingRuntime(make_deep_cnn(depth=6),
                                  TransferPolicy.vdnn_all(), seed=0)
        images, labels = make_batch((2, 3, 8, 8), 10, 0)
        result = runtime.train_step(images, labels)
        assert result.demand_fetch_count == 0

    def test_host_budget_enforced(self):
        runtime = TrainingRuntime(make_deep_cnn(depth=6),
                                  TransferPolicy.vdnn_all(),
                                  host_budget_bytes=16, seed=0)
        images, labels = make_batch((2, 3, 8, 8), 10, 0)
        with pytest.raises(DeviceOOMError):
            runtime.train_step(images, labels)


class TestRegressions:
    def test_avgpool_after_bare_conv_under_offload(self):
        """Regression: avg-pool backward must not touch its (released)
        input buffer — conv->avgpool with no ReLU between means the conv
        output is dead after forward and is freed, not offloaded."""
        from repro.graph import PoolMode

        def factory():
            return (NetworkBuilder("conv-avgpool", (2, 3, 8, 8))
                    .conv(4, kernel=3, pad=1)
                    .pool(mode=PoolMode.AVG)
                    .fc(10).softmax().build())

        ref, _ = run_losses(factory, "none", steps=3)
        got, _ = run_losses(factory, "all", steps=3)
        assert got == ref


class TestTrainingDynamics:
    def test_loss_decreases_on_fixed_batch(self):
        runtime = TrainingRuntime(make_linear_cnn(), TransferPolicy.vdnn_all(),
                                  seed=0, learning_rate=0.05)
        images, labels = make_batch((4, 3, 16, 16), 10, 0)
        losses = [runtime.train_step(images, labels).loss for _ in range(10)]
        assert losses[-1] < losses[0]

    def test_weights_change_after_step(self):
        runtime = TrainingRuntime(make_linear_cnn(), TransferPolicy.none(), seed=0)
        before = runtime.weights("conv_1").copy()
        images, labels = make_batch((4, 3, 16, 16), 10, 0)
        runtime.train_step(images, labels)
        assert not np.array_equal(before, runtime.weights("conv_1"))

    def test_different_seeds_differ(self):
        a, _ = run_losses(make_linear_cnn, "none", seed=0, steps=1)
        b, _ = run_losses(make_linear_cnn, "none", seed=1, steps=1)
        assert a != b

    def test_train_convenience_loop(self):
        runtime = TrainingRuntime(make_linear_cnn(), TransferPolicy.none(), seed=0)
        batches = [make_batch((4, 3, 16, 16), 10, s) for s in range(3)]
        results = runtime.train(batches)
        assert len(results) == 3


class TestInference:
    def test_predict_returns_probabilities(self):
        runtime = TrainingRuntime(make_linear_cnn(), TransferPolicy.none(), seed=0)
        images, _ = make_batch((4, 3, 16, 16), 10, 0)
        probs = runtime.predict(images)
        assert probs.shape == (4, 10)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(4), rtol=1e-5)

    def test_predict_frees_everything(self):
        runtime = TrainingRuntime(make_linear_cnn(), TransferPolicy.vdnn_all(),
                                  seed=0)
        images, _ = make_batch((4, 3, 16, 16), 10, 0)
        runtime.predict(images)
        assert runtime.transient_keys() == set()

    def test_predict_uses_less_memory_than_training(self):
        train_rt = TrainingRuntime(make_deep_cnn(depth=6), TransferPolicy.none(),
                                   seed=0)
        infer_rt = TrainingRuntime(make_deep_cnn(depth=6), TransferPolicy.none(),
                                   seed=0)
        images, labels = make_batch((2, 3, 8, 8), 10, 0)
        train_rt.train_step(images, labels)
        infer_rt.predict(images)
        assert infer_rt.device.peak_bytes < train_rt.device.peak_bytes


class TestValidation:
    def test_requires_terminal_softmax(self):
        net = (NetworkBuilder("no-softmax", (2, 3, 8, 8))
               .conv(4, kernel=3, pad=1).fc(10).build())
        with pytest.raises(ValueError, match="Softmax"):
            TrainingRuntime(net)

    def test_batch_shape_checked(self):
        runtime = TrainingRuntime(make_linear_cnn(), TransferPolicy.none(), seed=0)
        images, labels = make_batch((2, 3, 16, 16), 10, 0)  # wrong batch
        with pytest.raises(ValueError, match="batch shape"):
            runtime.train_step(images, labels)

    def test_heap_misuse_raises(self):
        from repro.numerics import DeviceHeap
        heap = DeviceHeap(1 << 20)
        heap.store("a", np.zeros(4, dtype=np.float32))
        with pytest.raises(HeapError):
            heap.store("a", np.zeros(4, dtype=np.float32))
        with pytest.raises(HeapError):
            heap.get("missing")
        with pytest.raises(HeapError):
            heap.free("missing")

"""Hypothesis property tests for the observability metric types.

The metric laws (merge associativity, bucket monotonicity, round-trip
serialization) are what make sharded/exported metrics trustworthy; the
pool properties pin :meth:`PoolAllocator.shrink` / ``blockers_above``
against the live gauges an :class:`Instrumentation` object samples.

Merge laws are tested with *integer* observations: float addition is
not associative, so exact equality is the law only on values where
addition is exact (and real metric streams are counts and byte sizes).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc.pool import OutOfMemoryError, PoolAllocator
import pytest

from repro.obs import (BYTES_BUCKETS, DURATION_BUCKETS, Counter, Gauge,
                      Histogram, Instrumentation, MetricError,
                      MetricsRegistry, make_labels, metrics_json,
                      prometheus_text)

_counts = st.lists(st.integers(min_value=0, max_value=1 << 40),
                   max_size=30)
_bounds = st.lists(
    st.integers(min_value=1, max_value=1 << 40), min_size=1, max_size=12,
    unique=True,
).map(sorted).map(lambda bs: tuple(float(b) for b in bs))


def _hist(bounds, values):
    h = Histogram(name="h", bounds=bounds)
    for v in values:
        h.observe(v)
    return h


# ----------------------------------------------------------------------
# Histogram laws
# ----------------------------------------------------------------------
@given(bounds=_bounds, a=_counts, b=_counts, c=_counts)
@settings(max_examples=60, deadline=None)
def test_histogram_merge_associative(bounds, a, b, c):
    left = _hist(bounds, a).merge(_hist(bounds, b)).merge(_hist(bounds, c))
    right = _hist(bounds, a).merge(_hist(bounds, b).merge(_hist(bounds, c)))
    assert left.counts == right.counts
    assert left.sum == right.sum
    assert left.count == right.count


@given(bounds=_bounds, values=_counts)
@settings(max_examples=60, deadline=None)
def test_histogram_cumulative_monotone(bounds, values):
    h = _hist(bounds, values)
    cumulative = h.cumulative()
    assert len(cumulative) == len(bounds) + 1
    assert all(lo <= hi for lo, hi in zip(cumulative, cumulative[1:]))
    assert cumulative[-1] == h.count == len(values)


@given(bounds=_bounds, values=_counts)
@settings(max_examples=60, deadline=None)
def test_histogram_bucketing_respects_bounds(bounds, values):
    h = _hist(bounds, values)
    cumulative = h.cumulative()
    for i, bound in enumerate(bounds):
        assert cumulative[i] == sum(1 for v in values if v <= bound)
    assert h.sum == sum(values)


@given(bounds=_bounds, values=_counts)
@settings(max_examples=60, deadline=None)
def test_histogram_roundtrip(bounds, values):
    h = _hist(bounds, values)
    clone = Histogram.from_dict(h.to_dict())
    assert clone == h
    assert clone.to_dict() == h.to_dict()


# ----------------------------------------------------------------------
# Quantile laws (the serving report's source of truth)
# ----------------------------------------------------------------------
_qs = st.lists(st.floats(min_value=0.0, max_value=1.0,
                         allow_nan=False), min_size=2, max_size=8)


@given(bounds=_bounds, values=_counts, qs=_qs)
@settings(max_examples=60, deadline=None)
def test_quantile_monotone_in_q(bounds, values, qs):
    h = _hist(bounds, values)
    if not values:
        with pytest.raises(MetricError):
            h.quantile(0.5)
        return
    estimates = [h.quantile(q) for q in sorted(qs)]
    assert all(lo <= hi for lo, hi in zip(estimates, estimates[1:]))
    assert 0.0 <= h.quantile(0.0)
    assert h.quantile(1.0) <= bounds[-1]


@given(bounds=_bounds, a=_counts, b=_counts,
       q=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_quantile_merge_invariant(bounds, a, b, q):
    # Observing a data set whole or merging histograms over any
    # partition of it must yield the identical quantile estimate.
    if not a and not b:
        return
    merged = _hist(bounds, a).merge(_hist(bounds, b))
    whole = _hist(bounds, list(a) + list(b))
    assert merged.quantile(q) == whole.quantile(q)
    threshold = float(bounds[len(bounds) // 2])
    assert merged.fraction_below(threshold) \
        == whole.fraction_below(threshold)


@given(bounds=_bounds, values=_counts)
@settings(max_examples=60, deadline=None)
def test_quantile_validates_inputs(bounds, values):
    h = _hist(bounds, values)
    for bad in (-0.1, 1.1):
        with pytest.raises(MetricError):
            h.quantile(bad)


@given(bounds=_bounds, values=_counts)
@settings(max_examples=60, deadline=None)
def test_fraction_below_monotone_and_bounded(bounds, values):
    h = _hist(bounds, values)
    if not values:
        assert h.fraction_below(bounds[-1]) == 0.0
        return
    fractions = [h.fraction_below(t)
                 for t in [0.0] + [float(b) for b in bounds]]
    assert all(0.0 <= f <= 1.0 for f in fractions)
    assert all(lo <= hi for lo, hi in zip(fractions, fractions[1:]))
    within = sum(1 for v in values if v <= bounds[-1])
    assert h.fraction_below(float(bounds[-1])) \
        == pytest.approx(within / len(values))


@given(bounds=_bounds, values=_counts)
@settings(max_examples=60, deadline=None)
def test_fraction_below_excludes_inf_bucket_while_quantile_clamps(
        bounds, values):
    """The documented +Inf-bucket asymmetry, pinned against the counts.

    ``fraction_below`` is conservative: an observation in the +Inf
    bucket is *never* counted as below any finite threshold — including
    ``bounds[-1]`` itself — so SLO attainment cannot be flattered by
    overflow samples.  ``quantile`` takes the opposite convention and
    clamps +Inf-bucket estimates to ``bounds[-1]``.  Both are laws of
    the raw bucket counts, so either drifting silently fails here.
    """
    h = _hist(bounds, values)
    top = float(bounds[-1])
    overflow = sum(1 for v in values if v > top)
    if not values:
        assert h.fraction_below(top) == 0.0
        return
    # fraction_below(bounds[-1]) is exactly the finite buckets' mass:
    # every count except the +Inf bucket's, over the total.
    assert h.counts[-1] == overflow
    assert h.fraction_below(top) == sum(h.counts[:-1]) / h.count
    assert h.fraction_below(top) == (h.count - overflow) / h.count
    if overflow:
        # Overflow keeps attainment strictly below 1.0 however large
        # the threshold's bucket mass is...
        assert h.fraction_below(top) < 1.0
        # ...while the max quantile clamps into the finite range
        # instead of reporting +Inf.
        assert h.quantile(1.0) == top


# ----------------------------------------------------------------------
# Counter / gauge laws
# ----------------------------------------------------------------------
@given(a=_counts, b=_counts, c=_counts)
@settings(max_examples=60, deadline=None)
def test_counter_merge_associative_and_commutative(a, b, c):
    def counter(values):
        m = Counter(name="c")
        for v in values:
            m.inc(v)
        return m

    left = counter(a).merge(counter(b)).merge(counter(c))
    right = counter(a).merge(counter(b).merge(counter(c)))
    assert left.value == right.value
    assert counter(a).merge(counter(b)).value \
        == counter(b).merge(counter(a)).value


@given(values=st.lists(st.integers(min_value=0, max_value=1 << 50),
                       min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_gauge_tracks_high_water_mark(values):
    g = Gauge(name="g")
    for v in values:
        g.set(v)
    assert g.value == values[-1]
    assert g.max_value == max(values)
    clone = Gauge.from_dict(g.to_dict())
    assert clone == g


@given(values=_counts)
@settings(max_examples=40, deadline=None)
def test_registry_export_deterministic(values):
    def make():
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total", "t", {"k": "v"})
        h = reg.histogram("repro_test_seconds", DURATION_BUCKETS, "t")
        g = reg.gauge("repro_test_bytes", "t")
        for v in values:
            c.inc(v)
            h.observe(v)
            g.set(v)
        return reg

    assert prometheus_text(make()) == prometheus_text(make())
    assert metrics_json(make()) == metrics_json(make())


def test_make_labels_sorts_pairs():
    assert make_labels({"b": "2", "a": "1"}) == (("a", "1"), ("b", "2"))


def test_default_bucket_edges_ascend():
    for bounds in (DURATION_BUCKETS, BYTES_BUCKETS):
        assert list(bounds) == sorted(bounds)
        assert len(set(bounds)) == len(bounds)


# ----------------------------------------------------------------------
# PoolAllocator shrink / blockers_above under live gauges
# ----------------------------------------------------------------------
_ops = st.lists(
    st.tuples(st.sampled_from(["alloc", "free"]),
              st.integers(min_value=1, max_value=1 << 22)),
    min_size=1, max_size=60,
)


@given(ops=_ops, shrink_num=st.integers(min_value=1, max_value=4))
@settings(max_examples=60, deadline=None)
def test_pool_gauges_and_shrink_consistent(ops, shrink_num):
    capacity = 1 << 24
    pool = PoolAllocator(capacity)
    obs = Instrumentation()
    live = []

    def sample():
        obs.pool_sample(pool.live_bytes, pool.capacity, pool.fragmentation)

    sample()
    for op, size in ops:
        if op == "alloc":
            try:
                live.append(pool.alloc(size))
            except OutOfMemoryError:
                pass
        elif live:
            pool.free(live.pop(0))
        sample()

    gauge = obs.registry.get("repro_pool_live_bytes", ())
    assert gauge.value == pool.live_bytes
    assert gauge.max_value == pool.peak_bytes

    # Shrink to a fraction, evicting blockers first — exactly the
    # scheduler's budget-shrink sequence, gauges sampled throughout.
    new_capacity = max(capacity * shrink_num // 5, 1)
    blockers = pool.blockers_above(new_capacity)
    assert all(a.offset + a.size > new_capacity for a in blockers)
    offsets = [a.offset for a in blockers]
    assert offsets == sorted(offsets, reverse=True)
    for blocker in blockers:
        pool.free(blocker)
        live.remove(blocker)
        sample()
    pool.shrink(new_capacity)
    sample()
    pool.check_invariants()

    assert pool.capacity == new_capacity
    assert not pool.blockers_above(new_capacity)
    capacity_gauge = obs.registry.get("repro_pool_capacity_bytes", ())
    assert capacity_gauge.value == new_capacity
    assert capacity_gauge.max_value == capacity
    assert gauge.value == pool.live_bytes
    assert gauge.max_value == pool.peak_bytes
    frag = obs.registry.get("repro_pool_fragmentation_ratio", ())
    assert 0.0 <= frag.value <= 1.0 and 0.0 <= frag.max_value <= 1.0

"""Determinism of the heap-based pending queue.

The serving event loop's queue moved from a ``bisect.insort``-sorted
list to a pair of heaps with an explicit ``(key, seq)`` tie-breaker
(:class:`repro.serve.server._PendingQueue`).  ``_queue_key`` is a total
order (rid is unique), so heap order must equal sorted-list order
exactly — these tests pin that equivalence against a sorted-list oracle
and pin the end-to-end serve report under overload (where admits, sheds
and displacement all exercise the queue) to be run-to-run identical.
"""

import random

from repro.serve.arrivals import ArrivalSpec, Request, parse_models
from repro.serve.server import ServeConfig, _PendingQueue, _queue_key, \
    simulate_serving

GIB = 1 << 30


def _random_requests(rng, count):
    times = sorted(rng.uniform(0.0, 5.0) for _ in range(count))
    return [
        Request(rid=rid, time=times[rid],
                model=rng.choice(["alexnet", "vgg16"]),
                priority=rng.randrange(4))
        for rid in range(count)
    ]


class TestPendingQueueOracle:
    """_PendingQueue == sorted list, op for op, on random workloads."""

    def test_matches_sorted_list_oracle(self):
        rng = random.Random(1234)
        requests = _random_requests(rng, 400)
        queue = _PendingQueue()
        oracle = []
        popped = []
        for request in requests:
            action = rng.random()
            if action < 0.60:
                queue.push(request)
                oracle.append(request)
                oracle.sort(key=_queue_key)
            elif action < 0.80 and oracle:
                assert queue.worst() is oracle[-1]
                popped.append((queue.pop_worst(), oracle.pop()))
            elif oracle:
                popped.append((queue.pop_best(), oracle.pop(0)))
            assert len(queue) == len(oracle)
        for heap_request, list_request in popped:
            assert heap_request is list_request
        # Drain: service order must equal the fully sorted remainder.
        drained = [queue.pop_best() for _ in range(len(queue))]
        assert drained == oracle

    def test_priority_then_fifo_then_rid(self):
        queue = _PendingQueue()
        low_late = Request(rid=3, time=2.0, model="alexnet", priority=0)
        low_early = Request(rid=1, time=1.0, model="alexnet", priority=0)
        high = Request(rid=2, time=3.0, model="alexnet", priority=5)
        for request in (low_late, low_early, high):
            queue.push(request)
        assert queue.worst() is low_late
        assert queue.pop_best() is high
        assert queue.pop_best() is low_early
        assert queue.pop_best() is low_late


class TestServeReportDeterminism:
    """Identical serve reports, run to run, through the heap queue."""

    def _overloaded(self):
        # High rate + tight depths: the ladder sheds and displaces, so
        # worst-rank eviction and admission both get exercised.
        return ServeConfig(
            models=tuple(parse_models("googlenet:2,alexnet")),
            arrivals=ArrivalSpec.parse("poisson:rate=400,seed=11"),
            requests=120,
            budget_bytes=1 * GIB,
            shrink_depth=4,
            shed_depth=6,
            reject_depth=10,
        )

    def test_identical_records_across_runs(self):
        first = simulate_serving(self._overloaded())
        second = simulate_serving(self._overloaded())
        assert first.records == second.records
        assert first.makespan == second.makespan
        assert first.cold_starts == second.cold_starts
        assert first.evictions == second.evictions
        # The ladder actually fired, so the queue order mattered.
        assert first.shed > 0 or first.rejected > 0

    def test_every_request_accounted_once(self):
        result = simulate_serving(self._overloaded())
        assert sorted(r.rid for r in result.records) == list(range(120))

"""Tests for the Network DAG: ordering, refcounts, aliasing, regions."""

import pytest

from repro.graph import (
    Activation,
    Conv2D,
    FullyConnected,
    GraphError,
    Input,
    LayerKind,
    Network,
    NetworkBuilder,
    Softmax,
)

from conftest import make_fork_join_cnn, make_linear_cnn


class TestTopology:
    def test_forward_schedule_is_topological(self, linear_cnn):
        schedule = linear_cnn.forward_schedule()
        for index in schedule:
            for producer in linear_cnn[index].producers:
                assert schedule.index(producer) < schedule.index(index)

    def test_backward_schedule_is_reverse_and_skips_input(self, linear_cnn):
        backward = linear_cnn.backward_schedule()
        assert backward == sorted(backward, reverse=True)
        assert 0 not in backward
        assert len(backward) == len(linear_cnn) - 1

    def test_declaration_order_agnostic(self):
        # Layers given in scrambled order still topo-sort correctly.
        layers = [
            Softmax("s", inputs=["f"]),
            FullyConnected("f", inputs=["c"], out_features=10),
            Input("in", shape=(2, 3, 8, 8)),
            Conv2D("c", inputs=["in"], out_channels=4, kernel=3, pad=1),
        ]
        net = Network("scrambled", layers)
        assert [n.name for n in net] == ["in", "c", "f", "s"]

    def test_cycle_detected(self):
        layers = [
            Input("in", shape=(2, 3, 8, 8)),
            Conv2D("a", inputs=["b"], out_channels=4),
            Conv2D("b", inputs=["a"], out_channels=4),
        ]
        with pytest.raises(GraphError, match="cycle"):
            Network("cyclic", layers)

    def test_duplicate_names_rejected(self):
        layers = [
            Input("in", shape=(2, 3, 8, 8)),
            Conv2D("c", inputs=["in"], out_channels=4),
            Conv2D("c", inputs=["in"], out_channels=4),
        ]
        with pytest.raises(GraphError, match="duplicate"):
            Network("dup", layers)

    def test_unknown_input_rejected(self):
        layers = [
            Input("in", shape=(2, 3, 8, 8)),
            Conv2D("c", inputs=["ghost"], out_channels=4),
        ]
        with pytest.raises(GraphError, match="unknown input"):
            Network("ghost", layers)

    def test_exactly_one_input_required(self):
        with pytest.raises(GraphError, match="exactly one Input"):
            Network("none", [Conv2D("c", inputs=[], out_channels=4)])
        layers = [
            Input("a", shape=(2, 3, 8, 8)),
            Input("b", shape=(2, 3, 8, 8)),
            Conv2D("c", inputs=["a"], out_channels=4),
        ]
        with pytest.raises(GraphError, match="exactly one Input"):
            Network("two", layers)

    def test_empty_network_rejected(self):
        with pytest.raises(GraphError):
            Network("empty", [])


class TestRefcounts:
    def test_linear_chain_has_refcount_one(self, linear_cnn):
        for node in linear_cnn:
            if node.consumers:
                assert node.refcount >= 1

    def test_fork_has_refcount_two(self, fork_join_cnn):
        fork = fork_join_cnn.node("stem_relu")
        assert fork.refcount == 2

    def test_join_has_two_producers(self, fork_join_cnn):
        join = fork_join_cnn.node("join")
        assert len(join.producers) == 2


class TestInPlaceAliasing:
    def test_relu_aliases_conv_storage(self, linear_cnn):
        relu = linear_cnn.node("relu_1")
        conv = linear_cnn.node("conv_1")
        assert relu.storage_index == conv.index
        assert relu.in_place
        assert linear_cnn.storage_owner(relu.index) is conv

    def test_chained_in_place_collapses_to_one_owner(self):
        net = (
            NetworkBuilder("chain", (2, 3, 8, 8))
            .conv(4, kernel=3, pad=1, name="c")
            .relu(name="r").dropout(name="d")
            .fc(10, name="f").softmax().build()
        )
        c = net.node("c").index
        assert net.node("r").storage_index == c
        assert net.node("d").storage_index == c

    def test_in_place_disabled_when_producer_forks(self):
        # A ReLU directly on a fork point must not run in-place: it would
        # corrupt the sibling branch's input.
        b = NetworkBuilder("fork-relu", (2, 3, 8, 8))
        b.conv(4, kernel=3, pad=1, name="c")
        fork = b.tap()
        b.relu(name="r", after=fork)
        left = b.tap()
        b.conv(4, kernel=1, name="side", after=fork).relu(name="side_relu")
        right = b.tap()
        b.concat([left, right], name="j")
        b.fc(10, name="f").softmax()
        net = b.build()
        assert not net.node("r").in_place


class TestRegions:
    def test_split_at_first_fc(self, linear_cnn):
        fc_index = linear_cnn.node("fc_1").index
        for node in linear_cnn:
            assert node.is_feature_extraction == (node.index < fc_index)

    def test_feature_and_classifier_partition(self, linear_cnn):
        feat = linear_cnn.feature_extraction_nodes
        clsf = linear_cnn.classifier_nodes
        assert len(feat) + len(clsf) == len(linear_cnn)


class TestAccessors:
    def test_node_by_name(self, linear_cnn):
        assert linear_cnn.node("conv_1").kind is LayerKind.CONV

    def test_unknown_name_raises(self, linear_cnn):
        with pytest.raises(GraphError):
            linear_cnn.node("nope")

    def test_conv_layers(self, linear_cnn):
        assert [n.name for n in linear_cnn.conv_layers] == ["conv_1", "conv_2"]

    def test_output_node_is_softmax(self, linear_cnn):
        assert linear_cnn.output_node.kind is LayerKind.SOFTMAX

    def test_batch_size(self, linear_cnn):
        assert linear_cnn.batch_size == 4

    def test_total_weight_bytes_positive(self, linear_cnn):
        assert linear_cnn.total_weight_bytes() > 0

    def test_summary_mentions_every_layer(self, fork_join_cnn):
        text = fork_join_cnn.summary()
        for node in fork_join_cnn:
            assert node.name in text


class TestWithBatchSize:
    def test_rescales_every_spec(self, linear_cnn):
        big = linear_cnn.with_batch_size(32)
        assert big.batch_size == 32
        for small_node, big_node in zip(linear_cnn, big):
            assert big_node.output_spec.batch == 32
            assert big_node.output_spec.shape[1:] == small_node.output_spec.shape[1:]

    def test_weights_unchanged(self, linear_cnn):
        big = linear_cnn.with_batch_size(32)
        assert big.total_weight_bytes() == linear_cnn.total_weight_bytes()

    def test_original_untouched(self, linear_cnn):
        linear_cnn.with_batch_size(32)
        assert linear_cnn.batch_size == 4

"""Cache-correctness tests: hits must be value-equal to fresh runs.

The contract under test is the one that makes every figure reproducible
with caching on: for any (network, policy, algo) point, the cached
result equals a from-scratch simulation, and the cache can always be
bypassed (``use_cache=False`` / ``REPRO_NO_CACHE=1``).
"""

import pytest

from repro.core import evaluate
from repro.hw import PAPER_SYSTEM
from repro.perf import SimulationCache, configure_cache, get_cache, set_cache
from repro.perf.cache import ENV_DISABLE, cache_enabled
from repro.zoo import build


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test gets an empty process-wide cache."""
    cache = configure_cache()
    yield cache
    set_cache(None)


NETWORKS = ("alexnet", "vgg16", "googlenet", "resnet18")
CONFIGS = [(policy, algo) for policy in ("all", "conv", "base")
           for algo in ("m", "p")] + [("dyn", "p")]


@pytest.mark.parametrize("name", NETWORKS)
@pytest.mark.parametrize("policy,algo", CONFIGS)
def test_cached_result_equals_fresh_simulation(name, policy, algo):
    network = build(name, 8)
    fresh = evaluate(network, PAPER_SYSTEM, policy, algo, use_cache=False)
    cold = evaluate(network, PAPER_SYSTEM, policy, algo)   # populates
    warm = evaluate(network, PAPER_SYSTEM, policy, algo)   # replays
    assert cold == fresh
    assert warm == fresh
    assert get_cache().stats.hits >= 1


def test_use_cache_false_bypasses_the_cache():
    network = build("alexnet", 8)
    evaluate(network, PAPER_SYSTEM, "all", "m", use_cache=False)
    stats = get_cache().stats
    assert stats.hits == 0 and stats.misses == 0 and stats.stores == 0


def test_env_var_disables_the_cache(monkeypatch):
    monkeypatch.setenv(ENV_DISABLE, "1")
    assert not cache_enabled()
    network = build("alexnet", 8)
    result = evaluate(network, PAPER_SYSTEM, "all", "m")
    assert result.trainable
    stats = get_cache().stats
    assert stats.hits == 0 and stats.misses == 0 and stats.stores == 0
    monkeypatch.setenv(ENV_DISABLE, "0")
    assert cache_enabled()


def test_explicit_flag_overrides_env(monkeypatch):
    monkeypatch.setenv(ENV_DISABLE, "1")
    assert cache_enabled(True)
    monkeypatch.delenv(ENV_DISABLE)
    assert not cache_enabled(False)


def test_hits_are_mutation_isolated():
    network = build("alexnet", 8)
    first = evaluate(network, PAPER_SYSTEM, "all", "m")
    first.policy_label = "tampered"
    second = evaluate(network, PAPER_SYSTEM, "all", "m")
    assert second.policy_label != "tampered"


def test_lru_evicts_oldest_entry():
    cache = SimulationCache(max_entries=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("c", 3)
    assert cache.get("a") is None          # evicted
    assert cache.get("b") == 2
    assert cache.get("c") == 3
    assert cache.stats.evictions == 1


def test_lru_recency_is_updated_on_get():
    cache = SimulationCache(max_entries=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1             # refresh "a"
    cache.put("c", 3)                      # evicts "b", not "a"
    assert cache.get("a") == 1
    assert cache.get("b") is None


def test_disk_tier_survives_a_new_cache(tmp_path):
    disk = str(tmp_path / "simcache")
    first = SimulationCache(max_entries=8, disk_dir=disk)
    first.put("key", {"answer": 42})
    second = SimulationCache(max_entries=8, disk_dir=disk)
    assert second.get("key") == {"answer": 42}
    assert second.stats.disk_hits == 1
    # Promoted into memory: the next read is an in-memory hit.
    assert second.get("key") == {"answer": 42}
    assert second.stats.hits >= 1


def test_get_or_compute_computes_once():
    cache = SimulationCache(max_entries=8)
    calls = []

    def compute():
        calls.append(1)
        return "value"

    assert cache.get_or_compute("k", compute) == "value"
    assert cache.get_or_compute("k", compute) == "value"
    assert len(calls) == 1

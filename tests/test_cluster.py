"""Tests for the cluster subsystem: topologies, contention, fleet.

The acceptance scenario lives in ``TestDataParallelContention``: a
4-GPU data-parallel job on the PCIe-switch tree is measurably slower
than four independent single-GPU runs (ring allreduce and vDNN
offload/prefetch DMA share the switch links), the NVLink ring recovers
most of the gap, runs replay deterministically per seed, and every
worker's schedule is sanitizer-clean.
"""

import pytest

from repro.cluster import (
    ClusterJob,
    FleetContention,
    FleetScheduler,
    PlacedGang,
    cluster_report,
    schedule_fleet,
    simulate_cluster_iteration,
    stagger_arrivals,
    topology_table,
    worker_results,
)
from repro.hw import make_topology, nvlink_ring, pcie_switch_tree
from repro.sched import JobState
from repro.sched.admission import RungEval

#: The acceptance gang: the zoo's PCIe-bound headline network, whose
#: ``all(m)`` rung moves more DMA time than compute time.
NETWORK, BATCH, GANG = "resnet50", 32, 4


def _rung(iter_s=1.0, comp=0.8, pcie_s=0.5, pcie_bytes=1 << 30,
          foot=1 << 30, label="all(m)"):
    return RungEval(rung=label, footprint_bytes=foot, iter_seconds=iter_s,
                    compute_seconds=comp, pcie_seconds=pcie_s,
                    pcie_bytes=pcie_bytes)


class TestClusterJob:
    def test_parse_full_spec(self):
        job = ClusterJob.parse("vgg16:64:200:4", 3)
        assert job.name == "vgg16#3"
        assert (job.batch_size, job.iterations, job.num_gpus) == (64, 200, 4)
        assert job.global_batch == 256

    def test_parse_defaults_to_single_gpu(self):
        job = ClusterJob.parse("alexnet:128", 0)
        assert job.num_gpus == 1

    def test_parse_rejects_bad_gang(self):
        with pytest.raises(ValueError, match="gpus must be integers"):
            ClusterJob.parse("alexnet:8:5:two", 0)

    def test_zero_gpus_rejected(self):
        with pytest.raises(ValueError, match="at least one GPU"):
            ClusterJob(name="j", network="alexnet", num_gpus=0)

    def test_global_batch_needs_explicit_batch(self):
        job = ClusterJob(name="j", network="alexnet", num_gpus=2)
        with pytest.raises(ValueError, match="explicit"):
            job.global_batch


class TestPlacedGang:
    def test_ring_hop_bytes_formula(self):
        gang = PlacedGang("j", (0, 1, 2, 3), _rung(),
                          weight_bytes=1000)
        # 2*(n-1)/n * W with n=4: 1500 bytes per directed ring edge.
        assert gang.ring_hop_bytes == 1500

    def test_solo_job_has_no_allreduce(self):
        gang = PlacedGang("j", (2,), _rung(), weight_bytes=1000)
        assert gang.ring_hop_bytes == 0

    def test_duplicate_gpu_rejected(self):
        with pytest.raises(ValueError, match="one GPU"):
            PlacedGang("j", (1, 1), _rung())


class TestFleetContention:
    def test_dma_aggregates_on_shared_uplink(self):
        topo = pcie_switch_tree(num_gpus=4, gpus_per_switch=4)
        model = FleetContention(topo)
        gang = PlacedGang("j", (0, 1, 2, 3),
                          _rung(pcie_bytes=100, foot=1), weight_bytes=0)
        loads = model.entry_link_bytes(gang)
        uplink = topo.dma_path(0)[-1]
        assert loads[uplink] == 400  # four workers' DMA on one uplink

    def test_allreduce_crosses_uplinks_between_switches(self):
        topo = pcie_switch_tree(num_gpus=4, gpus_per_switch=2)
        model = FleetContention(topo)
        gang = PlacedGang("j", (0, 1, 2, 3),
                          _rung(pcie_bytes=0), weight_bytes=1000)
        loads = model.entry_link_bytes(gang)
        # Ring edges 1-2 and 3-0 cross both uplinks: gradient traffic
        # lands on the very links vDNN DMA uses.
        hop = gang.ring_hop_bytes
        for switch in range(2):
            uplink = topo.dma_path(2 * switch)[-1]
            assert loads[uplink] == 2 * hop

    def test_nvlink_ring_keeps_classes_disjoint(self):
        topo = nvlink_ring(4)
        model = FleetContention(topo)
        gang = PlacedGang("j", (0, 1, 2, 3),
                          _rung(pcie_bytes=100), weight_bytes=1000)
        loads = model.entry_link_bytes(gang)
        for gpu in range(4):
            host = topo.dma_path(gpu)[0]
            assert loads[host] == 100  # own DMA only, no allreduce

    def test_link_users_multiply_between_entries(self):
        topo = pcie_switch_tree(num_gpus=2, gpus_per_switch=2)
        model = FleetContention(topo)
        # Two single-GPU tenants whose DMA shares the uplink: each pays
        # its own transfer x2 users, so both slow down symmetrically.
        big = 64 * (1 << 30)
        a = PlacedGang("a", (0,), _rung(pcie_bytes=big, foot=1))
        b = PlacedGang("b", (1,), _rung(pcie_bytes=big, foot=1))
        solo = model.iteration_seconds([a])[0]
        both = model.iteration_seconds([a, b])
        assert both[0] == pytest.approx(both[1])
        assert both[0] > solo

    def test_compute_timeslices_per_gpu_tenancy(self):
        topo = nvlink_ring(2)
        model = FleetContention(topo)
        a = PlacedGang("a", (0,), _rung(pcie_s=0.0, pcie_bytes=0))
        b = PlacedGang("b", (0,), _rung(pcie_s=0.0, pcie_bytes=0))
        lone = PlacedGang("c", (1,), _rung(pcie_s=0.0, pcie_bytes=0))
        times = model.iteration_seconds([a, b, lone])
        assert times[0] == pytest.approx(times[1])
        assert times[0] > times[2]  # co-tenants timeslice, loner does not


class TestDataParallelContention:
    """The PR's acceptance criteria, as assertions."""

    def test_pcie_switch_contention_is_measurable(self):
        topo = make_topology("pcie-switch", GANG)
        report = simulate_cluster_iteration(NETWORK, BATCH, GANG, topo)
        # Slower than 4 independent single-GPU runs: the allreduce and
        # all four workers' offload/prefetch DMA share the switch tree.
        assert report.iter_seconds > report.solo_iter_seconds * 1.5
        assert report.scaling_efficiency < 0.75
        assert report.allreduce_bytes > 0
        assert report.offload_bytes > 0

    def test_nvlink_recovers_most_of_the_gap(self):
        pcie = simulate_cluster_iteration(
            NETWORK, BATCH, GANG, make_topology("pcie-switch", GANG))
        ring = simulate_cluster_iteration(
            NETWORK, BATCH, GANG, make_topology("nvlink-ring", GANG))
        assert ring.scaling_efficiency >= 0.9
        assert ring.scaling_efficiency > 2 * pcie.scaling_efficiency

    def test_deterministic_replay(self):
        topo = make_topology("pcie-switch", GANG)
        a = simulate_cluster_iteration(NETWORK, BATCH, GANG, topo)
        b = simulate_cluster_iteration(NETWORK, BATCH, GANG, topo)
        assert a == b

    def test_every_worker_trace_is_sanitizer_clean(self):
        topo = make_topology("pcie-switch", GANG)
        reports = worker_results(NETWORK, BATCH, GANG, topo)
        assert len(reports) == GANG
        assert all(report.ok for report in reports)

    def test_hybrid_rung_is_skipped_not_passed(self):
        topo = make_topology("nvlink-ring", 2)
        reports = worker_results("alexnet", 8, 2, topo, rung="hybrid")
        assert all("skipped" in report.subject for report in reports)

    def test_gang_wider_than_topology_rejected(self):
        topo = make_topology("pcie-switch", 2)
        with pytest.raises(ValueError, match="cannot place"):
            simulate_cluster_iteration(NETWORK, BATCH, 4, topo)

    def test_topology_table_renders(self):
        reports = [simulate_cluster_iteration(
            NETWORK, BATCH, GANG, make_topology(name, GANG))
            for name in ("pcie-switch", "nvlink-ring")]
        table = topology_table(reports)
        assert "pcie-switch" in table and "nvlink-ring" in table


class TestStaggerArrivals:
    def test_deterministic_per_seed(self):
        jobs = [ClusterJob.parse("alexnet:8:5", i) for i in range(4)]
        a = stagger_arrivals(jobs, rate=2.0, seed=11)
        b = stagger_arrivals(jobs, rate=2.0, seed=11)
        c = stagger_arrivals(jobs, rate=2.0, seed=12)
        assert [j.submit_time for j in a] == [j.submit_time for j in b]
        assert [j.submit_time for j in a] != [j.submit_time for j in c]

    def test_arrivals_strictly_increase(self):
        jobs = [ClusterJob.parse("alexnet:8:5", i) for i in range(4)]
        times = [j.submit_time for j in stagger_arrivals(jobs, 2.0, 3)]
        assert times == sorted(times) and times[0] > 0

    def test_zero_rate_is_identity(self):
        jobs = [ClusterJob.parse("alexnet:8:5", 0)]
        assert stagger_arrivals(jobs, 0.0) == jobs


class TestFleetScheduler:
    def test_gang_admission_is_all_or_nothing(self):
        # A 4-GPU gang on a 2-GPU cluster can never place: rejected,
        # while the single-GPU job beside it still runs.
        jobs = [ClusterJob.parse("alexnet:8:5:4", 0),
                ClusterJob.parse("alexnet:8:5", 1)]
        result = schedule_fleet(jobs, topology="nvlink-ring", num_gpus=2)
        by_name = {r.job.name: r for r in result.records}
        assert by_name["alexnet#0"].state is JobState.REJECTED
        assert by_name["alexnet#1"].state is JobState.FINISHED

    def test_gang_replicas_never_share_a_gpu(self):
        jobs = [ClusterJob.parse("alexnet:8:5:3", 0)]
        result = schedule_fleet(jobs, topology="nvlink-mesh", num_gpus=4)
        gpus = result.placements["alexnet#0"]
        assert len(gpus) == len(set(gpus)) == 3

    def test_bin_pack_colocates_and_spread_separates(self):
        jobs = [ClusterJob.parse("alexnet:8:5", i) for i in range(2)]
        packed = schedule_fleet(jobs, topology="nvlink-ring", num_gpus=4,
                                placement="bin_pack")
        spread = schedule_fleet(jobs, topology="nvlink-ring", num_gpus=4,
                                placement="spread")
        packed_gpus = {g for gs in packed.placements.values() for g in gs}
        spread_gpus = {g for gs in spread.placements.values() for g in gs}
        assert len(packed_gpus) == 1   # both tenants on one GPU
        assert len(spread_gpus) == 2   # one GPU each

    def test_priority_preempts_and_migrates(self):
        # Four low-priority tenants fill a 2-GPU cluster at base(p)
        # (alexnet:128 base footprint ~1.8 GB; budget fits exactly two
        # per GPU), then a high-priority gang needs both GPUs cleared.
        low = [ClusterJob(name=f"low{i}", network="alexnet",
                          batch_size=128, iterations=400)
               for i in range(4)]
        high = ClusterJob(name="high", network="alexnet", batch_size=128,
                          iterations=5, priority=5, num_gpus=2,
                          submit_time=1.0)
        budget = 4 * (1 << 30)
        result = schedule_fleet(low + [high], topology="nvlink-ring",
                                num_gpus=2, budget_bytes=budget)
        assert result.preemptions > 0
        by_name = {r.job.name: r for r in result.records}
        assert by_name["high"].state is JobState.FINISHED
        # Victims recover: progress preserved, re-admitted, finished.
        assert all(by_name[f"low{i}"].state is JobState.FINISHED
                   for i in range(4))
        assert sum(by_name[f"low{i}"].evictions for i in range(4)) > 0

    def test_no_preempt_flag_blocks_instead(self):
        low = [ClusterJob(name=f"low{i}", network="alexnet",
                          batch_size=128, iterations=50)
               for i in range(4)]
        high = ClusterJob(name="high", network="alexnet", batch_size=128,
                          iterations=5, priority=5, num_gpus=2,
                          submit_time=1.0)
        result = schedule_fleet(low + [high], topology="nvlink-ring",
                                num_gpus=2, budget_bytes=4 * (1 << 30),
                                preemption=False)
        assert result.preemptions == 0
        assert all(r.state is JobState.FINISHED for r in result.records)
        by_name = {r.job.name: r for r in result.records}
        assert by_name["high"].queueing_delay > 0  # waited, not preempted

    def test_unplaceable_job_rejected_with_reason(self):
        # vgg16:256's smallest rung (~12.7 GB) exceeds a 2 GiB budget.
        jobs = [ClusterJob.parse("vgg16:256:5", 0)]
        result = schedule_fleet(jobs, topology="nvlink-ring", num_gpus=2,
                                budget_bytes=2 * (1 << 30))
        record = result.records[0]
        assert record.state is JobState.REJECTED
        assert "bytes free" in record.failure

    def test_run_is_deterministic_per_seed(self):
        jobs = [ClusterJob.parse("alexnet:8:5:2", 0),
                ClusterJob.parse("alexnet:8:5", 1),
                ClusterJob.parse("googlenet:8:5", 2)]
        runs = [schedule_fleet(jobs, topology="pcie-switch", num_gpus=4,
                               arrival_rate=1.0, seed=9)
                for _ in range(2)]
        assert runs[0].completion_times == runs[1].completion_times
        assert runs[0].placements == runs[1].placements
        assert runs[0].makespan == runs[1].makespan

    def test_fleet_metrics_are_bounded(self):
        jobs = [ClusterJob.parse("alexnet:8:5:2", 0),
                ClusterJob.parse("alexnet:8:5", 1)]
        result = schedule_fleet(jobs, topology="nvlink-ring", num_gpus=2)
        assert 0.0 < result.fleet_utilization <= 1.0
        assert 0.0 < result.fairness <= 1.0
        assert result.aggregate_throughput > 0
        assert len(result.completion_times) == 2

    def test_duplicate_job_names_rejected(self):
        scheduler = FleetScheduler(topology="nvlink-ring", num_gpus=2)
        scheduler.submit(ClusterJob.parse("alexnet:8:5", 0))
        with pytest.raises(ValueError, match="duplicate"):
            scheduler.submit(ClusterJob.parse("alexnet:8:5", 0))

    def test_report_renders_gang_placements(self):
        jobs = [ClusterJob.parse("alexnet:8:5:2", 0)]
        result = schedule_fleet(jobs, topology="nvlink-ring", num_gpus=2)
        text = cluster_report(result)
        assert "gpu[0,1]" in text
        assert "Fleet metrics" in text

    def test_obs_fleet_summary_recorded(self):
        from repro.obs import Instrumentation

        obs = Instrumentation()
        jobs = [ClusterJob.parse("alexnet:8:5", 0)]
        schedule_fleet(jobs, topology="nvlink-ring", num_gpus=2, obs=obs)
        util = obs.registry.get("repro_fleet_utilization", ())
        fair = obs.registry.get("repro_fleet_fairness_jain", ())
        gpus = obs.registry.get("repro_fleet_gpus", ())
        assert 0.0 < util.value <= 1.0
        assert 0.0 < fair.value <= 1.0
        assert gpus.value == 2

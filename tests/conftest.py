"""Shared fixtures: small networks and system configs used across tests."""

import pytest

from repro.graph import NetworkBuilder
from repro.hw import PAPER_SYSTEM, SystemConfig


@pytest.fixture
def system() -> SystemConfig:
    return PAPER_SYSTEM


def make_linear_cnn(batch=4, size=16, name="linear-cnn"):
    """conv-relu-pool x2 -> fc -> softmax; the workhorse toy network."""
    return (
        NetworkBuilder(name, (batch, 3, size, size))
        .conv(8, kernel=3, pad=1, name="conv_1").relu(name="relu_1")
        .pool(name="pool_1")
        .conv(16, kernel=3, pad=1, name="conv_2").relu(name="relu_2")
        .pool(name="pool_2")
        .fc(10, name="fc_1").softmax(name="softmax_1")
        .build()
    )


def make_fork_join_cnn(batch=4, size=16, name="fork-join-cnn"):
    """A GoogLeNet-style fork/join network (refcount > 1 on the fork)."""
    b = NetworkBuilder(name, (batch, 3, size, size))
    b.conv(8, kernel=3, pad=1, name="stem").relu(name="stem_relu")
    fork = b.tap()
    b.conv(4, kernel=1, name="branch_a", after=fork).relu(name="branch_a_relu")
    left = b.tap()
    b.conv(4, kernel=3, pad=1, name="branch_b", after=fork).relu(name="branch_b_relu")
    right = b.tap()
    b.concat([left, right], name="join")
    b.pool(name="pool").fc(10, name="fc").softmax(name="softmax")
    return b.build()


def make_deep_cnn(depth=6, batch=2, size=8, name="deep-cnn"):
    """A deeper linear stack for liveness/offload stress tests."""
    b = NetworkBuilder(name, (batch, 3, size, size))
    for i in range(depth):
        b.conv(8, kernel=3, pad=1, name=f"conv_{i + 1}").relu(name=f"relu_{i + 1}")
    b.pool(name="pool").fc(10, name="fc").softmax(name="softmax")
    return b.build()


@pytest.fixture
def linear_cnn():
    return make_linear_cnn()


@pytest.fixture
def fork_join_cnn():
    return make_fork_join_cnn()


@pytest.fixture
def deep_cnn():
    return make_deep_cnn()

"""Tests for TensorSpec and unit helpers."""

import pytest

from repro.graph import FP32_BYTES, TensorRole, TensorSpec, gb, mb


class TestTensorSpec:
    def test_count_is_product_of_dims(self):
        assert TensorSpec((2, 3, 4)).count == 24

    def test_nbytes_scales_with_dtype(self):
        assert TensorSpec((10,)).nbytes == 40
        assert TensorSpec((10,), dtype_bytes=2).nbytes == 20

    def test_default_dtype_is_fp32(self):
        assert TensorSpec((1,)).dtype_bytes == FP32_BYTES == 4

    def test_batch_is_leading_dim(self):
        assert TensorSpec((7, 3, 2, 2)).batch == 7

    def test_with_batch_replaces_leading_dim_only(self):
        spec = TensorSpec((4, 3, 8, 8)).with_batch(16)
        assert spec.shape == (16, 3, 8, 8)

    def test_with_batch_preserves_dtype(self):
        spec = TensorSpec((4, 2), dtype_bytes=8).with_batch(2)
        assert spec.dtype_bytes == 8

    def test_empty_shape_rejected(self):
        with pytest.raises(ValueError):
            TensorSpec(())

    def test_zero_dim_rejected(self):
        with pytest.raises(ValueError):
            TensorSpec((4, 0, 2))

    def test_negative_dim_rejected(self):
        with pytest.raises(ValueError):
            TensorSpec((-1, 3))

    def test_non_positive_dtype_rejected(self):
        with pytest.raises(ValueError):
            TensorSpec((1,), dtype_bytes=0)

    def test_specs_are_hashable_and_comparable(self):
        assert TensorSpec((1, 2)) == TensorSpec((1, 2))
        assert len({TensorSpec((1, 2)), TensorSpec((1, 2))}) == 1

    def test_str_mentions_dims(self):
        assert "2x3" in str(TensorSpec((2, 3)))


class TestUnits:
    def test_mb(self):
        assert mb(1 << 20) == 1.0

    def test_gb(self):
        assert gb(1 << 30) == 1.0

    def test_roles_cover_figure2(self):
        values = {r.value for r in TensorRole}
        assert values == {"X/Y", "dX/dY", "W", "dW", "WS"}

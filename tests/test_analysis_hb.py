"""Happens-before graph and race rules over hand-built traces.

Each known-bad fixture is the minimal schedule exhibiting one defect,
and each asserts its rule fires *exactly once* — the no-false-negative
half of the sanitizer's contract (the clean executor sweep in
test_analysis_verify.py is the no-false-positive half).
"""

from repro.analysis.hb import HBGraph, check_races
from repro.analysis.trace import ScheduleTrace
from repro.sim.stream import COMPUTE_STREAM, MEMORY_STREAM


def make_offload_trace(with_sync=True):
    """alloc Y0 -> kernel writes it -> offload -> [sync] -> free."""
    t = ScheduleTrace()
    t.alloc("Y0", 1024, offset=0, size=1024)
    t.kernel("conv1", COMPUTE_STREAM, reads=(), writes=("Y0",), layer=1,
             phase="fwd")
    t.offload("Y0", MEMORY_STREAM, nbytes=1024, layer=1, owner=0,
              target_layer=1, wait_stream=COMPUTE_STREAM, wait_pos=0)
    if with_sync:
        t.sync(MEMORY_STREAM, label="offload-sync", layer=1)
    t.free("Y0", COMPUTE_STREAM, offset=0, size=1024, layer=1, phase="fwd")
    return t


def make_prefetch_trace(with_sync=True):
    """alloc Y0 -> prefetch writes it -> [sync] -> kernel reads it."""
    t = ScheduleTrace()
    t.alloc("Y0", 1024, offset=0, size=1024)
    t.prefetch("Y0", MEMORY_STREAM, nbytes=1024, layer=3, owner=0,
               target_layer=1)
    if with_sync:
        t.sync(MEMORY_STREAM, label="prefetch-sync", layer=3)
    t.kernel("conv1_bwd", COMPUTE_STREAM, reads=("Y0",), writes=(),
             layer=1, phase="bwd")
    t.free("Y0", COMPUTE_STREAM, offset=0, size=1024, layer=1, phase="bwd")
    return t


class TestHBGraph:
    def test_same_stream_is_program_ordered(self):
        t = ScheduleTrace()
        a = t.kernel("k1", COMPUTE_STREAM)
        b = t.kernel("k2", COMPUTE_STREAM)
        hb = HBGraph(t)
        assert hb.happens_before(a, b)
        assert not hb.happens_before(b, a)

    def test_cross_stream_unordered_without_sync(self):
        t = ScheduleTrace()
        a = t.kernel("k", COMPUTE_STREAM)
        b = t.offload("Y0", MEMORY_STREAM)
        hb = HBGraph(t)
        assert not hb.ordered(a, b)

    def test_sync_orders_waited_stream_before_later_ops(self):
        t = ScheduleTrace()
        dma = t.offload("Y0", MEMORY_STREAM)
        t.sync(MEMORY_STREAM)
        later = t.kernel("k", COMPUTE_STREAM)
        assert HBGraph(t).happens_before(dma, later)

    def test_sync_does_not_order_ops_issued_after_it(self):
        t = ScheduleTrace()
        t.sync(MEMORY_STREAM)          # waits on nothing issued yet
        dma = t.offload("Y0", MEMORY_STREAM)
        later = t.kernel("k", COMPUTE_STREAM)
        assert not HBGraph(t).happens_before(dma, later)

    def test_event_wait_edge_orders_producer_before_transfer(self):
        t = ScheduleTrace()
        producer = t.kernel("conv", COMPUTE_STREAM, writes=("Y0",))
        dma = t.offload("Y0", MEMORY_STREAM, wait_stream=COMPUTE_STREAM,
                        wait_pos=producer.pos)
        assert HBGraph(t).happens_before(producer, dma)

    def test_alloc_is_host_synchronous(self):
        t = ScheduleTrace()
        alloc = t.alloc("Y0", 64)
        on_memory = t.offload("Y0", MEMORY_STREAM)
        assert HBGraph(t).happens_before(alloc, on_memory)

    def test_transitivity_through_two_syncs(self):
        t = ScheduleTrace()
        dma = t.offload("Y0", MEMORY_STREAM)
        t.sync(MEMORY_STREAM)
        mid = t.kernel("k1", COMPUTE_STREAM)
        t.sync(COMPUTE_STREAM)
        tail = t.prefetch("Y1", MEMORY_STREAM)
        hb = HBGraph(t)
        assert hb.happens_before(dma, mid)
        assert hb.happens_before(mid, tail)
        assert hb.happens_before(dma, tail)


class TestRaceRules:
    def test_clean_offload_schedule_has_no_findings(self):
        assert check_races(make_offload_trace(with_sync=True)) == []

    def test_release_before_offload_complete_fires_hb002_once(self):
        findings = check_races(make_offload_trace(with_sync=False))
        assert [d.rule for d in findings] == ["HB002"]

    def test_clean_prefetch_schedule_has_no_findings(self):
        assert check_races(make_prefetch_trace(with_sync=True)) == []

    def test_use_before_prefetch_complete_fires_hb003_once(self):
        findings = check_races(make_prefetch_trace(with_sync=False))
        rules = [d.rule for d in findings]
        assert rules.count("HB003") == 1

    def test_unordered_cross_stream_write_pair_fires_hb001_once(self):
        t = ScheduleTrace()
        t.alloc("Y0", 64)
        t.kernel("k", COMPUTE_STREAM, writes=("Y0",))
        t.prefetch("Y0", MEMORY_STREAM)
        findings = check_races(t)
        assert [d.rule for d in findings] == ["HB001"]

    def test_read_read_pair_is_not_a_race(self):
        t = ScheduleTrace()
        t.alloc("Y0", 64)
        t.kernel("k", COMPUTE_STREAM, reads=("Y0",))
        t.offload("Y0", MEMORY_STREAM, wait_stream=COMPUTE_STREAM,
                  wait_pos=-1)
        # Offload *reads* Y0 concurrently with the kernel read: allowed.
        assert check_races(t) == []

    def test_dropping_the_sync_via_without_flags_the_mutant(self):
        clean = make_offload_trace(with_sync=True)
        assert check_races(clean) == []
        sync_seq = next(op.seq for op in clean.ops
                        if op.kind.name == "SYNC")
        mutant = clean.without(sync_seq)
        assert any(d.rule == "HB002" for d in check_races(mutant))

    def test_finding_carries_evidence_refs(self):
        findings = check_races(make_offload_trace(with_sync=False))
        assert findings and len(findings[0].refs) == 2
        assert "offload" in findings[0].refs[0]

"""End-to-end sanitizer runs over real executor and scheduler output.

The clean half of the contract: every schedule the executor actually
produces must verify with zero findings.  The mutation half: breaking
one safety mechanism (a sync point, the Fig. 10 window bound) must make
the verifier flag the mutant while the untouched schedule stays clean.
"""

import pytest
from conftest import make_fork_join_cnn, make_linear_cnn

from repro.analysis.hb import check_races
from repro.analysis.trace import OpKind
from repro.analysis.verify import (analyze_trace, verify_point,
                                   verify_result, verify_schedule)
from repro.core.algo_config import AlgoConfig
from repro.core.executor import simulate_baseline, simulate_vdnn
from repro.core.policy import TransferPolicy
from repro.sched.job import Job
from repro.sched.scheduler import schedule_jobs


def traced_vdnn(network, system, **kwargs):
    return simulate_vdnn(
        network, system, TransferPolicy.vdnn_all(),
        AlgoConfig.performance_optimal(network), verify=True, **kwargs)


class TestCleanSchedules:
    @pytest.mark.parametrize("policy", ["base", "conv", "all", "dyn"])
    def test_linear_network_verifies_clean(self, system, policy):
        report = verify_point(make_linear_cnn(), policy, "p", system)
        assert report.ok and not report.warnings, report.render_text()

    @pytest.mark.parametrize("policy", ["base", "conv", "all", "dyn"])
    def test_fork_join_network_verifies_clean(self, system, policy):
        report = verify_point(make_fork_join_cnn(), policy, "m", system)
        assert report.ok and not report.warnings, report.render_text()

    def test_untraced_result_is_rejected(self, system, linear_cnn):
        result = simulate_vdnn(linear_cnn, system, TransferPolicy.vdnn_all(),
                               AlgoConfig.performance_optimal(linear_cnn))
        assert result.schedule_trace is None
        with pytest.raises(ValueError, match="no schedule trace"):
            verify_result(result, linear_cnn)

    def test_tracing_does_not_perturb_the_simulation(self, system,
                                                     linear_cnn):
        algos = AlgoConfig.performance_optimal(linear_cnn)
        plain = simulate_vdnn(linear_cnn, system,
                              TransferPolicy.vdnn_all(), algos)
        traced = simulate_vdnn(linear_cnn, system,
                               TransferPolicy.vdnn_all(), algos, verify=True)
        # The timeline gains zero-duration SYNC markers; every simulated
        # quantity must be bit-identical.
        assert traced.total_time == plain.total_time
        assert traced.managed_max_bytes == plain.managed_max_bytes
        assert traced.managed_avg_bytes == plain.managed_avg_bytes
        assert traced.compute_stall_seconds == plain.compute_stall_seconds
        assert traced.offload_bytes == plain.offload_bytes
        assert traced.prefetch_bytes == plain.prefetch_bytes
        assert traced.usage.samples == plain.usage.samples

    def test_baseline_trace_covers_whole_iteration(self, system, linear_cnn):
        result = simulate_baseline(
            linear_cnn, system, AlgoConfig.memory_optimal(linear_cnn),
            verify=True)
        trace = result.schedule_trace
        kernels = trace.of_kind(OpKind.KERNEL)
        # forward + backward kernel per non-input layer
        assert len(kernels) == 2 * (len(linear_cnn) - 1)
        assert verify_result(result, linear_cnn).ok


class TestMutations:
    def test_dropping_offload_sync_flags_hb002(self, system, deep_cnn):
        result = traced_vdnn(deep_cnn, system, sync_after_offload=False)
        report = verify_result(result, deep_cnn, subject="nosync")
        assert any(d.rule == "HB002" for d in report.errors)

    def test_unbounded_prefetch_window_flags_hb004(self, system, deep_cnn):
        result = traced_vdnn(deep_cnn, system,
                             bounded_prefetch_window=False)
        report = verify_result(result, deep_cnn, subject="unbounded")
        # A window violation is a WARNING: eager restore wastes memory
        # but corrupts nothing, exactly Fig. 10's distinction.
        assert report.ok
        assert any(d.rule == "HB004" for d in report.warnings)

    def test_bounded_window_has_no_hb004(self, system, deep_cnn):
        result = traced_vdnn(deep_cnn, system)
        report = verify_result(result, deep_cnn)
        assert not report.by_rule("HB004")

    def test_surgically_removing_one_sync_flags_the_mutant(self, system,
                                                           deep_cnn):
        result = traced_vdnn(deep_cnn, system)
        clean = result.schedule_trace
        assert check_races(clean) == []
        sync_seq = next(op.seq for op in clean.of_kind(OpKind.SYNC)
                        if "offload-sync" in op.label)
        mutant = clean.without(sync_seq)
        findings = check_races(mutant)
        assert any(d.rule in ("HB001", "HB002") for d in findings)

    def test_untouched_trace_stays_clean(self, system, deep_cnn):
        result = traced_vdnn(deep_cnn, system)
        report = analyze_trace(result.schedule_trace, network=deep_cnn,
                               subject="untouched")
        assert report.ok and not report.warnings


class TestMultiTenant:
    def make_result(self):
        jobs = [Job(name=f"j{i}", network="alexnet", iterations=5,
                    submit_time=0.0) for i in range(3)]
        return schedule_jobs(jobs)

    def test_clean_schedule_verifies(self):
        report = verify_schedule(self.make_result())
        assert report.ok, report.render_text()

    def test_leaked_pool_bytes_fire_mt303(self):
        result = self.make_result()
        result.final_pool_live_bytes = 4096
        assert verify_schedule(result).by_rule("MT303")

    def test_budget_excess_fires_mt301(self):
        result = self.make_result()
        # Shrink after the fact: the budget step function is the
        # sanitizer's source of truth.
        result.budget_bytes = 1
        result.budget_timeline = [(0.0, 1)]
        report = verify_schedule(result)
        assert report.by_rule("MT301")

    def test_budget_step_function_judges_each_instant(self):
        result = self.make_result()
        # A shrink timed *after* the last event legalises everything
        # that ran before it; the sanitizer must not apply it
        # retroactively.
        last = max(e.end for e in result.timeline.events)
        result.budget_bytes = 1
        result.budget_timeline = [(0.0, result.peak_pool_bytes),
                                  (last + 1.0, 1)]
        assert verify_schedule(result).ok

    def test_finish_before_admit_fires_mt304(self):
        result = self.make_result()
        record = result.finished[0]
        record.finish_time = record.admit_time - 1.0
        assert verify_schedule(result).by_rule("MT304")

    def test_overlapping_residency_fires_mt302(self):
        result = self.make_result()
        record = result.finished[0]
        (start, end, tenants) = record.residency[0]
        record.residency.append((start, end, tenants))  # duplicate interval
        assert verify_schedule(result).by_rule("MT302")

"""Tests for the online serving subsystem (arrivals, layering, server,
report, CLI) plus the inference-validation satellite it shares
accounting with."""

import json

import pytest

from repro.cli import main
from repro.core import AlgoConfig, simulate_inference, weight_load_bytes
from repro.faults import FaultSpec
from repro.hw import PAPER_SYSTEM, SystemConfig
from repro.serve import (
    ArrivalSpec,
    ArrivalSpecError,
    ModelSpec,
    ServeConfig,
    ServeConfigError,
    ServePlanError,
    activation_peak_bytes,
    generate_requests,
    parse_models,
    plan_service,
    serve_json,
    serve_report,
    shrink_window,
    simulate_serving,
)
from repro.zoo import build

MIB = 1 << 20
GIB = 1 << 30


def _small_scenario(**overrides):
    defaults = dict(
        models=tuple(parse_models("googlenet,alexnet")),
        arrivals=ArrivalSpec.parse("poisson:rate=50,seed=3"),
        requests=60,
        budget_bytes=1 * GIB,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------
class TestArrivals:
    def test_poisson_parse_roundtrip(self):
        spec = ArrivalSpec.parse("poisson:rate=200,seed=7")
        assert spec.rate == 200.0 and spec.seed == 7
        assert ArrivalSpec.parse(spec.label) == spec

    def test_generate_is_deterministic_and_ascending(self):
        spec = ArrivalSpec.parse("poisson:rate=100,seed=5")
        first, second = spec.generate(200), spec.generate(200)
        assert first == second
        assert all(a < b for a, b in zip(first, first[1:]))

    def test_seed_changes_stream(self):
        base = ArrivalSpec.parse("poisson:rate=100,seed=0").generate(50)
        other = ArrivalSpec.parse("poisson:rate=100,seed=1").generate(50)
        assert base != other

    def test_trace_times(self):
        spec = ArrivalSpec.parse("trace:times=0;0.5;1.25")
        assert spec.generate(10) == [0.0, 0.5, 1.25]
        assert spec.generate(2) == [0.0, 0.5]

    def test_trace_file(self, tmp_path):
        path = tmp_path / "arrivals.txt"
        path.write_text("0.0\n0.25\n0.5\n")
        spec = ArrivalSpec.parse(f"trace:file={path}")
        assert spec.times == (0.0, 0.25, 0.5)

    def test_diurnal_and_burst_generate(self):
        diurnal = ArrivalSpec.parse(
            "diurnal:rate=20,peak=100,period=10,seed=1")
        burst = ArrivalSpec.parse("burst:rate=20,at=1,dur=2,x=10,seed=1")
        for spec in (diurnal, burst):
            times = spec.generate(100)
            assert len(times) == 100
            assert times == spec.generate(100)

    @pytest.mark.parametrize("bad", [
        "", "unknown:rate=1", "poisson:rate=0", "poisson:rate=1,bogus=2",
        "trace:", "trace:times=1;0.5", "diurnal:rate=10,peak=5",
        "burst:rate=10,x=0.5", "poisson:rate",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ArrivalSpecError):
            ArrivalSpec.parse(bad)

    def test_model_spec_priority(self):
        assert ModelSpec.parse("vgg16:3") == ModelSpec("vgg16", 3)
        assert ModelSpec.parse("alexnet") == ModelSpec("alexnet", 0)
        with pytest.raises(ArrivalSpecError):
            ModelSpec.parse("nonexistent")
        with pytest.raises(ArrivalSpecError):
            ModelSpec.parse("vgg16:high")
        with pytest.raises(ArrivalSpecError):
            parse_models("vgg16,vgg16")

    def test_request_stream_reuses_arrival_times(self):
        spec = ArrivalSpec.parse("poisson:rate=100,seed=9")
        one = generate_requests(spec, parse_models("vgg16"), 40)
        two = generate_requests(spec, parse_models("vgg16,alexnet"), 40)
        # Adding a model re-routes requests but never moves arrivals.
        assert [r.time for r in one] == [r.time for r in two]
        assert {r.model for r in two} <= {"vgg16", "alexnet"}


# ----------------------------------------------------------------------
# Demand-layering plans
# ----------------------------------------------------------------------
class TestServicePlan:
    def setup_method(self):
        self.network = build("alexnet", 1)
        self.algos = AlgoConfig.memory_optimal(self.network)
        self.system = SystemConfig()

    def _plan(self, residency, **kwargs):
        return plan_service(self.network, self.system, self.algos,
                            residency, **kwargs)

    def test_resident_never_streams(self):
        plan = self._plan("resident")
        assert plan.streamed_bytes == 0 and plan.dma_seconds == 0.0
        assert plan.persistent_bytes == plan.weight_bytes
        assert plan.service_seconds == plan.compute_seconds
        assert plan.cold_start_seconds > 0

    def test_layered_trades_footprint_for_latency(self):
        resident = self._plan("resident")
        layered = self._plan("layered", window_bytes=64 * MIB)
        assert layered.persistent_bytes == 0
        assert layered.streamed_bytes == layered.weight_bytes
        assert layered.footprint_bytes < resident.footprint_bytes
        assert layered.service_seconds > resident.service_seconds
        assert layered.service_seconds == pytest.approx(
            layered.compute_seconds + layered.stall_seconds)

    def test_window_monotonicity(self):
        big = self._plan("layered", window_bytes=512 * MIB)
        small = self._plan("layered", window_bytes=8 * MIB)
        assert small.window_bytes <= big.window_bytes
        assert small.stall_seconds >= big.stall_seconds
        assert small.footprint_bytes <= big.footprint_bytes

    def test_window_clamps_to_largest_layer(self):
        weights = weight_load_bytes(self.network)
        plan = self._plan("layered", window_bytes=1)
        assert plan.window_bytes >= max(weights.values())

    def test_pinned_respects_budget_and_helps(self):
        layered = self._plan("layered", window_bytes=32 * MIB)
        pinned = self._plan("pinned", window_bytes=32 * MIB,
                            pinned_bytes=100 * MIB)
        assert 0 < pinned.persistent_bytes <= 100 * MIB
        assert pinned.pinned_layers
        assert pinned.streamed_bytes < layered.streamed_bytes
        assert pinned.dma_seconds < layered.dma_seconds

    def test_shrink_window_shrinks_or_stops(self):
        plan = self._plan("layered", window_bytes=512 * MIB)
        smaller = shrink_window(self.network, self.system, self.algos, plan)
        assert smaller.window_bytes <= plan.window_bytes
        resident = self._plan("resident")
        assert shrink_window(self.network, self.system, self.algos,
                             resident) is resident

    def test_activation_peak_positive_and_batch_scaled(self):
        one = activation_peak_bytes(self.network, self.algos)
        big_net = build("alexnet", 8)
        big = activation_peak_bytes(big_net,
                                    AlgoConfig.memory_optimal(big_net))
        assert 0 < one < big

    def test_bad_inputs_rejected(self):
        with pytest.raises(ServePlanError):
            self._plan("nope")
        with pytest.raises(ServePlanError):
            self._plan("layered", window_bytes=0)


# ----------------------------------------------------------------------
# Inference-validation satellite (shared accounting)
# ----------------------------------------------------------------------
class TestInferenceValidation:
    def test_zoo_rejects_non_positive_batch(self):
        for batch in (0, -2):
            with pytest.raises(ValueError, match="must be positive"):
                build("alexnet", batch)

    def test_weight_load_bytes_matches_network_total(self):
        network = build("vgg16", 1)
        per_layer = weight_load_bytes(network)
        assert sum(per_layer.values()) == network.total_weight_bytes()
        assert all(nbytes > 0 for nbytes in per_layer.values())

    def test_inference_result_carries_weight_map(self):
        network = build("googlenet", 1)
        result = simulate_inference(network, PAPER_SYSTEM,
                                    AlgoConfig.memory_optimal(network))
        assert result.weight_load_bytes == weight_load_bytes(network)


# ----------------------------------------------------------------------
# The serving event loop
# ----------------------------------------------------------------------
class TestServer:
    def test_deterministic_per_scenario_and_seed(self):
        config = _small_scenario()
        first = json.dumps(serve_json(simulate_serving(config)),
                           sort_keys=True)
        second = json.dumps(serve_json(simulate_serving(config)),
                            sort_keys=True)
        assert first == second

    def test_faulted_runs_still_deterministic(self):
        config = _small_scenario(
            faults=FaultSpec.parse("dma=0.2,pcie=0.6,jitter=0.3"),
            fault_seed=11)
        first = json.dumps(serve_json(simulate_serving(config)),
                           sort_keys=True)
        second = json.dumps(serve_json(simulate_serving(config)),
                            sort_keys=True)
        assert first == second

    def test_outcomes_partition_the_stream(self):
        result = simulate_serving(_small_scenario())
        assert len(result.records) == result.config.requests
        assert (result.completed + result.shed + result.rejected
                == result.config.requests)
        rids = sorted(r.rid for r in result.records)
        assert rids == list(range(result.config.requests))

    def test_layered_serves_over_budget_set_resident_cannot(self):
        # vgg16's resident footprint (~573 MB) exceeds a 512 MiB budget;
        # its layered footprint (~416 MB) fits — the subsystem's reason
        # to exist, per the demand-layering papers.
        base = dict(models=tuple(parse_models("vgg16")),
                    arrivals=ArrivalSpec.parse("poisson:rate=10,seed=3"),
                    requests=30, budget_bytes=512 * MIB)
        resident = simulate_serving(ServeConfig(residency="resident",
                                                **base))
        layered = simulate_serving(ServeConfig(residency="layered",
                                               **base))
        assert resident.completed == 0
        assert resident.unservable == ("vgg16",)
        assert resident.rejected == 30
        assert layered.completed == 30 and not layered.unservable
        assert layered.pool_peak_bytes <= 512 * MIB

    def test_auto_residency_falls_back_to_layered(self):
        config = ServeConfig(models=tuple(parse_models("vgg16")),
                             arrivals=ArrivalSpec.parse(
                                 "poisson:rate=10,seed=3"),
                             requests=20, budget_bytes=512 * MIB)
        result = simulate_serving(config)
        assert result.plans["vgg16"].residency == "layered"
        assert result.completed == 20

    def test_layered_p99_inflation_is_bounded_in_budget(self):
        base = dict(models=tuple(parse_models("googlenet,resnet50")),
                    arrivals=ArrivalSpec.parse("poisson:rate=40,seed=5"),
                    requests=120, budget_bytes=2 * GIB)
        resident = serve_json(simulate_serving(
            ServeConfig(residency="resident", **base)))
        layered = serve_json(simulate_serving(
            ServeConfig(residency="layered", **base)))
        for model in ("googlenet", "resnet50"):
            p99_resident = resident["models"][model]["latency_seconds"]["p99"]
            p99_layered = layered["models"][model]["latency_seconds"]["p99"]
            assert p99_resident > 0
            # Direction: layering costs latency, but boundedly (well
            # under the DMA-unhidden worst case of these models).
            assert p99_resident <= p99_layered <= 5 * p99_resident
        assert (layered["fleet"]["pool_peak_bytes"]
                < resident["fleet"]["pool_peak_bytes"])

    def test_overload_sheds_and_stays_live(self):
        # 20x flash crowd against a heavyweight model: the ladder must
        # shed/reject rather than spin, and every request gets a fate.
        config = ServeConfig(
            models=tuple(parse_models("vgg16:2,googlenet:1,alexnet")),
            arrivals=ArrivalSpec.parse("burst:rate=50,at=0.2,dur=2,x=20,seed=2"),
            requests=300,
            budget_bytes=1 * GIB,
            residency="layered",
        )
        result = simulate_serving(config)
        assert result.completed + result.shed + result.rejected == 300
        assert result.shed + result.rejected > 0
        assert result.window_shrinks > 0
        # Shedding is priority displacement: only the lowest priority
        # present in the queue at the time is ever shed, so no shed
        # request outranks every completed one.
        if result.shed and result.completed:
            assert (max(r.priority for r in result.records
                        if r.outcome == "shed")
                    <= max(r.priority for r in result.records
                           if r.outcome == "completed"))

    def test_budget_shrink_fault_evicts_and_continues(self):
        config = _small_scenario(
            residency="resident",
            faults=FaultSpec.parse("shrink@0.5=0.25"))
        result = simulate_serving(config)
        assert result.completed > 0
        assert result.pool_peak_bytes <= 1 * GIB

    def test_eviction_fault_forces_reinstall(self):
        config = _small_scenario(
            residency="resident",
            faults=FaultSpec.parse("evict@0.2=alexnet"))
        result = simulate_serving(config)
        baseline = simulate_serving(_small_scenario(residency="resident"))
        assert result.evictions >= 1
        assert result.cold_starts > baseline.cold_starts

    def test_timeline_uses_model_lanes(self):
        result = simulate_serving(_small_scenario())
        streams = {e.stream for e in result.timeline.events}
        assert any(s.startswith("model:") for s in streams)

    def test_report_renders(self):
        result = simulate_serving(_small_scenario())
        text = serve_report(result)
        assert "googlenet" in text and "p99" in text and "goodput" in text

    def test_config_validation(self):
        with pytest.raises(ServeConfigError):
            _small_scenario(budget_bytes=0)
        with pytest.raises(ServeConfigError):
            _small_scenario(residency="bogus")
        with pytest.raises(ServeConfigError):
            _small_scenario(shed_depth=4, shrink_depth=8)
        with pytest.raises(ServeConfigError):
            ServeConfig(models=(),
                        arrivals=ArrivalSpec.parse("poisson:rate=1"))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestServeCli:
    def test_smoke_table(self, capsys):
        assert main(["serve", "--arrivals", "poisson:rate=40,seed=7",
                     "--models", "googlenet,alexnet",
                     "--budget", "1GiB", "--requests", "40"]) == 0
        out = capsys.readouterr().out
        assert "googlenet" in out and "SLO" in out

    def test_json_schema_stable(self, capsys):
        argv = ["serve", "--arrivals", "poisson:rate=40,seed=7",
                "--models", "googlenet", "--budget", "512MiB",
                "--requests", "30", "--format", "json"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["schema"] == 1
        assert set(payload) == {"schema", "scenario", "models", "fleet"}
        assert "googlenet" in payload["models"]
        assert {"p50", "p95", "p99"} <= set(
            payload["models"]["googlenet"]["latency_seconds"])

    def test_metrics_export_appended(self, capsys):
        assert main(["serve", "--arrivals", "poisson:rate=30,seed=1",
                     "--models", "googlenet", "--budget", "256MiB",
                     "--requests", "20", "--metrics", "json"]) == 0
        out = capsys.readouterr().out
        assert "repro_serve_latency_seconds" in out

    def test_trace_written_with_model_lanes(self, tmp_path, capsys):
        trace = tmp_path / "serve.json"
        assert main(["serve", "--arrivals", "poisson:rate=30,seed=1",
                     "--models", "googlenet,alexnet", "--budget", "1GiB",
                     "--requests", "30", "--trace", str(trace)]) == 0
        events = json.loads(trace.read_text())["traceEvents"]
        lanes = {e["args"]["name"] for e in events
                 if e.get("name") == "process_name"}
        assert {"googlenet", "alexnet"} <= lanes

    def test_gpu_preset_flag(self, capsys):
        assert main(["serve", "--arrivals", "poisson:rate=20,seed=1",
                     "--models", "googlenet", "--budget", "256MiB",
                     "--requests", "15", "--gpu", "jetson"]) == 0
        capsys.readouterr()

    @pytest.mark.parametrize("argv", [
        ["serve", "--arrivals", "bogus:rate=1"],
        ["serve", "--models", "nonexistent"],
        ["serve", "--budget", "lots"],
        ["serve", "--faults", "dma=7"],
        ["serve", "--gpu", "tpu"],
    ])
    def test_bad_arguments_exit_2(self, argv, capsys):
        assert main(argv) == 2
        capsys.readouterr()

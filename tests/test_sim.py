"""Tests for the two-stream simulation primitives and the power model."""

import pytest

from repro.hw import TITAN_X
from repro.sim import (
    COMPUTE_STREAM,
    EmptyTimelineError,
    EventKind,
    MEMORY_STREAM,
    PowerModel,
    SimStream,
    Timeline,
    TimelineEvent,
    analyze_power,
    make_stream_pair,
)


class TestTimeline:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            TimelineEvent("s", EventKind.FORWARD, "x", 1.0, 0.5)

    def test_span_covers_all_events(self):
        timeline = Timeline()
        timeline.record("a", EventKind.FORWARD, "x", 0.0, 1.0)
        timeline.record("b", EventKind.BACKWARD, "y", 2.0, 5.0)
        assert timeline.span == 5.0
        assert timeline.end_time == 5.0

    def test_filters(self):
        timeline = Timeline()
        timeline.record("a", EventKind.FORWARD, "x", 0, 1, layer_index=3)
        timeline.record("b", EventKind.OFFLOAD, "y", 0, 1, nbytes=100)
        assert len(timeline.of_kind(EventKind.OFFLOAD)) == 1
        assert len(timeline.on_stream("a")) == 1
        assert len(timeline.for_layer(3)) == 1

    def test_busy_time_merges_overlaps(self):
        timeline = Timeline()
        timeline.record("a", EventKind.FORWARD, "x", 0.0, 2.0)
        timeline.record("a", EventKind.FORWARD, "y", 1.0, 3.0)
        assert timeline.busy_time("a") == pytest.approx(3.0)

    def test_busy_time_excludes_stalls(self):
        timeline = Timeline()
        timeline.record("a", EventKind.FORWARD, "x", 0.0, 1.0)
        timeline.record("a", EventKind.STALL, "wait", 1.0, 2.0)
        assert timeline.busy_time("a") == pytest.approx(1.0)

    def test_transferred_bytes_defaults_to_offload_and_prefetch(self):
        timeline = Timeline()
        timeline.record("m", EventKind.OFFLOAD, "x", 0, 1, nbytes=10)
        timeline.record("m", EventKind.PREFETCH, "x", 2, 3, nbytes=20)
        timeline.record("c", EventKind.FORWARD, "k", 0, 1, nbytes=999)
        assert timeline.transferred_bytes() == 30

    def test_render_ascii_contains_streams(self):
        timeline = Timeline()
        timeline.record(COMPUTE_STREAM, EventKind.FORWARD, "conv", 0.0, 1.0)
        art = timeline.render_ascii(width=60)
        assert COMPUTE_STREAM in art

    def test_render_empty(self):
        assert "empty" in Timeline().render_ascii()

    def test_empty_timeline_bounds_raise_clear_error(self):
        timeline = Timeline()
        with pytest.raises(EmptyTimelineError, match="no events"):
            timeline.t0
        with pytest.raises(EmptyTimelineError, match="no time bounds"):
            timeline.t1
        # EmptyTimelineError stays catchable as the ValueError it was.
        with pytest.raises(ValueError):
            timeline.t0
        assert timeline.span == 0.0
        assert timeline.end_time == 0.0

    def test_incremental_bounds_match_event_scan(self):
        timeline = Timeline()
        intervals = [(3.0, 4.0), (0.5, 2.0), (1.0, 6.0), (5.0, 5.5)]
        for start, end in intervals:
            timeline.record("a", EventKind.FORWARD, "x", start, end)
            events = timeline.events
            assert timeline.t0 == min(e.start for e in events)
            assert timeline.t1 == max(e.end for e in events)
            assert timeline.span == timeline.t1 - timeline.t0

    def test_add_extends_bounds_like_record(self):
        timeline = Timeline()
        timeline.add(TimelineEvent("a", EventKind.FORWARD, "x", 2.0, 3.0))
        timeline.add(TimelineEvent("a", EventKind.FORWARD, "y", 0.0, 1.0))
        assert timeline.t0 == 0.0
        assert timeline.t1 == 3.0

    def test_timelines_compare_by_events(self):
        first, second = Timeline(), Timeline()
        for timeline in (first, second):
            timeline.record("a", EventKind.FORWARD, "x", 0.0, 1.0)
        assert first == second
        second.record("a", EventKind.BACKWARD, "y", 1.0, 2.0)
        assert first != second


class TestSimStream:
    def test_in_order_execution(self):
        _, _, timeline = make_stream_pair()
        stream = SimStream("s", timeline)
        first = stream.enqueue(EventKind.FORWARD, "a", 1.0)
        second = stream.enqueue(EventKind.FORWARD, "b", 2.0)
        assert second.start == first.end

    def test_earliest_start_respected(self):
        _, _, timeline = make_stream_pair()
        stream = SimStream("s", timeline)
        event = stream.enqueue(EventKind.FORWARD, "a", 1.0, earliest_start=5.0)
        assert event.start == 5.0

    def test_negative_duration_rejected(self):
        _, _, timeline = make_stream_pair()
        with pytest.raises(ValueError):
            SimStream("s", timeline).enqueue(EventKind.FORWARD, "a", -1.0)

    def test_wait_for_introduces_stall(self):
        compute, memory, _ = make_stream_pair()
        compute.enqueue(EventKind.FORWARD, "fwd", 1.0)
        memory.enqueue(EventKind.OFFLOAD, "off", 3.0)
        stall = compute.wait_for(memory)
        assert stall == pytest.approx(2.0)
        assert compute.ready_time == pytest.approx(3.0)

    def test_wait_for_free_when_other_done(self):
        compute, memory, _ = make_stream_pair()
        compute.enqueue(EventKind.FORWARD, "fwd", 3.0)
        memory.enqueue(EventKind.OFFLOAD, "off", 1.0)
        assert compute.wait_for(memory) == 0.0

    def test_wait_until(self):
        compute, _, _ = make_stream_pair()
        assert compute.wait_until(4.0) == pytest.approx(4.0)
        assert compute.wait_until(2.0) == 0.0

    def test_figure9_overlap_pattern(self):
        """OFF(1) overlaps FWD(1); FWD(2) stalls until OFF(1) completes."""
        compute, memory, _ = make_stream_pair()
        fwd1 = compute.enqueue(EventKind.FORWARD, "1", 2.0)
        off1 = memory.enqueue(EventKind.OFFLOAD, "1", 3.0,
                              earliest_start=fwd1.start)
        compute.wait_for(memory)
        fwd2 = compute.enqueue(EventKind.FORWARD, "2", 2.0)
        assert off1.start == fwd1.start       # overlapped
        assert fwd2.start == off1.end         # stalled behind the offload


class TestPowerModel:
    def test_idle_timeline(self):
        report = analyze_power(Timeline(), TITAN_X)
        assert report.average_watts == PowerModel().idle_watts

    def test_compute_raises_power(self):
        timeline = Timeline()
        timeline.record(COMPUTE_STREAM, EventKind.FORWARD, "k", 0.0, 1.0,
                        nbytes=0)
        report = analyze_power(timeline, TITAN_X)
        model = PowerModel()
        assert report.average_watts == pytest.approx(
            model.idle_watts + model.compute_watts
        )

    def test_transfers_add_power(self):
        base = Timeline()
        base.record(COMPUTE_STREAM, EventKind.FORWARD, "k", 0.0, 1.0)
        with_dma = Timeline()
        with_dma.record(COMPUTE_STREAM, EventKind.FORWARD, "k", 0.0, 1.0)
        with_dma.record(MEMORY_STREAM, EventKind.OFFLOAD, "o", 0.0, 1.0,
                        nbytes=12_800_000_000)
        p_base = analyze_power(base, TITAN_X)
        p_dma = analyze_power(with_dma, TITAN_X)
        assert p_dma.max_watts > p_base.max_watts

    def test_max_at_least_average(self):
        timeline = Timeline()
        timeline.record(COMPUTE_STREAM, EventKind.FORWARD, "k", 0.0, 1.0)
        timeline.record(COMPUTE_STREAM, EventKind.STALL, "s", 1.0, 2.0)
        report = analyze_power(timeline, TITAN_X)
        assert report.max_watts >= report.average_watts

    def test_energy_consistent_with_average(self):
        timeline = Timeline()
        timeline.record(COMPUTE_STREAM, EventKind.FORWARD, "k", 0.0, 2.0)
        report = analyze_power(timeline, TITAN_X)
        assert report.energy_joules == pytest.approx(
            report.average_watts * report.duration
        )

    def test_dram_utilization_clamped(self):
        model = PowerModel()
        assert model.instantaneous(True, 5.0, False) == \
            model.instantaneous(True, 1.0, False)

"""Tests for the cnmem-style pool allocator, including property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.alloc import (ALIGNMENT, DoubleFreeError, OutOfMemoryError,
                         PoolAllocator)


class TestBasics:
    def test_alloc_returns_aligned_block(self):
        pool = PoolAllocator(1 << 20)
        block = pool.alloc(100)
        assert block.size % ALIGNMENT == 0
        assert block.size >= 100
        assert block.requested == 100

    def test_zero_byte_alloc_reserves_one_granule(self):
        pool = PoolAllocator(1 << 20)
        assert pool.alloc(0).size == ALIGNMENT

    def test_negative_alloc_rejected(self):
        with pytest.raises(ValueError):
            PoolAllocator(1 << 20).alloc(-1)

    def test_live_bytes_track_allocations(self):
        pool = PoolAllocator(1 << 20)
        a = pool.alloc(1000)
        b = pool.alloc(2000)
        assert pool.live_bytes == a.size + b.size
        pool.free(a)
        assert pool.live_bytes == b.size

    def test_peak_is_high_water_mark(self):
        pool = PoolAllocator(1 << 20)
        a = pool.alloc(4096)
        peak = pool.peak_bytes
        pool.free(a)
        assert pool.peak_bytes == peak
        pool.alloc(1024)
        assert pool.peak_bytes == peak  # smaller than the old peak

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PoolAllocator(0)


class TestOOM:
    def test_oversized_alloc_raises(self):
        pool = PoolAllocator(1024)
        with pytest.raises(OutOfMemoryError):
            pool.alloc(4096)

    def test_oom_reports_context(self):
        pool = PoolAllocator(1024)
        pool.alloc(512)
        with pytest.raises(OutOfMemoryError) as excinfo:
            pool.alloc(1024, tag="Y[conv_1]")
        assert excinfo.value.tag == "Y[conv_1]"
        assert excinfo.value.capacity == 1024

    def test_fragmented_pool_can_oom_despite_free_bytes(self):
        pool = PoolAllocator(4 * ALIGNMENT)
        blocks = [pool.alloc(ALIGNMENT) for _ in range(4)]
        pool.free(blocks[0])
        pool.free(blocks[2])
        # Two free granules, but not contiguous.
        assert pool.free_bytes == 2 * ALIGNMENT
        with pytest.raises(OutOfMemoryError):
            pool.alloc(2 * ALIGNMENT)


class TestFreeAndCoalesce:
    def test_double_free_rejected(self):
        pool = PoolAllocator(1 << 20)
        block = pool.alloc(128)
        pool.free(block)
        with pytest.raises(ValueError, match="double free"):
            pool.free(block)

    def test_double_free_error_carries_block_context(self):
        pool = PoolAllocator(1 << 20)
        filler = pool.alloc(512)  # push the block off offset 0
        block = pool.alloc(128, tag="Y[conv_2]")
        pool.free(block)
        with pytest.raises(DoubleFreeError) as excinfo:
            pool.free(block)
        error = excinfo.value
        assert error.offset == block.offset == filler.size
        assert error.size == block.size
        assert error.tag == "Y[conv_2]"
        assert "Y[conv_2]" in str(error)
        assert f"offset {block.offset}" in str(error)

    def test_double_free_error_is_a_value_error(self):
        # Callers catching the historical ValueError keep working.
        assert issubclass(DoubleFreeError, ValueError)

    def test_foreign_block_rejected(self):
        pool_a = PoolAllocator(1 << 20)
        pool_b = PoolAllocator(1 << 20)
        block = pool_a.alloc(128)
        with pytest.raises(ValueError):
            pool_b.free(block)

    def test_full_release_coalesces_to_single_block(self):
        pool = PoolAllocator(1 << 20)
        blocks = [pool.alloc(1000) for _ in range(10)]
        for block in blocks:
            pool.free(block)
        pool.check_invariants()
        assert pool.fragmentation == 0.0
        # The whole capacity is again allocatable in one piece.
        big = pool.alloc(pool.capacity)
        assert big.size == pool.capacity

    def test_free_all(self):
        pool = PoolAllocator(1 << 20)
        for _ in range(5):
            pool.alloc(100)
        pool.free_all()
        assert pool.live_bytes == 0
        pool.check_invariants()

    def test_best_fit_prefers_snug_hole(self):
        pool = PoolAllocator(10 * ALIGNMENT)
        small = pool.alloc(ALIGNMENT)          # offset 0
        keeper = pool.alloc(ALIGNMENT)         # offset 1
        pool.free(small)                       # free hole of 1 granule at 0
        # Tail hole is 8 granules; the 1-granule request should take the
        # snug hole at offset 0, not split the tail.
        block = pool.alloc(ALIGNMENT)
        assert block.offset == 0
        assert keeper.offset == ALIGNMENT

    def test_reuse_after_free(self):
        pool = PoolAllocator(2 * ALIGNMENT)
        a = pool.alloc(ALIGNMENT)
        b = pool.alloc(ALIGNMENT)
        pool.free(a)
        c = pool.alloc(ALIGNMENT)
        assert c.offset == 0
        pool.free(b)
        pool.free(c)


class TestPlacementStrategies:
    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            PoolAllocator(1 << 20, strategy="worst_fit")

    def test_first_fit_takes_lowest_offset(self):
        pool = PoolAllocator(10 * ALIGNMENT, strategy="first_fit")
        a = pool.alloc(2 * ALIGNMENT)
        keeper = pool.alloc(ALIGNMENT)
        pool.free(a)  # 2-granule hole at offset 0, big tail after keeper
        block = pool.alloc(ALIGNMENT)
        assert block.offset == 0  # first fit, even though not snug
        pool.free(keeper)
        pool.free(block)

    def test_best_fit_takes_snug_hole(self):
        pool = PoolAllocator(10 * ALIGNMENT, strategy="best_fit")
        a = pool.alloc(2 * ALIGNMENT)      # offset 0
        sep1 = pool.alloc(ALIGNMENT)       # offset 2 (separator)
        b = pool.alloc(ALIGNMENT)          # offset 3
        sep2 = pool.alloc(ALIGNMENT)       # offset 4 (separator)
        pool.free(a)                       # 2-granule hole at 0
        pool.free(b)                       # 1-granule hole at 3
        block = pool.alloc(ALIGNMENT)
        assert block.offset == 3 * ALIGNMENT  # snugger of the two holes
        pool.free(sep1)
        pool.free(sep2)

    def test_first_fit_preserves_invariants(self):
        pool = PoolAllocator(1 << 16, strategy="first_fit")
        blocks = [pool.alloc(100 * (i + 1)) for i in range(10)]
        for block in blocks[::2]:
            pool.free(block)
        pool.check_invariants()
        for block in blocks[1::2]:
            pool.free(block)
        pool.check_invariants()
        assert pool.live_bytes == 0


class TestBestFitTightestHole:
    """Best fit must take the *smallest* fitting hole, ties by offset.

    Regression tests for the fragmentation bug where placement picked a
    larger hole while a snugger one existed, splitting big extents and
    shrinking ``largest_free_block`` needlessly.
    """

    def test_mid_sized_request_spares_the_large_hole(self):
        pool = PoolAllocator(16384)
        a = pool.alloc(8192)           # offset 0
        b = pool.alloc(1024)           # offset 8192 (separator)
        c = pool.alloc(6144)           # offset 9216
        d = pool.alloc(1024)           # offset 15360 (separator)
        pool.free(a)                   # hole: 8192 @ 0
        pool.free(c)                   # hole: 6144 @ 9216
        block = pool.alloc(4096)
        # Must carve the 6144 hole, leaving the 8192 extent whole.
        assert block.offset == 9216
        assert pool.largest_free_block == 8192
        pool.check_invariants()
        pool.free(b)
        pool.free(d)

    def test_equal_size_holes_tie_break_by_lowest_offset(self):
        pool = PoolAllocator(8 * ALIGNMENT)
        blocks = [pool.alloc(ALIGNMENT) for _ in range(8)]
        pool.free(blocks[1])
        pool.free(blocks[5])           # two equal 1-granule holes
        assert pool.alloc(ALIGNMENT).offset == 1 * ALIGNMENT
        assert pool.alloc(ALIGNMENT).offset == 5 * ALIGNMENT

    def test_largest_free_block_tracks_alloc_and_free(self):
        pool = PoolAllocator(16 * ALIGNMENT)
        assert pool.largest_free_block == 16 * ALIGNMENT
        a = pool.alloc(4 * ALIGNMENT)
        assert pool.largest_free_block == 12 * ALIGNMENT
        b = pool.alloc(12 * ALIGNMENT)
        assert pool.largest_free_block == 0
        assert not pool.can_fit(1)
        pool.free(a)
        assert pool.largest_free_block == 4 * ALIGNMENT
        pool.free(b)
        assert pool.largest_free_block == 16 * ALIGNMENT

    def test_index_survives_interleaved_stress(self):
        pool = PoolAllocator(1 << 18)
        import random

        rng = random.Random(3)
        live = []
        for step in range(600):
            if live and (rng.random() < 0.45 or not pool.can_fit(4096)):
                pool.free(live.pop(rng.randrange(len(live))))
            else:
                live.append(pool.alloc(rng.choice((256, 1024, 4096))))
            if step % 50 == 0:
                pool.check_invariants()
        pool.check_invariants()


class TestStats:
    def test_counters(self):
        pool = PoolAllocator(1 << 20)
        a = pool.alloc(10)
        pool.alloc(10)
        pool.free(a)
        assert pool.stats["allocs"] == 2
        assert pool.stats["frees"] == 1

    def test_fragmentation_zero_when_contiguous(self):
        pool = PoolAllocator(1 << 20)
        pool.alloc(1000)
        assert pool.fragmentation == 0.0


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(min_value=0, max_value=8192)),
        st.tuples(st.just("free"), st.integers(min_value=0, max_value=30)),
    ),
    max_size=60,
))
def test_property_pool_invariants_under_random_workload(operations):
    """Random alloc/free sequences never corrupt the block structure."""
    pool = PoolAllocator(1 << 16)
    live = []
    for op, value in operations:
        if op == "alloc":
            try:
                live.append(pool.alloc(value))
            except OutOfMemoryError:
                pass
        elif live:
            block = live.pop(value % len(live))
            pool.free(block)
        pool.check_invariants()
        assert 0 <= pool.live_bytes <= pool.capacity
        assert pool.live_bytes == sum(b.size for b in live)
    for block in live:
        pool.free(block)
    pool.check_invariants()
    assert pool.live_bytes == 0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=4096), min_size=1, max_size=20))
def test_property_freeing_everything_restores_full_capacity(sizes):
    pool = PoolAllocator(1 << 17)
    blocks = []
    for size in sizes:
        try:
            blocks.append(pool.alloc(size))
        except OutOfMemoryError:
            break
    for block in blocks:
        pool.free(block)
    assert pool.alloc(pool.capacity).size == pool.capacity

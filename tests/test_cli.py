"""Tests for the command-line interface."""

import pytest

from repro.cli import main, make_parser


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_unknown_network_rejected(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["evaluate", "resnet"])

    def test_policy_choices(self):
        args = make_parser().parse_args(
            ["evaluate", "alexnet", "--policy", "conv", "--algo", "m"]
        )
        assert args.policy == "conv" and args.algo == "m"


class TestParseBytes:
    """A size is a positive byte count; non-positive inputs are bugs.

    ``-4GiB`` used to parse to ``-4294967296`` and flow into
    ``--budget``/``--window``, corrupting allocator math downstream.
    """

    @pytest.mark.parametrize("text,expected", [
        ("4GiB", 4 * (1 << 30)),
        ("512MiB", 512 * (1 << 20)),
        ("512MB", 512 * (1 << 20)),
        ("64k", 64 * (1 << 10)),
        ("65536", 65536),
        ("  1.5 GiB ", int(1.5 * (1 << 30))),
    ])
    def test_accepts_positive_sizes(self, text, expected):
        from repro.cli import _parse_bytes

        assert _parse_bytes(text) == expected

    @pytest.mark.parametrize("text", [
        "-4GiB", "-1", "0", "0GiB", "0.0MiB", "-0.5MB",
        "garbage", "GiB", "",
    ])
    def test_rejects_non_positive_and_garbage(self, text):
        from repro.cli import _parse_bytes

        with pytest.raises(ValueError, match="cannot parse size"):
            _parse_bytes(text)

    def test_negative_budget_rejected_at_the_cli(self, capsys):
        assert main(["serve", "--arrivals", "poisson:rate=50,seed=1",
                     "--models", "alexnet", "--requests", "5",
                     "--budget=-4GiB"]) == 2
        assert "bad size" in capsys.readouterr().err


class TestCommands:
    def test_networks(self, capsys):
        assert main(["networks"]) == 0
        out = capsys.readouterr().out
        assert "alexnet" in out and "vgg416" in out

    def test_evaluate_trainable_exits_zero(self, capsys):
        assert main(["evaluate", "alexnet", "--batch", "8",
                     "--policy", "base", "--algo", "m"]) == 0
        assert "trainable" in capsys.readouterr().out

    def test_evaluate_untrainable_exits_nonzero(self, capsys):
        assert main(["evaluate", "vgg16", "--batch", "256",
                     "--policy", "base", "--algo", "p"]) == 1
        assert "NO" in capsys.readouterr().out

    def test_sweep(self, capsys):
        assert main(["sweep", "alexnet", "--batch", "8"]) == 0
        out = capsys.readouterr().out
        for config in ("all(m)", "conv(p)", "dyn", "base(p)"):
            assert config in out

    def test_capacity(self, capsys):
        assert main(["capacity", "alexnet", "--limit", "4"]) == 0
        assert "max trainable batch" in capsys.readouterr().out

    def test_figures_single(self, capsys):
        assert main(["figures", "headline"]) == 0
        assert "Headline" in capsys.readouterr().out

    @pytest.mark.parametrize("figure,marker", [
        ("fig05", "Figure 5"), ("fig06", "Figure 6"), ("fig13", "Figure 13"),
    ])
    def test_figures_each(self, figure, marker, capsys):
        assert main(["figures", figure]) == 0
        assert marker in capsys.readouterr().out

    def test_figures_out_writes_files(self, capsys, tmp_path):
        assert main(["figures", "headline", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "headline.txt").exists()
        assert "Headline" in (tmp_path / "headline.txt").read_text()

    def test_train_demo(self, capsys):
        assert main(["train-demo", "--steps", "2", "--batch", "2",
                     "--policy", "all"]) == 0
        out = capsys.readouterr().out
        assert "loss" in out and "offloads" in out

    def test_train_demo_policy_none_has_no_offloads(self, capsys):
        assert main(["train-demo", "--steps", "1", "--batch", "2",
                     "--policy", "none"]) == 0
        assert "offloads 0" in capsys.readouterr().out

    def test_schedule_default_workload(self, capsys):
        assert main(["schedule"]) == 0
        out = capsys.readouterr().out
        for fragment in ("Fleet metrics", "JCT", "queue delay",
                         "pool high-water", "vgg16#1"):
            assert fragment in out

    def test_schedule_policies_and_budget(self, capsys):
        for policy in ("fifo", "sjf", "best_fit"):
            assert main(["schedule", "--policy", policy,
                         "--jobs", "alexnet:16:5,alexnet:16:5",
                         "--budget-gb", "4"]) == 0
            assert policy in capsys.readouterr().out

    def test_schedule_writes_job_lane_trace(self, capsys, tmp_path):
        import json

        path = tmp_path / "trace.json"
        assert main(["schedule", "--jobs", "alexnet:16:5,alexnet:16:5",
                     "--trace", str(path)]) == 0
        trace = json.loads(path.read_text())
        lanes = {e["args"]["name"] for e in trace["traceEvents"]
                 if e["name"] == "process_name" and e["pid"] > 0}
        assert lanes == {"alexnet#0", "alexnet#1"}

    def test_schedule_rejected_job_exits_nonzero(self, capsys):
        # 1/4 GB cannot hold vgg16:64 at any rung.
        assert main(["schedule", "--jobs", "vgg16:64:5",
                     "--budget-gb", "0.25"]) == 1
        assert "rejected" in capsys.readouterr().out

    def test_schedule_empty_jobs_is_usage_error(self, capsys):
        assert main(["schedule", "--jobs", " "]) == 2

    @pytest.mark.parametrize("jobs", [
        "nosuchnet:8:5",        # unknown network
        "alexnet:abc",          # non-integer batch
        "alexnet:8:-3",         # non-positive iterations
    ])
    def test_schedule_bad_job_spec_is_usage_error(self, jobs, capsys):
        assert main(["schedule", "--jobs", jobs]) == 2
        assert "bad job spec" in capsys.readouterr().err

    def test_schedule_nonpositive_budget_is_usage_error(self, capsys):
        assert main(["schedule", "--jobs", "alexnet:8:5",
                     "--budget-gb", "0"]) == 2
        assert "budget must be positive" in capsys.readouterr().err

    def test_verify_one_point_text(self, capsys):
        assert main(["verify", "alexnet", "--policy", "all"]) == 0
        out = capsys.readouterr().out
        assert "all(p): ok" in out
        assert "0 error(s)" in out

    def test_verify_network_grid_covers_all_policies(self, capsys):
        assert main(["verify", "alexnet"]) == 0
        out = capsys.readouterr().out
        for point in ("base(m)", "conv(p)", "all(m)", "comp(p)", "dyn",
                      "joint"):
            assert point in out
        assert "10 schedule(s) verified" in out

    def test_verify_format_json(self, capsys):
        import json

        assert main(["verify", "alexnet", "--policy", "base",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["errors"] == 0
        report = payload["reports"][0]
        assert report["subject"].endswith("base(p)")
        assert report["diagnostics"] == []

    def test_verify_without_target_is_usage_error(self, capsys):
        assert main(["verify"]) == 2
        assert "--all-zoo" in capsys.readouterr().err

    def test_verify_static_point(self, capsys):
        assert main(["verify", "alexnet", "--static",
                     "--policy", "all"]) == 0
        out = capsys.readouterr().out
        assert "all(p): ok" in out and "0 error(s)" in out

    def test_verify_static_grid(self, capsys):
        assert main(["verify", "alexnet", "--static"]) == 0
        out = capsys.readouterr().out
        for point in ("base(m)", "conv(p)", "all(m)", "comp(p)", "dyn",
                      "joint"):
            assert point in out
        assert "10 schedule(s) verified" in out

    def test_verify_hybrid_point(self, capsys):
        assert main(["verify", "alexnet", "--hybrid",
                     "--policy", "conv", "--algo", "m"]) == 0
        assert "conv(m): ok" in capsys.readouterr().out

    def test_verify_static_and_hybrid_are_mutually_exclusive(self):
        import pytest

        with pytest.raises(SystemExit):
            make_parser().parse_args(["verify", "alexnet",
                                      "--static", "--hybrid"])

    def test_verify_static_json_counts_warnings_but_exits_zero(
            self, capsys):
        # ResNet-152's baseline does not fit the paper GPU: SP401 is a
        # warning (untrainable, not unsafe), so the gate still passes.
        import json

        assert main(["verify", "resnet152", "--static", "--policy",
                     "base", "--algo", "m", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["rule_counts"] == {"SP401": 1}

    def test_verify_json_exits_nonzero_on_error_findings(
            self, capsys, monkeypatch):
        import json

        from repro.analysis import static_plan
        from repro.analysis.diagnostics import Report

        def dirty(network, policy="all", algo="p", system=None):
            report = Report(subject=f"{network.name} {policy}({algo})")
            report.add("SP404", "planted leak for the exit-code test")
            return report

        monkeypatch.setattr(static_plan, "verify_point_static", dirty)
        assert main(["verify", "alexnet", "--static", "--policy", "all",
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["rule_counts"] == {"SP404": 1}

    def test_faults_reports_recovery(self, capsys):
        assert main(["faults", "alexnet", "--batch", "8",
                     "--spec", "dma=0.2", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "recovery rate" in out and "faults injected" in out

    def test_faults_json_is_deterministic(self, capsys):
        argv = ["faults", "alexnet", "--batch", "8",
                "--spec", "dma=0.2,jitter=0.1", "--seed", "3", "--json"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_faults_bad_spec_is_usage_error(self, capsys):
        assert main(["faults", "alexnet", "--spec", "dma=1.5"]) == 2
        assert "bad fault spec" in capsys.readouterr().err

    def test_evaluate_bad_fault_spec_is_usage_error(self, capsys):
        assert main(["evaluate", "alexnet", "--batch", "8",
                     "--faults", "nosuchkey=1"]) == 2
        assert "bad fault spec" in capsys.readouterr().err

    def test_evaluate_base_with_faults_is_usage_error(self, capsys):
        assert main(["evaluate", "alexnet", "--batch", "8",
                     "--policy", "base", "--faults", "dma=0.1"]) == 2
        assert "baseline policy" in capsys.readouterr().err

    def test_schedule_with_shrink_fault_prints_fault_table(self, capsys):
        assert main(["schedule", "--jobs", "alexnet:16:5,alexnet:16:5",
                     "--budget-gb", "4",
                     "--faults", "shrink@0.5=0.5"]) == 0
        out = capsys.readouterr().out
        assert "budget-shrink" in out and "Faults" in out


class TestClusterCommand:
    def test_bad_job_spec_exits_two(self, capsys):
        assert main(["cluster", "--jobs", "nosuchnet:8:5"]) == 2
        assert "bad job spec" in capsys.readouterr().err

    def test_bad_gang_spec_exits_two(self, capsys):
        assert main(["cluster", "--jobs", "alexnet:8:5:x"]) == 2
        assert "bad job spec" in capsys.readouterr().err

    def test_negative_budget_exits_two(self, capsys):
        assert main(["cluster", "--jobs", "alexnet:8:5",
                     "--budget-gb", "-1"]) == 2
        assert "budget must be positive" in capsys.readouterr().err

    def test_gang_run_with_verify_and_contention(self, capsys):
        assert main(["cluster", "--jobs", "alexnet:8:5:2",
                     "--gpus", "2", "--verify", "--contention"]) == 0
        out = capsys.readouterr().out
        assert "Cluster schedule" in out
        assert "Data-parallel contention" in out
        assert "worker trace(s) verified: clean" in out

    def test_metrics_export_includes_fleet_gauges(self, capsys):
        assert main(["cluster", "--jobs", "alexnet:8:5",
                     "--gpus", "2", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "repro_fleet_utilization" in out
        assert "repro_fleet_fairness_jain" in out


class TestSmokeEverySubcommand:
    """Every subcommand exits 0 and prints something (cheap args)."""

    @pytest.mark.parametrize("argv", [
        ["networks"],
        ["evaluate", "alexnet", "--batch", "8", "--policy", "base",
         "--algo", "m"],
        ["sweep", "alexnet", "--batch", "8"],
        ["capacity", "alexnet", "--limit", "4"],
        ["plan", "alexnet", "--batch", "8", "--dataset-size", "1024",
         "--epochs", "1"],
        ["figures", "headline"],
        ["train-demo", "--steps", "1", "--batch", "2"],
        ["schedule", "--jobs", "alexnet:8:5"],
        ["verify", "alexnet", "--policy", "all"],
        ["faults", "alexnet", "--batch", "8", "--spec", "dma=0.1",
         "--seed", "7"],
        ["metrics", "alexnet", "--batch", "8", "--policy", "all"],
        ["serve", "--arrivals", "poisson:rate=50,seed=1",
         "--models", "googlenet,alexnet", "--requests", "20",
         "--budget", "1GiB"],
        ["cluster", "--jobs", "alexnet:8:5:2,alexnet:8:5", "--gpus", "2",
         "--topology", "nvlink-ring"],
        ["profile", "--top", "5", "networks"],
    ], ids=lambda argv: argv[0])
    def test_subcommand_smoke(self, argv, capsys):
        assert main(argv) == 0
        assert capsys.readouterr().out.strip()

    def test_every_registered_subcommand_is_smoked(self):
        """Adding a subcommand without a smoke test fails here."""
        from repro.cli import _COMMANDS

        smoked = {
            "networks", "evaluate", "sweep", "capacity", "plan",
            "figures", "train-demo", "schedule", "verify", "faults",
            "metrics", "serve", "cluster", "profile",
        }
        assert smoked == set(_COMMANDS)


class TestProfile:
    def test_wraps_nested_command(self, capsys):
        assert main(["profile", "--top", "20", "evaluate", "alexnet",
                     "--batch", "8", "--policy", "all"]) == 0
        out = capsys.readouterr().out
        # Nested command's own report, then the hotspot table.
        assert "iteration time" in out
        assert "Ordered by: cumulative time" in out
        assert "_cmd_evaluate" in out

    def test_nested_exit_status_propagates(self, capsys):
        status = main(["profile", "evaluate", "vgg416", "--policy",
                       "base"])  # very-deep VGG is untrainable baseline
        assert status != 0

    def test_requires_nested_command(self, capsys):
        assert main(["profile"]) == 2

    def test_cannot_profile_itself(self, capsys):
        assert main(["profile", "profile", "networks"]) == 2

    def test_double_dash_separator(self, capsys):
        assert main(["profile", "--sort", "tottime", "--",
                     "networks"]) == 0
        assert "Ordered by: internal time" in capsys.readouterr().out

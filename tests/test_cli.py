"""Tests for the command-line interface."""

import pytest

from repro.cli import main, make_parser


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_unknown_network_rejected(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["evaluate", "resnet"])

    def test_policy_choices(self):
        args = make_parser().parse_args(
            ["evaluate", "alexnet", "--policy", "conv", "--algo", "m"]
        )
        assert args.policy == "conv" and args.algo == "m"


class TestCommands:
    def test_networks(self, capsys):
        assert main(["networks"]) == 0
        out = capsys.readouterr().out
        assert "alexnet" in out and "vgg416" in out

    def test_evaluate_trainable_exits_zero(self, capsys):
        assert main(["evaluate", "alexnet", "--batch", "8",
                     "--policy", "base", "--algo", "m"]) == 0
        assert "trainable" in capsys.readouterr().out

    def test_evaluate_untrainable_exits_nonzero(self, capsys):
        assert main(["evaluate", "vgg16", "--batch", "256",
                     "--policy", "base", "--algo", "p"]) == 1
        assert "NO" in capsys.readouterr().out

    def test_sweep(self, capsys):
        assert main(["sweep", "alexnet", "--batch", "8"]) == 0
        out = capsys.readouterr().out
        for config in ("all(m)", "conv(p)", "dyn", "base(p)"):
            assert config in out

    def test_capacity(self, capsys):
        assert main(["capacity", "alexnet", "--limit", "4"]) == 0
        assert "max trainable batch" in capsys.readouterr().out

    def test_figures_single(self, capsys):
        assert main(["figures", "headline"]) == 0
        assert "Headline" in capsys.readouterr().out

    @pytest.mark.parametrize("figure,marker", [
        ("fig05", "Figure 5"), ("fig06", "Figure 6"), ("fig13", "Figure 13"),
    ])
    def test_figures_each(self, figure, marker, capsys):
        assert main(["figures", figure]) == 0
        assert marker in capsys.readouterr().out

    def test_figures_out_writes_files(self, capsys, tmp_path):
        assert main(["figures", "headline", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "headline.txt").exists()
        assert "Headline" in (tmp_path / "headline.txt").read_text()

    def test_train_demo(self, capsys):
        assert main(["train-demo", "--steps", "2", "--batch", "2",
                     "--policy", "all"]) == 0
        out = capsys.readouterr().out
        assert "loss" in out and "offloads" in out

    def test_train_demo_policy_none_has_no_offloads(self, capsys):
        assert main(["train-demo", "--steps", "1", "--batch", "2",
                     "--policy", "none"]) == 0
        assert "offloads 0" in capsys.readouterr().out

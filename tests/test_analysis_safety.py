"""Memory-safety replay rules over hand-built traces.

Known-bad fixtures, one per MS1xx rule, each asserting the rule fires
exactly once (and nothing else fires that the defect doesn't imply).
"""

from conftest import make_linear_cnn

from repro.analysis.safety import check_memory_safety
from repro.analysis.trace import ScheduleTrace
from repro.core.liveness import LivenessAnalysis
from repro.sim.stream import COMPUTE_STREAM, MEMORY_STREAM


def rules(findings):
    return [d.rule for d in findings]


class TestLifetimeRules:
    def test_clean_lifetime_is_silent(self):
        t = ScheduleTrace()
        t.alloc("Y0", 64, offset=0, size=256)
        t.kernel("k", COMPUTE_STREAM, reads=("Y0",))
        t.free("Y0", COMPUTE_STREAM, offset=0, size=256)
        assert check_memory_safety(t) == []

    def test_use_after_release_fires_ms101_once(self):
        t = ScheduleTrace()
        t.alloc("Y0", 64, offset=0, size=256)
        t.free("Y0", COMPUTE_STREAM, offset=0, size=256)
        t.kernel("k1", COMPUTE_STREAM, reads=("Y0",))
        t.kernel("k2", COMPUTE_STREAM, reads=("Y0",))  # deduped per buffer
        findings = check_memory_safety(t)
        assert rules(findings).count("MS101") == 1

    def test_double_free_fires_ms102_once(self):
        t = ScheduleTrace()
        t.alloc("Y0", 64, offset=0, size=256)
        t.free("Y0", COMPUTE_STREAM, offset=0, size=256)
        t.free("Y0", COMPUTE_STREAM, offset=0, size=256)
        assert rules(check_memory_safety(t)) == ["MS102"]

    def test_leaked_block_fires_ms103_once(self):
        t = ScheduleTrace()
        t.alloc("Y0", 64, offset=0, size=256)
        t.kernel("k", COMPUTE_STREAM, reads=("Y0",))
        assert rules(check_memory_safety(t)) == ["MS103"]

    def test_persistent_blocks_are_not_leaks(self):
        t = ScheduleTrace()
        t.alloc("W1", 64, offset=0, size=256, persistent=True)
        assert check_memory_safety(t) == []


class TestOverlapRules:
    def test_overlapping_live_ranges_fire_ms104_once(self):
        t = ScheduleTrace()
        t.alloc("Y0", 512, offset=0, size=512)
        t.alloc("Y1", 512, offset=256, size=512)   # intersects [0, 512)
        t.free("Y0", COMPUTE_STREAM, offset=0, size=512)
        t.free("Y1", COMPUTE_STREAM, offset=256, size=512)
        findings = check_memory_safety(t)
        assert rules(findings) == ["MS104"]

    def test_disjoint_live_ranges_are_fine(self):
        t = ScheduleTrace()
        t.alloc("Y0", 512, offset=0, size=512)
        t.alloc("Y1", 512, offset=512, size=512)
        t.free("Y0", COMPUTE_STREAM, offset=0, size=512)
        t.free("Y1", COMPUTE_STREAM, offset=512, size=512)
        assert check_memory_safety(t) == []

    def test_reuse_under_inflight_offload_fires_ms104(self):
        """Release raced the DMA, pool recycled the bytes: corruption."""
        t = ScheduleTrace()
        t.alloc("Y0", 512, offset=0, size=512)
        t.offload("Y0", MEMORY_STREAM, nbytes=512)
        t.free("Y0", COMPUTE_STREAM, offset=0, size=512)  # no sync first
        t.alloc("Y1", 512, offset=0, size=512)             # lands on hot bytes
        t.free("Y1", COMPUTE_STREAM, offset=0, size=512)
        findings = check_memory_safety(t)
        assert rules(findings).count("MS104") == 1

    def test_sync_cools_the_range_before_reuse(self):
        t = ScheduleTrace()
        t.alloc("Y0", 512, offset=0, size=512)
        t.offload("Y0", MEMORY_STREAM, nbytes=512)
        t.sync(MEMORY_STREAM)
        t.free("Y0", COMPUTE_STREAM, offset=0, size=512)
        t.alloc("Y1", 512, offset=0, size=512)
        t.free("Y1", COMPUTE_STREAM, offset=0, size=512)
        assert check_memory_safety(t) == []


class TestRefcountGate:
    """MS105 needs the network's liveness to know the release gates."""

    def setup_method(self):
        self.network = make_linear_cnn()
        self.liveness = LivenessAnalysis(self.network)
        # A storage some later forward layer still reads.
        self.storage = next(
            s for s in self.liveness.all_storages()
            if s.forward_release_at > s.owner and s.needed_backward)

    def test_release_before_last_consumer_fires_ms105_once(self):
        s = self.storage
        t = ScheduleTrace()
        t.alloc(f"Y{s.owner}", s.nbytes, owner=s.owner)
        # Freed in the forward pass without the gate kernel ever issuing.
        t.free(f"Y{s.owner}", COMPUTE_STREAM, owner=s.owner, phase="fwd")
        findings = check_memory_safety(t, liveness=self.liveness)
        assert rules(findings).count("MS105") == 1

    def test_discard_without_offload_fires_ms105_once(self):
        s = self.storage
        t = ScheduleTrace()
        t.alloc(f"Y{s.owner}", s.nbytes, owner=s.owner)
        t.kernel("gate", COMPUTE_STREAM, reads=(f"Y{s.owner}",),
                 layer=s.forward_release_at, phase="fwd")
        # Gate satisfied, but backward still needs the data and no
        # offload staged it to the host.
        t.free(f"Y{s.owner}", COMPUTE_STREAM, owner=s.owner, phase="fwd",
               layer=s.forward_release_at)
        findings = check_memory_safety(t, liveness=self.liveness)
        assert rules(findings).count("MS105") == 1

    def test_offload_then_release_at_gate_is_clean(self):
        s = self.storage
        t = ScheduleTrace()
        t.alloc(f"Y{s.owner}", s.nbytes, owner=s.owner)
        t.kernel("gate", COMPUTE_STREAM, reads=(f"Y{s.owner}",),
                 layer=s.forward_release_at, phase="fwd")
        t.offload(f"Y{s.owner}", MEMORY_STREAM, nbytes=s.nbytes,
                  owner=s.owner)
        t.sync(MEMORY_STREAM)
        t.free(f"Y{s.owner}", COMPUTE_STREAM, owner=s.owner, phase="fwd",
               layer=s.forward_release_at)
        assert check_memory_safety(t, liveness=self.liveness) == []

"""Edge-coverage tests across smaller surfaces of the library."""

import pytest

from repro.core import (
    AlgoConfig,
    CapacityReport,
    TransferPolicy,
    evaluate,
    simulate_page_migration,
)
from repro.graph import NetworkBuilder, gb
from repro.hw import PAPER_SYSTEM, TransferMode
from repro.sim import EventKind, Timeline, timeline_to_trace_events
from repro.zoo import build

from conftest import make_fork_join_cnn, make_linear_cnn


class TestNetworkSummary:
    def test_marks_in_place_and_refcounts(self, fork_join_cnn):
        text = fork_join_cnn.summary()
        assert "in-place" in text
        assert "refcnt=2" in text
        assert "feat" in text and "clsf" in text

    def test_header_has_batch(self, linear_cnn):
        assert "batch 4" in linear_cnn.summary()


class TestTimelineRendering:
    def test_custom_stream_order(self):
        timeline = Timeline()
        timeline.record("b", EventKind.FORWARD, "x", 0.0, 1.0)
        timeline.record("a", EventKind.BACKWARD, "y", 1.0, 2.0)
        art = timeline.render_ascii(width=50, streams=["b", "a"])
        lines = art.splitlines()
        assert lines[0].strip().startswith("b")

    def test_zero_span_timeline(self):
        timeline = Timeline()
        timeline.record("a", EventKind.FORWARD, "x", 1.0, 1.0)
        assert "a" in timeline.render_ascii(width=30)

    def test_trace_export_without_usage(self, linear_cnn):
        result = evaluate(linear_cnn, policy="all", algo="m")
        events = timeline_to_trace_events(result.timeline)
        assert not [e for e in events if e["ph"] == "C"]


class TestFP16EndToEnd:
    def test_fp16_network_simulates_under_every_policy(self):
        net = build("alexnet", 16).with_dtype_bytes(2)
        for policy in ("all", "conv", "base", "dyn"):
            result = evaluate(net, policy=policy)
            assert result.trainable, policy

    def test_fp16_halves_offload_traffic(self):
        fp32 = evaluate(build("alexnet", 32), policy="all", algo="m")
        fp16 = evaluate(build("alexnet", 32).with_dtype_bytes(2),
                        policy="all", algo="m")
        assert fp16.offload_bytes * 2 == fp32.offload_bytes


class TestLabels:
    def test_iteration_result_label(self, linear_cnn):
        result = evaluate(linear_cnn, policy="all", algo="m")
        assert result.label == "vDNN_all(m)"

    def test_algo_config_label_after_downgrade(self, deep_cnn):
        algos = AlgoConfig.performance_optimal(deep_cnn)
        target = max(algos.profiles,
                     key=lambda i: algos.profiles[i].workspace_bytes)
        algos.downgrade(deep_cnn, target)
        assert algos.label == "dyn"

    def test_policy_describe_stable(self):
        assert TransferPolicy.none().describe() == "vDNN_none"
        assert TransferPolicy.vdnn_conv().describe() == "vDNN_conv"


class TestPagingModes:
    def test_dma_mode_cheaper_than_page_migration(self):
        net = build("vgg16", 256)
        algos = AlgoConfig.performance_optimal(net)
        paged = simulate_page_migration(net, PAPER_SYSTEM, algos)
        dma = simulate_page_migration(net, PAPER_SYSTEM, algos,
                                      mode=TransferMode.DMA)
        assert dma.paging_seconds < paged.paging_seconds
        assert dma.total_seconds < paged.total_seconds

    def test_report_totals(self, linear_cnn):
        algos = AlgoConfig.memory_optimal(linear_cnn)
        report = simulate_page_migration(linear_cnn, PAPER_SYSTEM, algos)
        assert report.total_seconds == pytest.approx(
            report.compute_seconds + report.paging_seconds
        )


class TestCapacityReport:
    def test_headroom_ratio(self):
        report = CapacityReport("n", "g", {"base": 64, "vdnn": 256})
        assert report.headroom("vdnn", "base") == 4.0

    def test_headroom_infinite_when_baseline_zero(self):
        report = CapacityReport("n", "g", {"base": 0, "vdnn": 8})
        assert report.headroom("vdnn", "base") == float("inf")


class TestMixedPrecisionBuilders:
    def test_builder_dtype_reaches_gradients(self):
        net = (NetworkBuilder("half", (2, 3, 8, 8), dtype_bytes=2)
               .conv(4, kernel=3, pad=1).relu()
               .fc(4).softmax().build())
        from repro.core import LivenessAnalysis
        liveness = LivenessAnalysis(net)
        # Gradient twins mirror storage sizes, which are halved.
        assert liveness.max_gradient_bytes() == \
            max(s.nbytes for s in liveness.all_storages() if s.needs_gradient)
        assert net[1].weight_spec.dtype_bytes == 2


class TestDynFallbackPath:
    def test_falls_back_to_all_m_when_greedy_cannot_fit(self):
        """GPU sized just above the vDNN_all(m) peak: every perf-seeking
        probe fails and the planner must land on the pass-1 config."""
        from repro.core import plan_dynamic, simulate_vdnn
        net = build("vgg16", 32)
        floor = simulate_vdnn(
            net, PAPER_SYSTEM, TransferPolicy.vdnn_all(),
            AlgoConfig.memory_optimal(net),
        ).max_usage_bytes
        system = PAPER_SYSTEM.with_gpu_memory(int(floor * 1.01))
        plan = plan_dynamic(net, system)
        assert plan.result.trainable
        assert plan.result.max_usage_bytes <= system.gpu.memory_bytes

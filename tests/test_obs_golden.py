"""Golden-fixture regression tests for the metrics exports.

Each fixture under ``tests/golden/`` is the byte-exact output of one
``repro metrics`` invocation — same (config, seed) must produce the
same bytes forever.  A diff here means either the simulation or the
exporter changed behaviour; if the change is intentional, regenerate
with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_obs_golden.py

and review the fixture diff like any other code change.
"""

import os

import pytest

from repro.cli import main

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: fixture file -> ``repro metrics`` argv producing it (minus --out).
FIXTURES = {
    "vgg16_all_m.prom": [
        "metrics", "vgg16", "--batch", "64", "--policy", "all",
        "--algo", "m", "--format", "prom",
    ],
    "vgg16_all_m.json": [
        "metrics", "vgg16", "--batch", "64", "--policy", "all",
        "--algo", "m", "--format", "json",
    ],
    "schedule_faulted.prom": [
        "metrics", "--schedule", "--faults", "shrink@8=0.4,evict@3=vgg16#1",
        "--fault-seed", "1", "--format", "prom",
    ],
    "schedule_faulted.json": [
        "metrics", "--schedule", "--faults", "shrink@8=0.4,evict@3=vgg16#1",
        "--fault-seed", "1", "--format", "json",
    ],
}

_REGEN = os.environ.get("REPRO_REGEN_GOLDEN", "") not in ("", "0")


def _generate(argv, path):
    code = main(argv + ["--out", path])
    assert code == 0


@pytest.mark.parametrize("fixture", sorted(FIXTURES))
def test_golden_fixture(fixture, tmp_path):
    golden_path = os.path.join(GOLDEN_DIR, fixture)
    if _REGEN:
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        _generate(FIXTURES[fixture], golden_path)

    fresh_path = str(tmp_path / fixture)
    _generate(FIXTURES[fixture], fresh_path)

    with open(golden_path, "rb") as handle:
        golden = handle.read()
    with open(fresh_path, "rb") as handle:
        fresh = handle.read()
    assert fresh == golden, (
        f"{fixture} drifted from its golden fixture; if intentional, "
        f"regenerate with REPRO_REGEN_GOLDEN=1 (see module docstring)")


@pytest.mark.parametrize("fixture", sorted(FIXTURES))
def test_golden_generation_is_deterministic(fixture, tmp_path):
    a, b = str(tmp_path / "a"), str(tmp_path / "b")
    _generate(FIXTURES[fixture], a)
    _generate(FIXTURES[fixture], b)
    with open(a, "rb") as ha, open(b, "rb") as hb:
        assert ha.read() == hb.read()

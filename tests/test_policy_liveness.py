"""Tests for TransferPolicy and the storage liveness analysis."""

import pytest

from repro.core import LivenessAnalysis, PolicyKind, TransferPolicy
from repro.graph import LayerKind

from conftest import make_fork_join_cnn, make_linear_cnn


class TestTransferPolicy:
    def test_all_offloads_conv_and_pool(self, linear_cnn):
        policy = TransferPolicy.vdnn_all()
        assert policy.wants_offload(linear_cnn.node("conv_1"))
        assert policy.wants_offload(linear_cnn.node("pool_1"))

    def test_all_never_offloads_actv(self, linear_cnn):
        policy = TransferPolicy.vdnn_all()
        assert not policy.wants_offload(linear_cnn.node("relu_1"))

    def test_all_never_offloads_classifier(self, linear_cnn):
        policy = TransferPolicy.vdnn_all()
        assert not policy.wants_offload(linear_cnn.node("fc_1"))
        assert not policy.wants_offload(linear_cnn.node("softmax_1"))

    def test_conv_offloads_only_conv(self, linear_cnn):
        policy = TransferPolicy.vdnn_conv()
        assert policy.wants_offload(linear_cnn.node("conv_2"))
        assert not policy.wants_offload(linear_cnn.node("pool_1"))

    def test_none_offloads_nothing(self, linear_cnn):
        policy = TransferPolicy.none()
        assert policy.offload_set(linear_cnn) == frozenset()

    def test_custom_set(self, linear_cnn):
        conv2 = linear_cnn.node("conv_2").index
        policy = TransferPolicy.custom([conv2])
        assert policy.wants_offload(linear_cnn.node("conv_2"))
        assert not policy.wants_offload(linear_cnn.node("conv_1"))

    def test_custom_cannot_offload_actv(self, linear_cnn):
        relu = linear_cnn.node("relu_1").index
        policy = TransferPolicy.custom([relu])
        assert not policy.wants_offload(linear_cnn.node("relu_1"))

    def test_offload_set_subset_relation(self, linear_cnn):
        all_set = TransferPolicy.vdnn_all().offload_set(linear_cnn)
        conv_set = TransferPolicy.vdnn_conv().offload_set(linear_cnn)
        assert conv_set <= all_set

    def test_describe(self):
        assert TransferPolicy.vdnn_all().describe() == "vDNN_all"
        assert "custom" in TransferPolicy.custom([1, 2]).describe()
        assert TransferPolicy.custom([1]).kind is PolicyKind.CUSTOM


class TestLivenessLinear:
    def test_every_node_maps_to_a_storage(self, linear_cnn):
        liveness = LivenessAnalysis(linear_cnn)
        for node in linear_cnn:
            assert liveness.storage_of(node.index).owner == node.storage_index

    def test_relu_shares_conv_storage(self, linear_cnn):
        liveness = LivenessAnalysis(linear_cnn)
        conv = linear_cnn.node("conv_1")
        relu = linear_cnn.node("relu_1")
        storage = liveness.storage_of(relu.index)
        assert storage.owner == conv.index
        assert relu.index in storage.chain

    def test_conv_storage_released_in_forward_at_pool(self, linear_cnn):
        # conv_1+relu_1 storage's last forward reader is pool_1.
        liveness = LivenessAnalysis(linear_cnn)
        storage = liveness.storage_of(linear_cnn.node("conv_1").index)
        assert storage.forward_release_at == linear_cnn.node("pool_1").index

    def test_conv_storage_needed_backward(self, linear_cnn):
        liveness = LivenessAnalysis(linear_cnn)
        storage = liveness.storage_of(linear_cnn.node("conv_1").index)
        assert storage.needed_backward
        # Both the ReLU (needs Y) and the max pool (needs X) read it.
        assert linear_cnn.node("relu_1").index in storage.backward_users
        assert linear_cnn.node("pool_1").index in storage.backward_users

    def test_backward_release_is_earliest_user(self, linear_cnn):
        liveness = LivenessAnalysis(linear_cnn)
        storage = liveness.storage_of(linear_cnn.node("conv_1").index)
        assert storage.backward_release_after == min(storage.backward_users)

    def test_input_storage_has_no_gradient(self, linear_cnn):
        liveness = LivenessAnalysis(linear_cnn)
        assert not liveness.storage_of(0).needs_gradient

    def test_input_storage_needed_backward_for_conv_dw(self, linear_cnn):
        # conv_1's dW needs the input batch.
        liveness = LivenessAnalysis(linear_cnn)
        storage = liveness.storage_of(0)
        assert storage.needed_backward
        assert storage.backward_users == [linear_cnn.node("conv_1").index]

    def test_gradient_lifetime(self, linear_cnn):
        liveness = LivenessAnalysis(linear_cnn)
        conv1 = linear_cnn.node("conv_1")
        storage = liveness.storage_of(conv1.index)
        # Gradient twin born at the highest-index consumer's backward...
        assert storage.gradient_alloc_at == max(storage.gradient_writers)
        # ...and released after the owner's backward.
        assert storage.gradient_release_after == conv1.index

    def test_total_feature_map_bytes_counts_unique_storages(self, linear_cnn):
        liveness = LivenessAnalysis(linear_cnn)
        expected = sum(n.output_spec.nbytes for n in linear_cnn if not n.in_place)
        assert liveness.total_feature_map_bytes() == expected

    def test_max_gradient_bytes(self, linear_cnn):
        liveness = LivenessAnalysis(linear_cnn)
        assert liveness.max_gradient_bytes() == max(
            s.nbytes for s in liveness.all_storages() if s.needs_gradient
        )


class TestLivenessForkJoin:
    def test_fork_storage_has_multiple_consumers(self, fork_join_cnn):
        liveness = LivenessAnalysis(fork_join_cnn)
        stem = fork_join_cnn.node("stem")
        storage = liveness.storage_of(stem.index)
        # Released only at the later branch's forward (refcount gate).
        branch_a = fork_join_cnn.node("branch_a").index
        branch_b = fork_join_cnn.node("branch_b").index
        assert storage.forward_release_at == max(branch_a, branch_b)

    def test_fork_gradient_written_by_both_branches(self, fork_join_cnn):
        liveness = LivenessAnalysis(fork_join_cnn)
        storage = liveness.storage_of(fork_join_cnn.node("stem").index)
        writers = set(storage.gradient_writers)
        assert fork_join_cnn.node("branch_a").index in writers
        assert fork_join_cnn.node("branch_b").index in writers

    def test_input_storages_deduplicated(self, fork_join_cnn):
        liveness = LivenessAnalysis(fork_join_cnn)
        join = fork_join_cnn.node("join")
        storages = liveness.input_storages(join.index)
        owners = [s.owner for s in storages]
        assert len(owners) == len(set(owners)) == 2

    def test_all_storages_sorted_by_owner(self, fork_join_cnn):
        liveness = LivenessAnalysis(fork_join_cnn)
        owners = [s.owner for s in liveness.all_storages()]
        assert owners == sorted(owners)


class TestLivenessInference:
    def test_terminal_storage_read_by_loss(self, linear_cnn):
        liveness = LivenessAnalysis(linear_cnn)
        softmax = linear_cnn.node("softmax_1")
        storage = liveness.storage_of(softmax.index)
        assert storage.needed_backward          # softmax backward reads Y
        assert storage.gradient_writers          # loss writes its gradient

"""Tests for the multi-tenant GPU scheduler (repro.sched)."""

import pytest

from repro.alloc import PoolAllocator
from repro.hw import PAPER_SYSTEM
from repro.sched import (
    AdmissionController,
    ContentionModel,
    GPUScheduler,
    Job,
    JobState,
    LADDER,
    RungEval,
    available_policies,
    evaluate_ladder,
    make_policy,
    schedule_jobs,
    schedule_report,
)
from repro.sim import EventKind, job_lane_name, timeline_to_trace_events
from repro.zoo import build

MB = 1 << 20
GB = 1 << 30


def synthetic_rung(label, footprint_mb, compute, pcie):
    return RungEval(
        rung=label,
        footprint_bytes=footprint_mb * MB,
        iter_seconds=max(compute, pcie),
        compute_seconds=compute,
        pcie_seconds=pcie,
        pcie_bytes=int(pcie * 12.8e9),
    )


class SyntheticController(AdmissionController):
    """Admission controller with hand-authored ladders (no simulation)."""

    def __init__(self, profiles):
        super().__init__(PAPER_SYSTEM)
        self.profiles = profiles

    def ladder(self, job):
        return self.profiles[job.job_key if hasattr(job, "job_key")
                             else job.name]


# ----------------------------------------------------------------------
# Job / parsing
# ----------------------------------------------------------------------
class TestJob:
    def test_parse_full_spec(self):
        job = Job.parse("vgg16:64:200", index=3)
        assert job.network == "vgg16"
        assert job.batch_size == 64
        assert job.iterations == 200
        assert job.name == "vgg16#3"

    def test_parse_defaults(self):
        job = Job.parse("alexnet")
        assert job.batch_size is None and job.iterations == 100

    def test_invalid_iterations_rejected(self):
        with pytest.raises(ValueError):
            Job("j", "alexnet", iterations=0)

    def test_build_network_uses_zoo(self):
        network = Job("j", "alexnet", 8).build_network()
        assert network.input_node.output_spec.shape[0] == 8


# ----------------------------------------------------------------------
# Degradation ladder
# ----------------------------------------------------------------------
class TestLadder:
    def test_ladder_order_and_monotone_footprint(self):
        rungs = evaluate_ladder(build("vgg16", 64), PAPER_SYSTEM)
        assert [r.rung for r in rungs] == list(LADDER)
        # Fastest rung is hungriest; every later rung saves memory over
        # base(p) and costs time.
        base = rungs[0]
        for rung in rungs[1:]:
            assert rung.footprint_bytes < base.footprint_bytes
            assert rung.iter_seconds >= base.iter_seconds

    def test_hybrid_rung_moves_no_pcie_traffic(self):
        rungs = evaluate_ladder(build("alexnet", 32), PAPER_SYSTEM)
        hybrid = dict((r.rung, r) for r in rungs)["hybrid"]
        assert hybrid.pcie_bytes == 0 and hybrid.pcie_seconds == 0

    def test_controller_memoizes(self):
        controller = AdmissionController(PAPER_SYSTEM)
        job = Job("a", "alexnet", 16)
        first = controller.ladder(job)
        assert controller.ladder(Job("b", "alexnet", 16)) is first

    def test_cheapest_fit_degrades_with_budget(self):
        controller = AdmissionController(PAPER_SYSTEM)
        job = Job("j", "vgg16", 64)
        rungs = controller.ladder(job)
        roomy = controller.cheapest_fit(job, 64 * GB)
        assert roomy.rung == "base(p)"
        tight = controller.cheapest_fit(job, rungs[2].footprint_bytes)
        assert tight.rung != "base(p)"
        assert controller.cheapest_fit(job, 1) is None


# ----------------------------------------------------------------------
# Contention model
# ----------------------------------------------------------------------
class TestContention:
    def test_solo_job_runs_at_solo_speed(self):
        rung = synthetic_rung("base(p)", 10, 1.0, 0.0)
        assert ContentionModel().iteration_seconds([rung]) == [1.0]

    def test_compute_time_sliced_across_tenants(self):
        rung = synthetic_rung("base(p)", 10, 1.0, 0.0)
        assert ContentionModel().iteration_seconds([rung, rung]) == [2.0, 2.0]

    def test_pcie_split_only_across_offloaders(self):
        pcie_bound = synthetic_rung("all(m)", 10, 0.1, 1.0)
        compute_bound = synthetic_rung("base(p)", 10, 1.0, 0.0)
        times = ContentionModel().iteration_seconds(
            [pcie_bound, compute_bound]
        )
        # The offloader keeps its full PCIe bandwidth (only one PCIe
        # user); the compute-bound job is time-sliced.
        assert times[0] == 1.0
        assert times[1] == 2.0

    def test_two_offloaders_halve_bandwidth(self):
        rung = synthetic_rung("all(m)", 10, 0.1, 1.0)
        assert ContentionModel().iteration_seconds([rung, rung]) == [2.0, 2.0]

    def test_timeslice_overhead(self):
        rung = synthetic_rung("base(p)", 10, 1.0, 0.0)
        model = ContentionModel(timeslice_overhead=0.1)
        assert model.iteration_seconds([rung, rung]) == \
            [2.0 * 1.1, 2.0 * 1.1]

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            ContentionModel(timeslice_overhead=-0.1)


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
class TestPolicies:
    def test_registry(self):
        assert available_policies() == ["best_fit", "fifo", "sjf"]
        with pytest.raises(KeyError):
            make_policy("round_robin")

    def test_fifo_blocks_best_fit_does_not(self):
        assert make_policy("fifo").blocking
        assert make_policy("sjf").blocking
        assert not make_policy("best_fit").blocking


# ----------------------------------------------------------------------
# Scheduler: synthetic workloads (deterministic packing behaviour)
# ----------------------------------------------------------------------
def packing_workload():
    """P is PCIe-bound; X cannot share with P; C can.

    FIFO admits P, then blocks on X, leaving C waiting although it
    fits — serializing the fleet.  Memory-aware best-fit packs C next
    to P, overlapping C's compute with P's PCIe traffic.
    """
    profiles = {
        "P": [synthetic_rung("all(m)", 6, 0.1, 1.0)],
        "X": [synthetic_rung("base(p)", 6, 1.0, 0.0)],
        "C": [synthetic_rung("base(p)", 3, 1.0, 0.0)],
    }
    jobs = [
        Job("P", "alexnet", iterations=100),
        Job("X", "alexnet", iterations=50),
        Job("C", "alexnet", iterations=50),
    ]
    return profiles, jobs


def run_synthetic(policy, profiles, jobs, budget_mb=10):
    scheduler = GPUScheduler(
        policy=policy,
        budget_bytes=budget_mb * MB,
        controller=SyntheticController(profiles),
    )
    scheduler.submit_all(jobs)
    return scheduler.run()


class TestSchedulerSynthetic:
    def test_best_fit_strictly_beats_fifo_when_packing_matters(self):
        profiles, jobs = packing_workload()
        fifo = run_synthetic("fifo", profiles, jobs)
        best = run_synthetic("best_fit", profiles, jobs)
        assert all(r.state is JobState.FINISHED for r in fifo.records)
        assert all(r.state is JobState.FINISHED for r in best.records)
        assert best.aggregate_throughput > fifo.aggregate_throughput
        assert best.makespan < fifo.makespan

    def test_fifo_head_of_line_blocking(self):
        profiles, jobs = packing_workload()
        result = run_synthetic("fifo", profiles, jobs)
        by_name = {r.job.name: r for r in result.records}
        # C fits next to P from t=0 but FIFO keeps it behind X.
        assert by_name["C"].admit_time == by_name["X"].admit_time
        assert by_name["C"].queueing_delay > 0

    def test_best_fit_skips_blocked_job(self):
        profiles, jobs = packing_workload()
        result = run_synthetic("best_fit", profiles, jobs)
        by_name = {r.job.name: r for r in result.records}
        assert by_name["C"].queueing_delay == 0
        assert by_name["X"].queueing_delay > 0

    def test_shared_pool_never_exceeds_budget(self):
        profiles, jobs = packing_workload()
        for policy in available_policies():
            result = run_synthetic(policy, profiles, jobs)
            # Every event-timestamped sample of shared-pool live bytes
            # stays within the budget.
            assert result.usage.curve()
            for _time, live in result.usage.curve():
                assert live <= result.budget_bytes

    def test_job_too_big_for_budget_is_rejected_not_blocking(self):
        profiles, jobs = packing_workload()
        profiles["X"] = [synthetic_rung("base(p)", 64, 1.0, 0.0)]
        result = run_synthetic("fifo", profiles, jobs)
        by_name = {r.job.name: r for r in result.records}
        assert by_name["X"].state is JobState.REJECTED
        assert "budget" in by_name["X"].failure
        assert by_name["P"].state is JobState.FINISHED
        assert by_name["C"].state is JobState.FINISHED

    def test_staggered_arrivals_honoured(self):
        profiles = {
            "A": [synthetic_rung("base(p)", 4, 1.0, 0.0)],
            "B": [synthetic_rung("base(p)", 4, 1.0, 0.0)],
        }
        jobs = [
            Job("A", "alexnet", iterations=10, submit_time=0.0),
            Job("B", "alexnet", iterations=10, submit_time=100.0),
        ]
        result = run_synthetic("fifo", profiles, jobs)
        by_name = {r.job.name: r for r in result.records}
        assert by_name["A"].finish_time == pytest.approx(10.0)
        assert by_name["B"].admit_time == pytest.approx(100.0)
        assert by_name["B"].queueing_delay == pytest.approx(0.0)

    def test_duplicate_job_names_rejected(self):
        scheduler = GPUScheduler(budget_bytes=GB)
        scheduler.submit(Job("same", "alexnet"))
        with pytest.raises(ValueError):
            scheduler.submit(Job("same", "alexnet"))

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            GPUScheduler(budget_bytes=0)
        with pytest.raises(ValueError):
            GPUScheduler(budget_bytes=-GB)

    def test_deadline_flag(self):
        profiles = {"A": [synthetic_rung("base(p)", 4, 1.0, 0.0)]}
        jobs = [Job("A", "alexnet", iterations=10, deadline=5.0)]
        result = run_synthetic("fifo", profiles, jobs)
        assert result.records[0].deadline_met is False

    def test_timeline_has_one_lane_per_job(self):
        profiles, jobs = packing_workload()
        result = run_synthetic("best_fit", profiles, jobs)
        lanes = {
            job_lane_name(e.stream)
            for e in result.timeline.events
            if job_lane_name(e.stream) is not None
        }
        assert lanes == {"P", "X", "C"}
        run_events = result.timeline.of_kind(EventKind.RUN)
        assert run_events and all(
            e.stream.startswith("job:") for e in run_events
        )


# ----------------------------------------------------------------------
# Scheduler: the real 4-job mixed workload (acceptance criteria)
# ----------------------------------------------------------------------
MIXED_JOBS = [
    ("alexnet", 128, 50),
    ("vgg16", 64, 50),
    ("resnet50", 32, 50),
    ("googlenet", 128, 50),
]


@pytest.fixture(scope="module")
def mixed_results():
    controller = AdmissionController(PAPER_SYSTEM)  # share ladder sims
    jobs = [
        Job(f"{network}#{i}", network, batch, iterations=iters)
        for i, (network, batch, iters) in enumerate(MIXED_JOBS)
    ]
    return {
        policy: schedule_jobs(jobs, system=PAPER_SYSTEM, policy=policy,
                              controller=controller)
        for policy in available_policies()
    }


class TestMixedWorkload:
    def test_all_jobs_finish_on_12gb_titan_x(self, mixed_results):
        for result in mixed_results.values():
            assert result.budget_bytes == 12 * GB
            assert len(result.finished) == 4
            assert not result.rejected

    def test_per_job_metrics_reported(self, mixed_results):
        for result in mixed_results.values():
            for record in result.records:
                assert record.completion_time > 0
                assert record.queueing_delay >= 0
                assert record.rung in LADDER
                assert record.footprint_bytes > 0

    def test_memory_high_water_within_budget(self, mixed_results):
        for result in mixed_results.values():
            assert 0 < result.peak_pool_bytes <= result.budget_bytes
            for _time, live in result.usage.curve():
                assert live <= result.budget_bytes

    def test_degradation_ladder_engaged_under_pressure(self, mixed_results):
        # 4 jobs on 12 GB cannot all take base(p); someone degrades.
        for result in mixed_results.values():
            assert any(r.rung != "base(p)" for r in result.records)

    def test_best_fit_at_least_matches_fifo(self, mixed_results):
        assert mixed_results["best_fit"].aggregate_throughput >= \
            mixed_results["fifo"].aggregate_throughput

    def test_report_renders(self, mixed_results):
        text = schedule_report(mixed_results["best_fit"])
        for fragment in ("vgg16#1", "Fleet metrics", "queue delay",
                         "pool high-water", "JCT"):
            assert fragment in text

    def test_trace_export_one_process_per_job(self, mixed_results):
        result = mixed_results["best_fit"]
        events = timeline_to_trace_events(result.timeline, result.usage)
        lanes = {
            e["args"]["name"] for e in events
            if e["name"] == "process_name" and e["pid"] > 0
        }
        assert lanes == {r.job.name for r in result.records}
        # Counter events for the shared pool ride along on pid 0.
        assert any(e.get("ph") == "C" for e in events)

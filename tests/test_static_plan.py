"""The static plan verifier: differential proofs and SP4xx fixtures.

Three layers of evidence that ``repro verify --static`` is sound:

* **bit-equality** — on clean plans the abstract walk reproduces the
  simulator's accounting exactly (peak == ``managed_max_bytes``, same
  offload/prefetch/pinned bytes, same trainability verdict);
* **differential parity** — static-clean implies dynamic-clean, and
  each ablation that fires HB00x/MS10x dynamically fires the
  corresponding SP4xx statically (same finding counts where the rules
  are one-to-one twins);
* **known-bad fixtures** — one per SP4xx rule, each firing exactly
  once, including the release-list corruption the mutation test
  demands.

Corrupted plans are always built with the ``CompiledPlan`` constructor
directly — never via :func:`repro.core.plan.compiled_plan` — so the
process-wide plan cache is never poisoned for other tests.
"""

import dataclasses

import pytest

from conftest import make_deep_cnn, make_fork_join_cnn, make_linear_cnn
from repro.analysis.static_plan import (
    audit_plan,
    interpret_plan,
    plan_dynamic_static,
    verify_compiled_plan,
    verify_plan,
    verify_point_static,
    verify_recompute_plan,
    verify_service_plan,
    verify_zoo_static,
)
from repro.analysis.diagnostics import Report, Severity
from repro.analysis.verify import analyze_trace, verify_point, verify_zoo
from repro.core.algo_config import AlgoConfig
from repro.core.dynamic import plan_dynamic
from repro.core.executor import _VDNNSimulation, simulate_vdnn
from repro.core.liveness import LivenessAnalysis
from repro.core.plan import CompiledPlan, compiled_plan
from repro.core.policy import TransferPolicy
from repro.core.recompute import CheckpointPlan, checkpoint_plan
from repro.hw import PAPER_SYSTEM
from repro.serve.layering import RESIDENCY_POLICIES, plan_service
from repro.zoo import build


def rules(report):
    return sorted(d.rule for d in report.diagnostics)


def algos_for(network):
    return AlgoConfig.performance_optimal(network)


def fresh_plan(network, algos=None):
    """A private plan safe to corrupt (bypasses the compiled_plan cache)."""
    return CompiledPlan(network, PAPER_SYSTEM, algos or algos_for(network))


def dynamic_report(network, plan, policy, algos, **flags):
    """Run the real simulator over a (possibly corrupted) plan, traced."""
    sim = _VDNNSimulation(network, PAPER_SYSTEM, policy, algos, plan,
                          verify=True, **flags)
    sim.allocate_persistent()
    sim.run_forward()
    sim.run_backward()
    return analyze_trace(sim.trace, network=network,
                         liveness=LivenessAnalysis(network))


def tiny_gpu(memory_bytes):
    return dataclasses.replace(
        PAPER_SYSTEM,
        gpu=dataclasses.replace(PAPER_SYSTEM.gpu,
                                memory_bytes=memory_bytes))


# ----------------------------------------------------------------------
# Bit-equality: the walk reproduces the simulator's accounting exactly
# ----------------------------------------------------------------------
class TestBitEquality:
    NETWORKS = [make_linear_cnn, make_fork_join_cnn, make_deep_cnn]
    POLICIES = [TransferPolicy.vdnn_all, TransferPolicy.vdnn_conv,
                TransferPolicy.none]

    @pytest.mark.parametrize("make_net", NETWORKS)
    @pytest.mark.parametrize("make_policy", POLICIES)
    def test_toy_networks_match_simulation(self, make_net, make_policy):
        network = make_net()
        algos = algos_for(network)
        policy = make_policy()
        plan = compiled_plan(network, PAPER_SYSTEM, algos)
        interp = interpret_plan(network, PAPER_SYSTEM, plan, policy)
        result = simulate_vdnn(network, PAPER_SYSTEM, policy, algos,
                               verify=True)
        assert interp.peak_bytes == result.managed_max_bytes
        assert interp.offload_bytes == result.offload_bytes
        assert interp.prefetch_bytes == result.prefetch_bytes
        assert interp.pinned_peak_bytes == result.pinned_peak_bytes
        assert interp.max_usage_bytes == result.max_usage_bytes
        assert interp.trainable == result.trainable

    def test_zoo_network_matches_simulation(self):
        network = build("alexnet")
        algos = algos_for(network)
        policy = TransferPolicy.vdnn_all()
        plan = compiled_plan(network, PAPER_SYSTEM, algos)
        interp = interpret_plan(network, PAPER_SYSTEM, plan, policy)
        result = simulate_vdnn(network, PAPER_SYSTEM, policy, algos,
                               verify=True)
        assert interp.peak_bytes == result.managed_max_bytes
        assert interp.offload_bytes == result.offload_bytes
        assert interp.prefetch_bytes == result.prefetch_bytes
        assert interp.pinned_peak_bytes == result.pinned_peak_bytes
        assert interp.trainable == result.trainable


# ----------------------------------------------------------------------
# Differential harness: static-clean implies dynamic-clean
# ----------------------------------------------------------------------
class TestStaticImpliesDynamic:
    @pytest.mark.parametrize("make_net", [make_linear_cnn, make_deep_cnn,
                                          make_fork_join_cnn])
    def test_toy_networks(self, make_net):
        network = make_net()
        algos = algos_for(network)
        policy = TransferPolicy.vdnn_all()
        static = verify_plan(network, PAPER_SYSTEM, policy, algos)
        assert static.ok, static.render_text()
        result = simulate_vdnn(network, PAPER_SYSTEM, policy, algos,
                               verify=True)
        dynamic = analyze_trace(result.schedule_trace, network=network,
                                liveness=LivenessAnalysis(network))
        assert dynamic.ok, dynamic.render_text()

    @pytest.mark.parametrize("policy,algo", [
        ("all", "p"), ("conv", "m"), ("base", "p"), ("dyn", "-"),
    ])
    def test_zoo_point_parity(self, policy, algo):
        network = build("alexnet")
        static = verify_point_static(network, policy=policy, algo=algo)
        assert static.ok, static.render_text()
        dynamic = verify_point(network, policy=policy, algo=algo)
        assert dynamic.ok, dynamic.render_text()
        # Subjects pair up so the sweeps zip together point for point.
        assert static.subject == dynamic.subject

    def test_dyn_ladder_adopts_identical_configuration(self):
        network = build("alexnet")
        policy, algos, probes = plan_dynamic_static(network, PAPER_SYSTEM)
        simulated = plan_dynamic(network, PAPER_SYSTEM)
        assert policy.describe() == simulated.policy.describe()
        assert algos.label == simulated.algos.label
        assert [p.description for p in probes] \
            == [p.description for p in simulated.passes]
        assert [p.trainable for p in probes] \
            == [p.trainable for p in simulated.passes]


# ----------------------------------------------------------------------
# Mutation parity: each unsafe ablation fires twin rules in both worlds
# ----------------------------------------------------------------------
class TestMutationParity:
    """The three executor ablations, statically and dynamically.

    Where the rules are one-to-one twins the finding *counts* match
    too: one SP402 per unsafely-freed offload == one HB002 per
    racing transfer, one SP403 error per unsynced prefetch read ==
    one HB003, one SP403 window warning == one HB004.
    """

    def run_pair(self, network, **flags):
        algos = algos_for(network)
        policy = TransferPolicy.vdnn_all()
        static = verify_plan(network, PAPER_SYSTEM, policy, algos, **flags)
        result = simulate_vdnn(network, PAPER_SYSTEM, policy, algos,
                               verify=True, **flags)
        dynamic = analyze_trace(result.schedule_trace, network=network,
                                liveness=LivenessAnalysis(network))
        return static, dynamic

    @pytest.mark.parametrize("make_net", [make_linear_cnn, make_deep_cnn])
    def test_missing_offload_sync_fires_sp402_and_hb002(self, make_net):
        static, dynamic = self.run_pair(make_net(),
                                        sync_after_offload=False)
        sp402 = static.by_rule("SP402")
        hb002 = dynamic.by_rule("HB002")
        assert sp402 and not static.ok and not dynamic.ok
        assert len(sp402) == len(hb002)
        assert dynamic.by_rule("MS104")  # free during in-flight transfer

    @pytest.mark.parametrize("make_net", [make_linear_cnn, make_deep_cnn])
    def test_missing_prefetch_sync_fires_sp403_and_hb003(self, make_net):
        static, dynamic = self.run_pair(make_net(),
                                        sync_after_prefetch=False)
        sp403 = static.by_rule("SP403")
        assert sp403 and not static.ok and not dynamic.ok
        assert all(d.severity is Severity.ERROR for d in sp403)
        assert len(sp403) == len(dynamic.by_rule("HB003"))
        assert dynamic.by_rule("HB001")

    @pytest.mark.parametrize("make_net", [make_linear_cnn, make_deep_cnn,
                                          make_fork_join_cnn])
    def test_unbounded_window_fires_sp403_and_hb004_warnings(self, make_net):
        static, dynamic = self.run_pair(make_net(),
                                        bounded_prefetch_window=False)
        sp403 = static.by_rule("SP403")
        hb004 = dynamic.by_rule("HB004")
        assert sp403 and len(sp403) == len(hb004)
        assert all(d.severity is Severity.WARNING for d in sp403)
        # Warnings, not errors: both reports still pass the gate.
        assert static.ok and dynamic.ok

    def test_moved_dead_release_fires_sp402_and_ms105(self):
        # resnet18's Y22 becomes dead at forward step 26; releasing it
        # three steps early frees a buffer step 26 still reads.
        network = build("resnet18")
        algos = algos_for(network)
        plan = fresh_plan(network, algos)
        steps = {step.index: step for step in plan.forward}
        record = next(d for d in steps[26].dead_releases if d.owner == 22)
        steps[26].dead_releases = tuple(
            d for d in steps[26].dead_releases if d.owner != 22)
        steps[24].dead_releases = steps[24].dead_releases + (record,)

        policy = TransferPolicy.vdnn_conv()
        static = verify_compiled_plan(network, PAPER_SYSTEM, plan, policy)
        assert rules(static) == ["SP402"]
        dynamic = dynamic_report(network, plan, policy, algos)
        assert dynamic.by_rule("MS101") and dynamic.by_rule("MS105")


# ----------------------------------------------------------------------
# Known-bad fixtures: one per rule, firing exactly once
# ----------------------------------------------------------------------
class TestKnownBadFixtures:
    def test_sp401_over_budget_fires_once_as_warning(self):
        network = make_deep_cnn()
        report = verify_plan(network, tiny_gpu(1 << 16),
                             TransferPolicy.none(), algos_for(network))
        assert rules(report) == ["SP401"]
        (finding,) = report.diagnostics
        assert finding.severity is Severity.WARNING
        # Over-budget means untrainable, not unsafe: the gate passes.
        assert report.ok
        assert "first over-budget allocation" in finding.message

    def test_sp402_moved_dead_release_fires_once(self):
        network = build("resnet18")
        plan = fresh_plan(network)
        steps = {step.index: step for step in plan.forward}
        record = next(d for d in steps[26].dead_releases if d.owner == 22)
        steps[26].dead_releases = tuple(
            d for d in steps[26].dead_releases if d.owner != 22)
        steps[24].dead_releases = steps[24].dead_releases + (record,)
        report = verify_compiled_plan(network, PAPER_SYSTEM, plan,
                                      TransferPolicy.vdnn_conv())
        assert rules(report) == ["SP402"]

    def test_sp403_single_unsynced_prefetch_fires_once(self):
        # Offload exactly one layer, then drop the prefetch sync: the
        # one asynchronous restore is read unsynced — one SP403.
        network = make_deep_cnn()
        convs = [n.index for n in network if n.kind.name == "CONV"]
        report = verify_plan(network, PAPER_SYSTEM,
                             TransferPolicy.custom([convs[1]]),
                             algos_for(network),
                             sync_after_prefetch=False)
        assert rules(report) == ["SP403"]
        assert report.diagnostics[0].severity is Severity.ERROR

    def test_sp404_dropped_release_list_entry_fires_once(self):
        """The ISSUE's mutation test: corrupt a CompiledPlan release
        list and assert SP404 catches the leak."""
        network = make_deep_cnn()
        algos = algos_for(network)
        plan = fresh_plan(network, algos)
        victim = None
        for step in plan.backward:
            features = [r for r in step.releases if not r[1]]
            if features:
                victim = features[0]
                step.releases = tuple(
                    r for r in step.releases if r != victim)
                break
        assert victim is not None
        report = verify_compiled_plan(network, PAPER_SYSTEM, plan,
                                      TransferPolicy.vdnn_all())
        assert rules(report) == ["SP404"]
        assert "never freed" in report.diagnostics[0].message
        # The dynamic passes do NOT see this defect (the trace ends
        # with an end-sweep that mops the leak up): static-only catch.
        dynamic = dynamic_report(network, plan, TransferPolicy.vdnn_all(),
                                 algos)
        assert dynamic.ok

    def test_sp404_release_moved_earlier_is_use_after_free(self):
        # Freeing Y before its last backward consumer: the simulator
        # would crash outright on this plan — the static audit names
        # the defect without running anything.
        network = make_deep_cnn()
        plan = fresh_plan(network)
        steps = list(plan.backward)
        for position, step in enumerate(steps):
            features = [r for r in step.releases if not r[1]]
            if features and position >= 2:
                step.releases = tuple(
                    r for r in step.releases if r != features[0])
                steps[position - 2].releases = \
                    steps[position - 2].releases + (features[0],)
                break
        report = verify_compiled_plan(network, PAPER_SYSTEM, plan,
                                      TransferPolicy.vdnn_all())
        assert rules(report) == ["SP404"]
        assert "use-after-free" in report.diagnostics[0].message

    def test_sp405_checkpoint_overlap_fires_once(self):
        network = make_deep_cnn()
        plan = checkpoint_plan(network, LivenessAnalysis(network), None)
        stray = sorted(plan.dropped)[0]
        bad = CheckpointPlan(checkpoints=plan.checkpoints | {stray},
                             dropped=plan.dropped,
                             droppable_order=plan.droppable_order)
        report = verify_recompute_plan(network, plan=bad)
        assert rules(report) == ["SP405"]
        assert "both checkpointed and dropped" in \
            report.diagnostics[0].message

    def test_sp406_broken_service_identity_fires_once(self):
        network = build("alexnet")
        algos = algos_for(network)
        plan = plan_service(network, PAPER_SYSTEM, algos,
                            residency="layered")
        bad = dataclasses.replace(
            plan, service_seconds=plan.service_seconds + 0.5)
        report = verify_service_plan(network, PAPER_SYSTEM, algos, bad)
        assert rules(report) == ["SP406"]


# ----------------------------------------------------------------------
# Structural audit specifics
# ----------------------------------------------------------------------
class TestAuditPlan:
    def test_clean_plan_flags_nothing(self):
        network = make_deep_cnn()
        report = Report(subject="audit")
        flagged = audit_plan(network, fresh_plan(network), report)
        assert flagged == set() and report.diagnostics == []

    def test_audit_and_walk_never_double_report(self):
        # One corrupted owner must yield exactly one finding even
        # though both the audit and the walk can see the defect.
        network = make_deep_cnn()
        plan = fresh_plan(network)
        victim = None
        for step in plan.backward:
            features = [r for r in step.releases if not r[1]]
            if features:
                victim = features[0]
                step.releases = tuple(
                    r for r in step.releases if r != victim)
                break
        report = verify_compiled_plan(network, PAPER_SYSTEM, plan,
                                      TransferPolicy.vdnn_all())
        owner_mentions = [d for d in report.diagnostics
                          if f"Y{victim[0]}" in d.message]
        assert len(owner_mentions) == 1


# ----------------------------------------------------------------------
# SP405: recompute plans
# ----------------------------------------------------------------------
class TestRecomputeVerifier:
    @pytest.mark.parametrize("make_net", [make_linear_cnn, make_deep_cnn,
                                          make_fork_join_cnn])
    def test_generated_plans_are_clean(self, make_net):
        report = verify_recompute_plan(make_net())
        assert report.ok and report.diagnostics == []

    def test_zoo_plan_is_clean(self):
        report = verify_recompute_plan(build("alexnet"), segment_count=4)
        assert report.ok and report.diagnostics == []

    def test_input_protection_ablation(self):
        # Force the first droppable storage (whose only producer is the
        # input batch) into the dropped set.  With the executor's
        # input-protection guard modelled (keep_input=True) the segment
        # regenerates from the protected input; without it, every
        # replay in that segment bottoms out at freed state.
        network = make_deep_cnn()
        plan = checkpoint_plan(network, LivenessAnalysis(network), None)
        first = plan.droppable_order[0]
        forced = CheckpointPlan(checkpoints=plan.checkpoints - {first},
                                dropped=plan.dropped | {first},
                                droppable_order=plan.droppable_order)
        assert verify_recompute_plan(network, plan=forced,
                                     keep_input=True).ok
        broken = verify_recompute_plan(network, plan=forced,
                                       keep_input=False)
        assert not broken.ok
        assert all(d.rule == "SP405" for d in broken.diagnostics)


# ----------------------------------------------------------------------
# SP406: serve plans
# ----------------------------------------------------------------------
class TestServicePlanVerifier:
    @pytest.mark.parametrize("residency", RESIDENCY_POLICIES)
    def test_planned_services_are_clean(self, residency):
        network = build("alexnet")
        algos = algos_for(network)
        extra = {"pinned_bytes": 32 << 20} if residency == "pinned" else {}
        plan = plan_service(network, PAPER_SYSTEM, algos,
                            residency=residency, **extra)
        report = verify_service_plan(network, PAPER_SYSTEM, algos, plan)
        assert report.ok and report.diagnostics == [], report.render_text()


# ----------------------------------------------------------------------
# Sweep drivers: no simulation executes, hybrid skips clean points
# ----------------------------------------------------------------------
class TestSweepDrivers:
    @pytest.fixture
    def no_simulation(self, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("a simulation ran during a static sweep")

        for module in ("repro.core.executor", "repro.analysis.verify"):
            monkeypatch.setattr(f"{module}.simulate_vdnn", boom)
            monkeypatch.setattr(f"{module}.simulate_baseline", boom)

    def test_static_sweep_runs_no_simulation(self, no_simulation):
        reports = verify_zoo_static(names=["alexnet", "overfeat"])
        assert len(reports) == 20
        assert all(report.ok for report in reports)

    def test_hybrid_skips_simulation_for_clean_points(self, no_simulation):
        # alexnet is fully static-clean, so hybrid mode has nothing
        # left to re-verify dynamically — the patched simulators stay
        # untouched.
        reports = verify_zoo(names=["alexnet"], mode="hybrid")
        assert len(reports) == 10
        assert all(report.ok for report in reports)

    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ValueError, match="unknown verify mode"):
            verify_zoo(names=["alexnet"], mode="psychic")

    def test_static_subjects_match_dynamic_grid(self):
        static = verify_zoo_static(names=["alexnet"])
        name = build("alexnet").name
        assert [r.subject for r in static] == [
            f"{name} base(m)", f"{name} base(p)",
            f"{name} conv(m)", f"{name} conv(p)",
            f"{name} all(m)", f"{name} all(p)",
            f"{name} comp(m)", f"{name} comp(p)",
            f"{name} dyn",
            f"{name} joint",
        ]

"""Tests for the training-run planner."""

import pytest

from repro.core import UntrainableError, plan_training_run
from repro.hw import PAPER_SYSTEM
from repro.zoo import build

from conftest import make_linear_cnn


class TestPlanTrainingRun:
    def test_iteration_arithmetic(self, linear_cnn):
        plan = plan_training_run(linear_cnn, PAPER_SYSTEM,
                                 dataset_size=1000, epochs=3)
        per_epoch = -(-1000 // linear_cnn.batch_size)
        assert plan.iterations == per_epoch * 3
        assert plan.total_seconds == pytest.approx(
            plan.iterations * plan.iteration_seconds
        )

    def test_vgg_run_takes_days_not_minutes(self):
        """The paper: training takes "days to weeks"."""
        plan = plan_training_run(build("vgg16", 64), PAPER_SYSTEM, epochs=74)
        assert 24 <= plan.total_hours <= 24 * 60

    def test_energy_consistent_with_power(self, linear_cnn):
        plan = plan_training_run(linear_cnn, PAPER_SYSTEM,
                                 dataset_size=100, epochs=1)
        assert plan.energy_kwh == pytest.approx(
            plan.average_watts * plan.total_seconds / 3.6e6
        )

    def test_pcie_traffic_zero_without_offload(self, linear_cnn):
        # Tiny network: dyn picks no offloading.
        plan = plan_training_run(linear_cnn, PAPER_SYSTEM,
                                 dataset_size=100, epochs=1)
        assert plan.pcie_bytes_per_iteration == 0
        assert plan.total_pcie_bytes == 0

    def test_oversubscribed_network_reports_traffic(self):
        plan = plan_training_run(build("vgg16", 256), PAPER_SYSTEM,
                                 dataset_size=1000, epochs=1)
        assert plan.pcie_bytes_per_iteration > 0
        assert plan.gpu_peak_bytes <= PAPER_SYSTEM.gpu.memory_bytes

    def test_untrainable_network_raises(self, linear_cnn):
        tiny = PAPER_SYSTEM.with_gpu_memory(1 << 12)
        with pytest.raises(UntrainableError):
            plan_training_run(linear_cnn, tiny, dataset_size=10, epochs=1)

    def test_input_validation(self, linear_cnn):
        with pytest.raises(ValueError):
            plan_training_run(linear_cnn, PAPER_SYSTEM, dataset_size=0)
        with pytest.raises(ValueError):
            plan_training_run(linear_cnn, PAPER_SYSTEM, epochs=0)

    def test_summary_rows_render(self, linear_cnn):
        plan = plan_training_run(linear_cnn, PAPER_SYSTEM,
                                 dataset_size=100, epochs=1)
        rows = plan.summary_rows()
        assert any("energy" in row[0] for row in rows)
        assert all(len(row) == 2 for row in rows)


class TestPlannerCLI:
    def test_plan_command(self, capsys):
        from repro.cli import main
        assert main(["plan", "alexnet", "--batch", "32",
                     "--dataset-size", "1000", "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "Training-run plan" in out
        assert "energy" in out

"""Differential & mutation wall for compressed DMA and the joint planner.

Four layers of pinning, mirroring the repo's existing walls:

* **Bit-neutral instrumentation** — a ``comp`` or ``joint`` run with an
  :class:`repro.obs.Instrumentation` attached is byte-identical to the
  same run without one.
* **Sanitizer-clean** — every joint schedule (mixed offload + compress
  + drop) replays clean through the race and memory-safety passes, and
  recording the trace does not perturb the simulation.
* **Static/dynamic parity** — the static joint ladder adopts the exact
  configuration the simulating ladder adopts, and the abstract walk's
  accounting matches the simulator bit-for-bit on every metric the
  planner decides by.
* **Mutations** — surgically corrupting a known-good artifact (drop a
  rematerialization ALLOC from a traced schedule, overstate a record's
  compression ratio) makes the matching verifier rule fire; the wall
  proves the checkers can actually lose.
"""

import pytest

from repro.analysis.diagnostics import Report
from repro.analysis.safety import check_memory_safety
from repro.analysis.static_plan import (
    audit_compression,
    interpret_joint_plan,
    plan_joint_static,
    verify_joint_plan,
)
from repro.analysis.trace import OpKind
from repro.analysis.verify import verify_point, verify_result
from repro.core import AlgoConfig, UntrainableError, evaluate
from repro.core.joint import JointConfig, plan_joint, simulate_joint_config
from repro.core.plan import compiled_plan
from repro.hw import PAPER_SYSTEM
from repro.obs import Instrumentation
from repro.zoo import build

GB = 1 << 30

#: Budget-constrained points where the adopted joint plan genuinely
#: mixes strategies (offload + compress + drop), per the frontier bench.
MIXED_POINTS = (("googlenet", 128, 2.0), ("googlenet", 128, 2.6),
                ("resnet50", 32, 1.2))


def _system(budget_gb):
    return PAPER_SYSTEM.with_gpu_memory(int(budget_gb * GB))


def _assert_identical(plain, instrumented):
    assert instrumented == plain
    assert instrumented.timeline.events == plain.timeline.events
    assert instrumented.usage.curve() == plain.usage.curve()


# ----------------------------------------------------------------------
# Instrumentation is bit-neutral for the new policies
# ----------------------------------------------------------------------
class TestObsBitNeutral:
    @pytest.mark.parametrize("algo", ["m", "p"])
    def test_comp_policy_bit_neutral(self, algo):
        network = build("alexnet", 128)
        plain = evaluate(network, policy="comp", algo=algo,
                         use_cache=False)
        obs = Instrumentation()
        instrumented = evaluate(network, policy="comp", algo=algo,
                                use_cache=False, obs=obs)
        _assert_identical(plain, instrumented)
        assert len(obs.registry) > 0

    @pytest.mark.parametrize("name,batch,budget", MIXED_POINTS[:1])
    def test_joint_policy_bit_neutral(self, name, batch, budget):
        network = build(name, batch)
        system = _system(budget)
        plain = evaluate(network, system, policy="joint", use_cache=False)
        obs = Instrumentation()
        instrumented = evaluate(network, system, policy="joint",
                                use_cache=False, obs=obs)
        _assert_identical(plain, instrumented)
        assert len(obs.registry) > 0

    def test_mixed_config_bit_neutral(self):
        name, batch, budget = MIXED_POINTS[-1]
        network = build(name, batch)
        system = _system(budget)
        config = plan_joint(network, system, use_cache=False).config
        algos = AlgoConfig.performance_optimal(network)
        plain = simulate_joint_config(network, system, config, algos)
        obs = Instrumentation()
        instrumented = simulate_joint_config(network, system, config,
                                             algos, obs=obs)
        _assert_identical(plain, instrumented)


# ----------------------------------------------------------------------
# Every mixed schedule replays clean through the sanitizers
# ----------------------------------------------------------------------
class TestSanitizerClean:
    @pytest.mark.parametrize("name,batch,budget", MIXED_POINTS)
    def test_joint_schedule_verifies_clean(self, name, batch, budget):
        network = build(name, batch)
        system = _system(budget)
        plan = plan_joint(network, system, use_cache=False)
        result = simulate_joint_config(network, system, plan.config,
                                       plan.algos, verify=True)
        report = verify_result(result, network,
                               subject=f"{name} {plan.config.describe()}")
        assert report.ok, report.render_text()

    @pytest.mark.parametrize("name,batch,budget", MIXED_POINTS)
    def test_tracing_is_bit_neutral(self, name, batch, budget):
        """verify=True records the schedule without perturbing it."""
        network = build(name, batch)
        system = _system(budget)
        plan = plan_joint(network, system, use_cache=False)
        plain = simulate_joint_config(network, system, plan.config,
                                      plan.algos)
        traced = simulate_joint_config(network, system, plan.config,
                                       plan.algos, verify=True)
        assert traced.schedule_trace is not None
        assert traced.total_time == plain.total_time
        assert traced.managed_max_bytes == plain.managed_max_bytes
        assert traced.offload_bytes == plain.offload_bytes
        assert traced.prefetch_bytes == plain.prefetch_bytes
        assert traced.usage.samples == plain.usage.samples

    @pytest.mark.parametrize("name", ["alexnet", "googlenet"])
    def test_comp_point_verifies_clean(self, name):
        report = verify_point(build(name, 128), policy="comp", algo="p")
        assert report.ok, report.render_text()


# ----------------------------------------------------------------------
# Static/dynamic parity: one brain, two interpreters
# ----------------------------------------------------------------------
class TestStaticDynamicParity:
    @pytest.mark.parametrize("name,batch,budget", MIXED_POINTS
                             + (("alexnet", 64, 12.0),
                                ("vgg16", 64, 8.0)))
    def test_ladders_adopt_identical_configs(self, name, batch, budget):
        network = build(name, batch)
        system = _system(budget)
        try:
            dynamic = plan_joint(network, system, use_cache=False)
        except UntrainableError:
            with pytest.raises(UntrainableError):
                plan_joint_static(network, system)
            return
        config, algos, passes = plan_joint_static(network, system)
        assert config == dynamic.config
        assert algos.label == dynamic.algos.label
        assert len(passes) == len(dynamic.passes)
        assert [p.description for p in passes] \
            == [p.description for p in dynamic.passes]

    @pytest.mark.parametrize("name,batch,budget", MIXED_POINTS)
    def test_abstract_walk_matches_simulation_bitwise(self, name, batch,
                                                      budget):
        """Peak/offload/prefetch/pinned: interpreter == simulator."""
        network = build(name, batch)
        system = _system(budget)
        jplan = plan_joint(network, system, use_cache=False)
        result = simulate_joint_config(network, system, jplan.config,
                                       jplan.algos)
        plan = compiled_plan(network, system, jplan.algos)
        interp = interpret_joint_plan(network, system, plan, jplan.config)
        assert interp.peak_bytes == result.managed_max_bytes
        assert interp.offload_bytes == result.offload_bytes
        assert interp.prefetch_bytes == result.prefetch_bytes
        assert interp.pinned_peak_bytes == result.pinned_peak_bytes
        assert interp.trainable == result.trainable

    @pytest.mark.parametrize("name,batch,budget", MIXED_POINTS)
    def test_verify_joint_plan_is_clean(self, name, batch, budget):
        network = build(name, batch)
        system = _system(budget)
        jplan = plan_joint(network, system, use_cache=False)
        report = verify_joint_plan(network, system, jplan.config,
                                   jplan.algos)
        assert report.ok, report.render_text()
        assert not report.diagnostics


# ----------------------------------------------------------------------
# Mutations: prove the checkers can lose
# ----------------------------------------------------------------------
class TestMutations:
    def _traced_mixed_run(self):
        name, batch, budget = MIXED_POINTS[0]
        network = build(name, batch)
        system = _system(budget)
        plan = plan_joint(network, system, use_cache=False)
        assert plan.config.drop, "point must exercise rematerialization"
        result = simulate_joint_config(network, system, plan.config,
                                       plan.algos, verify=True)
        return result.schedule_trace

    def test_dropping_remat_alloc_fires_ms101_once(self):
        """Remove one rematerialization ALLOC: every backward read of
        that storage is now a use-after-release, flagged exactly once
        per buffer, and its now-unpaired release is a double free."""
        trace = self._traced_mixed_run()
        assert check_memory_safety(trace) == []
        remat = next(op for op in trace.of_kind(OpKind.ALLOC)
                     if "(re)" in op.label)
        mutant = trace.without(remat.seq)
        findings = check_memory_safety(mutant)
        rules = [d.rule for d in findings]
        assert rules.count("MS101") == 1
        mine = [d for d in findings if remat.buffer in d.message]
        assert any(d.rule == "MS101" for d in mine)

    def test_overstating_compression_fires_sp407(self):
        """A plan claiming a better wire ratio than the engine model
        would silently split static and simulated PCIe accounting —
        the audit catches the drift before anything runs."""
        network = build("alexnet", 128)
        algos = AlgoConfig.memory_optimal(network)
        plan = compiled_plan(network, PAPER_SYSTEM, algos)
        clean = Report(subject="clean")
        audit_compression(network, PAPER_SYSTEM, plan, clean)
        assert clean.ok and not clean.diagnostics
        rec = next(r for r in plan.records.values()
                   if r.nbytes > 1 and r.comp_nbytes < r.nbytes)
        rec.comp_nbytes //= 2
        tampered = Report(subject="tampered")
        audit_compression(network, PAPER_SYSTEM, plan, tampered)
        assert any(d.rule == "SP407" for d in tampered.diagnostics)

    def test_wire_size_escaping_bounds_fires_sp407(self):
        network = build("alexnet", 128)
        algos = AlgoConfig.memory_optimal(network)
        plan = compiled_plan(network, PAPER_SYSTEM, algos)
        rec = next(r for r in plan.records.values() if r.nbytes > 0)
        rec.comp_nbytes = rec.nbytes + 1  # "compression" that grows
        report = Report(subject="oversize")
        audit_compression(network, PAPER_SYSTEM, plan, report)
        assert any(d.rule == "SP407" for d in report.diagnostics)

    def test_infeasible_config_fires_sp401(self):
        """Keep-everything under a tight budget: the static walk must
        report the over-budget step instead of quietly passing."""
        name, batch, budget = MIXED_POINTS[0]
        network = build(name, batch)
        system = _system(budget)
        report = verify_joint_plan(
            network, system, JointConfig(),
            AlgoConfig.memory_optimal(network))
        assert any(d.rule == "SP401" for d in report.diagnostics)

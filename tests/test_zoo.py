"""Tests for the network zoo against the paper's stated configurations."""

import pytest

from repro.graph import LayerKind, gb
from repro.zoo import (
    PAPER_CONVENTIONAL,
    PAPER_NETWORKS,
    PAPER_VERY_DEEP,
    available,
    build,
    build_alexnet,
    build_deep_vgg,
    build_googlenet,
    build_overfeat,
    build_vgg16,
)


class TestAlexNet:
    def test_conv_and_fc_counts(self):
        net = build_alexnet(128)
        assert len(net.conv_layers) == 5
        assert len(net.layers_of_kind(LayerKind.FC)) == 3

    def test_first_layer_geometry(self):
        net = build_alexnet(128)
        assert net.node("conv_01").output_spec.shape == (128, 96, 55, 55)

    def test_has_lrn_layers(self):
        assert len(build_alexnet(1).layers_of_kind(LayerKind.LRN)) == 2

    def test_fc6_input_is_9216(self):
        net = build_alexnet(2)
        fc = net.node("fc_01")
        assert fc.weight_spec.shape == (4096, 256 * 6 * 6)


class TestOverFeat:
    def test_conv_and_fc_counts(self):
        net = build_overfeat(128)
        assert len(net.conv_layers) == 5
        assert len(net.layers_of_kind(LayerKind.FC)) == 3

    def test_spatial_chain(self):
        net = build_overfeat(4)
        assert net.node("conv_01").output_spec.shape[2:] == (56, 56)
        assert net.node("conv_05").output_spec.shape == (4, 1024, 12, 12)

    def test_weight_heavy_classifier(self):
        # OverFeat's fc_01 sees 1024*6*6 = 36864 features.
        net = build_overfeat(2)
        assert net.node("fc_01").weight_spec.shape == (3072, 36864)


class TestGoogLeNet:
    def test_nine_inception_modules(self):
        net = build_googlenet(32)
        joins = [n for n in net if n.kind is LayerKind.CONCAT]
        assert len(joins) == 9

    def test_57_conv_layers(self):
        # 3 stem convs + 9 modules x 6 convs each.
        assert len(build_googlenet(32).conv_layers) == 57

    def test_inception_fork_refcounts(self):
        net = build_googlenet(32)
        forks = [n for n in net if n.refcount == 4]
        assert len(forks) == 9  # every module input feeds 4 branches

    def test_final_spatial_reduction(self):
        net = build_googlenet(8)
        assert net.node("pool_05").output_spec.shape == (8, 1024, 1, 1)

    def test_single_fc_classifier(self):
        assert len(build_googlenet(8).layers_of_kind(LayerKind.FC)) == 1


class TestVGG16:
    def test_paper_counts_16_convs_3_fcs(self):
        net = build_vgg16(64)
        assert len(net.conv_layers) == 16
        assert len(net.layers_of_kind(LayerKind.FC)) == 3

    def test_homogeneous_3x3_convs(self):
        for node in build_vgg16(2).conv_layers:
            assert node.layer.kernel == 3
            assert node.layer.stride == 1
            assert node.layer.pad == 1

    def test_five_pool_groups(self):
        assert len(build_vgg16(2).layers_of_kind(LayerKind.POOL)) == 5

    def test_channel_progression(self):
        widths = [n.layer.out_channels for n in build_vgg16(2).conv_layers]
        assert widths == [64] * 2 + [128] * 2 + [256] * 4 + [512] * 8

    def test_batch_256_feature_maps_near_28gb_story(self):
        # The paper: VGG-16 (256) needs ~28 GB in total; its feature maps
        # alone are ~16 GB.
        from repro.core import LivenessAnalysis
        net = build_vgg16(256)
        fmaps = LivenessAnalysis(net).total_feature_map_bytes()
        assert 14 <= gb(fmaps) <= 18


class TestDeepVGG:
    def test_depth_rule(self):
        # +100 CONV layers = +20 per group.
        net = build_deep_vgg(116, 32)
        assert len(net.conv_layers) == 116

    @pytest.mark.parametrize("depth", [216, 316, 416])
    def test_all_paper_depths(self, depth):
        assert len(build_deep_vgg(depth, 2).conv_layers) == depth

    def test_group_channel_widths_preserved(self):
        widths = {n.layer.out_channels for n in build_deep_vgg(116, 2).conv_layers}
        assert widths == {64, 128, 256, 512}

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            build_deep_vgg(100, 32)
        with pytest.raises(ValueError):
            build_deep_vgg(15, 32)


class TestRegistry:
    def test_available_lists_all_families(self):
        assert len(available()) == 14
        assert "resnet34" in available()
        assert "resnet152" in available()
        assert "rnn" in available()
        assert "lstm" in available()

    def test_build_is_case_and_dash_insensitive(self):
        assert build("VGG-16", 2).name == "VGG-16(2)"
        assert build("vgg_16", 2).name == "VGG-16(2)"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build("densenet")

    def test_bad_batch_rejected(self):
        with pytest.raises(ValueError):
            build("alexnet", 0)

    def test_paper_defaults(self):
        assert build("alexnet").batch_size == 128
        assert build("vgg16").batch_size == 64
        assert build("vgg116").batch_size == 32

    def test_paper_catalog_has_ten_networks(self):
        assert len(PAPER_NETWORKS) == 10
        assert len(PAPER_CONVENTIONAL) == 6
        assert len(PAPER_VERY_DEEP) == 4

"""Tests for weight tying, the Slice layer, and the unrolled RNN."""

import numpy as np
import pytest

from repro.core import TransferPolicy, evaluate
from repro.graph import (
    GraphError,
    LayerKind,
    NetworkBuilder,
    Slice,
    TensorSpec,
)
from repro.numerics import TrainingRuntime, make_batch, ops
from repro.zoo import build_unrolled_rnn


class TestSliceLayer:
    def test_output_shape(self):
        layer = Slice("s", inputs=["x"], begin=4, end=12)
        spec = layer.infer_output([TensorSpec((2, 16, 1, 1))])
        assert spec.shape == (2, 8, 1, 1)

    def test_range_validation(self):
        with pytest.raises(ValueError):
            Slice("s", begin=4, end=4)
        with pytest.raises(ValueError):
            Slice("s", begin=-1, end=2)
        layer = Slice("s", inputs=["x"], begin=0, end=32)
        with pytest.raises(ValueError):
            layer.infer_output([TensorSpec((2, 16, 1, 1))])

    def test_backward_needs_nothing(self):
        assert not Slice("s", begin=0, end=1).backward_needs_x

    def test_numerics_roundtrip(self):
        x = np.arange(24, dtype=np.float32).reshape(2, 12, 1, 1)
        y = ops.slice_forward(x, 3, 7)
        np.testing.assert_array_equal(y, x[:, 3:7])
        dx = ops.slice_backward(x.shape, y, 3, 7)
        np.testing.assert_array_equal(dx[:, 3:7], y)
        assert dx[:, :3].sum() == 0 and dx[:, 7:].sum() == 0


class TestWeightTying:
    def build_tied(self):
        return (NetworkBuilder("tied", (2, 8, 1, 1))
                .fc(8, name="shared")
                .tanh()
                .fc(8, name="again", tied_to="shared")
                .tanh()
                .fc(4, name="head").softmax().build())

    def test_tied_node_owns_no_bytes(self):
        net = self.build_tied()
        assert net.node("again").is_weight_tied
        assert net.node("again").weight_bytes == 0
        assert net.node("again").weight_tensor_bytes > 0
        assert net.node("again").weight_root == net.node("shared").index

    def test_total_weights_count_shared_once(self):
        net = self.build_tied()
        untied = (NetworkBuilder("untied", (2, 8, 1, 1))
                  .fc(8, name="a").tanh().fc(8, name="b").tanh()
                  .fc(4, name="head").softmax().build())
        assert net.total_weight_bytes() < untied.total_weight_bytes()

    def test_unknown_tie_target_rejected(self):
        with pytest.raises(GraphError, match="unknown layer"):
            (NetworkBuilder("bad", (2, 8, 1, 1))
             .fc(8, tied_to="ghost").softmax().build())

    def test_forward_tie_rejected(self):
        with pytest.raises(GraphError, match="earlier"):
            (NetworkBuilder("bad", (2, 8, 1, 1))
             .fc(8, name="a", tied_to="b").tanh()
             .fc(8, name="b").softmax().build())

    def test_spec_mismatch_rejected(self):
        with pytest.raises(GraphError, match="specs differ"):
            (NetworkBuilder("bad", (2, 8, 1, 1))
             .fc(8, name="a").tanh()
             .fc(16, name="b", tied_to="a").softmax().build())

    def test_transitive_tie_resolves_to_root(self):
        net = (NetworkBuilder("chain", (2, 8, 1, 1))
               .fc(8, name="a").tanh()
               .fc(8, name="b", tied_to="a").tanh()
               .fc(8, name="c", tied_to="b").tanh()
               .fc(4).softmax().build())
        assert net.node("c").weight_root == net.node("a").index

    def test_tied_gradients_accumulate(self):
        """dW of the shared layer reflects BOTH uses (nonzero even if one
        use alone would produce a different value)."""
        net = self.build_tied()
        runtime = TrainingRuntime(net, TransferPolicy.none(), seed=0,
                                  learning_rate=1e-9)
        images, labels = make_batch((2, 8, 1, 1), 4, 0)
        runtime.train_step(images, labels)
        shared = net.node("shared").index
        dw = runtime.device.get(f"dW{shared}")
        assert np.abs(dw).sum() > 0
        # The tied node has no gradient buffer of its own.
        assert not runtime.device.contains(f"dW{net.node('again').index}")

    def test_tied_weights_stay_identical_through_training(self):
        net = self.build_tied()
        runtime = TrainingRuntime(net, TransferPolicy.none(), seed=0,
                                  learning_rate=0.05)
        images, labels = make_batch((2, 8, 1, 1), 4, 0)
        for _ in range(3):
            runtime.train_step(images, labels)
        assert runtime.weights("shared") is runtime.weights("again")


class TestUnrolledRNN:
    def test_structure(self):
        net = build_unrolled_rnn(timesteps=4, input_dim=8, hidden_dim=16,
                                 num_classes=4, batch_size=2)
        slices = net.layers_of_kind(LayerKind.SLICE)
        assert len(slices) == 4
        # One W_xh + one W_hh own parameters; all other recurrences tie.
        fc_nodes = net.layers_of_kind(LayerKind.FC)
        owners = [n for n in fc_nodes if not n.is_weight_tied]
        assert {n.name for n in owners} == {"W_xh", "W_hh", "head"}

    def test_input_packs_sequence(self):
        net = build_unrolled_rnn(timesteps=4, input_dim=8, batch_size=2)
        assert net.input_node.output_spec.shape == (2, 32, 1, 1)

    def test_memory_grows_with_sequence_length(self):
        short = evaluate(build_unrolled_rnn(4, 32, 64, 10, 16),
                         policy="none", algo="m")
        long = evaluate(build_unrolled_rnn(32, 32, 64, 10, 16),
                        policy="none", algo="m")
        assert long.managed_max_bytes > short.managed_max_bytes * 2.5

    def test_vdnn_cuts_average_usage_with_sequence_length(self):
        """The Figure-15 effect, with sequence length as depth: offload
        drains the camped per-timestep activations during forward, so
        the *average* footprint drops and PCIe traffic scales with T."""
        short = evaluate(build_unrolled_rnn(4, 32, 64, 10, 16),
                         policy="all", algo="m")
        long = evaluate(build_unrolled_rnn(32, 32, 64, 10, 16),
                        policy="all", algo="m")
        base_long = evaluate(build_unrolled_rnn(32, 32, 64, 10, 16),
                             policy="none", algo="m")
        assert long.avg_usage_bytes < base_long.avg_usage_bytes
        assert long.offload_bytes > short.offload_bytes

    def test_training_bit_identical_under_offload(self):
        def build():
            return build_unrolled_rnn(6, 8, 16, 4, 4)
        images, labels = make_batch((4, 48, 1, 1), 4, 0)
        ref = TrainingRuntime(build(), TransferPolicy.none(), seed=0)
        off = TrainingRuntime(build(), TransferPolicy.vdnn_all(), seed=0)
        for _ in range(3):
            a = ref.train_step(images, labels)
            b = off.train_step(images, labels)
            assert a.loss == b.loss
            assert b.demand_fetch_count == 0
        assert ref.parameter_fingerprint() == off.parameter_fingerprint()

    def test_training_bit_identical_under_recompute(self):
        def build():
            return build_unrolled_rnn(6, 8, 16, 4, 4)
        images, labels = make_batch((4, 48, 1, 1), 4, 0)
        ref = TrainingRuntime(build(), TransferPolicy.none(), seed=0)
        rec = TrainingRuntime(build(), TransferPolicy.none(), seed=0,
                              recompute_segments=3)
        for _ in range(3):
            assert ref.train_step(images, labels).loss == \
                rec.train_step(images, labels).loss

    def test_rnn_learns(self):
        """BPTT through tied weights actually reduces the loss."""
        net = build_unrolled_rnn(6, 8, 16, 4, 8)
        runtime = TrainingRuntime(net, TransferPolicy.vdnn_all(), seed=1,
                                  learning_rate=0.1)
        images, labels = make_batch((8, 48, 1, 1), 4, 0)
        losses = [runtime.train_step(images, labels).loss for _ in range(15)]
        assert losses[-1] < losses[0] * 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            build_unrolled_rnn(timesteps=0)
        with pytest.raises(ValueError):
            build_unrolled_rnn(hidden_dim=0)

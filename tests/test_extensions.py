"""Tests for the extension modules: paging, capacity, recompute,
data-parallel, interconnects, and fp16 precision."""

import pytest

from repro.core import (
    AlgoConfig,
    CapacityReport,
    TransferPolicy,
    capacity_report,
    evaluate,
    max_trainable_batch,
    min_gpus_for_baseline,
    paging_vs_vdnn,
    simulate_baseline,
    simulate_data_parallel,
    simulate_page_migration,
    simulate_recompute,
    simulate_vdnn,
)
from repro.graph import gb
from repro.hw import (
    NVLINK_1,
    NVLINK_2,
    PAPER_SYSTEM,
    PCIE_GEN3,
    PCIE_GEN4,
    TransferMode,
    interconnect_sweep,
    system_with_link,
)
from repro.zoo import build

from conftest import make_deep_cnn, make_fork_join_cnn, make_linear_cnn


class TestPageMigration:
    def test_fitting_network_pays_nothing(self, linear_cnn):
        algos = AlgoConfig.memory_optimal(linear_cnn)
        report = simulate_page_migration(linear_cnn, PAPER_SYSTEM, algos)
        assert report.fits
        assert report.slowdown == 1.0

    def test_oversubscribed_network_pays_heavily(self):
        net = build("vgg16", 256)
        algos = AlgoConfig.performance_optimal(net)
        report = simulate_page_migration(net, PAPER_SYSTEM, algos)
        assert not report.fits
        assert report.slowdown > 10  # paper: paging is a non-starter

    def test_dma_paging_much_cheaper_but_still_slower_than_vdnn(self):
        comparison = paging_vs_vdnn(build("vgg16", 256), PAPER_SYSTEM)
        assert comparison["paging_slowdown"] > 10
        assert 1.0 <= comparison["paging_dma_slowdown"] < \
            comparison["paging_slowdown"]
        assert comparison["vdnn_dyn_slowdown"] < \
            comparison["paging_dma_slowdown"]

    def test_oversubscription_accounting(self):
        net = build("vgg16", 256)
        algos = AlgoConfig.performance_optimal(net)
        report = simulate_page_migration(net, PAPER_SYSTEM, algos)
        assert report.oversubscribed_bytes == \
            report.footprint_bytes - PAPER_SYSTEM.gpu.memory_bytes


class TestCapacityPlanner:
    def test_tiny_network_hits_upper_limit(self, linear_cnn):
        assert max_trainable_batch(
            linear_cnn, PAPER_SYSTEM, "base", "m", upper_limit=64
        ) == 64

    def test_zero_when_nothing_fits(self, linear_cnn):
        tiny = PAPER_SYSTEM.with_gpu_memory(1 << 12)
        assert max_trainable_batch(linear_cnn, tiny, "base", "m") == 0

    def test_result_is_exact_boundary(self):
        net = build("vgg16", 64)
        best = max_trainable_batch(net, PAPER_SYSTEM, "base", "p",
                                   upper_limit=512)
        assert evaluate(net.with_batch_size(best),
                        policy="base", algo="p").trainable
        assert not evaluate(net.with_batch_size(best + 1),
                            policy="base", algo="p").trainable

    def test_vgg16_paper_story(self):
        """Baseline caps VGG-16 near batch ~64-100; vDNN reaches 256."""
        report = capacity_report(build("vgg16", 64), PAPER_SYSTEM,
                                 upper_limit=512)
        assert report.max_batch["base(p)"] < 128
        assert report.max_batch["all(m)"] >= 256
        assert report.max_batch["dyn"] >= 256
        assert report.headroom("all(m)", "base(p)") > 2.0

    def test_policy_ordering(self):
        report = capacity_report(build("vgg16", 64), PAPER_SYSTEM,
                                 upper_limit=512)
        assert report.max_batch["base(p)"] <= report.max_batch["base(m)"]
        assert report.max_batch["base(m)"] <= report.max_batch["all(m)"]


class TestRecompute:
    def test_reduces_memory_below_baseline(self):
        net = build("vgg16", 64)
        algos = AlgoConfig.memory_optimal(net)
        base = simulate_baseline(net, PAPER_SYSTEM, algos)
        rec = simulate_recompute(net, PAPER_SYSTEM, algos)
        assert rec.max_usage_bytes < base.max_usage_bytes

    def test_pays_extra_forward_time(self):
        net = build("vgg16", 64)
        algos = AlgoConfig.memory_optimal(net)
        base = simulate_baseline(net, PAPER_SYSTEM, algos)
        rec = simulate_recompute(net, PAPER_SYSTEM, algos)
        assert rec.total_time > base.total_time
        # Bounded by one full extra forward pass.
        forward_time = sum(
            e.duration for e in base.timeline.events
            if e.kind.value == "FWD"
        )
        assert rec.compute_stall_seconds <= forward_time * 1.01

    def test_no_pcie_traffic(self):
        net = make_deep_cnn(depth=6)
        rec = simulate_recompute(net, PAPER_SYSTEM,
                                 AlgoConfig.memory_optimal(net))
        assert rec.offload_bytes == 0
        assert rec.pinned_peak_bytes == 0

    def test_more_segments_less_memory(self):
        net = build("vgg16", 64)
        algos = AlgoConfig.memory_optimal(net)
        coarse = simulate_recompute(net, PAPER_SYSTEM, algos, segment_count=2)
        fine = simulate_recompute(net, PAPER_SYSTEM, algos, segment_count=8)
        assert fine.max_usage_bytes <= coarse.max_usage_bytes

    def test_fork_join_topology_supported(self, fork_join_cnn):
        rec = simulate_recompute(fork_join_cnn, PAPER_SYSTEM,
                                 AlgoConfig.memory_optimal(fork_join_cnn))
        assert rec.trainable

    def test_pool_fully_drained(self, deep_cnn):
        rec = simulate_recompute(deep_cnn, PAPER_SYSTEM,
                                 AlgoConfig.memory_optimal(deep_cnn))
        final_live = rec.usage.curve()[-1][1]
        persistent = sum(2 * n.weight_bytes for n in deep_cnn
                         if n.is_feature_extraction)
        assert final_live >= persistent
        assert final_live < persistent + 4096 * len(deep_cnn.nodes)


class TestDataParallel:
    def test_paper_4x_vgg_story(self):
        net = build("vgg16", 256)
        one = simulate_data_parallel(net, 1, PAPER_SYSTEM)
        four = simulate_data_parallel(net, 4, PAPER_SYSTEM)
        assert not one.per_gpu_trainable
        assert four.per_gpu_trainable
        assert four.per_gpu_batch == 64
        assert four.images_per_second > one.images_per_second

    def test_allreduce_grows_with_gpu_count(self):
        net = build("vgg16", 256)
        two = simulate_data_parallel(net, 2, PAPER_SYSTEM)
        four = simulate_data_parallel(net, 4, PAPER_SYSTEM)
        assert 0 < two.allreduce_seconds < four.allreduce_seconds

    def test_scaling_efficiency_below_one(self):
        net = build("vgg16", 256)
        report = simulate_data_parallel(net, 4, PAPER_SYSTEM)
        assert 0 < report.scaling_efficiency < 1.0

    def test_indivisible_batch_rejected(self):
        with pytest.raises(ValueError):
            simulate_data_parallel(build("vgg16", 64), 3, PAPER_SYSTEM)

    def test_min_gpus(self):
        assert min_gpus_for_baseline(build("vgg16", 256), PAPER_SYSTEM) == 4
        assert min_gpus_for_baseline(build("alexnet", 128), PAPER_SYSTEM) == 1


class TestInterconnects:
    def test_sweep_is_ordered_by_bandwidth(self):
        sweep = interconnect_sweep()
        rates = [cfg.pcie.dma_bandwidth for _, cfg in sweep]
        assert rates == sorted(rates)
        assert len(sweep) == 4

    def test_faster_link_cuts_vdnn_overhead(self):
        net = build("vgg16", 64)
        algos = AlgoConfig.memory_optimal(net)
        stalls = []
        for _, system in interconnect_sweep():
            result = simulate_vdnn(net, system, TransferPolicy.vdnn_all(),
                                   algos)
            stalls.append(result.compute_stall_seconds)
        assert stalls[0] > stalls[-1]
        assert all(a >= b for a, b in zip(stalls, stalls[1:]))

    def test_constants(self):
        assert PCIE_GEN4.dma_bandwidth == 2 * PCIE_GEN3.dma_bandwidth
        assert NVLINK_2.max_bandwidth > NVLINK_1.max_bandwidth
        assert system_with_link(NVLINK_1).pcie is NVLINK_1


class TestPrecision:
    def test_fp16_halves_every_allocation(self):
        net = build("vgg16", 64)
        half = net.with_dtype_bytes(2)
        for a, b in zip(net.nodes, half.nodes):
            assert b.output_spec.nbytes * 2 == a.output_spec.nbytes
            assert b.weight_bytes * 2 == a.weight_bytes

    def test_fp16_vgg256_still_needs_vdnn(self):
        """Reduced precision alone does not fit VGG-16 (256) in 12 GB —
        offloading and precision are complementary, as the related-work
        section argues."""
        half = build("vgg16", 256).with_dtype_bytes(2)
        base = evaluate(half, policy="base", algo="p")
        assert not base.trainable
        assert gb(base.max_usage_bytes) > 12
        vdnn = evaluate(half, policy="all", algo="m")
        assert vdnn.trainable

    def test_dtype_flows_through_builder(self):
        from repro.graph import NetworkBuilder
        net = (NetworkBuilder("fp16", (2, 3, 8, 8), dtype_bytes=2)
               .conv(4, kernel=3, pad=1).relu()
               .fc(10).softmax().build())
        for node in net:
            assert node.output_spec.dtype_bytes == 2

    def test_batch_rescale_preserves_dtype(self):
        net = build("vgg16", 64).with_dtype_bytes(2)
        assert net.with_batch_size(8)[0].output_spec.dtype_bytes == 2

#!/usr/bin/env python3
"""Functional training under a hard device-memory budget.

This example runs *real* numpy training (forward, backward, SGD) of a
small CNN through the vDNN memory manager with a byte-budgeted device
heap — the functional analogue of training a too-big network on a
too-small GPU:

1. measure the peak device memory of unconstrained training;
2. set the budget *below* that peak — baseline training now dies with a
   device OOM, exactly like Torch on an undersized card;
3. train the same network under the same budget with vDNN_all offloading
   and verify the losses are bitwise identical to the unconstrained run.

Run:  python examples/train_under_memory_budget.py
"""

import numpy as np

from repro.core import TransferPolicy
from repro.graph import NetworkBuilder
from repro.numerics import DeviceOOMError, TrainingRuntime, make_batch


def build_cnn():
    """A small VGG-flavoured CNN, deep enough for offloading to matter."""
    builder = NetworkBuilder("budget-cnn", (16, 3, 32, 32))
    for _ in range(4):
        builder.conv(32, kernel=3, pad=1).relu()
    builder.pool()
    for _ in range(4):
        builder.conv(64, kernel=3, pad=1).relu()
    builder.pool()
    return (builder
            .fc(128).relu().dropout(0.5)
            .fc(10).softmax()
            .build())


def main() -> None:
    steps = 8
    batches = [make_batch((16, 3, 32, 32), 10, seed=step) for step in range(steps)]

    # 1. Unconstrained reference run (and vDNN's own headroom probe).
    reference = TrainingRuntime(build_cnn(), TransferPolicy.none(), seed=7)
    reference_losses = [reference.train_step(x, y).loss for x, y in batches]
    peak = reference.device.peak_bytes
    print(f"Unconstrained training: peak device usage "
          f"{peak / (1 << 20):.1f} MiB")
    print("  losses:", " ".join(f"{l:.4f}" for l in reference_losses))

    probe = TrainingRuntime(build_cnn(), TransferPolicy.vdnn_all(), seed=7)
    probe.train_step(*batches[0])
    vdnn_peak = probe.device.peak_bytes
    print(f"vDNN_all peak on the same step: {vdnn_peak / (1 << 20):.1f} MiB "
          f"({vdnn_peak / peak:.0%} of baseline)")

    # 2. A budget between the two peaks breaks baseline training...
    budget = (peak + vdnn_peak) // 2
    print(f"\nDevice budget set to {budget / (1 << 20):.1f} MiB "
          f"(between the vDNN and baseline peaks)")
    constrained_base = TrainingRuntime(
        build_cnn(), TransferPolicy.none(), device_budget_bytes=budget, seed=7
    )
    try:
        constrained_base.train_step(*batches[0])
        print("  baseline: unexpectedly fit!")
    except DeviceOOMError as error:
        print(f"  baseline: OOM as expected -> {error}")

    # 3. ...but vDNN_all trains, bit-identically.
    vdnn = TrainingRuntime(
        build_cnn(), TransferPolicy.vdnn_all(), device_budget_bytes=budget, seed=7
    )
    vdnn_losses = [vdnn.train_step(x, y).loss for x, y in batches]
    print(f"  vDNN_all: trained {steps} steps, peak "
          f"{vdnn.device.peak_bytes / (1 << 20):.1f} MiB, "
          f"{vdnn.host.offload_count} offloads, "
          f"{vdnn.host.prefetch_count} prefetches")
    identical = all(a == b for a, b in zip(reference_losses, vdnn_losses))
    print(f"  losses bitwise identical to the unconstrained run: {identical}")
    assert identical, "vDNN training diverged from the reference!"

    # Inference under the tight budget also works (forward-only release).
    probs = vdnn.predict(batches[0][0])
    print(f"\nInference OK, predicted classes: {np.argmax(probs, axis=1)[:8]}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Export the two-stream execution of a network as a Chrome trace.

Loads the trace in chrome://tracing or https://ui.perfetto.dev to see
the paper's Figure 9 rendered from an actual simulated run: offloads
overlapping forward kernels on stream_memory, prefetches overlapping
backward kernels, stalls on stream_compute where a transfer outlives
its kernel, and the memory-pool occupancy as a counter track.

Run:  python examples/export_chrome_trace.py [network] [batch] [out.json]
e.g.  python examples/export_chrome_trace.py vgg16 64 /tmp/vdnn_trace.json
"""

import sys

from repro.core import evaluate
from repro.sim import EventKind, save_trace
from repro.zoo import build


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "alexnet"
    batch = int(sys.argv[2]) if len(sys.argv) > 2 else 128
    out = sys.argv[3] if len(sys.argv) > 3 else "vdnn_trace.json"

    network = build(name, batch)
    result = evaluate(network, policy="all", algo="m")
    save_trace(out, result.timeline, result.usage,
               process_name=f"vDNN_all(m) {network.name}")

    offloads = len(result.timeline.of_kind(EventKind.OFFLOAD))
    prefetches = len(result.timeline.of_kind(EventKind.PREFETCH))
    stalls = len(result.timeline.of_kind(EventKind.STALL))
    print(f"Wrote {out}: {len(result.timeline.events)} events "
          f"({offloads} offloads, {prefetches} prefetches, {stalls} stalls) "
          f"over {result.total_time * 1e3:.1f} ms of simulated time.")
    print("Open it in chrome://tracing or https://ui.perfetto.dev")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Compare every way to train a too-big network (the Section I menu).

The paper's introduction lists the practitioner's options when a DNN
exceeds GPU memory: shrink the batch, use slower memory-lean
convolution algorithms, parallelize across GPUs — or virtualize memory
with vDNN.  This example also throws in the two strategies from the
broader literature that this repo implements: OS-style demand paging
(Section II-C's strawman) and gradient checkpointing.

Run:  python examples/memory_strategies.py
"""

from repro.core import (
    AlgoConfig,
    TransferPolicy,
    capacity_report,
    evaluate,
    paging_vs_vdnn,
    simulate_baseline,
    simulate_data_parallel,
    simulate_recompute,
    simulate_vdnn,
)
from repro.hw import PAPER_SYSTEM
from repro.reporting import format_table, gb_str, ms_str
from repro.zoo import build


def main() -> None:
    network = build("vgg16", 256)
    oracle_algos = AlgoConfig.performance_optimal(network)
    oracle = simulate_baseline(network, PAPER_SYSTEM.with_oracular_gpu(),
                               oracle_algos)
    print(f"Target: {network.name}, which needs "
          f"{gb_str(evaluate(network, policy='base', algo='p').max_usage_bytes)} "
          f"against a {gb_str(PAPER_SYSTEM.gpu.memory_bytes)} GPU.\n")

    rows = []

    # Option 0: pretend memory were infinite (the oracle reference).
    rows.append(["oracular GPU (reference)", "1 GPU", "yes",
                 ms_str(oracle.total_time), "1.00x"])

    # Option 1: shrink the batch until the baseline fits.
    cap = capacity_report(network, PAPER_SYSTEM,
                          policies={"base(p)": ("base", "p")},
                          upper_limit=256)
    best_batch = cap.max_batch["base(p)"]
    rows.append([f"shrink batch to {best_batch} (baseline)", "1 GPU", "yes",
                 "-", "- (different batch)"])

    # Option 2: memory-optimal algorithms everywhere, still baseline.
    mem = evaluate(network, policy="base", algo="m")
    rows.append(["memory-optimal algorithms (baseline)", "1 GPU",
                 "yes" if mem.trainable else "NO",
                 ms_str(mem.total_time),
                 f"{mem.total_time / oracle.total_time:.2f}x"])

    # Option 3: data parallelism across four GPUs.
    dp = simulate_data_parallel(network, 4, PAPER_SYSTEM)
    rows.append(["data parallel, baseline per replica", "4 GPUs",
                 "yes" if dp.per_gpu_trainable else "NO",
                 ms_str(dp.iteration_seconds),
                 f"{dp.iteration_seconds / oracle.total_time:.2f}x"])

    # Option 4: OS demand paging (the strawman).
    paging = paging_vs_vdnn(network, PAPER_SYSTEM)
    rows.append(["demand paging (4 KB page migration)", "1 GPU", "yes",
                 "-", f"{paging['paging_slowdown']:.1f}x"])

    # Option 5: gradient checkpointing.
    rec = simulate_recompute(network, PAPER_SYSTEM,
                             AlgoConfig.memory_optimal(network))
    rows.append(["gradient checkpointing (sqrt L)", "1 GPU",
                 "yes" if rec.trainable else "NO",
                 ms_str(rec.total_time),
                 f"{rec.total_time / oracle.total_time:.2f}x"])

    # Option 6: vDNN (the paper).
    dyn = evaluate(network, policy="dyn")
    rows.append(["vDNN_dyn (this paper)", "1 GPU",
                 "yes" if dyn.trainable else "NO",
                 ms_str(dyn.total_time),
                 f"{dyn.total_time / oracle.total_time:.2f}x"])

    print(format_table(
        ["strategy", "hardware", "trains batch 256?", "iteration",
         "slowdown vs oracle"],
        rows,
        title="Ways to train VGG-16 (256) (12 GB Titan X)",
    ))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Explore the memory/performance trade-off space of one network.

Sweeps every memory-manager configuration the paper evaluates —
vDNN_all / vDNN_conv / vDNN_dyn / baseline, each with memory-optimal (m)
and performance-optimal (p) convolution algorithms — over a network of
your choice, and prints a Figure-11/14-style table plus the Figure-9
two-stream timeline showing offload/prefetch overlap.

Run:  python examples/policy_explorer.py [network] [batch]
e.g.  python examples/policy_explorer.py googlenet 128
"""

import sys

from repro.core import compare_policies, oracular_baseline
from repro.graph import NetworkBuilder
from repro.hw import PAPER_SYSTEM
from repro.reporting import format_table, gb_str, ms_str, pct_str
from repro.zoo import build


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "vgg16"
    batch = int(sys.argv[2]) if len(sys.argv) > 2 else 64
    network = build(name, batch)
    print(f"Sweeping policies for {network.name} on {PAPER_SYSTEM.gpu.name}\n")

    sweep = compare_policies(network)
    oracle = oracular_baseline(network)
    rows = []
    for key in ("all(m)", "all(p)", "conv(m)", "conv(p)", "dyn",
                "base(m)", "base(p)"):
        r = sweep[key]
        star = "" if r.trainable else "*"
        rows.append([
            key + star,
            gb_str(r.avg_usage_bytes),
            gb_str(r.max_usage_bytes),
            gb_str(r.offload_bytes),
            ms_str(r.feature_extraction_time),
            f"{oracle.feature_extraction_time / r.feature_extraction_time:.2f}",
            pct_str(r.compute_stall_seconds / r.total_time if r.total_time else 0),
        ])
    print(format_table(
        ["config", "avg mem", "max mem", "offloaded", "fe time",
         "perf vs oracle", "stalled"],
        rows,
        title=f"{network.name}: memory vs performance "
              f"(* = exceeds {gb_str(PAPER_SYSTEM.gpu.memory_bytes)})",
    ))

    # Figure 9: the two-stream overlap on a small linear network, where
    # the ASCII timeline is actually readable.
    tiny = (
        NetworkBuilder("fig9-linear", (32, 64, 56, 56))
        .conv(64, kernel=3, pad=1, name="conv_1")
        .conv(64, kernel=3, pad=1, name="conv_2")
        .conv(64, kernel=3, pad=1, name="conv_3")
        .fc(10).softmax().build()
    )
    from repro.core import evaluate
    result = evaluate(tiny, policy="all", algo="m")
    print("\nFigure 9 — offload (OFF) overlapped with forward (FWD), "
          "prefetch (PRE) with backward (BWD):\n")
    print(result.timeline.render_ascii(width=100))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""End-to-end learning demo: accuracy actually improves under vDNN.

The other examples prove *mechanism* (bit-identical losses, memory
savings); this one closes the loop on *purpose*: a small CNN learns a
real (synthetic) vision task — classify which sector of the image holds
a bright blob — while the vDNN memory manager offloads and prefetches
its activations through a constrained device heap the whole time.

Run:  python examples/learn_blobs_under_vdnn.py
"""

from repro.core import TransferPolicy
from repro.graph import NetworkBuilder
from repro.numerics import TrainingRuntime, accuracy, blob_batch


def build_cnn(batch: int, image_size: int, num_classes: int):
    return (
        NetworkBuilder("blob-cnn", (batch, 3, image_size, image_size))
        .conv(16, kernel=3, pad=1).relu()
        .conv(16, kernel=3, pad=1).relu().pool()
        .conv(32, kernel=3, pad=1).relu().pool()
        .fc(64).relu()
        .fc(num_classes).softmax()
        .build()
    )


def main() -> None:
    batch, image_size, num_classes = 32, 16, 4
    network = build_cnn(batch, image_size, num_classes)

    # Probe the vDNN peak, then clamp the device heap just above it —
    # training must proceed entirely through offload/prefetch.
    probe = TrainingRuntime(network, TransferPolicy.vdnn_all(), seed=3)
    probe.train_step(*blob_batch(batch, image_size, num_classes, seed=999))
    budget = int(probe.device.peak_bytes * 1.02)

    runtime = TrainingRuntime(
        build_cnn(batch, image_size, num_classes),
        TransferPolicy.vdnn_all(),
        device_budget_bytes=budget,
        seed=3,
        learning_rate=0.05,
    )
    print(f"Device budget: {budget / (1 << 20):.2f} MiB "
          f"(vDNN_all peak + 2%)\n")

    holdout = blob_batch(batch, image_size, num_classes, seed=777_777)
    for step in range(60):
        images, labels = blob_batch(batch, image_size, num_classes, seed=step)
        result = runtime.train_step(images, labels)
        if step % 10 == 0 or step == 59:
            probs = runtime.predict(holdout[0])
            acc = accuracy(probs, holdout[1])
            print(f"step {step:3d}  loss {result.loss:6.3f}  "
                  f"holdout accuracy {acc:5.1%}  "
                  f"(offloads so far: {result.offload_count})")

    probs = runtime.predict(holdout[0])
    final = accuracy(probs, holdout[1])
    print(f"\nFinal holdout accuracy: {final:.1%} "
          f"(chance: {1 / num_classes:.0%}) — learned through "
          f"{runtime.host.offload_count} offloads and "
          f"{runtime.host.prefetch_count} prefetches.")
    assert final > 0.6, "the CNN should learn this task comfortably"


if __name__ == "__main__":
    main()

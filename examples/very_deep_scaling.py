#!/usr/bin/env python3
"""Case study: scaling to very deep networks (paper Section V-E).

Extends VGG from 16 to 416 CONV layers exactly as the paper does (20
extra layers per channel group per +100) and shows that:

* the baseline's memory requirement grows ~14x, blowing far past any
  single GPU (67 GB for VGG-416 even at batch 32), while
* vDNN_dyn keeps the GPU-resident footprint nearly flat, parking the
  bulk of the allocations in host memory, with no performance loss.

Run:  python examples/very_deep_scaling.py
"""

from repro.core import evaluate, oracular_baseline
from repro.graph import gb
from repro.hw import PAPER_SYSTEM
from repro.reporting import format_bar_chart, format_table, gb_str, pct_str
from repro.zoo import build_deep_vgg, build_vgg16


def main() -> None:
    rows = []
    gpu_side = []
    labels = []
    for depth in (16, 116, 216, 316, 416):
        network = build_vgg16(32) if depth == 16 else build_deep_vgg(depth, 32)
        base = evaluate(network, policy="base", algo="p")
        dyn = evaluate(network, policy="dyn")
        oracle = oracular_baseline(network)
        perf = oracle.feature_extraction_time / dyn.feature_extraction_time
        cpu = dyn.pinned_peak_bytes
        total = dyn.max_usage_bytes + cpu
        rows.append([
            network.name,
            gb_str(base.max_usage_bytes),
            "yes" if base.trainable else "NO",
            gb_str(dyn.max_usage_bytes),
            gb_str(cpu),
            pct_str(cpu / total if total else 0.0),
            f"{perf:.2f}",
        ])
        labels.append(network.name)
        gpu_side.append(gb(dyn.max_usage_bytes))

    print(format_table(
        ["network", "baseline needs", "base trains?", "dyn GPU-side",
         "dyn CPU-side", "CPU share", "perf vs oracle"],
        rows,
        title="Very deep VGG: vDNN_dyn memory placement (paper Figure 15)",
    ))
    print()
    print(format_bar_chart(
        labels, gpu_side, unit=" GB",
        title="GPU-resident footprint under vDNN_dyn (stays ~flat)",
    ))


if __name__ == "__main__":
    main()

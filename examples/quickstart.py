#!/usr/bin/env python3
"""Quickstart: make VGG-16 (batch 256) trainable on a 12 GB Titan X.

The paper's headline scenario: VGG-16 with its best-performing batch
size of 256 needs ~28 GB of memory under the network-wide allocation
policy of Torch/Caffe — far beyond the Titan X's 12 GB — yet trains on
that single card once vDNN virtualizes its memory across CPU and GPU.

Run:  python examples/quickstart.py
"""

from repro.core import evaluate, oracular_baseline, plan_dynamic
from repro.hw import PAPER_SYSTEM
from repro.reporting import gb_str, ms_str, pct_str
from repro.zoo import build


def main() -> None:
    network = build("vgg16", 256)
    print(f"Network: {network.name} — {len(network)} layers, "
          f"{len(network.conv_layers)} CONV layers")

    # 1. The baseline policy cannot train this network.
    base = evaluate(network, policy="base", algo="p")
    print(f"\nBaseline (network-wide allocation, fastest algorithms):")
    print(f"  needs {gb_str(base.max_usage_bytes)} "
          f"on a {gb_str(PAPER_SYSTEM.gpu.memory_bytes)} GPU "
          f"-> trainable: {base.trainable}")

    # 2. vDNN_dyn finds a configuration that fits.
    plan = plan_dynamic(network, PAPER_SYSTEM)
    dyn = plan.result
    print(f"\nvDNN_dyn adopted: {plan.description} "
          f"after {len(plan.passes)} profiling pass(es)")
    for p in plan.passes:
        status = "ok" if p.trainable else "OOM"
        print(f"  probe {p.description:<32s} peak {gb_str(p.max_usage_bytes):>9s}"
              f"  [{status}]")
    print(f"  GPU peak {gb_str(dyn.max_usage_bytes)}, "
          f"offloaded {gb_str(dyn.offload_bytes)} to host per iteration "
          f"-> trainable: {dyn.trainable}")

    # 3. Performance cost vs. a hypothetical GPU with unlimited memory.
    oracle = oracular_baseline(network)
    loss = 1.0 - oracle.feature_extraction_time / dyn.feature_extraction_time
    print(f"\nIteration time (feature extraction): "
          f"oracle {ms_str(oracle.feature_extraction_time)} vs "
          f"vDNN_dyn {ms_str(dyn.feature_extraction_time)} "
          f"({pct_str(max(loss, 0.0))} slower; paper: 18%)")


if __name__ == "__main__":
    main()

"""Headline speed gate for the simulator-core overhaul.

Times one training iteration on the live core (compiled per-layer
plans + slot-based Timeline, :mod:`repro.core.executor`) against the
vendored pre-overhaul reference (:mod:`benchmarks._legacy_core`) over
the paper's headline grid — alexnet / googlenet / vgg16, each under
baseline, vDNN_all(m) and the configuration vDNN_dyn adopts — and
asserts a >= 3x geometric-mean speedup.

Two properties are gated, in order:

1. **Bit identity first.**  For every grid point the live result must
   digest-equal the legacy result (same sha256 over summary fields,
   usage curve and the full event list, floats rendered with ``repr``
   — the same canonical form as ``tests/test_core_golden.py``).  A
   fast-but-different core is a bug, not a win.
2. **Geomean speedup.**  min-of-N wall clock per implementation,
   interleaved so both see the same thermal/cache conditions; the
   geometric mean of per-config ratios must clear
   ``MIN_CORE_SPEEDUP``.

Because the reference runs on the same interpreter and machine as the
live core (the ``LinearScanPool`` idiom from
``bench_perf_regression.py``), the gate measures the rewrite itself,
not host speed.  Results land in the ``core_speed`` section of
``BENCH_perf.json`` (read-modify-write: other benches own their own
keys in the same file).  Runs under pytest or standalone via
``python benchmarks/bench_core_speed.py``.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
from pathlib import Path
from typing import Dict, Optional

from _legacy_core import legacy_simulate_baseline, legacy_simulate_vdnn
from repro.core import plan_dynamic, simulate_baseline, simulate_vdnn
from repro.core.algo_config import AlgoConfig
from repro.core.policy import TransferPolicy
from repro.hw import PAPER_SYSTEM
from repro.zoo import build

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: Floor asserted on the geometric-mean legacy/live ratio.
MIN_CORE_SPEEDUP = 3.0

#: Timing repetitions; each side keeps its fastest run.
REPEATS = 5

NETWORKS = ("alexnet", "googlenet", "vgg16")
BATCH = 64


def result_digest(result) -> str:
    """sha256 over everything an IterationResult *is*.

    Mirrors ``tests/test_core_golden.py`` (kept in sync by
    ``test_digest_matches_golden_suite`` below): summary fields, the
    usage step function, and the full event list, all floats rendered
    with ``repr`` so two results digest equal iff they are
    bit-identical.
    """
    lines = [
        f"network={result.network_name}",
        f"policy={result.policy_label}",
        f"algo={result.algo_label}",
        f"trainable={result.trainable}",
        f"failure={result.failure}",
        f"managed_max_bytes={result.managed_max_bytes}",
        f"managed_avg_bytes={result.managed_avg_bytes!r}",
        f"external_bytes={result.external_bytes}",
        f"persistent_bytes={result.persistent_bytes}",
        f"total_time={result.total_time!r}",
        f"feature_extraction_time={result.feature_extraction_time!r}",
        f"offload_bytes={result.offload_bytes}",
        f"prefetch_bytes={result.prefetch_bytes}",
        f"pinned_peak_bytes={result.pinned_peak_bytes}",
        f"compute_stall_seconds={result.compute_stall_seconds!r}",
        f"offloaded_layers={result.offloaded_layers}",
        "usage=" + ";".join(
            f"{t!r}:{b}" for t, b in result.usage.curve()),
    ]
    lines.extend(
        f"{e.stream}|{e.kind.value}|{e.label}|{e.start!r}|{e.end!r}"
        f"|{e.nbytes}|{e.layer_index}"
        for e in result.timeline.events
    )
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def _grid():
    """The nine (label, live thunk, legacy thunk) grid points.

    vDNN_dyn points time the configuration the dynamic planner actually
    adopts: ``plan_dynamic`` runs once (its probe ladder is not what we
    are timing), then both cores simulate the adopted (policy, algos).
    """
    points = []
    for name in NETWORKS:
        network = build(name, BATCH)
        memory_optimal = AlgoConfig.memory_optimal(network)
        vdnn_all = TransferPolicy.vdnn_all()

        def base_live(network=network, algos=memory_optimal):
            return simulate_baseline(network, PAPER_SYSTEM, algos)

        def base_legacy(network=network, algos=memory_optimal):
            return legacy_simulate_baseline(network, PAPER_SYSTEM, algos)

        def all_live(network=network, algos=memory_optimal, policy=vdnn_all):
            return simulate_vdnn(network, PAPER_SYSTEM, policy, algos)

        def all_legacy(network=network, algos=memory_optimal, policy=vdnn_all):
            return legacy_simulate_vdnn(network, PAPER_SYSTEM, policy, algos)

        dyn = plan_dynamic(network, PAPER_SYSTEM, use_cache=False)

        def dyn_live(network=network, policy=dyn.policy, algos=dyn.algos):
            return simulate_vdnn(network, PAPER_SYSTEM, policy, algos)

        def dyn_legacy(network=network, policy=dyn.policy, algos=dyn.algos):
            return legacy_simulate_vdnn(network, PAPER_SYSTEM, policy, algos)

        points.append((f"{name}/baseline", base_live, base_legacy))
        points.append((f"{name}/vDNN_all", all_live, all_legacy))
        points.append((f"{name}/vDNN_dyn[{dyn.policy.describe()}"
                       f",{dyn.algos.label}]", dyn_live, dyn_legacy))
    return points


def _best_ms(fn) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1e3


_measured: Optional[Dict[str, dict]] = None


def measure() -> Dict[str, dict]:
    """Digest-check then time the full grid (memoized per process)."""
    global _measured
    if _measured is not None:
        return _measured

    configs = {}
    ratios = []
    for label, live, legacy in _grid():
        live_digest = result_digest(live())   # also warms the plan cache
        legacy_digest = result_digest(legacy())
        assert live_digest == legacy_digest, (
            f"{label}: live core diverged from the pre-overhaul "
            f"reference (live {live_digest[:12]} != legacy "
            f"{legacy_digest[:12]}) — speed without bit identity "
            f"does not count")
        live_ms = _best_ms(live)
        legacy_ms = _best_ms(legacy)
        ratio = legacy_ms / live_ms
        ratios.append(ratio)
        configs[label] = {
            "legacy_ms": legacy_ms,
            "live_ms": live_ms,
            "speedup": ratio,
            "digest": live_digest,
        }

    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    _measured = {
        "configs": configs,
        "geomean_speedup": geomean,
        "min_speedup": min(ratios),
        "floor": MIN_CORE_SPEEDUP,
        "repeats": REPEATS,
    }
    _flush_results(_measured)
    return _measured


def _flush_results(section: dict) -> None:
    """Merge the ``core_speed`` section into BENCH_perf.json.

    Read-modify-write, same contract as ``bench_perf_regression.py``'s
    ``_flush_results``: each bench owns only its own top-level keys.
    """
    payload = {}
    if RESULTS_PATH.exists():
        try:
            payload = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            payload = {}
    payload["core_speed"] = section
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")


# ----------------------------------------------------------------------
# Gates
# ----------------------------------------------------------------------
def test_bit_identical_to_legacy():
    """Every grid point digests equal between live and legacy cores."""
    measured = measure()   # measure() asserts per-config digest equality
    assert len(measured["configs"]) == 3 * len(NETWORKS)


def test_core_speedup_floor():
    """Geomean wall-clock speedup over the pre-overhaul core >= 3x."""
    measured = measure()
    assert measured["geomean_speedup"] >= MIN_CORE_SPEEDUP, (
        f"compiled-plan core is only {measured['geomean_speedup']:.2f}x "
        f"the pre-overhaul reference (need >= {MIN_CORE_SPEEDUP}x); "
        f"slowest point: "
        + min(measured["configs"].items(),
              key=lambda kv: kv[1]["speedup"])[0]
    )


def test_digest_matches_golden_suite():
    """This bench's digest must stay in sync with tests/test_core_golden.

    Both modules render the same canonical form; if they drift the
    bench could pass while the golden suite fails (or vice versa).
    Compares on a live result rather than importing across the
    tests/benchmarks boundary.
    """
    import importlib.util
    import os

    golden_path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "tests", "test_core_golden.py")
    spec = importlib.util.spec_from_file_location("_golden", golden_path)
    golden = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(golden)
    network = build("alexnet", BATCH)
    result = simulate_vdnn(network, PAPER_SYSTEM, TransferPolicy.vdnn_all(),
                           AlgoConfig.memory_optimal(network))
    assert result_digest(result) == golden.result_digest(result)


# ----------------------------------------------------------------------
def main() -> int:
    measured = measure()
    width = max(len(label) for label in measured["configs"])
    for label, stats in measured["configs"].items():
        print(f"{label:<{width}s}  legacy {stats['legacy_ms']:8.3f} ms"
              f"  live {stats['live_ms']:8.3f} ms"
              f"  {stats['speedup']:5.2f}x")
    print(f"geomean {measured['geomean_speedup']:.2f}x "
          f"(floor {MIN_CORE_SPEEDUP}x, min "
          f"{measured['min_speedup']:.2f}x)")
    print(f"wrote {RESULTS_PATH}")
    return 0 if measured["geomean_speedup"] >= MIN_CORE_SPEEDUP else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Section II-C: DMA vs. page-migration PCIe transfer microbenchmark.

The strawman that motivates vDNN's explicit DMA design: demand paging
moves 4 KB at a time at 20-50 us per page (80-200 MB/s), while pinned
DMA sustains ~12.8 of PCIe gen3's 16 GB/s — a >60x gap at feature-map
sizes.
"""

import pytest

from repro.hw import PCIE_GEN3, TransferMode
from repro.reporting import format_table


SIZES_MB = [1, 16, 128, 1024]


def transfer_profile():
    rows = []
    for size_mb in SIZES_MB:
        nbytes = size_mb << 20
        dma = PCIE_GEN3.effective_bandwidth(nbytes, TransferMode.DMA)
        paging = PCIE_GEN3.effective_bandwidth(
            nbytes, TransferMode.PAGE_MIGRATION
        )
        rows.append([f"{size_mb} MB", f"{dma / 1e9:.2f} GB/s",
                     f"{paging / 1e6:.0f} MB/s", f"{dma / paging:.0f}x"])
    return rows


def test_pcie_transfer_modes(benchmark, capsys):
    rows = benchmark.pedantic(transfer_profile, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + format_table(
            ["transfer size", "DMA (pinned)", "page migration", "DMA speedup"],
            rows,
            title="Section II-C: PCIe transfer mechanisms",
        ) + "\n")
    for row in rows[1:]:  # past the setup-latency-dominated small size
        assert float(row[3].rstrip("x")) > 60

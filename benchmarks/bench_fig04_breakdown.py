"""Figure 4: GPU memory breakdown by functionality.

Splits each network's baseline allocation into weights, feature maps,
gradient maps and convolution workspace.  The paper's point: feature
maps dominate and their share grows with depth, which is why vDNN
targets them.
"""

from conftest import run_and_print
from repro.reporting import fig04_breakdown


def test_fig04_breakdown(benchmark, capsys):
    result = run_and_print(benchmark, capsys, fig04_breakdown)
    assert len(result.rows) == 6
    # Feature-map share of VGG-16 exceeds AlexNet's (depth effect).
    alexnet_share = float(result.rows[0][-1].rstrip("%"))
    vgg_share = float(result.rows[-1][-1].rstrip("%"))
    assert vgg_share > alexnet_share

"""Extension: inference memory under layer-wise release (Figure 7).

For inference, nothing must survive for a backward pass, so the
layer-wise manager frees every X at its last consumer with zero PCIe
traffic.  The bench contrasts the network-wide inference allocation
(all Xs + W + WS, per Figure 2) with the layer-wise peak — and shows
even the 400-layer VGG runs inference comfortably within 12 GB.

Weight accounting comes from the result's ``weight_load_bytes`` — the
same per-layer map the serving subsystem's demand-layering executor
streams through its sliding window — so the bench and the server can
never disagree about what one inference pass must load.
"""

from repro.core import AlgoConfig, baseline_inference_bytes, simulate_inference
from repro.hw import PAPER_SYSTEM
from repro.reporting import format_table, gb_str, mb_str, pct_str
from repro.zoo import build


def inference_profile():
    rows = []
    for name, batch in [("alexnet", 128), ("vgg16", 256), ("vgg416", 32)]:
        network = build(name, batch)
        algos = AlgoConfig.memory_optimal(network)
        network_wide = baseline_inference_bytes(network, algos)
        layer_wise = simulate_inference(network, PAPER_SYSTEM, algos)
        weights = sum(layer_wise.weight_load_bytes.values())
        assert weights == network.total_weight_bytes()
        rows.append([
            network.name,
            gb_str(network_wide),
            gb_str(layer_wise.max_usage_bytes),
            mb_str(weights),
            pct_str(1 - layer_wise.max_usage_bytes / network_wide),
            "yes" if layer_wise.trainable else "NO",
        ])
    return rows


def test_ext_inference_memory(benchmark, capsys):
    rows = benchmark.pedantic(inference_profile, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + format_table(
            ["network", "network-wide inference", "layer-wise peak",
             "weights to load", "savings", "fits 12 GB"],
            rows,
            title="Extension: inference memory, layer-wise release (Fig. 7)",
        ) + "\n")
    for row in rows:
        assert row[5] == "yes"
        assert float(row[4].rstrip("%")) > 30

"""Extension: vDNN on residual networks (the paper's reference [15]).

The paper motivates with ">100 convolutional layers" — ResNet — but
evaluates only linear/inception topologies.  This bench runs the full
policy sweep on ResNet-34 (batch 128): residual fan-outs exercise the
refcount gate on every block boundary and BatchNorm backward re-reads X,
making BN layers genuine offload candidates.  The paper's qualitative
results must carry over: big average-memory savings, dyn ≈ baseline.
"""

from repro.core import compare_policies, oracular_baseline
from repro.reporting import format_table, gb_str, pct_str
from repro.zoo import build


def resnet_sweep():
    network = build("resnet34", 128)
    return network, compare_policies(network), oracular_baseline(network)


def test_ext_resnet_policy_sweep(benchmark, capsys):
    network, sweep, oracle = benchmark.pedantic(resnet_sweep,
                                                rounds=1, iterations=1)
    rows = []
    for key in ("all(m)", "conv(m)", "dyn", "base(m)", "base(p)"):
        r = sweep[key]
        rows.append([
            key + ("" if r.trainable else "*"),
            gb_str(r.avg_usage_bytes),
            gb_str(r.max_usage_bytes),
            f"{oracle.feature_extraction_time / r.feature_extraction_time:.2f}",
        ])
    with capsys.disabled():
        print("\n" + format_table(
            ["config", "avg mem", "max mem", "perf vs oracle"],
            rows,
            title=f"Extension: {network.name} policy sweep (residual topology)",
        ) + "\n")

    base = sweep["base(p)"]
    all_m = sweep["all(m)"]
    savings = 1 - all_m.managed_avg_bytes / base.max_usage_bytes
    assert savings > 0.8, f"only {savings:.0%} savings on ResNet-34"
    assert sweep["dyn"].trainable
    dyn_perf = (oracle.feature_extraction_time
                / sweep["dyn"].feature_extraction_time)
    assert dyn_perf > 0.9
    # No demand fetches even with residual fan-out refcounts.
    demand = [e for e in all_m.timeline.events if "(demand)" in e.label]
    assert demand == []

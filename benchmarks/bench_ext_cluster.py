"""Extension: cluster scaling — allreduce vs. vDNN DMA link contention.

The acceptance scenario: one 4-GPU data-parallel gang of the PCIe-bound
network (resnet50:32 at the ``all(m)`` rung, where offload/prefetch
traffic rivals compute) swept across the topology presets.  On the
PCIe-switch tree the gang's ring allreduce and all four workers' vDNN
DMA share the switch uplink, so scaling efficiency collapses; the
NVLink ring gives each worker a private host link and dedicated
allreduce side links, recovering most of the gap.  A fleet-scheduler
run over the default mixed workload adds utilization/fairness numbers.
Results land in ``BENCH_perf.json`` under the ``"cluster"`` key
(read-modify-write — other benches own their own keys) for CI's
perf-smoke job to archive.
"""

import json
from pathlib import Path

from repro.cluster import (ClusterJob, schedule_fleet,
                           simulate_cluster_iteration)
from repro.hw import make_topology
from repro.reporting import format_table, pct_str

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: The acceptance gang: the zoo's most PCIe-bound headline network.
NETWORK, BATCH, GANG = "resnet50", 32, 4
RUNG = "all(m)"
TOPOLOGIES = ("pcie-switch", "nvlink-ring", "nvlink-mesh")

#: The fleet workload: the gang plus single-GPU fill jobs.
WORKLOAD = "resnet50:32:30:4,alexnet:128:40,vgg16:64:20,googlenet:128:40"
ARRIVAL_RATE, SEED = 0.5, 7


def _flush_results(section: dict) -> None:
    """Merge this bench's section into BENCH_perf.json (RMW)."""
    payload = {}
    if RESULTS_PATH.exists():
        try:
            payload = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            payload = {}
    payload["cluster"] = section
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def contention_sweep() -> dict:
    out = {}
    for name in TOPOLOGIES:
        report = simulate_cluster_iteration(
            NETWORK, BATCH, GANG, make_topology(name, GANG), rung=RUNG)
        out[name] = {
            "solo_iter_seconds": round(report.solo_iter_seconds, 6),
            "iter_seconds": round(report.iter_seconds, 6),
            "contention_slowdown": round(report.contention_slowdown, 4),
            "scaling_efficiency": round(report.scaling_efficiency, 4),
            "allreduce_hop_bytes": int(report.allreduce_bytes),
            "offload_bytes_per_gpu": int(report.offload_bytes),
        }
    return out


def fleet_run() -> dict:
    jobs = [ClusterJob.parse(spec, index)
            for index, spec in enumerate(WORKLOAD.split(","))]
    result = schedule_fleet(jobs, topology="pcie-switch", num_gpus=GANG,
                            placement="bin_pack",
                            arrival_rate=ARRIVAL_RATE, seed=SEED)
    return {
        "finished": len(result.finished),
        "rejected": len(result.rejected),
        "makespan_seconds": round(result.makespan, 6),
        "aggregate_throughput": round(result.aggregate_throughput, 4),
        "fleet_utilization": round(result.fleet_utilization, 4),
        "fairness_jain": round(result.fairness, 4),
        "preemptions": int(result.preemptions),
    }


def cluster_profile() -> dict:
    return {
        "gang": f"{NETWORK}:{BATCH} x{GANG} @ {RUNG}",
        "topologies": contention_sweep(),
        "fleet": fleet_run(),
    }


def test_ext_cluster(benchmark, capsys):
    section = benchmark.pedantic(cluster_profile, rounds=1, iterations=1)
    _flush_results(section)
    topo = section["topologies"]
    rows = [
        [
            name,
            f"{stats['solo_iter_seconds']:.3f} s",
            f"{stats['iter_seconds']:.3f} s",
            f"{stats['contention_slowdown']:.2f}x",
            pct_str(stats["scaling_efficiency"]),
        ]
        for name, stats in topo.items()
    ]
    fleet = section["fleet"]
    with capsys.disabled():
        print("\n" + format_table(
            ["topology", "solo iter", "cluster iter", "slowdown",
             "scaling eff"],
            rows,
            title=f"Extension: cluster {section['gang']}",
        ))
        print(f"fleet: {fleet['finished']} finished, "
              f"util {pct_str(fleet['fleet_utilization'])}, "
              f"fairness {fleet['fairness_jain']:.3f}\n")

    pcie = topo["pcie-switch"]
    ring = topo["nvlink-ring"]
    # The gate: switch-tree link sharing costs at least 2x vs. solo
    # (measurable allreduce/offload DMA contention) ...
    assert pcie["contention_slowdown"] >= 2.0
    assert pcie["scaling_efficiency"] <= 0.5
    # ... and the NVLink ring recovers most of the gap: >= 90% scaling
    # efficiency and at least 2x the switch tree's.
    assert ring["scaling_efficiency"] >= 0.9
    assert ring["scaling_efficiency"] >= 2 * pcie["scaling_efficiency"]
    # The fleet run completes the whole workload deterministically.
    assert fleet["finished"] == len(WORKLOAD.split(","))
    assert fleet["rejected"] == 0
    assert 0.0 < fleet["fleet_utilization"] <= 1.0
    assert 0.0 < fleet["fairness_jain"] <= 1.0

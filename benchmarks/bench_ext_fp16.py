"""Extension: reduced precision vs virtualization (related work, §VI).

The paper's related-work section notes that quantization/precision
approaches "provide only limited opportunity for memory capacity
savings".  With dtype threading in the graph we can test that claim:
fp16 halves every allocation, but VGG-16 (256) still does not fit in
12 GB — precision and virtualization are complementary, not rivals.
"""

from repro.core import evaluate
from repro.reporting import format_table, gb_str
from repro.zoo import build


def precision_profile():
    rows = []
    for name, batch in [("vgg16", 256), ("vgg216", 32)]:
        fp32 = build(name, batch)
        fp16 = fp32.with_dtype_bytes(2)
        r32 = evaluate(fp32, policy="base", algo="p")
        r16 = evaluate(fp16, policy="base", algo="p")
        v16 = evaluate(fp16, policy="all", algo="m")
        rows.append([fp32.name,
                     gb_str(r32.max_usage_bytes),
                     gb_str(r16.max_usage_bytes),
                     "yes" if r16.trainable else "NO",
                     "yes" if v16.trainable else "NO"])
    return rows


def test_ext_fp16_alone_insufficient(benchmark, capsys):
    rows = benchmark.pedantic(precision_profile, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + format_table(
            ["network", "fp32 baseline", "fp16 baseline",
             "fp16 base fits?", "fp16 + vDNN_all fits?"],
            rows,
            title="Extension: fp16 halves memory but still needs vDNN",
        ) + "\n")
    for row in rows:
        fp32 = float(row[1].replace(" GB", "").replace(",", ""))
        fp16 = float(row[2].replace(" GB", "").replace(",", ""))
        assert fp16 < fp32 * 0.55
        assert row[3] == "NO"    # halving is not enough
        assert row[4] == "yes"   # virtualization still required and works

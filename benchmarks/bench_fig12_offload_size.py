"""Figure 12: feature-map bytes offloaded to pinned host memory.

vDNN_all offloads every feature-extraction layer's input X, vDNN_conv
only the CONV layers' — so all >= conv everywhere, and the VGG-16 (256)
offload traffic reaches the paper's "up to 16 GB" scale.
"""

from conftest import run_and_print
from repro.reporting import fig12_offload_size


def _mb(cell):
    return float(cell.replace(" MB", "").replace(",", ""))


def test_fig12_offload_size(benchmark, capsys):
    result = run_and_print(benchmark, capsys, fig12_offload_size)
    for row in result.rows:
        assert _mb(row[1]) >= _mb(row[2]), f"{row[0]}: all < conv?"
    vgg256 = next(r for r in result.rows if "VGG-16(256)" in r[0])
    assert _mb(vgg256[1]) > 10_000  # >10 GB of offload traffic

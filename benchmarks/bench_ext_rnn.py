"""Extension: vDNN for recurrent networks (sequence length as depth).

Section II-A claims vDNN's intuitions carry to "recurrent neural
networks for natural language processing".  With an Elman RNN unrolled
over T timesteps (weight-tied FC recurrence, BPTT), sequence length
plays the role of layer depth: per-timestep activations camp in GPU
memory through the whole forward pass and are revisited in reverse by
backpropagation-through-time — the same reuse-gap structure as
Figure 15, reproduced here as a T-sweep.
"""

from repro.core import evaluate
from repro.reporting import format_table, mb_str, pct_str
from repro.zoo import build_unrolled_rnn


def sequence_sweep():
    rows = []
    for timesteps in (8, 32, 128):
        network = build_unrolled_rnn(
            timesteps=timesteps, input_dim=128, hidden_dim=1024,
            num_classes=10, batch_size=64,
        )
        base = evaluate(network, policy="none", algo="m")
        vdnn = evaluate(network, policy="all", algo="m")
        rows.append((timesteps, base, vdnn))
    return rows


def test_ext_rnn_sequence_scaling(benchmark, capsys):
    rows = benchmark.pedantic(sequence_sweep, rounds=1, iterations=1)
    table = []
    for timesteps, base, vdnn in rows:
        savings = 1 - vdnn.avg_usage_bytes / base.avg_usage_bytes
        table.append([
            f"T={timesteps}",
            mb_str(base.managed_max_bytes),
            mb_str(vdnn.avg_usage_bytes),
            mb_str(vdnn.offload_bytes),
            pct_str(savings),
        ])
    with capsys.disabled():
        print("\n" + format_table(
            ["sequence length", "resident peak (no offload)",
             "vDNN_all avg", "offloaded / step", "avg savings"],
            table,
            title="Extension: unrolled RNN (BPTT) under vDNN_all",
        ) + "\n")

    # Resident footprint grows with T (toward linear once activations
    # dominate the fixed weight/input overhead)...
    peaks = [base.managed_max_bytes for _, base, _ in rows]
    assert peaks[2] > peaks[0] * 3
    # ...and the savings of offloading grow monotonically with sequence
    # length, exactly as depth drives them in Figure 15.
    savings = [1 - v.avg_usage_bytes / b.avg_usage_bytes
               for _, b, v in rows]
    assert savings[0] < savings[1] < savings[2]
    assert savings[-1] > 0.2
    # Offload traffic scales with T.
    traffic = [v.offload_bytes for *_, v in rows]
    assert traffic[0] < traffic[1] < traffic[2]

"""Figure 13: per-layer DRAM bandwidth utilization of VGG-16 (256).

The feature-extraction kernels never saturate the Titan X's 336 GB/s,
leaving ample headroom for vDNN's PCIe-bounded offload/prefetch traffic;
the worst-case interference bound is 16/336 = 4.7% (Section V-B).
"""

from conftest import run_and_print
from repro.reporting import fig13_dram_bandwidth
from repro.zoo import build


def test_fig13_dram_bandwidth_vgg16(benchmark, capsys):
    network = build("vgg16", 256)
    result = run_and_print(benchmark, capsys, fig13_dram_bandwidth, network)
    assert len(result.rows) == 19
    for row in result.rows:
        fwd_util = float(row[3].rstrip("%"))
        bwd_util = float(row[4].rstrip("%"))
        assert fwd_util <= 100.0 and bwd_util <= 100.0
    assert "4.7%" in result.notes[0]

"""Extension: max trainable batch size per policy (Section I's framing).

"Because a single GPU can only accommodate a batch size of 64 for
VGG-16, training with batch 256 requires parallelization across multiple
GPUs" — the capacity planner recovers that limit and shows vDNN raising
it past 256 on one card.
"""

from repro.core import capacity_report
from repro.hw import PAPER_SYSTEM
from repro.reporting import format_table
from repro.zoo import build


def test_ext_capacity_planner(benchmark, capsys):
    network = build("vgg16", 64)
    report = benchmark.pedantic(
        capacity_report, args=(network, PAPER_SYSTEM),
        kwargs={"upper_limit": 512}, rounds=1, iterations=1,
    )
    with capsys.disabled():
        print("\n" + format_table(
            ["policy", "max trainable batch"],
            [[k, v] for k, v in report.max_batch.items()],
            title=f"Extension: batch capacity of {network.name} on "
                  f"{report.gpu_name}",
        ) + "\n")
    assert report.max_batch["base(p)"] < 128       # paper: ~64
    assert report.max_batch["all(m)"] >= 256       # vDNN unlocks batch 256
    assert report.max_batch["dyn"] >= 256

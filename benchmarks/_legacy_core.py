"""Pre-overhaul simulator core, vendored as the speed-gate reference.

This is a verbatim-in-spirit snapshot of the interpreter-style hot path
that :mod:`repro.core.executor` and :mod:`repro.sim.timeline` shipped
*before* the compiled-plan / slot-array overhaul: one frozen-dataclass
:class:`TimelineEvent` per operation, per-layer policy and liveness
decisions re-derived inside the iteration loop, and O(storages) scans
per backward step.  ``bench_core_speed.py`` times it against the live
implementation on the same machine, so the ≥3x gate measures the
rewrite itself rather than host speed — the same idiom as
``bench_perf_regression.py``'s ``LinearScanPool``.

Trimmed to the perfect-machine path (no fault injection, no sanitizer
trace, no instrumentation): dropping those ``is not None`` branches can
only make this reference *faster*, so the measured speedup is
conservative.  Results must stay bit-identical to the live executor —
the bench asserts digest equality before timing anything.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.alloc.pinned import PinnedHostAllocator
from repro.alloc.pool import Allocation, PoolAllocator
from repro.core.algo_config import AlgoConfig
from repro.core.executor import IterationResult, _UNBOUNDED, \
    baseline_allocation_bytes
from repro.core.liveness import LivenessAnalysis, StorageInfo
from repro.core.policy import TransferPolicy
from repro.core.prefetcher import PrefetchState, find_prefetch_layer
from repro.graph.layer import LayerKind
from repro.graph.network import Network
from repro.hw.config import SystemConfig
from repro.kernels.latency import LatencyModel
from repro.sim.timeline import EventKind


# ----------------------------------------------------------------------
# Pre-overhaul Timeline: one frozen dataclass per event.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _LegacyEvent:
    stream: str
    kind: EventKind
    label: str
    start: float
    end: float
    nbytes: int = 0
    layer_index: int = -1

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"event {self.label!r} ends before it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start


class _LegacyTimeline:
    def __init__(self) -> None:
        self._events: List[_LegacyEvent] = []
        self._t0: Optional[float] = None
        self._t1: Optional[float] = None

    def record(self, stream, kind, label, start, end, nbytes=0,
               layer_index=-1) -> _LegacyEvent:
        event = _LegacyEvent(stream, kind, label, start, end, nbytes,
                             layer_index)
        self._events.append(event)
        if self._t0 is None or event.start < self._t0:
            self._t0 = event.start
        if self._t1 is None or event.end > self._t1:
            self._t1 = event.end
        return event

    @property
    def events(self) -> List[_LegacyEvent]:
        return list(self._events)

    @property
    def span(self) -> float:
        if self._t0 is None:
            return 0.0
        return self._t1 - self._t0

    @property
    def end_time(self) -> float:
        return self._t1 if self._t1 is not None else 0.0


class _LegacyStream:
    def __init__(self, name: str, timeline: _LegacyTimeline):
        self.name = name
        self.timeline = timeline
        self.ready_time = 0.0

    def enqueue(self, kind, label, duration, earliest_start=0.0, nbytes=0,
                layer_index=-1) -> _LegacyEvent:
        if duration < 0:
            raise ValueError(f"negative duration for {label!r}")
        start = max(self.ready_time, earliest_start)
        end = start + duration
        event = self.timeline.record(self.name, kind, label, start, end,
                                     nbytes=nbytes, layer_index=layer_index)
        self.ready_time = end
        return event

    def wait_for(self, other: "_LegacyStream") -> float:
        stall = max(0.0, other.ready_time - self.ready_time)
        self.ready_time = max(self.ready_time, other.ready_time)
        return stall


@dataclass
class _LegacySample:
    time: float
    live_bytes: int


class _LegacyUsage:
    """Pre-overhaul UsageTracker: one dataclass per occupancy sample."""

    def __init__(self) -> None:
        self._samples: List[_LegacySample] = []

    def record(self, time: float, live_bytes: int) -> None:
        if live_bytes < 0:
            raise ValueError("live_bytes cannot be negative")
        if self._samples and time < self._samples[-1].time:
            raise ValueError("time went backwards")
        self._samples.append(_LegacySample(time, live_bytes))

    @property
    def max_bytes(self) -> int:
        return max((s.live_bytes for s in self._samples), default=0)

    @property
    def average_bytes(self) -> float:
        if not self._samples:
            return 0.0
        duration = self._samples[-1].time - self._samples[0].time
        if duration <= 0:
            return sum(s.live_bytes for s in self._samples) / len(self._samples)
        weighted = 0.0
        for current, following in zip(self._samples, self._samples[1:]):
            weighted += current.live_bytes * (following.time - current.time)
        return weighted / duration

    def curve(self):
        return [(s.time, s.live_bytes) for s in self._samples]


COMPUTE_STREAM = "stream_compute"
MEMORY_STREAM = "stream_memory"


def _feature_extraction_time(network, timeline) -> float:
    classifier = {n.index for n in network.classifier_nodes}
    events = [e for e in timeline.events if e.layer_index in classifier]
    if not events:
        return timeline.span
    window = max(e.end for e in events) - min(e.start for e in events)
    return max(timeline.span - window, 0.0)


# ----------------------------------------------------------------------
# Pre-overhaul executor: policy/liveness/latency re-derived per layer
# per run, O(storages) release scans per backward step.
# ----------------------------------------------------------------------
class _LegacyVDNNSimulation:
    def __init__(self, network: Network, system: SystemConfig,
                 policy: TransferPolicy, algos: AlgoConfig):
        self.network = network
        self.system = system
        self.policy = policy
        self.algos = algos

        self.latency = LatencyModel(system.gpu)
        self.liveness = LivenessAnalysis(network)
        self.pool = PoolAllocator(_UNBOUNDED)
        self.pinned = PinnedHostAllocator(system.host.max_pinned_bytes)
        self.timeline = _LegacyTimeline()
        self.compute = _LegacyStream(COMPUTE_STREAM, self.timeline)
        self.memory = _LegacyStream(MEMORY_STREAM, self.timeline)
        self.usage = _LegacyUsage()
        self.state = PrefetchState.for_network(network)

        self.device: Dict[int, Allocation] = {}
        self.gradients: Dict[int, Allocation] = {}
        self.offloaded_at: Dict[int, List[StorageInfo]] = {}
        self.host_buffers: Dict[int, object] = {}
        self.restored: Dict[int, bool] = {}

        self.stall_seconds = 0.0
        self.offload_bytes = 0
        self.prefetch_bytes = 0
        self.external_bytes = 0
        self.offloaded_layers: List[int] = []

    def _sample(self) -> None:
        self.usage.record(self.compute.ready_time, self.pool.live_bytes)

    def _alloc(self, nbytes: int, tag: str) -> Allocation:
        allocation = self.pool.alloc(nbytes, tag)
        self._sample()
        return allocation

    def _free(self, allocation: Allocation) -> None:
        self.pool.free(allocation)
        self._sample()

    def _stall(self, label: str, layer_index: int) -> None:
        before = self.compute.ready_time
        stall = self.compute.wait_for(self.memory)
        if stall > 0:
            self.stall_seconds += stall
            self.timeline.record(self.compute.name, EventKind.STALL, label,
                                 before, before + stall,
                                 layer_index=layer_index)

    def allocate_persistent(self) -> int:
        persistent = 0
        self.external_bytes = 0
        for node in self.network:
            if not node.weight_bytes:
                continue
            if node.is_feature_extraction:
                self._alloc(node.weight_bytes, f"W[{node.name}]")
                self._alloc(node.weight_bytes, f"dW[{node.name}]")
            else:
                self.external_bytes += 2 * node.weight_bytes
            persistent += 2 * node.weight_bytes
        return persistent

    def run_forward(self) -> None:
        for index in self.network.forward_schedule():
            self._forward_layer(index)

    def _forward_layer(self, index: int) -> None:
        node = self.network[index]
        if not node.in_place:
            storage = self.liveness.storage_of(index)
            self.device[storage.owner] = self._alloc(
                storage.nbytes, f"Y[{node.name}]")
        if node.kind is LayerKind.INPUT:
            return

        workspace: Optional[Allocation] = None
        ws_bytes = self.algos.workspace_bytes(node)
        if ws_bytes:
            workspace = self._alloc(ws_bytes, f"WS[{node.name}]")

        timing = self.latency.forward(self.network, node,
                                      self.algos.profile(node))
        fwd = self.compute.enqueue(
            EventKind.FORWARD, node.name, timing.seconds,
            nbytes=int(timing.dram_bytes), layer_index=index)

        offloads: List[StorageInfo] = []
        for storage in self.liveness.input_storages(index):
            if storage.forward_release_at != index:
                continue
            if storage.needed_backward:
                if self.policy.wants_offload(node):
                    offloads.append(storage)
            else:
                self._free(self.device.pop(storage.owner))

        if offloads:
            completed: List[StorageInfo] = []
            for storage in offloads:
                owner_name = self.network[storage.owner].name
                self.host_buffers[storage.owner] = self.pinned.alloc(
                    storage.nbytes, f"host[{storage.owner}]")
                self.memory.enqueue(
                    EventKind.OFFLOAD, owner_name,
                    self.system.pcie.dma_time(storage.nbytes),
                    earliest_start=fwd.start, nbytes=storage.nbytes,
                    layer_index=index)
                self.offload_bytes += storage.nbytes
                completed.append(storage)
            if completed:
                self.offloaded_at[index] = completed
                self.state.mark_offloaded(index)
                self.offloaded_layers.append(index)
                self._stall(f"offload-sync {node.name}", index)
                for storage in completed:
                    self._free(self.device.pop(storage.owner))

        if workspace is not None:
            self._free(workspace)

    def run_backward(self) -> None:
        for index in self.network.backward_schedule():
            self._backward_layer(index)
        for allocation in list(self.device.values()):
            self._free(allocation)
        self.device.clear()
        for allocation in list(self.gradients.values()):
            self._free(allocation)
        self.gradients.clear()

    def _required_storages(self, index: int) -> List[StorageInfo]:
        node = self.network[index]
        required: Dict[int, StorageInfo] = {}
        if node.layer.backward_needs_x:
            for storage in self.liveness.input_storages(index):
                required[storage.owner] = storage
        if node.layer.backward_needs_y:
            storage = self.liveness.storage_of(index)
            required[storage.owner] = storage
        return list(required.values())

    def _restore_on_demand(self, storage: StorageInfo, index: int) -> None:
        self.device[storage.owner] = self._alloc(
            storage.nbytes, f"X[{storage.owner}](demand)")
        self.memory.enqueue(
            EventKind.PREFETCH,
            self.network[storage.owner].name + "(demand)",
            self.system.pcie.dma_time(storage.nbytes),
            earliest_start=self.compute.ready_time, nbytes=storage.nbytes,
            layer_index=index)
        self.prefetch_bytes += storage.nbytes
        self._stall(f"demand-fetch {storage.owner}", index)
        self.pinned.free(self.host_buffers.pop(storage.owner))
        self.restored[storage.owner] = True

    def _backward_layer(self, index: int) -> None:
        node = self.network[index]

        for storage in self._required_storages(index):
            if storage.owner not in self.device:
                self._restore_on_demand(storage, index)

        for storage in self.liveness.all_storages():
            if storage.needs_gradient and storage.gradient_alloc_at == index \
                    and storage.owner not in self.gradients:
                self.gradients[storage.owner] = self._alloc(
                    storage.nbytes, f"dY[{storage.owner}]")

        workspace: Optional[Allocation] = None
        ws_bytes = self.algos.workspace_bytes(node)
        if ws_bytes:
            workspace = self._alloc(ws_bytes, f"WS[{node.name}]")

        prefetch_target = find_prefetch_layer(self.network, self.state, index)
        launched_prefetch = False
        kernel_start = max(self.compute.ready_time, 0.0)
        if prefetch_target is not None:
            for storage in self.offloaded_at.get(prefetch_target, []):
                if self.restored.get(storage.owner):
                    continue
                self.device[storage.owner] = self._alloc(
                    storage.nbytes, f"X[{storage.owner}](pre)")
                self.memory.enqueue(
                    EventKind.PREFETCH, self.network[storage.owner].name,
                    self.system.pcie.dma_time(storage.nbytes),
                    earliest_start=kernel_start, nbytes=storage.nbytes,
                    layer_index=index)
                self.prefetch_bytes += storage.nbytes
                self.pinned.free(self.host_buffers.pop(storage.owner))
                self.restored[storage.owner] = True
                launched_prefetch = True

        timing = self.latency.backward(self.network, node,
                                       self.algos.profile(node))
        self.compute.enqueue(
            EventKind.BACKWARD, node.name, timing.seconds,
            nbytes=int(timing.dram_bytes), layer_index=index)

        if launched_prefetch:
            self._stall(f"prefetch-sync {node.name}", index)

        for storage in self.liveness.all_storages():
            if storage.needed_backward \
                    and storage.backward_release_after == index:
                allocation = self.device.pop(storage.owner, None)
                if allocation is not None:
                    self._free(allocation)
            if storage.needs_gradient \
                    and storage.gradient_release_after == index:
                allocation = self.gradients.pop(storage.owner, None)
                if allocation is not None:
                    self._free(allocation)

        if workspace is not None:
            self._free(workspace)


def legacy_simulate_vdnn(network: Network, system: SystemConfig,
                         policy: TransferPolicy,
                         algos: AlgoConfig) -> IterationResult:
    """One perfect-machine vDNN iteration on the pre-overhaul core."""
    sim = _LegacyVDNNSimulation(network, system, policy, algos)
    persistent = sim.allocate_persistent()
    sim.run_forward()
    sim.run_backward()
    sim.usage.record(sim.timeline.end_time, sim.pool.live_bytes)
    peak = sim.usage.max_bytes
    total_peak = peak + sim.external_bytes
    failure = None
    if total_peak > system.gpu.memory_bytes:
        failure = (
            f"peak usage {total_peak} bytes exceeds GPU capacity "
            f"{system.gpu.memory_bytes} bytes")
    return IterationResult(
        network_name=network.name,
        policy_label=policy.describe(),
        algo_label=algos.label,
        trainable=failure is None,
        failure=failure,
        timeline=sim.timeline,
        usage=sim.usage,
        managed_max_bytes=peak,
        managed_avg_bytes=sim.usage.average_bytes,
        external_bytes=sim.external_bytes,
        persistent_bytes=persistent,
        total_time=sim.timeline.span,
        feature_extraction_time=_feature_extraction_time(network,
                                                         sim.timeline),
        offload_bytes=sim.offload_bytes,
        prefetch_bytes=sim.prefetch_bytes,
        pinned_peak_bytes=sim.pinned.peak_bytes,
        compute_stall_seconds=sim.stall_seconds,
        offloaded_layers=sim.offloaded_layers,
    )


def legacy_simulate_baseline(network: Network, system: SystemConfig,
                             algos: AlgoConfig) -> IterationResult:
    """One baseline iteration on the pre-overhaul core."""
    latency = LatencyModel(system.gpu)
    timeline = _LegacyTimeline()
    compute = _LegacyStream(COMPUTE_STREAM, timeline)
    liveness = LivenessAnalysis(network)
    breakdown = baseline_allocation_bytes(network, algos, liveness)
    total = breakdown["total"]

    usage = _LegacyUsage()
    usage.record(0.0, total)
    for index in network.forward_schedule():
        node = network[index]
        if node.kind is LayerKind.INPUT:
            continue
        timing = latency.forward(network, node, algos.profile(node))
        compute.enqueue(EventKind.FORWARD, node.name, timing.seconds,
                        nbytes=int(timing.dram_bytes), layer_index=index)
    for index in network.backward_schedule():
        node = network[index]
        timing = latency.backward(network, node, algos.profile(node))
        compute.enqueue(EventKind.BACKWARD, node.name, timing.seconds,
                        nbytes=int(timing.dram_bytes), layer_index=index)
    usage.record(timeline.end_time, total)
    trainable = total <= system.gpu.memory_bytes
    return IterationResult(
        network_name=network.name,
        policy_label="base",
        algo_label=algos.label,
        trainable=trainable,
        failure=None if trainable else (
            f"network-wide allocation of {total} bytes exceeds GPU "
            f"capacity of {system.gpu.memory_bytes} bytes"),
        timeline=timeline,
        usage=usage,
        managed_max_bytes=total,
        managed_avg_bytes=float(total),
        external_bytes=0,
        persistent_bytes=breakdown["weights"] * 2,
        total_time=timeline.span,
        feature_extraction_time=_feature_extraction_time(network, timeline),
        offload_bytes=0,
        prefetch_bytes=0,
        pinned_peak_bytes=0,
        compute_stall_seconds=0.0,
    )

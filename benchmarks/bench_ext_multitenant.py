"""Extension: multi-tenant packing of training jobs on one GPU.

vDNN's 89-95% average-memory reduction (Section I) means the freed
capacity can host *more jobs*, not just bigger batches.  This bench
sweeps workload mixes x admission policies x GPU memory budgets through
`repro.sched` and reports aggregate throughput, makespan, queueing
delay and the degradation rungs the admission controller picked — the
multi-tenant counterpart of Figure 14's single-job performance story.
"""

import os

from repro.perf import SweepPoint, sweep as parallel_sweep
from repro.sched import Job, schedule_jobs
from repro.hw import PAPER_SYSTEM
from repro.reporting import format_table, gb_str

POLICIES = ("fifo", "sjf", "best_fit")

#: Worker processes for the admission-ladder warm-up (the scheduler
#: itself stays serial; override with REPRO_JOBS=1 to skip the warm-up).
JOBS = int(os.environ.get("REPRO_JOBS", "2") or "1")

#: The four degradation-ladder rungs the admission controller simulates
#: per distinct (network, batch) — see repro.sched.admission.LADDER.
LADDER_POINTS = (("base", "p"), ("conv", "p"), ("all", "m"), ("hybrid", "m"))

#: (label, job specs) — mixes where memory pressure and PCIe contention
#: stress the policies differently.
WORKLOADS = [
    ("paper-mix", [
        ("alexnet", 128, 50), ("vgg16", 64, 50),
        ("resnet50", 32, 50), ("googlenet", 128, 50),
    ]),
    ("vgg-heavy", [
        ("vgg16", 64, 40), ("vgg16", 64, 40),
        ("alexnet", 128, 40), ("googlenet", 128, 40),
    ]),
]

BUDGETS_GB = (6, 12, 24)


def _jobs(spec):
    return [
        Job(f"{network}#{index}", network, batch, iterations=iters)
        for index, (network, batch, iters) in enumerate(spec)
    ]


def warm_ladders(jobs=JOBS):
    """Simulate every distinct admission-ladder rung in parallel once.

    Each scheduler run below then answers admission questions from
    content-addressed cache hits, bit-identical to a cold serial run.
    """
    pairs = sorted({(network, batch)
                    for _, spec in WORKLOADS
                    for network, batch, _ in spec})
    points = [
        SweepPoint(network=network, batch=batch, policy=policy, algo=algo,
                   system=PAPER_SYSTEM)
        for network, batch in pairs
        for policy, algo in LADDER_POINTS
    ]
    parallel_sweep(points, jobs=jobs)


def sweep():
    warm_ladders()
    rows = []
    for label, spec in WORKLOADS:
        for budget_gb in BUDGETS_GB:
            budget = budget_gb * (1 << 30)
            for policy in POLICIES:
                result = schedule_jobs(
                    _jobs(spec), system=PAPER_SYSTEM,
                    policy=policy, budget_bytes=budget,
                )
                rungs = ",".join(
                    (r.rung or "-") for r in result.records
                )
                rows.append([
                    label, f"{budget_gb} GB", policy,
                    f"{len(result.finished)}/{len(result.records)}",
                    f"{result.makespan:,.1f} s",
                    f"{result.aggregate_throughput:,.2f} it/s",
                    f"{result.mean_queueing_delay:,.1f} s",
                    gb_str(result.peak_pool_bytes),
                    rungs,
                ])
    return rows


def test_ext_multitenant_policy_sweep(benchmark, capsys):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + format_table(
            ["workload", "budget", "policy", "done", "makespan",
             "throughput", "mean queue", "peak pool", "rungs"],
            rows,
            title="Extension: multi-tenant scheduling "
                  "(jobs x policies x budget)",
        ) + "\n")

    by_key = {(r[0], r[1], r[2]): r for r in rows}
    # Memory-aware packing never loses to FIFO on these mixes.
    for label, _ in WORKLOADS:
        for budget_gb in BUDGETS_GB:
            fifo = by_key[(label, f"{budget_gb} GB", "fifo")]
            best = by_key[(label, f"{budget_gb} GB", "best_fit")]
            assert float(best[5].split()[0].replace(",", "")) >= \
                float(fifo[5].split()[0].replace(",", ""))
    # Every schedule stays within its budget.
    for row in rows:
        budget_gb = float(row[1].split()[0])
        assert float(row[7].split()[0].replace(",", "")) <= budget_gb

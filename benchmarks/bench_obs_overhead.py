"""Overhead gate for the observability layer.

Times the headline simulation configs (the networks behind
``bench_headline``) three ways — uninstrumented (``obs=None``),
:class:`~repro.obs.NullInstrumentation` (every hook a no-op), and full
:class:`~repro.obs.Instrumentation` — and gates two claims:

* **instrumented vs no-op** stays under ``MAX_OVERHEAD``: each hot
  hook *body* (one append to the deferred event log — the counter and
  histogram arithmetic replays lazily when the registry is first read)
  must not grow a hot path.  A registry lookup, an O(events) scan, or
  retained per-run state sneaking into the simulated region fails this
  gate before it ships.
* **no-op vs plain** stays under the same ceiling: with hooks stubbed
  out, all that remains is call dispatch and the ``obs is not None``
  guards, which is the "uninstrumented path is unmeasurably slower"
  claim from the design.

Timing is min-of-N over interleaved repetitions of small inner batches:
the minimum is the run least disturbed by the machine, interleaving
keeps cache warmth symmetric between variants, and batching amortises
timer granularity.  Both claims are gated on the **aggregate** across
all configs — single millisecond-scale configs carry ~±5% scheduler
jitter that no amount of min-taking removes, while the aggregate is
dominated by the longest simulations and is stable; per-config numbers
are still reported, with a loose backstop assert catching a
catastrophically hot hook on any one config.

Results are merged into ``BENCH_perf.json`` (read-modify-write — the
perf-regression bench owns the other keys).  Runs under pytest or
standalone via ``python benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path
from typing import Dict

from repro.core.api import PAPER_SYSTEM, _algo_config
from repro.core.executor import simulate_vdnn
from repro.core.policy import TransferPolicy
from repro.obs import Instrumentation, NullInstrumentation
from repro.zoo import build

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: Relative overhead ceiling for the aggregate (primary) gate.
MAX_OVERHEAD = 0.05
#: Per-config backstop: single ms-scale configs carry ~±5% scheduler
#: jitter even under min-of-N, so the per-config assert only catches a
#: catastrophically hot hook; the aggregate carries the real gate.
CONFIG_BACKSTOP = 0.30
#: Absolute slack (seconds, per simulation) absorbing scheduler jitter
#: that min-of-N cannot fully suppress on ms-scale runs.
ABS_SLACK = 1e-4

#: Simulations per timed sample; amortises timer granularity.
BATCH = 4
REPEATS = 7

#: The bench_headline networks: (zoo key, batch, policy factory, algo).
CONFIGS = (
    ("alexnet", 128, TransferPolicy.vdnn_all, "m"),
    ("overfeat", 128, TransferPolicy.vdnn_all, "m"),
    ("googlenet", 128, TransferPolicy.vdnn_all, "m"),
    ("vgg16", 256, TransferPolicy.vdnn_all, "m"),
)

_results: Dict[str, dict] = {}


def _flush_results() -> None:
    """Merge this bench's sections into BENCH_perf.json.

    Read-modify-write: ``bench_perf_regression`` rewrites the file from
    its own results, so this bench must not clobber those keys (and
    vice versa — it owns only ``obs_overhead``).
    """
    payload = {}
    if RESULTS_PATH.exists():
        try:
            payload = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            payload = {}
    payload["obs_overhead"] = dict(_results)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def measure_config(name: str, batch: int, policy_factory, algo: str):
    network = build(name, batch)
    policy = policy_factory()
    algos = _algo_config(network, algo)

    # One Instrumentation per variant, constructed OUTSIDE the timed
    # region: real callers (the CLI, the differential suite) build the
    # registry once per run and simulate many times, so the gate times
    # the per-simulation hook cost, not the one-off registry setup.
    null_obs = NullInstrumentation()
    full_obs = Instrumentation()

    def make(obs):
        def sample():
            for _ in range(BATCH):
                simulate_vdnn(network, PAPER_SYSTEM, policy, algos, obs=obs)
        return sample

    variants = {
        "plain": make(None),
        "null": make(null_obs),
        "instrumented": make(full_obs),
    }
    # Warm every variant once, then interleave the timed repetitions so
    # machine drift hits all three equally.  GC stays off during timing:
    # a collection landing inside one variant's sample would be charged
    # to that variant alone.
    for fn in variants.values():
        fn()
    best = {key: float("inf") for key in variants}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(REPEATS):
            for key, fn in variants.items():
                start = time.perf_counter()
                fn()
                best[key] = min(best[key], time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
    best = {key: value / BATCH for key, value in best.items()}

    section = {
        "plain_ms": best["plain"] * 1e3,
        "null_ms": best["null"] * 1e3,
        "instrumented_ms": best["instrumented"] * 1e3,
        "null_vs_plain": best["null"] / best["plain"] - 1.0,
        "instrumented_vs_null": best["instrumented"] / best["null"] - 1.0,
        "instrumented_vs_plain":
            best["instrumented"] / best["plain"] - 1.0,
    }
    _results[f"{name}:{batch}:{algo}"] = section
    return section, best


def test_obs_overhead_within_gate():
    totals = {"plain": 0.0, "null": 0.0, "instrumented": 0.0}
    for name, batch, factory, algo in CONFIGS:
        section, best = measure_config(name, batch, factory, algo)
        _flush_results()
        for key, value in best.items():
            totals[key] += value
        label = f"{name}:{batch}:{algo}"
        # Per-config backstop: catches an egregiously hot hook on one
        # config; the slack absorbs per-config scheduler jitter.
        noop_ceiling = best["null"] * (1.0 + CONFIG_BACKSTOP) + ABS_SLACK
        assert best["instrumented"] <= noop_ceiling, (
            f"{label}: instrumented run {section['instrumented_ms']:.3f} ms"
            f" vs no-op {section['null_ms']:.3f} ms — hook bodies cost "
            f"{section['instrumented_vs_null']:.1%}, backstop is "
            f"{CONFIG_BACKSTOP:.0%}")
        plain_ceiling = best["plain"] * (1.0 + CONFIG_BACKSTOP) + ABS_SLACK
        assert best["null"] <= plain_ceiling, (
            f"{label}: no-op instrumentation {section['null_ms']:.3f} ms "
            f"vs uninstrumented {section['plain_ms']:.3f} ms — dispatch "
            f"overhead {section['null_vs_plain']:.1%} exceeds "
            f"{CONFIG_BACKSTOP:.0%}")

    # Primary gate, on the aggregate across every headline config: the
    # sum is dominated by the longest (most measurable) simulations, so
    # single-config timer jitter cannot flip it — no slack needed.
    _results["aggregate"] = {
        "plain_ms": totals["plain"] * 1e3,
        "null_ms": totals["null"] * 1e3,
        "instrumented_ms": totals["instrumented"] * 1e3,
        "null_vs_plain": totals["null"] / totals["plain"] - 1.0,
        "instrumented_vs_null":
            totals["instrumented"] / totals["null"] - 1.0,
    }
    _flush_results()
    assert totals["instrumented"] <= totals["null"] * (1.0 + MAX_OVERHEAD), (
        f"aggregate instrumented-vs-noop overhead "
        f"{totals['instrumented'] / totals['null'] - 1.0:.1%} exceeds "
        f"{MAX_OVERHEAD:.0%} across the headline configs")
    assert totals["null"] <= totals["plain"] * (1.0 + MAX_OVERHEAD), (
        f"aggregate no-op dispatch overhead "
        f"{totals['null'] / totals['plain'] - 1.0:.1%} exceeds "
        f"{MAX_OVERHEAD:.0%} across the headline configs")


def test_obs_results_identical_across_variants():
    """The gate would be meaningless if the variants diverged."""
    network = build("vgg16", 64)
    policy = TransferPolicy.vdnn_all()
    algos = _algo_config(network, "m")
    plain = simulate_vdnn(network, PAPER_SYSTEM, policy, algos)
    null = simulate_vdnn(network, PAPER_SYSTEM, policy, algos,
                         obs=NullInstrumentation())
    full = simulate_vdnn(network, PAPER_SYSTEM, policy, algos,
                         obs=Instrumentation())
    assert plain == null == full


def main() -> int:
    for name, batch, factory, algo in CONFIGS:
        section, _best = measure_config(name, batch, factory, algo)
        print(f"{name}:{batch}:{algo}: " + "  ".join(
            f"{k}={v:,.4g}" for k, v in section.items()))
    _flush_results()
    print(f"wrote {RESULTS_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Benchmark-suite helpers.

Every benchmark computes one paper figure/table through the functions in
``repro.reporting.figures``, times it with pytest-benchmark, and prints
the paper-style table so the run doubles as the reproduction log
recorded in EXPERIMENTS.md.
"""

import pytest


def run_and_print(benchmark, capsys, fn, *args, **kwargs):
    """Benchmark ``fn`` once and print its FigureResult text."""
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + result.text + "\n")
    return result

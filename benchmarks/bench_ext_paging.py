"""Extension: quantify the Section II-C page-migration strawman.

Trains the memory-oversubscribed networks under (modeled) OS demand
paging and compares the slowdown against vDNN_dyn.  The paper argues
paging is a non-starter from bandwidth arithmetic; this bench runs the
whole pipeline and puts numbers on it.
"""

from repro.core import paging_vs_vdnn
from repro.hw import PAPER_SYSTEM
from repro.reporting import format_table, gb_str
from repro.zoo import build


def paging_profile():
    rows = []
    for name, batch in [("vgg16", 128), ("vgg16", 256), ("vgg116", 32)]:
        rows.append(paging_vs_vdnn(build(name, batch), PAPER_SYSTEM))
    return rows


def test_ext_paging_vs_vdnn(benchmark, capsys):
    rows = benchmark.pedantic(paging_profile, rounds=1, iterations=1)
    table = [[r["network"], gb_str(r["oversubscribed_bytes"]),
              f"{r['paging_slowdown']:.1f}x",
              f"{r['paging_dma_slowdown']:.2f}x",
              f"{r['vdnn_dyn_slowdown']:.2f}x"]
             for r in rows]
    with capsys.disabled():
        print("\n" + format_table(
            ["network", "oversubscribed", "page-migration",
             "paging @ DMA speed", "vDNN_dyn"],
            table,
            title="Extension: demand paging vs vDNN (iteration slowdown)",
        ) + "\n")
    for r in rows:
        assert r["paging_slowdown"] > 10
        assert r["vdnn_dyn_slowdown"] < r["paging_dma_slowdown"]
        assert r["vdnn_dyn_slowdown"] < 1.3

"""Extension: interconnect sweep (Section III-A mentions PCIe, NVLINK).

Static vDNN's entire overhead is transfer latency that outlives its
overlapped kernel.  Sweeping the CPU<->GPU link from PCIe gen3 to
NVLink 2.0 shows the overhead melting away — on NVLink even vDNN_all(m)
approaches the memory-optimal baseline's speed.
"""

from repro.core import AlgoConfig, TransferPolicy, simulate_baseline, simulate_vdnn
from repro.hw import interconnect_sweep
from repro.reporting import format_table, ms_str, pct_str
from repro.zoo import build


def interconnect_profile(network):
    algos = AlgoConfig.memory_optimal(network)
    rows = []
    for label, system in interconnect_sweep():
        base = simulate_baseline(network, system.with_oracular_gpu(), algos)
        vdnn = simulate_vdnn(network, system, TransferPolicy.vdnn_all(), algos)
        overhead = vdnn.total_time / base.total_time - 1.0
        rows.append((label, system.pcie.dma_bandwidth, vdnn, overhead))
    return rows


def test_ext_interconnect_sweep(benchmark, capsys):
    network = build("vgg16", 64)
    rows = benchmark.pedantic(interconnect_profile, args=(network,),
                              rounds=1, iterations=1)
    table = [[label, f"{bw / 1e9:.1f} GB/s",
              ms_str(r.compute_stall_seconds), pct_str(overhead)]
             for label, bw, r, overhead in rows]
    with capsys.disabled():
        print("\n" + format_table(
            ["interconnect", "DMA bandwidth", "compute stalls",
             "vDNN_all(m) overhead vs base(m)"],
            table,
            title=f"Extension: interconnect sweep, {network.name}",
        ) + "\n")
    overheads = [overhead for *_, overhead in rows]
    assert overheads == sorted(overheads, reverse=True)
    assert overheads[-1] < overheads[0] / 2  # NVLink 2 >2x better than gen3

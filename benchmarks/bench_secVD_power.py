"""Section V-D: GPU power consumption of vDNN_dyn vs. baseline.

The paper measures (with nvprof) that vDNN_dyn raises the *maximum*
power by only 1-7% — the extra instantaneous draw of offload/prefetch
DMA — while the *average* power is essentially unchanged.  The
activity-based model must reproduce that envelope.
"""

from conftest import run_and_print
from repro.reporting import power_section
from repro.zoo import build


def test_power_overhead_envelope(benchmark, capsys):
    # The paper evaluates the five baseline-trainable configurations
    # (VGG-16 (256) is excluded as baseline cannot run it at all).
    networks = [build("alexnet", 128), build("overfeat", 128),
                build("googlenet", 128), build("vgg16", 64),
                build("vgg16", 128)]
    result = run_and_print(benchmark, capsys, power_section, networks)
    for row in result.rows:
        base_avg, base_max = float(row[1]), float(row[2])
        dyn_avg, dyn_max = float(row[3]), float(row[4])
        conv_overhead = float(row[6].rstrip("%"))
        # Max-power overhead small and bounded (paper: 1%-7%).
        assert dyn_max <= base_max * 1.10, row[0]
        # Average power essentially unchanged.
        assert abs(dyn_avg - base_avg) / base_avg < 0.10, row[0]
        # An always-offloading configuration raises max power, but only
        # within the paper's single-digit envelope.
        assert 0.0 <= conv_overhead <= 10.0, row[0]

"""Figure 15: very deep networks (VGG-116/216/316/416, batch 32).

The paper's scalability case study: baseline memory grows ~14x from
VGG-16 to VGG-416 (4.9 GB -> 67.1 GB) while vDNN_dyn keeps the GPU-side
footprint within the card and parks 81-92% of allocations in host DRAM.
"""

from conftest import run_and_print
from repro.reporting import fig15_very_deep


def _gb(cell):
    return float(cell.replace(" GB", "").replace(",", ""))


def test_fig15_very_deep(benchmark, capsys):
    result = run_and_print(benchmark, capsys, fig15_very_deep)
    assert len(result.rows) == 4

    baselines = [_gb(r[1]) for r in result.rows]
    gpu_side = [_gb(r[3]) for r in result.rows]
    cpu_share = [float(r[5].rstrip("%")) for r in result.rows]

    # Baseline demand explodes with depth; none of them trains.
    assert baselines == sorted(baselines)
    assert baselines[-1] > 60  # VGG-416 ~67 GB
    assert all(r[2] == "NO" for r in result.rows)

    # vDNN_dyn keeps the GPU side within the 12 GB card...
    assert all(g <= 12.0 for g in gpu_side)
    # ...with the bulk of allocations on the CPU side (paper: 81-92%).
    assert all(share > 70 for share in cpu_share)

"""Figure 1: baseline network-wide allocation vs. actual layer-wise usage.

Regenerates both axes of the paper's Figure 1 for the six conventional
networks: the memory the baseline policy allocates, and the maximum
fraction of it any single layer's working set ever touches.  The paper's
claim — 53% to 79% of allocated memory is never simultaneously live —
is asserted in spirit (a large majority is idle for the deep networks).
"""

from conftest import run_and_print
from repro.reporting import fig01_baseline_usage


def test_fig01_baseline_usage(benchmark, capsys):
    result = run_and_print(benchmark, capsys, fig01_baseline_usage)
    assert len(result.rows) == 6
    # VGG-16 (256) must need far more than the 12 GB Titan X.
    vgg256 = result.rows[-1]
    assert "VGG-16(256)" in vgg256[0]

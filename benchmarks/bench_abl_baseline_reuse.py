"""Ablation (DESIGN.md 5.3): the baseline's dY/dX ping-pong reuse.

Section IV-A improves the Torch baseline by allocating only two
maximum-size gradient buffers that ping-pong through backward
propagation instead of one dX/dY pair per layer.  This ablation
quantifies how much that optimization saves — and therefore how much
*stronger* the baseline the paper compares against is.
"""

from repro.core import AlgoConfig, LivenessAnalysis, baseline_allocation_bytes
from repro.reporting import format_table, gb_str
from repro.zoo import build


def gradient_policies(network):
    algos = AlgoConfig.memory_optimal(network)
    liveness = LivenessAnalysis(network)
    improved = baseline_allocation_bytes(network, algos, liveness)
    naive_gradients = sum(
        s.nbytes for s in liveness.all_storages() if s.needs_gradient
    )
    naive_total = (improved["total"] - improved["gradient_maps"]
                   + naive_gradients)
    return improved, naive_gradients, naive_total


def test_ablation_baseline_gradient_reuse(benchmark, capsys):
    rows = []
    for key, batch in [("alexnet", 128), ("vgg16", 64), ("vgg16", 256)]:
        network = build(key, batch)
        improved, naive_gradients, naive_total = benchmark.pedantic(
            gradient_policies, args=(network,), rounds=1, iterations=1,
        ) if not rows else gradient_policies(network)
        rows.append([
            network.name,
            gb_str(naive_total),
            gb_str(improved["total"]),
            gb_str(naive_gradients - improved["gradient_maps"]),
        ])
        assert improved["gradient_maps"] <= naive_gradients
    with capsys.disabled():
        print("\n" + format_table(
            ["network", "naive per-layer dX/dY", "ping-pong reuse (paper)",
             "saved"],
            rows,
            title="Ablation: baseline gradient-buffer reuse",
        ) + "\n")

"""Ablation (DESIGN.md 5.1): end-of-layer stream synchronization.

vDNN synchronizes stream_compute and stream_memory at the end of every
layer that offloaded its feature maps, guaranteeing the buffer is
released before the next layer allocates.  Removing the sync (unsafe in
a real system) shows what the guarantee costs: the stalls disappear and
iteration time drops toward the baseline.
"""

from repro.core import AlgoConfig, TransferPolicy, simulate_vdnn
from repro.hw import PAPER_SYSTEM
from repro.reporting import format_table, ms_str
from repro.zoo import build


def sync_ablation(network):
    algos = AlgoConfig.memory_optimal(network)
    policy = TransferPolicy.vdnn_all()
    synced = simulate_vdnn(network, PAPER_SYSTEM, policy, algos)
    unsynced = simulate_vdnn(network, PAPER_SYSTEM, policy, algos,
                             sync_after_offload=False)
    return synced, unsynced


def test_ablation_end_of_layer_sync(benchmark, capsys):
    network = build("vgg16", 64)
    synced, unsynced = benchmark.pedantic(
        sync_ablation, args=(network,), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n" + format_table(
            ["variant", "iteration time", "compute stalls"],
            [["end-of-layer sync (paper)", ms_str(synced.total_time),
              ms_str(synced.compute_stall_seconds)],
             ["no sync (unsafe)", ms_str(unsynced.total_time),
              ms_str(unsynced.compute_stall_seconds)]],
            title="Ablation: end-of-layer stream synchronization",
        ) + "\n")
    assert synced.compute_stall_seconds >= unsynced.compute_stall_seconds
    assert synced.total_time >= unsynced.total_time

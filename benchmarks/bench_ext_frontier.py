"""Extension: the compressed-DMA / joint-planner capacity frontier.

Two Fig. 11/14-style sweeps, each with a hard dominance gate:

* **Compression** (paper system): ``vDNN_comp`` must move strictly
  fewer offload PCIe bytes than ``vDNN_all`` at the same algorithm
  configuration, at equal-or-better iteration time — the cDMA promise
  (compressed wire format, full-size device buffers) as an inequality
  over simulated results, not a modeling assumption.
* **Joint frontier** (constrained budgets): the joint
  keep/offload/compress/recompute planner must be trainable wherever
  any pure strategy is, and never slower than any *trainable* pure
  constituent — keep-all, all-offload, all-compress, all-recompute —
  at the same memory budget and fastest algorithms.

Results land in ``BENCH_perf.json`` under the ``"frontier"`` key
(read-modify-write — other benches own their own keys) for CI's
perf-smoke job to archive.
"""

import json
from pathlib import Path

from repro.core import AlgoConfig, TransferPolicy, evaluate
from repro.core.joint import (
    JointConfig,
    JointDecision,
    plan_joint,
    simulate_joint_config,
    trigger_costs,
)
from repro.core.plan import compiled_plan
from repro.hw import PAPER_SYSTEM
from repro.reporting import format_table, gb_str, ms_str
from repro.zoo import build

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: Compression sweep points: the paper's headline networks.
COMP_NETWORKS = (("alexnet", 128), ("overfeat", 128),
                 ("googlenet", 128), ("vgg16", 64))

#: Joint sweep points: (network, batch, budget GiB) chosen so keep-all
#: misses but a mixed plan fits — the regime the planner exists for.
JOINT_POINTS = (("googlenet", 128, 2.0), ("googlenet", 128, 2.6),
                ("resnet50", 32, 1.2))

GB = 1 << 30


def _flush_results(section: dict) -> None:
    """Merge this bench's section into BENCH_perf.json (RMW)."""
    payload = {}
    if RESULTS_PATH.exists():
        try:
            payload = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            payload = {}
    payload["frontier"] = section
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def compression_sweep() -> dict:
    """vDNN_all vs vDNN_comp, both algorithm configs, paper system."""
    out = {}
    for name, batch in COMP_NETWORKS:
        network = build(name, batch)
        row = {}
        for algo in ("m", "p"):
            all_r = evaluate(network, PAPER_SYSTEM, "all", algo,
                             use_cache=False)
            comp_r = evaluate(network, PAPER_SYSTEM, "comp", algo,
                              use_cache=False)
            row[algo] = {
                "all_offload_bytes": int(all_r.offload_bytes),
                "comp_offload_bytes": int(comp_r.offload_bytes),
                "comp_raw_bytes": int(comp_r.offload_raw_bytes),
                "wire_ratio": round(
                    comp_r.offload_bytes / all_r.offload_bytes, 4)
                    if all_r.offload_bytes else 1.0,
                "all_time_seconds": round(all_r.total_time, 6),
                "comp_time_seconds": round(comp_r.total_time, 6),
            }
        out[f"{name}:{batch}"] = row
    return out


def _pure_constituents(network, system, algos):
    """The four single-strategy plans the joint planner must dominate."""
    plan = compiled_plan(network, system, algos)
    triggers = frozenset(
        plan.offload_indices(TransferPolicy.vdnn_all(), network))
    costs = trigger_costs(network, plan)
    drop_ok = frozenset(t for t in triggers
                        if JointDecision.RECOMPUTE in costs[t])
    return {
        "keep": JointConfig(),
        "offload": JointConfig(offload=triggers),
        "compress": JointConfig(compress=triggers),
        "recompute": JointConfig(offload=triggers - drop_ok,
                                 drop=drop_ok),
    }


def joint_sweep() -> dict:
    """The joint planner vs its pure constituents at tight budgets."""
    out = {}
    for name, batch, budget_gb in JOINT_POINTS:
        system = PAPER_SYSTEM.with_gpu_memory(int(budget_gb * GB))
        network = build(name, batch)
        jplan = plan_joint(network, system, use_cache=False)
        algos = AlgoConfig.performance_optimal(network)
        entry = {
            "budget_gb": budget_gb,
            "config": jplan.config.describe(),
            "algos": jplan.algos.label,
            "probes": len(jplan.passes),
            "joint_time_seconds": round(jplan.result.total_time, 6),
            "joint_peak_bytes": int(jplan.result.max_usage_bytes),
            "trainable": bool(jplan.result.trainable),
            "constituents": {},
        }
        for label, config in _pure_constituents(network, system,
                                                algos).items():
            result = simulate_joint_config(network, system, config, algos)
            entry["constituents"][label] = {
                "trainable": bool(result.trainable),
                "time_seconds": round(result.total_time, 6),
                "peak_bytes": int(result.max_usage_bytes),
            }
        out[f"{name}:{batch}@{budget_gb}"] = entry
    return out


def frontier_tables() -> dict:
    return {"compression": compression_sweep(), "joint": joint_sweep()}


def test_ext_frontier(benchmark, capsys):
    section = benchmark.pedantic(frontier_tables, rounds=1, iterations=1)
    comp, joint = section["compression"], section["joint"]

    rows = []
    for point, row in comp.items():
        for algo in ("m", "p"):
            r = row[algo]
            rows.append([
                f"{point} ({algo})",
                gb_str(r["all_offload_bytes"]),
                gb_str(r["comp_offload_bytes"]),
                f'{r["wire_ratio"]:.2f}',
                ms_str(r["all_time_seconds"]),
                ms_str(r["comp_time_seconds"]),
            ])
    jrows = []
    for point, entry in joint.items():
        jrows.append([point, entry["config"], entry["algos"],
                      ms_str(entry["joint_time_seconds"]),
                      gb_str(entry["joint_peak_bytes"])])
        for label, c in entry["constituents"].items():
            jrows.append([
                f"  pure {label}", "-", "-",
                ms_str(c["time_seconds"]) + (
                    "" if c["trainable"] else " (*)"),
                gb_str(c["peak_bytes"]),
            ])
    with capsys.disabled():
        print("\n" + format_table(
            ["point", "all wire", "comp wire", "ratio", "all time",
             "comp time"],
            rows, title="Extension: cDMA compressed offload frontier",
        ) + "\n")
        print(format_table(
            ["point", "config", "algos", "time", "peak"],
            jrows,
            title="Extension: joint planner vs pure strategies "
                  "(* = exceeds budget)",
        ) + "\n")

    # Gate 1: compression strictly shrinks wire traffic at
    # equal-or-better time, for every network and both algo configs.
    for point, row in comp.items():
        for algo in ("m", "p"):
            r = row[algo]
            assert r["comp_offload_bytes"] < r["all_offload_bytes"], point
            assert r["comp_time_seconds"] <= r["all_time_seconds"], point
            assert 0.0 < r["wire_ratio"] < 1.0, point

    # Gate 2: the joint plan trains at every point and is never slower
    # than any trainable pure constituent at the same budget.
    for point, entry in joint.items():
        assert entry["trainable"], point
        for label, c in entry["constituents"].items():
            if c["trainable"]:
                assert entry["joint_time_seconds"] \
                    <= c["time_seconds"] + 1e-9, (point, label)

    _flush_results(section)

"""Extension: offloading (vDNN) vs gradient checkpointing (recompute).

The two classic capacity levers, on identical substrates: vDNN buys
memory with PCIe bandwidth (hidden under compute when kernels are long
enough); checkpointing buys it with an extra forward pass (always ~1.33x
compute).  The bench shows both fit VGG-16 in 12 GB and who is faster.
"""

from repro.core import (
    AlgoConfig,
    TransferPolicy,
    simulate_baseline,
    simulate_recompute,
    simulate_vdnn,
)
from repro.hw import PAPER_SYSTEM
from repro.reporting import format_table, gb_str, ms_str
from repro.zoo import build


def strategy_comparison(network):
    algos = AlgoConfig.memory_optimal(network)
    base = simulate_baseline(network, PAPER_SYSTEM.with_oracular_gpu(), algos)
    vdnn = simulate_vdnn(network, PAPER_SYSTEM, TransferPolicy.vdnn_all(), algos)
    recompute = simulate_recompute(network, PAPER_SYSTEM, algos)
    return base, vdnn, recompute


def test_ext_recompute_vs_offload(benchmark, capsys):
    network = build("vgg16", 64)
    base, vdnn, recompute = benchmark.pedantic(
        strategy_comparison, args=(network,), rounds=1, iterations=1
    )
    rows = [
        ["baseline (oracular)", gb_str(base.max_usage_bytes),
         ms_str(base.total_time), "-"],
        ["vDNN_all offloading", gb_str(vdnn.max_usage_bytes),
         ms_str(vdnn.total_time),
         f"{vdnn.total_time / base.total_time:.2f}x"],
        ["sqrt(L) checkpointing", gb_str(recompute.max_usage_bytes),
         ms_str(recompute.total_time),
         f"{recompute.total_time / base.total_time:.2f}x"],
    ]
    with capsys.disabled():
        print("\n" + format_table(
            ["strategy", "max memory", "iteration time", "slowdown"],
            rows,
            title=f"Extension: memory-saving strategies on {network.name} (m algos)",
        ) + "\n")
    # Both strategies cut memory well below the baseline.
    assert vdnn.max_usage_bytes < base.max_usage_bytes * 0.7
    assert recompute.max_usage_bytes < base.max_usage_bytes * 0.7
    # Checkpointing pays roughly an extra forward pass.
    assert recompute.total_time > base.total_time * 1.1

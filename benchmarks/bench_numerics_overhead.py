"""Functional-runtime benchmark: real training-step cost of offloading.

Times actual numpy training steps (the functional backend, not the
performance model) under the none / conv / all policies.  On a CPU the
offload copies are memcpy-speed, so the overhead is modest — but the
benchmark pins down that the manager machinery itself is cheap and that
all three policies compute identical losses while doing so.
"""

import pytest

from repro.core import TransferPolicy
from repro.graph import NetworkBuilder
from repro.numerics import TrainingRuntime, make_batch


def build_network():
    builder = NetworkBuilder("bench-cnn", (8, 3, 32, 32))
    for _ in range(4):
        builder.conv(16, kernel=3, pad=1).relu()
    builder.pool()
    return builder.fc(10).softmax().build()


@pytest.fixture(scope="module")
def batch():
    return make_batch((8, 3, 32, 32), 10, seed=0)


@pytest.mark.parametrize("policy_name,factory", [
    ("none", TransferPolicy.none),
    ("conv", TransferPolicy.vdnn_conv),
    ("all", TransferPolicy.vdnn_all),
])
def test_train_step_throughput(benchmark, policy_name, factory, batch):
    runtime = TrainingRuntime(build_network(), factory(), seed=0)
    images, labels = batch
    result = benchmark(runtime.train_step, images, labels)
    assert result.loss > 0

"""Extension: resilience under deterministic fault injection.

vDNN's transfer machinery assumes a perfect machine; `repro.faults`
breaks that assumption on purpose.  This bench sweeps fault severities
over the executor (transient DMA failures, degraded + jittered PCIe)
and the multi-tenant scheduler (mid-run budget shrinks, evictions) and
reports the two resilience headlines:

* **recovery rate** — the fraction of injected faults absorbed by
  retry/backoff, degradation or deferral rather than failing work;
* **goodput under degradation** — faulted throughput relative to the
  same run on the perfect machine.
"""

from repro.core.algo_config import AlgoConfig
from repro.core.executor import simulate_vdnn
from repro.core.policy import TransferPolicy
from repro.faults import FaultSpec
from repro.hw import PAPER_SYSTEM
from repro.reporting import format_table
from repro.sched import Job, schedule_jobs
from repro.zoo import build

#: (label, spec) severity ladder for the executor sweep.
SEVERITIES = [
    ("clean", "none"),
    ("mild", "dma=0.05,jitter=0.05"),
    ("moderate", "dma=0.2,pcie=0.7,jitter=0.1"),
    ("hostile", "dma=0.4,pcie=0.5,jitter=0.2,retries=6"),
]

NETWORKS = [("alexnet", 64), ("vgg16", 32)]
SEEDS = (7, 11)

SCHED_FAULTS = [
    ("clean", "none"),
    ("shrink", "shrink@10=0.5"),
    ("evict", "evict@5=vgg16#1"),
    ("storm", "shrink@10=0.5,evict@5=vgg16#1,evict@15=resnet50#2"),
]

SCHED_JOBS = [
    ("vgg16", 64, 40), ("resnet50", 32, 40),
    ("alexnet", 128, 40), ("googlenet", 128, 40),
]


def _simulate(network, spec, seed):
    return simulate_vdnn(
        network, PAPER_SYSTEM, TransferPolicy.vdnn_all(),
        AlgoConfig.performance_optimal(network),
        faults=None if spec is None else spec, fault_seed=seed,
    )


def executor_sweep():
    rows = []
    for name, batch in NETWORKS:
        network = build(name, batch)
        clean = _simulate(network, None, 0)
        for label, text in SEVERITIES:
            spec = FaultSpec.parse(text)
            for seed in SEEDS:
                result = _simulate(network, spec, seed)
                report = result.fault_report
                goodput = (clean.total_time / result.total_time
                           if result.trainable and result.total_time > 0
                           else 0.0)
                rows.append([
                    f"{name}:{batch}", label, seed,
                    "yes" if result.trainable else "NO",
                    report.total_faults, report.retries,
                    f"{report.recovery_rate:.0%}",
                    f"{goodput:.2f}x",
                ])
    return rows


def scheduler_sweep():
    rows = []
    for label, text in SCHED_FAULTS:
        spec = FaultSpec.parse(text)
        jobs = [Job(f"{network}#{index + 1}", network, batch,
                    iterations=iters)
                for index, (network, batch, iters) in enumerate(SCHED_JOBS)]
        result = schedule_jobs(
            jobs, system=PAPER_SYSTEM, budget_bytes=12 * (1 << 30),
            faults=spec if spec.enabled else None, fault_seed=7,
        )
        report = result.fault_report
        rows.append([
            label,
            f"{len(result.finished)}/{len(result.records)}",
            len(result.evicted),
            f"{result.aggregate_throughput:,.2f} it/s",
            report.total_faults if report else 0,
            f"{report.recovery_rate:.0%}" if report else "100%",
        ])
    return rows


def test_ext_fault_recovery_executor(benchmark, capsys):
    rows = benchmark.pedantic(executor_sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + format_table(
            ["network", "severity", "seed", "done", "faults", "retries",
             "recovery", "goodput"],
            rows,
            title="Extension: executor resilience "
                  "(fault severity x network x seed)",
        ) + "\n")

    by_key = {(r[0], r[1], r[2]): r for r in rows}
    for name, batch in NETWORKS:
        for seed in SEEDS:
            clean = by_key[(f"{name}:{batch}", "clean", seed)]
            # Zero faults => goodput is exactly 1.0 (bit-identical run).
            assert clean[4] == 0 and clean[7] == "1.00x"
            # Mild degradation is fully absorbed by retry/backoff.
            mild = by_key[(f"{name}:{batch}", "mild", seed)]
            assert mild[3] == "yes" and mild[6] == "100%"
    # Goodput is monotone non-increasing in severity on every run that
    # completed: degradation costs time, it never creates it.
    for name, batch in NETWORKS:
        for seed in SEEDS:
            goodputs = [
                float(by_key[(f"{name}:{batch}", label, seed)][7][:-1])
                for label, _ in SEVERITIES
                if by_key[(f"{name}:{batch}", label, seed)][3] == "yes"
            ]
            assert all(a >= b - 1e-9
                       for a, b in zip(goodputs, goodputs[1:]))


def test_ext_fault_recovery_scheduler(benchmark, capsys):
    rows = benchmark.pedantic(scheduler_sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + format_table(
            ["faults", "done", "evicted", "throughput", "injected",
             "recovery"],
            rows,
            title="Extension: scheduler resilience "
                  "(shrinks + evictions, seed 7)",
        ) + "\n")

    by_label = {r[0]: r for r in rows}
    assert by_label["clean"][4] == 0
    # Single-fault scenarios recover completely: every evicted job is
    # readmitted along the degradation ladder and finishes.
    for label in ("shrink", "evict"):
        assert by_label[label][5] == "100%"
        assert by_label[label][1] == by_label["clean"][1]

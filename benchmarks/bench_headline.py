"""The abstract's headline claims, recomputed end to end.

AlexNet -89% / OverFeat -91% / GoogLeNet -95% average GPU memory;
VGG-16 (256) — a 28 GB workload — trainable on a 12 GB Titan X under
vDNN at a bounded performance cost vs. an oracular GPU.
"""

import os

from conftest import run_and_print
from repro.reporting import headline

#: Worker processes for the simulation fan-out (results are bit-identical
#: to a serial run; override with REPRO_JOBS=1 to force serial).
JOBS = int(os.environ.get("REPRO_JOBS", "2") or "1")


def test_headline_claims(benchmark, capsys):
    result = run_and_print(benchmark, capsys, headline, jobs=JOBS)
    rows = {r[0]: r for r in result.rows}

    for name in ("AlexNet(128)", "OverFeat(128)", "GoogLeNet(128)"):
        measured = float(rows[f"{name} avg memory reduction"][2].rstrip("%"))
        assert measured > 80.0, f"{name}: only {measured}% savings"

    assert rows["VGG-16 (256) trainable on 12 GB under vDNN"][2] == "yes"

    needs = rows["VGG-16 (256) baseline needs"][2]
    assert 25.0 <= float(needs.replace(" GB", "")) <= 35.0

    perf_loss = float(
        rows["VGG-16 (256) perf loss vs oracular baseline"][2].rstrip("%")
    )
    assert perf_loss <= 25.0  # paper: 18%

"""The abstract's headline claims, recomputed end to end.

AlexNet -89% / OverFeat -91% / GoogLeNet -95% average GPU memory;
VGG-16 (256) — a 28 GB workload — trainable on a 12 GB Titan X under
vDNN at a bounded performance cost vs. an oracular GPU.
"""

from conftest import run_and_print
from repro.reporting import headline


def test_headline_claims(benchmark, capsys):
    result = run_and_print(benchmark, capsys, headline)
    rows = {r[0]: r for r in result.rows}

    for name in ("AlexNet(128)", "OverFeat(128)", "GoogLeNet(128)"):
        measured = float(rows[f"{name} avg memory reduction"][2].rstrip("%"))
        assert measured > 80.0, f"{name}: only {measured}% savings"

    assert rows["VGG-16 (256) trainable on 12 GB under vDNN"][2] == "yes"

    needs = rows["VGG-16 (256) baseline needs"][2]
    assert 25.0 <= float(needs.replace(" GB", "")) <= 35.0

    perf_loss = float(
        rows["VGG-16 (256) perf loss vs oracular baseline"][2].rstrip("%")
    )
    assert perf_loss <= 25.0  # paper: 18%

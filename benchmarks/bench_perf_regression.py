"""Performance-regression gate for the sweep engine.

Times the three hot paths this repo optimizes and asserts their floors:

1. **evaluate warm vs cold** — a cache hit must replay a simulation at
   least 5x faster than simulating it;
2. **vDNN_dyn profiling** — the dynamic planner's probe ladder must run
   at least 2x faster once its vDNN probes are cache hits;
3. **multi-tenant schedule warm vs cold** — repeated scheduler runs over
   one workload reuse the admission ladder's cached simulations;
4. **allocator at 10k live blocks** — the bisect-indexed
   :class:`~repro.alloc.pool.PoolAllocator` must beat a linear-scan
   reference (the pre-index implementation, inlined below) by at least
   5x per alloc/free pair.

Results land in ``BENCH_perf.json`` at the repo root so CI can archive
the numbers next to the figure outputs.  Runs under pytest (collected
with the rest of ``benchmarks/``) or standalone via ``python
benchmarks/bench_perf_regression.py``.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path
from typing import Dict, Optional

from repro.alloc.pool import ALIGNMENT, PoolAllocator, _align
from repro.hw import PAPER_SYSTEM
from repro.perf import configure_cache, get_cache
from repro.zoo import build

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: Floors asserted by the tests (ratios, warm/new over cold/old).
MIN_EVALUATE_SPEEDUP = 5.0
MIN_DYNAMIC_SPEEDUP = 2.0
MIN_ALLOCATOR_SPEEDUP = 5.0

_results: Dict[str, dict] = {}


def _flush_results() -> None:
    """Merge this bench's sections into BENCH_perf.json.

    Read-modify-write: every bench owns a fixed set of top-level keys
    in the shared file and replaces only those, so running one bench
    never clobbers another's numbers.  The full registry:

    ==================  =============================================
    key                 owner
    ==================  =============================================
    ``evaluate``        this bench (warm vs cold cache hit)
    ``dynamic``         this bench (vDNN_dyn probe-ladder reuse)
    ``schedule``        this bench (admission-ladder cache reuse)
    ``allocator``       this bench (bisect pool vs linear scan)
    ``cache``           this bench (sweep-cache hit statistics)
    ``core_speed``      ``bench_core_speed.py`` (compiled-plan core
                        vs the vendored pre-overhaul reference)
    ``obs_overhead``    ``bench_obs_overhead.py`` (instrumented vs
                        no-op runs)
    ``serving``         ``bench_ext_serving.py`` (SLO attainment,
                        tail latency, goodput)
    ``cluster``         ``bench_ext_cluster.py`` (topology scaling
                        efficiency, fleet utilization/fairness)
    ==================  =============================================

    A new bench must claim a fresh key and follow the same
    read-modify-write idiom (see ``bench_core_speed._flush_results``).
    """
    payload = {}
    if RESULTS_PATH.exists():
        try:
            payload = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            payload = {}
    payload.update(_results)
    payload["cache"] = get_cache().stats.snapshot()
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")


# ----------------------------------------------------------------------
# 1. evaluate: cold simulation vs warm cache hit
# ----------------------------------------------------------------------
def measure_evaluate() -> dict:
    from repro.core import evaluate

    configure_cache()
    network = build("vgg16", 64)

    start = time.perf_counter()
    cold_result = evaluate(network, PAPER_SYSTEM, policy="all", algo="m")
    cold = time.perf_counter() - start

    # Median of several warm reads: a hit is unpickling one blob.
    warm_times = []
    for _ in range(5):
        start = time.perf_counter()
        warm_result = evaluate(network, PAPER_SYSTEM, policy="all", algo="m")
        warm_times.append(time.perf_counter() - start)
    warm = sorted(warm_times)[len(warm_times) // 2]

    assert warm_result == cold_result, "cache hit must be value-equal"
    section = {"cold_s": cold, "warm_s": warm, "speedup": cold / warm}
    _results["evaluate"] = section
    return section


def test_evaluate_warm_cache_speedup():
    section = measure_evaluate()
    _flush_results()
    assert section["speedup"] >= MIN_EVALUATE_SPEEDUP, (
        f"warm evaluate only {section['speedup']:.1f}x faster than cold "
        f"(need >= {MIN_EVALUATE_SPEEDUP}x)"
    )


# ----------------------------------------------------------------------
# 2. vDNN_dyn: profiling ladder with cold vs warmed probe cache
# ----------------------------------------------------------------------
def measure_dynamic() -> dict:
    from repro.core.dynamic import plan_dynamic

    network = build("vgg16", 128)

    configure_cache()
    start = time.perf_counter()
    cold_plan = plan_dynamic(network, PAPER_SYSTEM)
    cold = time.perf_counter() - start

    # Second planning run: every probe the ladder issues is now a hit.
    start = time.perf_counter()
    warm_plan = plan_dynamic(network, PAPER_SYSTEM)
    warm = time.perf_counter() - start

    assert warm_plan.result == cold_plan.result
    section = {"cold_s": cold, "warm_s": warm, "speedup": cold / warm}
    _results["dynamic"] = section
    return section


def test_dynamic_profiling_speedup():
    section = measure_dynamic()
    _flush_results()
    assert section["speedup"] >= MIN_DYNAMIC_SPEEDUP, (
        f"warm dyn planning only {section['speedup']:.1f}x faster than cold "
        f"(need >= {MIN_DYNAMIC_SPEEDUP}x)"
    )


# ----------------------------------------------------------------------
# 3. multi-tenant schedule: admission ladder reuse across runs
# ----------------------------------------------------------------------
def measure_schedule() -> dict:
    from repro.sched import Job, schedule_jobs

    jobs = [
        Job("alexnet#0", "alexnet", 64, iterations=20),
        Job("googlenet#1", "googlenet", 64, iterations=20),
        Job("alexnet#2", "alexnet", 32, iterations=20),
        Job("vgg16#3", "vgg16", 32, iterations=20),
    ]

    configure_cache()
    start = time.perf_counter()
    cold_result = schedule_jobs(jobs, system=PAPER_SYSTEM,
                                policy="best_fit", budget_bytes=12 << 30)
    cold = time.perf_counter() - start

    start = time.perf_counter()
    warm_result = schedule_jobs(jobs, system=PAPER_SYSTEM,
                                policy="best_fit", budget_bytes=12 << 30)
    warm = time.perf_counter() - start

    assert warm_result.makespan == cold_result.makespan
    section = {"cold_s": cold, "warm_s": warm, "speedup": cold / warm}
    _results["schedule"] = section
    return section


def test_schedule_warm_cache_speedup():
    section = measure_schedule()
    _flush_results()
    # The scheduler's own packing loop dominates once the ladder is
    # cached, so only a loose floor is asserted here; the ratio is
    # recorded for trend tracking.
    assert section["speedup"] >= 1.0, (
        f"warm schedule slower than cold ({section['speedup']:.2f}x)"
    )


# ----------------------------------------------------------------------
# 4. allocator: bisect-indexed pool vs linear-scan reference
# ----------------------------------------------------------------------
class LinearScanPool:
    """The pre-index allocator: dict free list, O(n) scans everywhere.

    Kept verbatim-in-spirit as the regression reference so the bench
    measures the index, not incidental differences: same alignment,
    same best-fit tie-break (smallest hole, then lowest offset), same
    coalescing semantics.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._free = {0: capacity}
        self._live = {}

    def alloc(self, nbytes: int):
        size = max(_align(nbytes), ALIGNMENT)
        best = None
        for offset, hole in self._free.items():
            if hole >= size and (
                best is None or (hole, offset) < (self._free[best], best)
            ):
                best = offset
        if best is None:
            raise MemoryError(size)
        hole = self._free.pop(best)
        if hole > size:
            self._free[best + size] = hole - size
        self._live[best] = size
        return best

    def free(self, offset: int) -> None:
        size = self._live.pop(offset)
        follower = self._free.pop(offset + size, None)
        if follower is not None:
            size += follower
        for prev_offset, prev_size in self._free.items():
            if prev_offset + prev_size == offset:
                del self._free[prev_offset]
                offset, size = prev_offset, prev_size + size
                break
        self._free[offset] = size


def _fragmented_workload(pool, count: int, block: int = 4096):
    """Allocate ``count`` blocks and free every other one: ~count/2 holes."""
    handles = [pool.alloc(block) for _ in range(count)]
    for handle in handles[::2]:
        pool.free(handle)
    return handles[1::2]


def _time_pairs(pool, pairs: int, rng: random.Random) -> float:
    sizes = [rng.choice((256, 512, 1024, 2048)) for _ in range(pairs)]
    start = time.perf_counter()
    for size in sizes:
        handle = pool.alloc(size)
        pool.free(handle)
    return (time.perf_counter() - start) / pairs


def measure_allocator(blocks: int = 20_000) -> dict:
    # ~blocks/2 live blocks and ~blocks/2 free holes in each pool.
    capacity = blocks * 4096 * 2

    linear = LinearScanPool(capacity)
    _fragmented_workload(linear, blocks)
    linear_per_pair = _time_pairs(linear, 200, random.Random(7))

    indexed = PoolAllocator(capacity)
    live = [indexed.alloc(4096) for _ in range(blocks)]
    for allocation in live[::2]:
        indexed.free(allocation)
    indexed_per_pair = _time_pairs(
        _IndexedAdapter(indexed), 2_000, random.Random(7))
    indexed.check_invariants()

    section = {
        "live_blocks": blocks // 2,
        "linear_us_per_pair": linear_per_pair * 1e6,
        "indexed_us_per_pair": indexed_per_pair * 1e6,
        "speedup": linear_per_pair / indexed_per_pair,
    }
    _results["allocator"] = section
    return section


class _IndexedAdapter:
    """Give PoolAllocator the same handle-free alloc/free shape."""

    def __init__(self, pool: PoolAllocator):
        self._pool = pool

    def alloc(self, nbytes: int):
        return self._pool.alloc(nbytes)

    def free(self, allocation) -> None:
        self._pool.free(allocation)


def test_allocator_indexed_speedup():
    section = measure_allocator()
    _flush_results()
    assert section["speedup"] >= MIN_ALLOCATOR_SPEEDUP, (
        f"indexed allocator only {section['speedup']:.1f}x faster than the "
        f"linear-scan reference (need >= {MIN_ALLOCATOR_SPEEDUP}x)"
    )


# ----------------------------------------------------------------------
def main() -> int:
    for name, fn in (("evaluate", measure_evaluate),
                     ("dynamic", measure_dynamic),
                     ("schedule", measure_schedule),
                     ("allocator", measure_allocator)):
        section = fn()
        print(f"{name:>10s}: " + "  ".join(
            f"{k}={v:,.4g}" for k, v in section.items()))
    _flush_results()
    print(f"wrote {RESULTS_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 5: per-layer memory usage of VGG-16 (256).

Per weighted layer: feature maps + workspace (left axis of the paper's
figure) vs. weights (right axis).  Checks the paper's observations —
intermediate data dwarf weights in feature extraction, weights
concentrate in the classifier, and every per-layer total is far below
the 28 GB network-wide allocation.
"""

from conftest import run_and_print
from repro.reporting import fig05_per_layer
from repro.zoo import build


def test_fig05_vgg16_256_per_layer(benchmark, capsys):
    network = build("vgg16", 256)
    result = run_and_print(benchmark, capsys, fig05_per_layer, network)
    assert len(result.rows) == 19  # 16 CONV + 3 FC

    def mbval(cell):
        return float(cell.replace(" MB", "").replace(",", ""))

    feature_rows = [r for r in result.rows if r[1] == "feature extraction"]
    classifier_rows = [r for r in result.rows if r[1] == "classifier"]
    # Feature-extraction intermediates >> their weights.
    assert sum(mbval(r[2]) for r in feature_rows) > \
        50 * sum(mbval(r[4]) for r in feature_rows)
    # Weights concentrate in the classifier.
    assert sum(mbval(r[4]) for r in classifier_rows) > \
        sum(mbval(r[4]) for r in feature_rows)

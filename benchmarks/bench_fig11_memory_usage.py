"""Figure 11: average and maximum GPU memory usage across all policies.

The paper's central memory result: for each of the six conventional
networks, sweep vDNN_all / vDNN_conv / vDNN_dyn / baseline under
memory-optimal and performance-optimal algorithms.  Asserted shape:

* vDNN_all(m) has the smallest average usage of every configuration;
* baseline cannot train VGG-16 (128) with performance-optimal
  algorithms nor VGG-16 (256) at all, while vDNN_dyn trains everything;
* average savings of vDNN_all(m) fall in the paper's 73%-98% band.
"""

import os

from conftest import run_and_print
from repro.reporting import fig11_memory_usage

#: Worker processes for the policy sweep (results are bit-identical to
#: a serial run; override with REPRO_JOBS=1 to force serial).
JOBS = int(os.environ.get("REPRO_JOBS", "2") or "1")


def _mb(cell):
    return float(cell.replace(" MB", "").replace(",", ""))


def test_fig11_memory_usage(benchmark, capsys):
    result = run_and_print(benchmark, capsys, fig11_memory_usage, jobs=JOBS)
    by_net = {}
    for network, config, avg, mx, savings, trainable in result.rows:
        by_net.setdefault(network, {})[config.rstrip("*")] = {
            "avg": _mb(avg), "max": _mb(mx), "trainable": trainable == "yes",
            "savings": None if savings == "-" else float(savings.rstrip("%")),
        }

    for network, configs in by_net.items():
        assert configs["all(m)"]["avg"] == min(c["avg"] for c in configs.values())
        assert configs["dyn"]["trainable"], f"{network}: dyn must train"

    assert not by_net["VGG-16(128)"]["base(p)"]["trainable"]
    assert not by_net["VGG-16(256)"]["base(m)"]["trainable"]
    assert not by_net["VGG-16(256)"]["base(p)"]["trainable"]
    assert by_net["VGG-16(256)"]["all(m)"]["trainable"]

    # Savings band (paper: 73%-98% average usage reduction; the savings
    # column measures the vDNN-managed pool, like the paper's prototype).
    for network, configs in by_net.items():
        saving = configs["all(m)"]["savings"]
        assert saving > 70.0, f"{network}: all(m) saving {saving}% too small"

"""Figure 6: per-layer latency and feature-map reuse distance, VGG-16.

The reuse distance — time between a layer's forward completion and its
own backward start — is the slack vDNN hides its PCIe transfers in.
The paper quotes >1200 ms for VGG-16 (64)'s first layer; the profile
must be monotonically decreasing toward the classifier.
"""

from conftest import run_and_print
from repro.reporting import fig06_reuse_distance
from repro.zoo import build


def _ms(cell):
    return float(cell.replace(" ms", "").replace(",", ""))


def test_fig06_reuse_distance_vgg16_64(benchmark, capsys):
    network = build("vgg16", 64)
    result = run_and_print(benchmark, capsys, fig06_reuse_distance, network)
    distances = [_ms(r[3]) for r in result.rows]
    # Monotonically non-increasing from the first layer inward.
    assert all(a >= b for a, b in zip(distances, distances[1:]))
    # First-layer reuse distance on the order of a second (paper: >1.2 s).
    assert distances[0] > 400

"""Ablation: pool-allocator placement strategy (best-fit vs first-fit).

The paper's prototype uses NVIDIA's cnmem, a best-fit pool.  vDNN's
layer-wise churn — short-lived workspaces interleaved with long-lived
feature maps of wildly different sizes — is exactly the workload where
placement strategy shows up as fragmentation.  This ablation replays a
synthetic trace shaped like one VGG iteration (big long-lived Y buffers,
transient WS buffers, staggered frees) on both strategies and compares
fragmentation and the largest satisfiable request afterwards.
"""

from repro.alloc import OutOfMemoryError, PoolAllocator
from repro.reporting import format_table, pct_str


def churn(strategy: str, capacity: int = 64 << 20):
    pool = PoolAllocator(capacity, strategy=strategy)
    long_lived = []
    # Forward-ish phase: persistent Ys + transient workspaces.
    for i in range(40):
        long_lived.append(pool.alloc((i % 7 + 1) * 300_000, tag=f"Y{i}"))
        ws = pool.alloc((i % 5 + 1) * 1_200_000, tag=f"WS{i}")
        pool.free(ws)
        if i % 3 == 2:  # offload-style early release of an older Y
            pool.free(long_lived.pop(0))
    # Backward-ish phase: gradients come and go, Ys retire in reverse.
    gradients = []
    while long_lived:
        gradients.append(pool.alloc(900_000, tag="G"))
        pool.free(long_lived.pop())
        if len(gradients) > 2:
            pool.free(gradients.pop(0))
    fragmentation = pool.fragmentation
    # Probe the largest single allocation the pool can still satisfy.
    low, high = 0, pool.free_bytes
    while high - low > 4096:
        mid = (low + high) // 2
        try:
            block = pool.alloc(mid, tag="probe")
            pool.free(block)
            low = mid
        except OutOfMemoryError:
            high = mid
    return fragmentation, low, pool


def test_ablation_allocator_strategy(benchmark, capsys):
    results = benchmark.pedantic(
        lambda: {s: churn(s) for s in ("best_fit", "first_fit")},
        rounds=1, iterations=1,
    )
    rows = []
    for strategy, (frag, largest, pool) in results.items():
        rows.append([strategy, pct_str(frag),
                     f"{largest / (1 << 20):.1f} MB",
                     f"{pool.free_bytes / (1 << 20):.1f} MB"])
    with capsys.disabled():
        print("\n" + format_table(
            ["strategy", "fragmentation", "largest satisfiable", "free bytes"],
            rows,
            title="Ablation: pool placement strategy under vDNN-style churn",
        ) + "\n")
    for strategy, (frag, largest, pool) in results.items():
        pool.check_invariants()
        assert 0.0 <= frag < 1.0
        assert largest > 0

"""Figure 14: training throughput normalized to the oracular baseline.

Asserted shape, per the paper:

* static vDNN with memory-optimal algorithms loses heavily (paper:
  55-58% average loss) — ours must lose at least 30% on average;
* vDNN_dyn stays close to the baseline (paper: 97% average, 82% worst
  case) — ours must average above 90%;
* performance-optimal configurations beat their memory-optimal twins.
"""

import os

from conftest import run_and_print
from repro.reporting import fig14_performance

#: Worker processes for the policy sweep (results are bit-identical to
#: a serial run; override with REPRO_JOBS=1 to force serial).
JOBS = int(os.environ.get("REPRO_JOBS", "2") or "1")


def test_fig14_performance(benchmark, capsys):
    result = run_and_print(benchmark, capsys, fig14_performance, jobs=JOBS)
    by_net = {}
    for network, config, _, normalized in result.rows:
        by_net.setdefault(network, {})[config.rstrip("*")] = float(normalized)

    all_m = [c["all(m)"] for c in by_net.values()]
    dyn = [c["dyn"] for c in by_net.values()]
    assert sum(all_m) / len(all_m) < 0.7, "all(m) should lose heavily"
    assert sum(dyn) / len(dyn) > 0.9, "dyn should track the baseline"
    for network, configs in by_net.items():
        assert configs["all(p)"] >= configs["all(m)"], network
        assert configs["conv(p)"] >= configs["conv(m)"], network
        # conv hides transfers under longer kernels than all does.
        assert configs["conv(m)"] >= configs["all(m)"] * 0.95, network

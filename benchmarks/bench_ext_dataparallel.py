"""Extension: 1 GPU + vDNN vs N GPUs + baseline (Section I's trade).

Simonyan & Zisserman trained VGG-16 (256) by splitting it over four
GPUs, each holding a batch-64 replica.  vDNN's pitch is doing it on
*one* card.  This bench puts both options on one table: hardware cost,
trainability, and images/second.
"""

from repro.core import evaluate, simulate_data_parallel
from repro.hw import PAPER_SYSTEM
from repro.reporting import format_table
from repro.zoo import build


def comparison():
    network = build("vgg16", 256)
    rows = []
    for num_gpus in (1, 2, 4):
        report = simulate_data_parallel(network, num_gpus, PAPER_SYSTEM)
        rows.append([
            f"{num_gpus} GPU(s), baseline",
            report.per_gpu_batch,
            "yes" if report.per_gpu_trainable else "NO",
            f"{report.images_per_second:,.0f}",
        ])
    dyn = evaluate(network, policy="dyn")
    ips = network.batch_size / dyn.total_time if dyn.total_time else 0
    rows.append(["1 GPU, vDNN_dyn", network.batch_size,
                 "yes" if dyn.trainable else "NO", f"{ips:,.0f}"])
    return rows


def test_ext_data_parallel_vs_vdnn(benchmark, capsys):
    rows = benchmark.pedantic(comparison, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + format_table(
            ["configuration", "per-GPU batch", "trainable", "images/s"],
            rows,
            title="Extension: VGG-16 (256) — multi-GPU baseline vs 1-GPU vDNN",
        ) + "\n")
    assert rows[0][2] == "NO"    # 1 GPU baseline cannot
    assert rows[2][2] == "yes"   # 4 GPUs can (the paper's reference point)
    assert rows[3][2] == "yes"   # 1 GPU + vDNN can too
    # One vDNN GPU delivers (nearly) a 4-GPU cluster's per-card rate:
    four_gpu_ips = float(rows[2][3].replace(",", ""))
    vdnn_ips = float(rows[3][3].replace(",", ""))
    assert vdnn_ips > four_gpu_ips / 4 * 0.85

"""Figure 9: offload/prefetch overlap on the two CUDA streams.

Reconstructs the paper's execution-timeline cartoon on a real simulated
run of a small linear network: offloads overlap their own layer's
forward kernel, prefetches overlap backward kernels, and the compute
stream stalls only where a transfer outlives its overlapped kernel.
"""

from conftest import run_and_print
from repro.graph import NetworkBuilder
from repro.reporting import fig09_timeline
from repro.sim import EventKind, MEMORY_STREAM


def linear_network():
    return (
        NetworkBuilder("fig9-linear", (32, 64, 56, 56))
        .conv(64, kernel=3, pad=1, name="conv_1")
        .conv(64, kernel=3, pad=1, name="conv_2")
        .conv(64, kernel=3, pad=1, name="conv_3")
        .fc(10).softmax().build()
    )


def test_fig09_two_stream_timeline(benchmark, capsys):
    network = linear_network()
    result = run_and_print(benchmark, capsys, fig09_timeline, network)
    assert any(MEMORY_STREAM in str(row[0]) for row in result.rows)
    # The ASCII timeline itself is in the notes.
    assert "OFF" in result.notes[0] and "PRE" in result.notes[0]

"""Ablation (DESIGN.md 5.2): the CONV-bounded prefetch search window.

Figure 10 bounds the prefetch search at the previous CONV layer so data
is never fetched "too far away in the future".  Disabling the bound
prefetches as early as possible: correctness survives, but prefetched
buffers camp in GPU memory again, raising peak usage — exactly the
pitfall the paper designed around.
"""

from repro.core import AlgoConfig, TransferPolicy, simulate_vdnn
from repro.hw import PAPER_SYSTEM
from repro.reporting import format_table, gb_str
from repro.zoo import build


def window_ablation(network):
    algos = AlgoConfig.memory_optimal(network)
    policy = TransferPolicy.vdnn_all()
    bounded = simulate_vdnn(network, PAPER_SYSTEM, policy, algos)
    unbounded = simulate_vdnn(network, PAPER_SYSTEM, policy, algos,
                              bounded_prefetch_window=False)
    return bounded, unbounded


def test_ablation_prefetch_window(benchmark, capsys):
    network = build("vgg16", 64)
    bounded, unbounded = benchmark.pedantic(
        window_ablation, args=(network,), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n" + format_table(
            ["variant", "max usage", "avg usage"],
            [["CONV-bounded window (paper Fig. 10)",
              gb_str(bounded.max_usage_bytes), gb_str(bounded.avg_usage_bytes)],
             ["unbounded (prefetch ASAP)",
              gb_str(unbounded.max_usage_bytes), gb_str(unbounded.avg_usage_bytes)]],
            title="Ablation: prefetch search window",
        ) + "\n")
    assert unbounded.avg_usage_bytes >= bounded.avg_usage_bytes

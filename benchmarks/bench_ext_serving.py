"""Extension: online serving — tail latency, SLO attainment, goodput.

One 3-model multiplex (vgg16 + googlenet + alexnet, the acceptance
scenario) drained twice, once with every model classically resident and
once fully demand-layered, so the BENCH record captures the tradeoff
the serving subsystem exists to quantify: layering cuts the pool peak
by roughly the resident weights while inflating p99 by the unhidden
DMA.  Numbers land in ``BENCH_perf.json`` under the ``"serving"`` key
(read-modify-write — other benches own their own keys) for CI's
perf-smoke job to archive.
"""

import json
from pathlib import Path

from repro.reporting import format_table, mb_str, ms_str, pct_str
from repro.serve import (ArrivalSpec, ServeConfig, fleet_stats, model_stats,
                         parse_models, simulate_serving)

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: The acceptance multiplex: one heavyweight, one featherweight, one
#: FC-heavy model sharing a 4 GiB pool at a sustainable rate.
MODELS = "vgg16,googlenet,alexnet"
ARRIVALS = "poisson:rate=60,seed=7"
REQUESTS = 300
BUDGET = 4 * (1 << 30)
SLO_SECONDS = 0.25


def _flush_results(section: dict) -> None:
    """Merge this bench's section into BENCH_perf.json (RMW)."""
    payload = {}
    if RESULTS_PATH.exists():
        try:
            payload = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            payload = {}
    payload["serving"] = section
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def serve_once(residency: str) -> dict:
    config = ServeConfig(
        models=tuple(parse_models(MODELS)),
        arrivals=ArrivalSpec.parse(ARRIVALS),
        requests=REQUESTS,
        budget_bytes=BUDGET,
        slo_seconds=SLO_SECONDS,
        residency=residency,
    )
    result = simulate_serving(config)
    fleet = fleet_stats(result)
    p99 = {spec.name: model_stats(result, spec.name)["p99"]
           for spec in config.models}
    return {
        "residency": residency,
        "completed": int(fleet["completed"]),
        "shed": int(fleet["shed"]),
        "rejected": int(fleet["rejected"]),
        "slo_attainment": round(fleet["slo_attainment"], 6),
        "goodput_rps": round(fleet["goodput_rps"], 3),
        "throughput_rps": round(fleet["throughput_rps"], 3),
        "p99_seconds": {name: round(value, 6)
                        for name, value in sorted(p99.items())},
        "pool_peak_bytes": int(fleet["pool_peak_bytes"]),
        "cold_starts": int(fleet["cold_starts"]),
    }


def serving_profile() -> dict:
    return {policy: serve_once(policy) for policy in ("resident", "layered")}


def test_ext_serving(benchmark, capsys):
    section = benchmark.pedantic(serving_profile, rounds=1, iterations=1)
    _flush_results(section)
    rows = [
        [
            stats["residency"],
            f"{stats['completed']}/{REQUESTS}",
            pct_str(stats["slo_attainment"]),
            f"{stats['goodput_rps']:,.1f} req/s",
            ms_str(max(stats["p99_seconds"].values())),
            mb_str(stats["pool_peak_bytes"]),
        ]
        for stats in section.values()
    ]
    with capsys.disabled():
        print("\n" + format_table(
            ["residency", "done", "SLO", "goodput", "worst p99",
             "pool peak"],
            rows,
            title=(f"Extension: serving {MODELS} @ {ARRIVALS}, "
                   f"SLO {SLO_SECONDS * 1e3:.0f} ms"),
        ) + "\n")

    resident, layered = section["resident"], section["layered"]
    # Both policies keep the event loop live and complete the stream.
    assert resident["completed"] + resident["shed"] + resident["rejected"] \
        == REQUESTS
    assert layered["completed"] > 0
    # The tradeoff the subsystem quantifies: layering trims the memory
    # high-water (no resident weights) at bounded p99 inflation.
    assert layered["pool_peak_bytes"] < resident["pool_peak_bytes"]
    worst_resident = max(resident["p99_seconds"].values())
    worst_layered = max(layered["p99_seconds"].values())
    assert worst_layered < worst_resident * 20

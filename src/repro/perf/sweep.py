"""Parallel sweep executor: fan independent simulation points across processes.

A sweep is a list of :class:`SweepPoint` — each one simulation of a
(network, policy, algo, system) combination.  Points are independent, so
they fan out over a :class:`concurrent.futures.ProcessPoolExecutor`;
each worker returns ``(cache key, pickled IterationResult)`` and the
parent merges the blobs into its own content-addressed cache before
unpickling the ordered result list.  Downstream serial code (figure
tables, admission ladders) then reads every point as a cache hit, which
is what makes parallel output **bit-identical** to serial output: the
same simulator produced the same bytes, only the executing process
differed.

``jobs <= 1`` degrades to a plain serial loop with no pickling round
trip at all.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from .cache import cache_enabled, get_cache

#: Default worker count for parallel sweeps (1 = serial).
ENV_JOBS = "REPRO_JOBS"

#: Policies a sweep point accepts: the public ``evaluate`` policies plus
#: ``hybrid`` (sqrt(L) recompute), the admission ladder's last rung.
POINT_POLICIES = ("all", "conv", "comp", "dyn", "joint", "base", "none",
                  "hybrid")


@dataclass(frozen=True)
class SweepPoint:
    """One simulation point of a sweep.

    ``network`` is either a zoo key (with optional ``batch``) or an
    already-built :class:`~repro.graph.network.Network`; zoo keys are the
    cheap-to-pickle form preferred for cross-process sweeps.
    """

    network: Union[str, "object"]
    policy: str = "dyn"
    algo: str = "p"
    batch: Optional[int] = None
    system: Optional["object"] = None

    def __post_init__(self) -> None:
        if self.policy not in POINT_POLICIES:
            raise ValueError(
                f"policy must be one of {POINT_POLICIES}, got {self.policy!r}"
            )

    def build_network(self):
        if isinstance(self.network, str):
            from ..zoo import build

            return build(self.network, self.batch)
        return self.network


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``REPRO_JOBS``, else serial."""
    if jobs is None:
        jobs = int(os.environ.get(ENV_JOBS, "1") or "1")
    return max(1, jobs)


def point_key(point: SweepPoint) -> str:
    """The content-addressed cache key this point's result is stored under.

    Computed identically in workers and in the parent, which is the
    parity that lets a parallel warm-up serve later serial reads.
    """
    from ..core import cached as core_cached
    from ..core.algo_config import AlgoConfig
    from ..core.policy import TransferPolicy
    from ..hw.config import PAPER_SYSTEM

    network = point.build_network()
    system = point.system or PAPER_SYSTEM
    if point.policy == "dyn":
        return core_cached.dynamic_key(network, system)
    if point.policy == "joint":
        from ..core.joint import adopted_joint_key

        return adopted_joint_key(network, system)
    if point.policy == "hybrid":
        return core_cached.recompute_key(
            network, system, AlgoConfig.memory_optimal(network))
    algos = (AlgoConfig.memory_optimal(network) if point.algo == "m"
             else AlgoConfig.performance_optimal(network))
    if point.policy == "base":
        return core_cached.baseline_key(network, system, algos)
    policy = {"all": TransferPolicy.vdnn_all,
              "conv": TransferPolicy.vdnn_conv,
              "comp": TransferPolicy.vdnn_comp,
              "none": TransferPolicy.none}[point.policy]()
    return core_cached.vdnn_key(network, system, policy, algos)


def _simulate_point(point: SweepPoint):
    """Run one point through the (cache-aware) simulators."""
    from ..core.algo_config import AlgoConfig
    from ..core.api import evaluate
    from ..core.cached import cached_recompute
    from ..hw.config import PAPER_SYSTEM

    network = point.build_network()
    system = point.system or PAPER_SYSTEM
    if point.policy == "hybrid":
        return cached_recompute(
            network, system, AlgoConfig.memory_optimal(network))
    return evaluate(network, system, point.policy, point.algo)


def _worker_run_point(point: SweepPoint) -> Tuple[str, bytes]:
    """Process-pool entry: simulate and ship the result back as bytes."""
    result = _simulate_point(point)
    return point_key(point), pickle.dumps(result, pickle.HIGHEST_PROTOCOL)


def sweep(
    points: Sequence[SweepPoint],
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
) -> List:
    """Simulate every point, fanning out across ``jobs`` processes.

    Results come back in point order.  With ``jobs > 1`` each worker's
    pickled result is merged into the parent cache, so any subsequent
    serial evaluation of the same point is a cache hit.
    """
    points = list(points)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(points) <= 1:
        return [_simulate_point(p) for p in points]

    cache = get_cache() if cache_enabled(use_cache) else None
    # Points the parent cache already holds don't fan out at all.
    results: List = [None] * len(points)
    pending: List[int] = []
    for index, point in enumerate(points):
        hit = cache.get(point_key(point)) if cache is not None else None
        if hit is not None:
            results[index] = hit
        else:
            pending.append(index)

    if pending:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            for index, (key, blob) in zip(
                pending,
                pool.map(_worker_run_point, [points[i] for i in pending]),
            ):
                if cache is not None:
                    cache.put_blob(key, blob)
                results[index] = pickle.loads(blob)
    return results

"""Canonical, process-stable fingerprints for simulation points.

A *simulation point* is everything that determines an
:class:`~repro.core.executor.IterationResult`: the network (topology,
shapes, dtypes), the :class:`~repro.hw.config.SystemConfig`, the
transfer policy and the per-layer convolution-algorithm configuration.
Two points that would simulate identically must fingerprint identically
— across processes, interpreter restarts and ``PYTHONHASHSEED`` values —
so fingerprints are sha256 digests of *canonical JSON*: sorted keys,
no object identities, no ``repr`` of live objects, enums reduced to
their values, sets sorted.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, Optional

from ..graph.network import Network


def _canon(value: Any) -> Any:
    """Reduce ``value`` to JSON-serializable canonical form."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr-based JSON floats are deterministic in CPython >= 3.1.
        return value
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__name__, "value": _canon(value.value)}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((_canon(v) for v in value),
                      key=lambda v: json.dumps(v, sort_keys=True))
    if isinstance(value, dict):
        return {
            str(key): _canon(value[key])
            for key in sorted(value, key=str)
        }
    if isinstance(value, Network):
        return network_signature(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        body = {
            f.name: _canon(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if f.compare
        }
        body["__class__"] = type(value).__name__
        return body
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for fingerprinting"
    )


def network_signature(network: Network) -> dict:
    """Canonical description of a network's topology, shapes and dtypes.

    Built only from declared structure (layer parameters, wiring) and
    inferred facts (output/weight specs, storage aliasing, regions) —
    never from object identities — so two independently constructed
    identical networks produce equal signatures.
    """
    return {
        "__class__": "Network",
        "name": network.name,
        "layers": [
            {
                "layer": _canon(node.layer),
                "output": _canon(node.output_spec),
                "weight": _canon(node.weight_spec),
                "bias": _canon(node.bias_spec),
                "producers": list(node.producers),
                "storage_index": node.storage_index,
                "weight_root": node.weight_root,
                "feature_extraction": node.is_feature_extraction,
            }
            for node in network
        ],
    }


def canonical_json(value: Any) -> str:
    """The canonical JSON text hashed by :func:`fingerprint`."""
    return json.dumps(_canon(value), sort_keys=True, separators=(",", ":"))


def fingerprint(value: Any) -> str:
    """sha256 hex digest of ``value``'s canonical JSON."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


def fingerprint_network(network: Network) -> str:
    """The network's content digest, memoized on the (immutable) instance.

    Point keys are computed on every cache lookup, so they must cost far
    less than the simulation they stand in for; canonicalizing a deep
    network's full signature each time would not.  The digest itself is
    still pure content — two independently built identical networks get
    equal digests, each paying the canonicalization once.
    """
    cached = getattr(network, "_repro_fingerprint", None)
    if cached is None:
        cached = fingerprint(network_signature(network))
        network._repro_fingerprint = cached
    return cached


def fingerprint_point(
    kind: str,
    network: Network,
    system: Any,
    policy: Any = None,
    algos: Any = None,
    extra: Optional[dict] = None,
) -> str:
    """Fingerprint one simulation point.

    ``kind`` namespaces the simulator entry (``"vdnn"``, ``"baseline"``,
    ``"recompute"``, ``"dynamic"``); ``extra`` carries any additional
    simulator parameters (e.g. a recompute segment count).
    """
    return fingerprint({
        "kind": kind,
        "network": fingerprint_network(network),
        "system": system,
        "policy": policy,
        "algos": algos,
        "extra": extra,
    })

"""Performance layer: content-addressed simulation cache + parallel sweeps.

Every sweep in the repo — ``evaluate()``/``compare_policies()``, the
vDNN_dyn profiling ladder, the multi-tenant admission ladder and the
figure benchmarks — funnels through the same simulation points.  This
package makes those points fast twice over:

* :mod:`repro.perf.fingerprint` canonically fingerprints a
  (network, system, policy, algorithms) point with sha256 over sorted
  JSON, so identical points hash identically across processes and runs;
* :mod:`repro.perf.cache` keys pickled :class:`IterationResult` blobs on
  those fingerprints (in-memory LRU + optional on-disk store), so a
  point is simulated at most once;
* :mod:`repro.perf.sweep` fans independent points out across worker
  processes and merges their results back into the parent's cache.

Environment knobs:

* ``REPRO_NO_CACHE=1``  — disable the cache (bit-identical fallback);
* ``REPRO_CACHE_SIZE``  — in-memory LRU capacity (entries, default 256);
* ``REPRO_CACHE_DIR``   — optional on-disk store directory;
* ``REPRO_JOBS``        — default worker count for parallel sweeps.
"""

from .cache import (
    CacheStats,
    SimulationCache,
    cache_enabled,
    configure_cache,
    get_cache,
    set_cache,
)
from .fingerprint import (
    canonical_json,
    fingerprint,
    fingerprint_network,
    fingerprint_point,
    network_signature,
)
from .sweep import SweepPoint, resolve_jobs, sweep

__all__ = [
    "CacheStats",
    "SimulationCache",
    "SweepPoint",
    "cache_enabled",
    "canonical_json",
    "configure_cache",
    "fingerprint",
    "fingerprint_network",
    "fingerprint_point",
    "get_cache",
    "network_signature",
    "resolve_jobs",
    "set_cache",
    "sweep",
]

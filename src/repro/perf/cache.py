"""Content-addressed result cache for simulation points.

The cache stores **pickled** :class:`IterationResult` blobs keyed by
:func:`repro.perf.fingerprint.fingerprint_point` digests.  Storing bytes
rather than live objects buys two properties for free:

* every hit returns a *fresh* deep copy, so callers (e.g. vDNN_dyn's
  relabeling of the adopted result) can mutate what they get back
  without corrupting the cache;
* every value is serialization-validated at ``put`` time, which is the
  same contract the cross-process sweep executor needs.

In-memory entries live in an LRU ordered dict; an optional on-disk store
(one file per fingerprint) persists results across runs.  Both layers
are controlled by environment variables so benchmarks and tests can be
run with caching disabled (``REPRO_NO_CACHE=1``) to prove results are
bit-identical either way.
"""

from __future__ import annotations

import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

#: Disable all caching when set to a non-empty, non-"0" value.
ENV_DISABLE = "REPRO_NO_CACHE"
#: In-memory LRU capacity (number of entries).
ENV_SIZE = "REPRO_CACHE_SIZE"
#: Optional directory for the on-disk store.
ENV_DIR = "REPRO_CACHE_DIR"

DEFAULT_MAX_ENTRIES = 256


@dataclass
class CacheStats:
    """Hit/miss accounting, exposed for tests and the perf benchmark."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    stores: int = 0
    evictions: int = 0

    def reset(self) -> None:
        self.hits = self.misses = self.disk_hits = 0
        self.stores = self.evictions = 0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "stores": self.stores,
            "evictions": self.evictions,
        }


class SimulationCache:
    """LRU cache of pickled simulation results, with optional disk tier."""

    def __init__(
        self,
        max_entries: Optional[int] = None,
        disk_dir: Optional[str] = None,
        obs: Optional[Any] = None,
    ):
        if max_entries is None:
            max_entries = int(os.environ.get(ENV_SIZE, DEFAULT_MAX_ENTRIES))
        if max_entries <= 0:
            raise ValueError("cache max_entries must be positive")
        if disk_dir is None:
            disk_dir = os.environ.get(ENV_DIR) or None
        self.max_entries = max_entries
        self.disk_dir = disk_dir
        self._blobs: "OrderedDict[str, bytes]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()
        #: Optional ``repro.obs.Instrumentation``; mirrors ``stats`` into
        #: the ``repro_cache_events_total`` counter family.  Assignable
        #: after construction (``cache.obs = obs``) so the process-wide
        #: cache can be instrumented per run.
        self.obs = obs

    # ------------------------------------------------------------------
    def _disk_path(self, key: str) -> str:
        return os.path.join(self.disk_dir, f"{key}.pkl")

    def get_blob(self, key: str) -> Optional[bytes]:
        """The raw pickled entry for ``key``, or None on a miss."""
        with self._lock:
            blob = self._blobs.get(key)
            if blob is not None:
                self._blobs.move_to_end(key)
                self.stats.hits += 1
                if self.obs is not None:
                    self.obs.cache_event("hit")
                return blob
        if self.disk_dir:
            path = self._disk_path(key)
            if os.path.exists(path):
                with open(path, "rb") as handle:
                    blob = handle.read()
                self.put_blob(key, blob, write_disk=False)
                with self._lock:
                    self.stats.disk_hits += 1
                    if self.obs is not None:
                        self.obs.cache_event("disk_hit")
                return blob
        with self._lock:
            self.stats.misses += 1
            if self.obs is not None:
                self.obs.cache_event("miss")
        return None

    def put_blob(self, key: str, blob: bytes, write_disk: bool = True) -> None:
        """Insert an already-pickled entry (used by the sweep executor)."""
        with self._lock:
            self._blobs[key] = blob
            self._blobs.move_to_end(key)
            self.stats.stores += 1
            if self.obs is not None:
                self.obs.cache_event("store")
            while len(self._blobs) > self.max_entries:
                self._blobs.popitem(last=False)
                self.stats.evictions += 1
                if self.obs is not None:
                    self.obs.cache_event("eviction")
        if write_disk and self.disk_dir:
            os.makedirs(self.disk_dir, exist_ok=True)
            path = self._disk_path(key)
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Any]:
        """A fresh copy of the cached value, or None on a miss."""
        blob = self.get_blob(key)
        return pickle.loads(blob) if blob is not None else None

    def put(self, key: str, value: Any) -> None:
        self.put_blob(key, pickle.dumps(value, pickle.HIGHEST_PROTOCOL))

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        """Cached value for ``key``, computing and storing on a miss.

        On a miss the *live* computed object is returned (not a pickle
        round-trip) so the cold path is bit-identical to no caching.
        """
        cached = self.get(key)
        if cached is not None:
            return cached
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> None:
        with self._lock:
            self._blobs.clear()
            self.stats.reset()

    def __len__(self) -> int:
        with self._lock:
            return len(self._blobs)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._blobs


# ----------------------------------------------------------------------
# Process-wide default cache
# ----------------------------------------------------------------------
_cache: Optional[SimulationCache] = None
_cache_lock = threading.Lock()


def get_cache() -> SimulationCache:
    """The process-wide simulation cache (created lazily)."""
    global _cache
    with _cache_lock:
        if _cache is None:
            _cache = SimulationCache()
        return _cache


def set_cache(cache: Optional[SimulationCache]) -> None:
    """Replace the process-wide cache (None = recreate lazily)."""
    global _cache
    with _cache_lock:
        _cache = cache


def configure_cache(
    max_entries: Optional[int] = None, disk_dir: Optional[str] = None
) -> SimulationCache:
    """Install and return a fresh process-wide cache."""
    cache = SimulationCache(max_entries=max_entries, disk_dir=disk_dir)
    set_cache(cache)
    return cache


def cache_enabled(use_cache: Optional[bool] = None) -> bool:
    """Whether caching applies: explicit flag wins, then the environment.

    ``use_cache=False`` (or ``REPRO_NO_CACHE=1``) restores the exact
    pre-cache behavior: every call simulates from scratch.
    """
    if use_cache is not None:
        return use_cache
    return os.environ.get(ENV_DISABLE, "0") in ("", "0")

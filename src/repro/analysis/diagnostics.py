"""Structured diagnostics shared by every analysis pass.

Each finding is one :class:`Diagnostic`: a rule id from the
:data:`RULES` catalog, a severity, a human-readable message, and
references back to the evidence (trace ops, timeline events, source
locations).  Passes append diagnostics to a :class:`Report`, which
renders them as text for humans or JSON for CI, and decides the process
exit status (any ERROR fails the gate).

Rule-id namespaces:

* ``HB0xx`` — happens-before races (:mod:`repro.analysis.hb`);
* ``MS1xx`` — memory-safety violations (:mod:`repro.analysis.safety`);
* ``MT3xx`` — multi-tenant shared-pool schedules
  (:func:`repro.analysis.verify.verify_schedule`);
* ``LINT2xx`` — repo source lint (:mod:`repro.analysis.lint`).

A diagnostic can be suppressed in source with ``# repro: allow(RULE)``
(lint rules) or filtered by rule id when rendering (see
:meth:`Report.without`); suppression is deliberate and visible, never
silent.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


class Severity(enum.Enum):
    """How bad a finding is; ERROR fails the verify/lint gates."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 10, "warning": 20, "error": 30}[self.value]


#: rule id -> (default severity, one-line description).  docs/analysis.md
#: renders this catalog; keep the two in sync.
RULES: Dict[str, Tuple[Severity, str]] = {
    # -- happens-before races ------------------------------------------
    "HB001": (Severity.ERROR,
              "conflicting accesses to one buffer on different streams "
              "with no happens-before ordering"),
    "HB002": (Severity.ERROR,
              "pool block released before its offload transfer is "
              "guaranteed complete (missing end-of-layer sync)"),
    "HB003": (Severity.ERROR,
              "backward kernel reads a prefetched buffer with no "
              "ordering edge from the prefetch transfer (missing "
              "prefetch sync)"),
    "HB004": (Severity.WARNING,
              "prefetch issued outside the Fig. 10 CONV-bounded search "
              "window (X restored too far ahead of its first use)"),
    # -- memory safety --------------------------------------------------
    "MS101": (Severity.ERROR,
              "buffer used (kernel or DMA) while it has no live pool "
              "allocation (use-after-release or use-before-alloc)"),
    "MS102": (Severity.ERROR,
              "buffer freed while not live (double free)"),
    "MS103": (Severity.ERROR,
              "non-persistent block still live at iteration end (leak)"),
    "MS104": (Severity.ERROR,
              "allocation overlaps bytes another live buffer holds, or "
              "bytes an in-flight transfer may still be reading"),
    "MS105": (Severity.ERROR,
              "feature map released before its last forward consumer "
              "ran, or discarded without offload while backward still "
              "needs it (refcount gate of Fig. 3 violated)"),
    # -- multi-tenant shared pool ---------------------------------------
    "MT301": (Severity.ERROR,
              "shared-pool occupancy exceeds the memory budget"),
    "MT302": (Severity.ERROR,
              "one job's residency intervals overlap in time"),
    "MT303": (Severity.ERROR,
              "pool bytes still live after every job finished "
              "(job allocation leaked)"),
    "MT304": (Severity.ERROR,
              "inconsistent job record (finish before admit, rejected "
              "job with residency, finished job without admission)"),
    # -- source lint ----------------------------------------------------
    "LINT201": (Severity.ERROR,
                "json.dumps without sort_keys=True in a fingerprint "
                "path (cache keys must be canonical)"),
    "LINT202": (Severity.ERROR,
                "json.dumps with default=str/repr (enums would "
                "serialize by name/repr, not by value)"),
    "LINT203": (Severity.ERROR,
                "wall-clock or unseeded randomness in a pure "
                "simulation module (breaks replay/caching)"),
    "LINT204": (Severity.ERROR,
                "float == / != on a byte/latency quantity (compare "
                "with a tolerance, or against a literal-zero sentinel)"),
}


def rule_severity(rule: str) -> Severity:
    return RULES[rule][0]


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis pass."""

    rule: str
    severity: Severity
    message: str
    subject: str = ""              # network/config label, or file for lint
    location: str = ""             # "file:line" for lint findings
    refs: Tuple[str, ...] = ()     # evidence: trace-op / event references

    @classmethod
    def make(cls, rule: str, message: str, subject: str = "",
             location: str = "", refs: Iterable[str] = ()) -> "Diagnostic":
        """Build a diagnostic with the rule's catalog severity."""
        return cls(rule=rule, severity=rule_severity(rule), message=message,
                   subject=subject, location=location, refs=tuple(refs))

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "subject": self.subject,
            "location": self.location,
            "refs": list(self.refs),
        }

    def render(self) -> str:
        where = f"{self.location}: " if self.location else ""
        refs = f"  [{'; '.join(self.refs)}]" if self.refs else ""
        return (f"{self.severity.value.upper():7s} {self.rule} "
                f"{where}{self.message}{refs}")


@dataclass
class Report:
    """Diagnostics from one analysis run over one subject."""

    subject: str = ""
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, rule: str, message: str, location: str = "",
            refs: Iterable[str] = ()) -> Diagnostic:
        diagnostic = Diagnostic.make(rule, message, subject=self.subject,
                                     location=location, refs=refs)
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    # ------------------------------------------------------------------
    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when the subject passed the gate (no ERROR findings)."""
        return not self.errors

    def by_rule(self, rule: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    def without(self, *rules: str) -> "Report":
        """A copy with the given rule ids filtered out (suppression)."""
        return Report(self.subject, [
            d for d in self.diagnostics if d.rule not in rules
        ])

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for diagnostic in self.diagnostics:
            counts[diagnostic.rule] = counts.get(diagnostic.rule, 0) + 1
        return counts

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def render_text(self) -> str:
        status = "ok" if self.ok else f"FAIL ({len(self.errors)} error(s))"
        lines = [f"{self.subject or '(unnamed)'}: {status}"]
        for diagnostic in sorted(
                self.diagnostics,
                key=lambda d: (-d.severity.rank, d.rule, d.location)):
            lines.append("  " + diagnostic.render())
        return "\n".join(lines)


def render_reports_json(reports: List[Report]) -> str:
    """Aggregate JSON for a batch of reports (the ``--format json`` CLI)."""
    payload = {
        "ok": all(r.ok for r in reports),
        "errors": sum(len(r.errors) for r in reports),
        "warnings": sum(len(r.warnings) for r in reports),
        "reports": [r.to_dict() for r in reports],
    }
    return json.dumps(payload, indent=2, sort_keys=True)

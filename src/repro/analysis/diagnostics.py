"""Structured diagnostics shared by every analysis pass.

Each finding is one :class:`Diagnostic`: a rule id from the
:data:`RULES` catalog, a severity, a human-readable message, and
references back to the evidence (trace ops, timeline events, source
locations).  Passes append diagnostics to a :class:`Report`, which
renders them as text for humans or JSON for CI, and decides the process
exit status (any ERROR fails the gate).

Rule-id namespaces:

* ``HB0xx`` — happens-before races (:mod:`repro.analysis.hb`);
* ``MS1xx`` — memory-safety violations (:mod:`repro.analysis.safety`);
* ``MT3xx`` — multi-tenant shared-pool schedules
  (:func:`repro.analysis.verify.verify_schedule`);
* ``LINT2xx`` — repo source lint (:mod:`repro.analysis.lint`);
* ``SP4xx`` — static plan proofs (:mod:`repro.analysis.static_plan`):
  invariants proved over a :class:`~repro.core.plan.CompiledPlan` (or a
  serve :class:`~repro.serve.layering.ServicePlan` / recompute
  :class:`~repro.core.recompute.CheckpointPlan`) *before* any
  simulation runs.

A diagnostic can be suppressed in source with ``# repro: allow(RULE)``
(lint rules) or filtered by rule id when rendering (see
:meth:`Report.without`); suppression is deliberate and visible, never
silent.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


class Severity(enum.Enum):
    """How bad a finding is; ERROR fails the verify/lint gates."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 10, "warning": 20, "error": 30}[self.value]


#: rule id -> (default severity, one-line description).  docs/analysis.md
#: renders this catalog; keep the two in sync.
RULES: Dict[str, Tuple[Severity, str]] = {
    # -- happens-before races ------------------------------------------
    "HB001": (Severity.ERROR,
              "conflicting accesses to one buffer on different streams "
              "with no happens-before ordering"),
    "HB002": (Severity.ERROR,
              "pool block released before its offload transfer is "
              "guaranteed complete (missing end-of-layer sync)"),
    "HB003": (Severity.ERROR,
              "backward kernel reads a prefetched buffer with no "
              "ordering edge from the prefetch transfer (missing "
              "prefetch sync)"),
    "HB004": (Severity.WARNING,
              "prefetch issued outside the Fig. 10 CONV-bounded search "
              "window (X restored too far ahead of its first use)"),
    # -- memory safety --------------------------------------------------
    "MS101": (Severity.ERROR,
              "buffer used (kernel or DMA) while it has no live pool "
              "allocation (use-after-release or use-before-alloc)"),
    "MS102": (Severity.ERROR,
              "buffer freed while not live (double free)"),
    "MS103": (Severity.ERROR,
              "non-persistent block still live at iteration end (leak)"),
    "MS104": (Severity.ERROR,
              "allocation overlaps bytes another live buffer holds, or "
              "bytes an in-flight transfer may still be reading"),
    "MS105": (Severity.ERROR,
              "feature map released before its last forward consumer "
              "ran, or discarded without offload while backward still "
              "needs it (refcount gate of Fig. 3 violated)"),
    # -- multi-tenant shared pool ---------------------------------------
    "MT301": (Severity.ERROR,
              "shared-pool occupancy exceeds the memory budget"),
    "MT302": (Severity.ERROR,
              "one job's residency intervals overlap in time"),
    "MT303": (Severity.ERROR,
              "pool bytes still live after every job finished "
              "(job allocation leaked)"),
    "MT304": (Severity.ERROR,
              "inconsistent job record (finish before admit, rejected "
              "job with residency, finished job without admission)"),
    # -- source lint ----------------------------------------------------
    "LINT201": (Severity.ERROR,
                "json.dumps without sort_keys=True in a fingerprint "
                "path (cache keys must be canonical)"),
    "LINT202": (Severity.ERROR,
                "json.dumps with default=str/repr (enums would "
                "serialize by name/repr, not by value)"),
    "LINT203": (Severity.ERROR,
                "wall-clock or unseeded randomness in a pure "
                "simulation module (breaks replay/caching)"),
    "LINT204": (Severity.ERROR,
                "float == / != on a byte/latency quantity (compare "
                "with a tolerance, or against a literal-zero sentinel)"),
    "LINT205": (Severity.ERROR,
                "per-iteration allocation (list/dict/set literal, "
                "comprehension, f-string, sorted()) inside a region "
                "marked '# repro: hot'"),
    "LINT206": (Severity.ERROR,
                "Network/Timeline reference retained in a cache-keyed "
                "or plan structure (would make WeakKeyDictionary "
                "entries immortal)"),
    "LINT207": (Severity.WARNING,
                "unused '# repro: allow(RULE)' suppression (the rule "
                "no longer fires on that line)"),
    "LINT208": (Severity.ERROR,
                "mutation of a CompiledPlan/StorageRecord field "
                "outside its constructor (plans are shared cache "
                "entries)"),
    # -- static plan proofs ---------------------------------------------
    "SP401": (Severity.WARNING,
              "statically computed peak usage exceeds the device "
              "budget (reports the exact first-violating step), or "
              "the pinned-host budget aborts the plan"),
    "SP402": (Severity.ERROR,
              "refcount gate of Fig. 3 violated in the plan: a feature "
              "map is released before its last forward consumer, "
              "discarded while backward needs it, or freed before its "
              "offload transfer is covered by a sync"),
    "SP403": (Severity.ERROR,
              "prefetch discipline of Fig. 10 / SIII-C violated: a "
              "restored buffer is read before its prefetch is synced, "
              "or (warning) the prefetch target lies outside the "
              "CONV-bounded search window"),
    "SP404": (Severity.ERROR,
              "release lists do not free every allocation exactly "
              "once: static leak, double free, or a release scheduled "
              "at the wrong backward step (use-after-free)"),
    "SP405": (Severity.ERROR,
              "recompute plan cannot re-materialize a dropped storage "
              "before its backward consumer (regeneration bottoms out "
              "at freed state, or the checkpoint partition is "
              "inconsistent)"),
    "SP406": (Severity.ERROR,
              "ServicePlan accounting inconsistent: residency/window/"
              "footprint/stall invariants of the demand-layering "
              "pipeline do not hold"),
    "SP407": (Severity.ERROR,
              "compressed-transfer model inconsistent: a record's wire "
              "size escapes (0, nbytes], disagrees with the cDMA "
              "sparsity model, or its DMA duration drops the engine "
              "latency"),
}


def rule_severity(rule: str) -> Severity:
    return RULES[rule][0]


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis pass."""

    rule: str
    severity: Severity
    message: str
    subject: str = ""              # network/config label, or file for lint
    location: str = ""             # "file:line" for lint findings
    refs: Tuple[str, ...] = ()     # evidence: trace-op / event references

    @classmethod
    def make(cls, rule: str, message: str, subject: str = "",
             location: str = "", refs: Iterable[str] = (),
             severity: "Severity" = None) -> "Diagnostic":
        """Build a diagnostic with the rule's catalog severity.

        ``severity`` overrides the catalog default for rules whose
        findings span severities (e.g. SP403's window violations are
        warnings, mirroring HB004, while its ordering violations are
        errors).  Overrides may only *lower* severity — an override
        above the catalog default would let a pass silently promote a
        documented warning into a gate failure.
        """
        default = rule_severity(rule)
        if severity is not None and severity.rank > default.rank:
            raise ValueError(
                f"severity override {severity.value} exceeds {rule}'s "
                f"catalog severity {default.value}")
        return cls(rule=rule, severity=severity or default, message=message,
                   subject=subject, location=location, refs=tuple(refs))

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "subject": self.subject,
            "location": self.location,
            "refs": list(self.refs),
        }

    def render(self) -> str:
        where = f"{self.location}: " if self.location else ""
        refs = f"  [{'; '.join(self.refs)}]" if self.refs else ""
        return (f"{self.severity.value.upper():7s} {self.rule} "
                f"{where}{self.message}{refs}")


@dataclass
class Report:
    """Diagnostics from one analysis run over one subject."""

    subject: str = ""
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, rule: str, message: str, location: str = "",
            refs: Iterable[str] = (),
            severity: Severity = None) -> Diagnostic:
        diagnostic = Diagnostic.make(rule, message, subject=self.subject,
                                     location=location, refs=refs,
                                     severity=severity)
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    # ------------------------------------------------------------------
    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when the subject passed the gate (no ERROR findings)."""
        return not self.errors

    def by_rule(self, rule: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    def without(self, *rules: str) -> "Report":
        """A copy with the given rule ids filtered out (suppression)."""
        return Report(self.subject, [
            d for d in self.diagnostics if d.rule not in rules
        ])

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for diagnostic in self.diagnostics:
            counts[diagnostic.rule] = counts.get(diagnostic.rule, 0) + 1
        return counts

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def render_text(self) -> str:
        status = "ok" if self.ok else f"FAIL ({len(self.errors)} error(s))"
        lines = [f"{self.subject or '(unnamed)'}: {status}"]
        for diagnostic in sorted(
                self.diagnostics,
                key=lambda d: (-d.severity.rank, d.rule, d.location)):
            lines.append("  " + diagnostic.render())
        return "\n".join(lines)


def render_reports_json(reports: List[Report]) -> str:
    """Aggregate JSON for a batch of reports (the ``--format json`` CLI).

    Exit-code contract (documented in docs/analysis.md): the CLI that
    prints this payload exits 0 iff ``payload["ok"]`` is true — i.e.
    non-zero whenever any ERROR finding exists, for both output
    formats.  ``rule_counts`` aggregates finding counts by rule id
    across every report, so CI can gate or trend on individual rules
    without re-walking ``reports``.
    """
    rule_counts: Dict[str, int] = {}
    for report in reports:
        for rule, count in report.counts().items():
            rule_counts[rule] = rule_counts.get(rule, 0) + count
    payload = {
        "ok": all(r.ok for r in reports),
        "errors": sum(len(r.errors) for r in reports),
        "warnings": sum(len(r.warnings) for r in reports),
        "rule_counts": rule_counts,
        "reports": [r.to_dict() for r in reports],
    }
    return json.dumps(payload, indent=2, sort_keys=True)

"""AST lint for the repo's reproducibility invariants (pass 3).

Run as ``python -m repro.analysis.lint [paths...]``.  Unlike the trace
passes, this one reads *source*, because the bugs it guards against are
invisible at runtime until a cache silently goes stale:

* **LINT201** — ``json.dumps`` without ``sort_keys=True`` inside a
  fingerprint path.  Fingerprints key the simulation result cache; dict
  ordering must never leak into them.
* **LINT202** — ``json.dumps(..., default=str)`` (or ``repr``): enums
  would serialize by their ``str()``/``repr()`` form instead of their
  stable ``.value``, so renaming a member would silently re-key caches.
* **LINT203** — wall-clock reads (``time.time()`` & friends) or
  unseeded module-level ``random`` calls inside a pure simulation
  module.  Simulated time must come from the simulation; host time or
  hidden RNG state breaks replay and cache hits.  ``random.Random(seed)``
  instances are fine.
* **LINT204** — ``==`` / ``!=`` between byte/latency quantities.  These
  are accumulated floats; exact comparison is only legitimate against a
  literal ``0``/``0.0``/``None`` sentinel (which is exempt).

A finding is suppressed by putting ``# repro: allow(RULE)`` on the
offending line.  Suppressions are visible in the diff; that is the
point.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import List, Sequence, Set

from .diagnostics import Diagnostic, Report, render_reports_json

#: Files whose json.dumps calls feed cache fingerprints (LINT201 scope).
FINGERPRINT_PATHS = (
    "perf/fingerprint.py",
    "perf/cache.py",
    "core/cached.py",
)

#: Packages whose modules must be pure functions of their inputs
#: (LINT203 scope).  ``numerics`` (host-side reference math) and
#: ``profiler`` (wall-clock by design) are deliberately out.
PURE_PACKAGES = ("sim", "alloc", "core", "sched", "kernels", "hw",
                 "graph", "perf")

#: Wall-clock entry points LINT203 rejects in pure modules.
_CLOCK_CALLS = {("time", "time"), ("time", "monotonic"),
                ("time", "perf_counter"), ("time", "process_time"),
                ("datetime", "now"), ("datetime", "utcnow")}

#: Identifier substrings marking a byte/latency quantity (LINT204).
_QUANTITY = re.compile(
    r"(bytes|seconds|latency|bandwidth|duration|throughput)", re.IGNORECASE)

_ALLOW = re.compile(r"#\s*repro:\s*allow\(([A-Z]+\d+)\)")


def _suppressions(source: str) -> dict:
    """line number -> set of rule ids allowed on that line."""
    allowed: dict = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        for match in _ALLOW.finditer(line):
            allowed.setdefault(lineno, set()).add(match.group(1))
    return allowed


class _Linter(ast.NodeVisitor):
    def __init__(self, path: Path, rel: str, source: str):
        self.path = path
        self.rel = rel
        self.allowed = _suppressions(source)
        self.in_fingerprint_path = any(rel.endswith(p)
                                       for p in FINGERPRINT_PATHS)
        parts = Path(rel).parts
        if "repro" in parts:
            # Anchor on the package component so out-of-tree checkouts
            # and absolute paths scope identically.
            package = parts[len(parts) - 1 - parts[::-1].index("repro") + 1:]
        else:
            package = parts
        self.pure = len(package) >= 2 and package[0] in PURE_PACKAGES
        self.diagnostics: List[Diagnostic] = []

    def report(self, rule: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if rule in self.allowed.get(lineno, set()):
            return
        self.diagnostics.append(Diagnostic.make(
            rule, message, subject=self.rel,
            location=f"{self.rel}:{lineno}"))

    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            self._check_module_call(node, func.value.id, func.attr)
        self.generic_visit(node)

    def _check_module_call(self, node: ast.Call, module: str,
                           name: str) -> None:
        if module == "json" and name == "dumps":
            self._check_dumps(node)
        if not self.pure:
            return
        if (module, name) in _CLOCK_CALLS:
            self.report(
                "LINT203", node,
                f"wall-clock read {module}.{name}() in a pure simulation "
                f"module; simulated time must come from the simulation")
        elif module == "random" and name != "Random":
            self.report(
                "LINT203", node,
                f"module-level random.{name}() in a pure simulation "
                f"module; use a seeded random.Random instance")
        elif module == "random" and name == "Random" and not node.args \
                and not node.keywords:
            self.report(
                "LINT203", node,
                "random.Random() without a seed in a pure simulation "
                "module; pass an explicit seed")

    def _check_dumps(self, node: ast.Call) -> None:
        keywords = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        if self.in_fingerprint_path:
            sort_keys = keywords.get("sort_keys")
            if not (isinstance(sort_keys, ast.Constant)
                    and sort_keys.value is True):
                self.report(
                    "LINT201", node,
                    "json.dumps in a fingerprint path must pass "
                    "sort_keys=True (cache keys must be canonical)")
        default = keywords.get("default")
        if isinstance(default, ast.Name) and default.id in ("str", "repr"):
            self.report(
                "LINT202", node,
                f"json.dumps(default={default.id}) serializes enums by "
                f"{default.id}(); serialize by .value instead")

    # ------------------------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                self._check_quantity_eq(node, left, right)
        self.generic_visit(node)

    def _check_quantity_eq(self, node: ast.Compare, left: ast.AST,
                           right: ast.AST) -> None:
        if _is_zero_or_none(left) or _is_zero_or_none(right):
            return
        for side in (left, right):
            name = _identifier(side)
            if name and _QUANTITY.search(name):
                self.report(
                    "LINT204", node,
                    f"exact ==/!= on quantity {name!r}; compare with a "
                    f"tolerance (accumulated floats are not exact)")
                return

    def finish(self) -> List[Diagnostic]:
        return self.diagnostics


def _identifier(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _is_zero_or_none(node: ast.AST) -> bool:
    """Literal 0 / 0.0 / None: the legitimate exact sentinels."""
    return isinstance(node, ast.Constant) and (
        node.value is None
        or (isinstance(node.value, (int, float))
            and not isinstance(node.value, bool) and node.value == 0))


# ----------------------------------------------------------------------
def lint_file(path: Path, root: Path) -> List[Diagnostic]:
    """Lint one source file; ``root`` anchors the relative path."""
    try:
        rel = str(path.resolve().relative_to(root.resolve()))
    except ValueError:
        rel = str(path)
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [Diagnostic.make(
            "LINT203", f"file does not parse: {error}",
            subject=rel, location=f"{rel}:{error.lineno or 0}")]
    linter = _Linter(path, rel, source)
    linter.visit(tree)
    return linter.finish()


def default_root() -> Path:
    """The ``src/`` directory this installation of repro lives in."""
    return Path(__file__).resolve().parents[2]


def lint_paths(paths: Sequence[Path], root: Path = None) -> Report:
    """Lint every ``.py`` file under the given paths into one report."""
    root = root or default_root()
    seen: Set[Path] = set()
    report = Report(subject="lint")
    for path in paths:
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            resolved = file.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            report.extend(lint_file(file, root))
    return report


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="AST lint for reproducibility invariants "
                    "(LINT201-LINT204)")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories (default: the repro "
                             "package)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    args = parser.parse_args(argv)

    paths = args.paths or [default_root() / "repro"]
    report = lint_paths(paths)
    if args.format == "json":
        print(render_reports_json([report]))
    else:
        print(report.render_text())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())

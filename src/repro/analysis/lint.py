"""AST lint for the repo's reproducibility invariants (pass 3).

Run as ``python -m repro.analysis.lint [paths...]``.  Unlike the trace
passes, this one reads *source*, because the bugs it guards against are
invisible at runtime until a cache silently goes stale:

* **LINT201** — ``json.dumps`` without ``sort_keys=True`` inside a
  fingerprint path.  Fingerprints key the simulation result cache; dict
  ordering must never leak into them.
* **LINT202** — ``json.dumps(..., default=str)`` (or ``repr``): enums
  would serialize by their ``str()``/``repr()`` form instead of their
  stable ``.value``, so renaming a member would silently re-key caches.
* **LINT203** — wall-clock reads (``time.time()`` & friends) or
  unseeded module-level ``random`` calls inside a pure simulation
  module.  Simulated time must come from the simulation; host time or
  hidden RNG state breaks replay and cache hits.  ``random.Random(seed)``
  instances are fine.
* **LINT204** — ``==`` / ``!=`` between byte/latency quantities.  These
  are accumulated floats; exact comparison is only legitimate against a
  sentinel: a literal ``0``/``0.0``/``None``, a module-level constant
  assigned one of those, or a ``float("inf")``/``math.inf`` bound (all
  exempt).

The dataflow-aware rules look past single expressions:

* **LINT205** — per-iteration allocation (list/set/dict literal,
  comprehension, f-string, ``sorted()``/``list()``/``dict()``/``set()``)
  inside a region marked ``# repro: hot`` (on the ``def``/``for``/
  ``while`` line or the line above).  Branches guarded by cold names
  (``trace``, ``obs``, ``fault``, ``verify``, ``report``, ``debug``)
  and ``raise`` statements are exempt — error paths and observation
  hooks may allocate.
* **LINT206** — a ``Network``/``Timeline`` reference stored in a
  plan/cache-shaped structure (class name ending in ``Plan``/
  ``Record``/``Key``/``Entry``): such structures are cached or keyed,
  and a retained back-reference defeats the WeakKeyDictionary plan
  cache (see :mod:`repro.core.plan`'s "no network reference" contract).
* **LINT207** — a ``# repro: allow(RULE)`` suppression on a line where
  RULE no longer fires.  Stale suppressions hide future regressions.
* **LINT208** — mutation of a :class:`~repro.core.plan.CompiledPlan` /
  ``StorageRecord`` / step field outside its constructor.  Plans are
  shared via a cache keyed by content signature; mutating one poisons
  every holder.  The defining module (``core/plan.py``) is exempt —
  construction happens there.

A finding is suppressed by putting ``# repro: allow(RULE)`` on the
offending line.  Suppressions are visible in the diff; that is the
point (and LINT207 keeps them honest).
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import Dict, List, Sequence, Set

from .diagnostics import Diagnostic, Report, render_reports_json

#: Files whose json.dumps calls feed cache fingerprints (LINT201 scope).
FINGERPRINT_PATHS = (
    "perf/fingerprint.py",
    "perf/cache.py",
    "core/cached.py",
)

#: Packages whose modules must be pure functions of their inputs
#: (LINT203 scope).  ``numerics`` (host-side reference math) and
#: ``profiler`` (wall-clock by design) are deliberately out.  ``serve``,
#: ``faults`` and ``cluster`` are in: all draw randomness (arrival
#: processes, fault streams) and all must replay bit-identically from a
#: seed.
PURE_PACKAGES = ("sim", "alloc", "core", "sched", "kernels", "hw",
                 "graph", "perf", "serve", "faults", "cluster")

#: Wall-clock entry points LINT203 rejects in pure modules.
_CLOCK_CALLS = {("time", "time"), ("time", "monotonic"),
                ("time", "perf_counter"), ("time", "process_time"),
                ("datetime", "now"), ("datetime", "utcnow")}

#: Identifier substrings marking a byte/latency quantity (LINT204).
_QUANTITY = re.compile(
    r"(bytes|seconds|latency|bandwidth|duration|throughput)", re.IGNORECASE)

_ALLOW = re.compile(r"#\s*repro:\s*allow\(([A-Z]+\d+)\)")

_HOT_MARK = re.compile(r"#\s*repro:\s*hot\b")

#: Identifier substrings that mark a branch as off the hot path
#: (observation, tracing, fault bookkeeping, verification): LINT205
#: does not fire inside them.
_COLD_GUARDS = ("trace", "obs", "fault", "verify", "report", "debug")

#: Class-name shapes LINT206 treats as cached/keyed structures.
_STRUCT_NAME = re.compile(r"(Plan|Record|Key|Entry)$")
_HEAVY_TYPES = {"Network", "Timeline"}
_HEAVY_NAMES = {"network", "timeline"}

#: The compiled-plan family (LINT208): classes whose fields are frozen
#: after construction by convention (they back a shared content-keyed
#: cache), enforced here because __slots__ classes can't be frozen
#: dataclasses without losing their construction pattern.
_PLAN_CLASSES = {"CompiledPlan", "StorageRecord", "ForwardStep",
                 "BackwardStep", "PersistentAlloc"}

#: Attribute names distinctive enough to identify a plan-family store
#: from the outside (LINT208's dataflow half: `plan.X = ...` far from
#: the class definition).  Deliberately excludes generic names
#: (``index``, ``nbytes``, ``seconds``...) other objects share.
_PLAN_FIELDS = {
    "alloc_rec", "y_tag", "ws_tag", "ws_buf", "offload_candidates",
    "dead_releases", "trace_reads", "trace_writes", "grad_allocs",
    "grad_write_candidates", "releases", "required", "dma_seconds",
    "host_tag", "pre_tag", "demand_tag", "y_buf", "g_buf", "g_tag",
    "w_tag", "dw_tag", "w_buf", "dw_buf", "baseline_breakdown",
    "network_name", "classifier_indices",
}

#: The module allowed to assign plan fields: the constructors live here.
_PLAN_HOME = "core/plan.py"


def _suppressions(source: str) -> dict:
    """line number -> set of rule ids allowed on that line."""
    allowed: dict = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        for match in _ALLOW.finditer(line):
            allowed.setdefault(lineno, set()).add(match.group(1))
    return allowed


def _hot_marks(source: str) -> Set[int]:
    """Line numbers carrying a ``# repro: hot`` region marker."""
    return {lineno for lineno, line in
            enumerate(source.splitlines(), start=1)
            if _HOT_MARK.search(line)}


def _zero_constants(tree: ast.Module) -> Set[str]:
    """Module-level names assigned a literal 0 / 0.0 / None."""
    names: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and _is_zero_or_none(stmt.value):
            names.update(t.id for t in stmt.targets
                         if isinstance(t, ast.Name))
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None \
                and _is_zero_or_none(stmt.value) \
                and isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
    return names


class _Linter(ast.NodeVisitor):
    def __init__(self, path: Path, rel: str, source: str,
                 tree: ast.Module):
        self.path = path
        self.rel = rel
        self.allowed = _suppressions(source)
        self.used: Dict[int, Set[str]] = {}
        self.hot_lines = _hot_marks(source)
        self.zero_names = _zero_constants(tree)
        self.in_fingerprint_path = any(rel.endswith(p)
                                       for p in FINGERPRINT_PATHS)
        self.in_plan_home = rel.endswith(_PLAN_HOME)
        parts = Path(rel).parts
        if "repro" in parts:
            # Anchor on the package component so out-of-tree checkouts
            # and absolute paths scope identically.
            package = parts[len(parts) - 1 - parts[::-1].index("repro") + 1:]
        else:
            package = parts
        self.pure = len(package) >= 2 and package[0] in PURE_PACKAGES
        self.diagnostics: List[Diagnostic] = []
        self._hot_depth = 0
        self._cold_depth = 0
        self._class_stack: List[str] = []
        self._func_stack: List[str] = []

    def report(self, rule: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if rule in self.allowed.get(lineno, set()):
            self.used.setdefault(lineno, set()).add(rule)
            return
        self.diagnostics.append(Diagnostic.make(
            rule, message, subject=self.rel,
            location=f"{self.rel}:{lineno}"))

    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            self._check_module_call(node, func.value.id, func.attr)
        if isinstance(func, ast.Name) \
                and func.id in ("sorted", "list", "dict", "set"):
            self._hot_alloc(node, f"{func.id}() call")
        self.generic_visit(node)

    def _check_module_call(self, node: ast.Call, module: str,
                           name: str) -> None:
        if module == "json" and name == "dumps":
            self._check_dumps(node)
        if not self.pure:
            return
        if (module, name) in _CLOCK_CALLS:
            self.report(
                "LINT203", node,
                f"wall-clock read {module}.{name}() in a pure simulation "
                f"module; simulated time must come from the simulation")
        elif module == "random" and name != "Random":
            self.report(
                "LINT203", node,
                f"module-level random.{name}() in a pure simulation "
                f"module; use a seeded random.Random instance")
        elif module == "random" and name == "Random" and not node.args \
                and not node.keywords:
            self.report(
                "LINT203", node,
                "random.Random() without a seed in a pure simulation "
                "module; pass an explicit seed")

    def _check_dumps(self, node: ast.Call) -> None:
        keywords = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        if self.in_fingerprint_path:
            sort_keys = keywords.get("sort_keys")
            if not (isinstance(sort_keys, ast.Constant)
                    and sort_keys.value is True):
                self.report(
                    "LINT201", node,
                    "json.dumps in a fingerprint path must pass "
                    "sort_keys=True (cache keys must be canonical)")
        default = keywords.get("default")
        if isinstance(default, ast.Name) and default.id in ("str", "repr"):
            self.report(
                "LINT202", node,
                f"json.dumps(default={default.id}) serializes enums by "
                f"{default.id}(); serialize by .value instead")

    # ------------------------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                self._check_quantity_eq(node, left, right)
        self.generic_visit(node)

    def _check_quantity_eq(self, node: ast.Compare, left: ast.AST,
                           right: ast.AST) -> None:
        if self._is_sentinel(left) or self._is_sentinel(right):
            return
        for side in (left, right):
            name = _identifier(side)
            if name and _QUANTITY.search(name):
                self.report(
                    "LINT204", node,
                    f"exact ==/!= on quantity {name!r}; compare with a "
                    f"tolerance (accumulated floats are not exact)")
                return

    def _is_sentinel(self, node: ast.AST) -> bool:
        """Literal/named zero, None, or an infinity bound."""
        if isinstance(node, ast.UnaryOp) \
                and isinstance(node.op, ast.USub):
            return self._is_sentinel(node.operand)
        if _is_zero_or_none(node):
            return True
        if isinstance(node, ast.Name) and node.id in self.zero_names:
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "float" and len(node.args) == 1 \
                and isinstance(node.args[0], ast.Constant) \
                and str(node.args[0].value).lstrip("+-").lower() == "inf":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "inf" \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "math":
            return True
        return False

    # -- hot regions (LINT205) -----------------------------------------
    def _is_hot_marked(self, node: ast.AST) -> bool:
        lineno = getattr(node, "lineno", 0)
        return lineno in self.hot_lines or lineno - 1 in self.hot_lines

    def _visit_hot_scope(self, node) -> None:
        hot = self._is_hot_marked(node)
        if hot:
            self._hot_depth += 1
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._func_stack.append(node.name)
            self.generic_visit(node)
            self._func_stack.pop()
        else:
            self.generic_visit(node)
        if hot:
            self._hot_depth -= 1

    visit_For = _visit_hot_scope
    visit_While = _visit_hot_scope

    def visit_FunctionDef(self, node) -> None:
        self._visit_hot_scope(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_If(self, node: ast.If) -> None:
        self.visit(node.test)
        cold = self._hot_depth and _has_cold_guard(node.test)
        if cold:
            self._cold_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if cold:
            self._cold_depth -= 1
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_Raise(self, node: ast.Raise) -> None:
        # Error paths may allocate; they run once, then everything stops.
        self._cold_depth += 1
        self.generic_visit(node)
        self._cold_depth -= 1

    def _hot_alloc(self, node: ast.AST, what: str) -> None:
        if self._hot_depth and not self._cold_depth:
            self.report(
                "LINT205", node,
                f"{what} allocates on every iteration of a "
                f"'# repro: hot' region; hoist it, precompute it in the "
                f"plan, or move it behind a cold guard")

    def visit_List(self, node: ast.List) -> None:
        self._hot_alloc(node, "list literal")
        self.generic_visit(node)

    def visit_Set(self, node: ast.Set) -> None:
        self._hot_alloc(node, "set literal")
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        self._hot_alloc(node, "dict literal")
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._hot_alloc(node, "list comprehension")
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._hot_alloc(node, "set comprehension")
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._hot_alloc(node, "dict comprehension")
        self.generic_visit(node)

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        self._hot_alloc(node, "f-string")
        self.generic_visit(node)

    # -- structure rules (LINT206 / LINT208) ---------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        if _STRUCT_NAME.search(node.name):
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) \
                        and _annotation_heavy(stmt.annotation):
                    self.report(
                        "LINT206", stmt,
                        f"{node.name} declares a field of a heavy "
                        f"runtime type ({', '.join(sorted(_HEAVY_TYPES))}"
                        f" family); cached/keyed structures must hold "
                        f"derived data, not object references (breaks "
                        f"the weak-keyed plan cache)")
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_attr_store(node, target, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_attr_store(node, node.target, None)
        self.generic_visit(node)

    def _check_attr_store(self, node: ast.AST, target: ast.AST,
                          value) -> None:
        if not isinstance(target, ast.Attribute):
            return
        base_is_self = isinstance(target.value, ast.Name) \
            and target.value.id == "self"
        klass = self._class_stack[-1] if self._class_stack else ""
        method = self._func_stack[-1] if self._func_stack else ""

        # LINT206: self.network = network (and friends) inside a
        # plan/cache-shaped class.
        if base_is_self and klass and _STRUCT_NAME.search(klass):
            stored = _identifier(value) if value is not None else ""
            if target.attr in _HEAVY_NAMES or stored in _HEAVY_NAMES:
                self.report(
                    "LINT206", node,
                    f"{klass}.{target.attr} retains a "
                    f"{stored or target.attr!r} reference; cached/keyed "
                    f"structures must hold derived data, not the object "
                    f"itself (breaks the weak-keyed plan cache)")

        # LINT208a: a plan-family class mutating itself outside __init__.
        if base_is_self and klass in _PLAN_CLASSES and method != "__init__":
            self.report(
                "LINT208", node,
                f"{klass}.{target.attr} assigned in {method}(); plan "
                f"objects are shared through a content-keyed cache and "
                f"must only be written in their constructor")

        # LINT208b: anyone else assigning a distinctive plan field.
        if not base_is_self and not self.in_plan_home \
                and target.attr in _PLAN_FIELDS:
            self.report(
                "LINT208", node,
                f"assignment to plan field '.{target.attr}' outside "
                f"core/plan.py; compiled plans are shared through a "
                f"content-keyed cache — mutating one poisons every "
                f"holder (rebuild via the constructor instead)")

    # ------------------------------------------------------------------
    def finish(self) -> List[Diagnostic]:
        # LINT207: every allow() must have suppressed something.  An
        # allow(LINT207) is exempt from the check (it exists to silence
        # this very rule during staged cleanups).
        for lineno in sorted(self.allowed):
            unused = self.allowed[lineno] \
                - self.used.get(lineno, set()) - {"LINT207"}
            for rule in sorted(unused):
                self.report(
                    "LINT207", _at(lineno),
                    f"suppression 'repro: allow({rule})' never fires on "
                    f"this line; delete it (stale allows hide future "
                    f"regressions)")
        return self.diagnostics


def _at(lineno: int) -> ast.AST:
    node = ast.Pass()
    node.lineno = lineno
    return node


def _has_cold_guard(test: ast.AST) -> bool:
    for sub in ast.walk(test):
        name = _identifier(sub)
        if name and any(g in name.lower() for g in _COLD_GUARDS):
            return True
    return False


def _annotation_heavy(annotation: ast.AST) -> bool:
    """Does a type annotation mention Network/Timeline (even quoted)?"""
    for sub in ast.walk(annotation):
        name = _identifier(sub)
        if name in _HEAVY_TYPES:
            return True
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str) \
                and any(t in sub.value for t in _HEAVY_TYPES):
            return True
    return False


def _identifier(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _is_zero_or_none(node: ast.AST) -> bool:
    """Literal 0 / 0.0 / None: the legitimate exact sentinels."""
    return isinstance(node, ast.Constant) and (
        node.value is None
        or (isinstance(node.value, (int, float))
            and not isinstance(node.value, bool) and node.value == 0))


# ----------------------------------------------------------------------
def lint_file(path: Path, root: Path) -> List[Diagnostic]:
    """Lint one source file; ``root`` anchors the relative path."""
    try:
        rel = str(path.resolve().relative_to(root.resolve()))
    except ValueError:
        rel = str(path)
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [Diagnostic.make(
            "LINT203", f"file does not parse: {error}",
            subject=rel, location=f"{rel}:{error.lineno or 0}")]
    linter = _Linter(path, rel, source, tree)
    linter.visit(tree)
    return linter.finish()


def default_root() -> Path:
    """The ``src/`` directory this installation of repro lives in."""
    return Path(__file__).resolve().parents[2]


def lint_paths(paths: Sequence[Path], root: Path = None) -> Report:
    """Lint every ``.py`` file under the given paths into one report."""
    root = root or default_root()
    seen: Set[Path] = set()
    report = Report(subject="lint")
    for path in paths:
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            resolved = file.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            report.extend(lint_file(file, root))
    return report


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="AST lint for reproducibility invariants "
                    "(LINT201-LINT208)")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories (default: the repro "
                             "package)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on warnings too, not just "
                             "errors (the CI gate)")
    args = parser.parse_args(argv)

    paths = args.paths or [default_root() / "repro"]
    report = lint_paths(paths)
    if args.format == "json":
        print(render_reports_json([report]))
    else:
        print(report.render_text())
    if args.strict:
        return 0 if not report.diagnostics else 1
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())

"""Schedule traces: the verifiable record of one simulated iteration.

The :class:`~repro.sim.timeline.Timeline` records *when* things ran; it
is the right artifact for performance questions and the wrong one for
correctness questions, because it only logs stalls that cost time — a
synchronization that happened to be free leaves no event, yet it is
exactly what makes a release or a prefetch safe.  ``ScheduleTrace``
therefore records the *program* the memory manager executed: every pool
allocation and stream-ordered release, every kernel with the buffers it
reads and writes, every DMA transfer, and every synchronization —
including the zero-cost ones.

Op semantics (mirroring CUDA + cnmem, see docs/analysis.md):

* ``ALLOC`` — host-synchronous pool reservation: completes at issue, so
  it happens-before everything issued later.
* ``FREE`` — stream-ordered release (cnmem's asynchronous free): the
  block is recycled only when ``op.stream`` reaches the release point.
* ``KERNEL`` / ``OFFLOAD`` / ``PREFETCH`` — asynchronous work on their
  stream; cross-stream ordering exists only through syncs or an explicit
  ``wait_stream``/``wait_pos`` event dependency (the executor's
  ``earliest_start`` gating).
* ``SYNC`` — host-synchronous join: the host blocks until every op at
  position ``<= wait_pos`` on ``wait_stream`` has completed, so those
  completions order before everything issued afterwards.

Positions are per-stream issue indices; ``seq`` is the global host issue
order.  Hand-built traces (test fixtures) use the same builder methods
the executor uses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Stream name for host-synchronous ops (alloc / sync).
HOST_STREAM = "host"


class OpKind(enum.Enum):
    ALLOC = "alloc"
    FREE = "free"
    KERNEL = "kernel"
    OFFLOAD = "offload"      # device -> host DMA; reads its buffer
    PREFETCH = "prefetch"    # host -> device DMA; writes its buffer
    SYNC = "sync"

    @property
    def host_synchronous(self) -> bool:
        return self in (OpKind.ALLOC, OpKind.SYNC)


@dataclass(frozen=True)
class TraceOp:
    """One operation the memory manager issued."""

    seq: int                      # global issue order
    pos: int                      # issue index within ``stream``
    kind: OpKind
    stream: str
    label: str = ""
    buffer: str = ""              # buffer id for alloc/free/transfer ops
    owner: int = -1               # storage-owner layer for feature buffers
    nbytes: int = 0
    offset: int = -1              # pool placement (-1: unknown/not modeled)
    size: int = 0                 # aligned size actually reserved
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()
    layer_index: int = -1         # layer whose step issued the op
    target_layer: int = -1        # transfer trigger layer (Fig. 10 walk)
    wait_stream: str = ""         # event/sync dependency: stream ...
    wait_pos: int = -1            # ... completed through this position
    phase: str = ""               # "fwd" | "bwd" | "end" (kernels, frees)
    demand: bool = False          # blocking demand fetch, not a prefetch
    persistent: bool = False      # legitimately outlives the iteration
    start: float = 0.0            # timeline anchors (rendering only)
    end: float = 0.0

    @property
    def touched(self) -> Tuple[str, ...]:
        """Buffers this op accesses on the device (reads + writes)."""
        touched = list(self.reads) + [w for w in self.writes
                                      if w not in self.reads]
        if self.buffer and self.kind in (OpKind.OFFLOAD, OpKind.PREFETCH) \
                and self.buffer not in touched:
            touched.append(self.buffer)
        return tuple(touched)

    def ref(self) -> str:
        """Compact evidence string for diagnostics."""
        what = self.label or self.buffer or self.kind.value
        return f"op#{self.seq} {self.stream}:{self.pos} {self.kind.value} {what}"


class ScheduleTrace:
    """Append-only log of manager ops, with per-stream positions."""

    def __init__(self) -> None:
        self.ops: List[TraceOp] = []
        self._positions: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.ops)

    def position(self, stream: str) -> int:
        """Last issued position on ``stream`` (-1 when none)."""
        return self._positions.get(stream, -1)

    def _append(self, kind: OpKind, stream: str, **kw) -> TraceOp:
        pos = self._positions.get(stream, -1) + 1
        self._positions[stream] = pos
        op = TraceOp(seq=len(self.ops), pos=pos, kind=kind, stream=stream, **kw)
        self.ops.append(op)
        return op

    # -- builder API (used by the executor and by test fixtures) --------
    def alloc(self, buffer: str, nbytes: int, offset: int = -1,
              size: int = 0, label: str = "", layer: int = -1,
              owner: int = -1, persistent: bool = False,
              start: float = 0.0) -> TraceOp:
        return self._append(
            OpKind.ALLOC, HOST_STREAM, buffer=buffer, nbytes=nbytes,
            offset=offset, size=size or nbytes, label=label,
            layer_index=layer, owner=owner, persistent=persistent,
            start=start, end=start,
        )

    def free(self, buffer: str, stream: str, offset: int = -1,
             size: int = 0, label: str = "", layer: int = -1,
             owner: int = -1, phase: str = "", start: float = 0.0) -> TraceOp:
        return self._append(
            OpKind.FREE, stream, buffer=buffer, offset=offset, size=size,
            label=label, layer_index=layer, owner=owner, phase=phase,
            start=start, end=start,
        )

    def kernel(self, label: str, stream: str, reads=(), writes=(),
               layer: int = -1, phase: str = "", start: float = 0.0,
               end: float = 0.0) -> TraceOp:
        return self._append(
            OpKind.KERNEL, stream, label=label, reads=tuple(reads),
            writes=tuple(writes), layer_index=layer, phase=phase,
            start=start, end=end,
        )

    def offload(self, buffer: str, stream: str, nbytes: int = 0,
                label: str = "", layer: int = -1, owner: int = -1,
                target_layer: int = -1, wait_stream: str = "",
                wait_pos: int = -1, start: float = 0.0,
                end: float = 0.0) -> TraceOp:
        return self._append(
            OpKind.OFFLOAD, stream, buffer=buffer, nbytes=nbytes,
            label=label, layer_index=layer, owner=owner,
            target_layer=target_layer, wait_stream=wait_stream,
            wait_pos=wait_pos, reads=(buffer,), start=start, end=end,
        )

    def prefetch(self, buffer: str, stream: str, nbytes: int = 0,
                 label: str = "", layer: int = -1, owner: int = -1,
                 target_layer: int = -1, wait_stream: str = "",
                 wait_pos: int = -1, demand: bool = False,
                 start: float = 0.0, end: float = 0.0) -> TraceOp:
        return self._append(
            OpKind.PREFETCH, stream, buffer=buffer, nbytes=nbytes,
            label=label, layer_index=layer, owner=owner,
            target_layer=target_layer, wait_stream=wait_stream,
            wait_pos=wait_pos, demand=demand, writes=(buffer,),
            start=start, end=end,
        )

    def sync(self, wait_stream: str, wait_pos: Optional[int] = None,
             label: str = "", layer: int = -1, start: float = 0.0) -> TraceOp:
        """Host join: wait for ``wait_stream`` through ``wait_pos``
        (default: everything issued on it so far)."""
        if wait_pos is None:
            wait_pos = self.position(wait_stream)
        return self._append(
            OpKind.SYNC, HOST_STREAM, wait_stream=wait_stream,
            wait_pos=wait_pos, label=label, layer_index=layer,
            start=start, end=start,
        )

    # -- queries ---------------------------------------------------------
    def of_kind(self, *kinds: OpKind) -> List[TraceOp]:
        return [op for op in self.ops if op.kind in kinds]

    def on_stream(self, stream: str) -> List[TraceOp]:
        return [op for op in self.ops if op.stream == stream]

    def without(self, *seqs: int) -> "ScheduleTrace":
        """A re-sequenced copy with the given ops dropped.

        The mutation-testing primitive: removing one SYNC from a valid
        schedule must make the verifier flag it.
        """
        dropped = set(seqs)
        mutated = ScheduleTrace()
        for op in self.ops:
            if op.seq in dropped:
                continue
            kw = {
                "label": op.label, "buffer": op.buffer, "owner": op.owner,
                "nbytes": op.nbytes, "offset": op.offset, "size": op.size,
                "reads": op.reads, "writes": op.writes,
                "layer_index": op.layer_index,
                "target_layer": op.target_layer,
                "wait_stream": op.wait_stream, "wait_pos": op.wait_pos,
                "phase": op.phase, "demand": op.demand,
                "persistent": op.persistent,
                "start": op.start, "end": op.end,
            }
            mutated._append(op.kind, op.stream, **kw)
        return mutated

"""Memory-safety verification of schedule traces (pass 2).

Symbolically executes the manager's allocation schedule against the
:class:`~repro.alloc.pool.PoolAllocator` semantics the real executor
uses: every ``ALLOC`` opens a buffer lifetime at its recorded pool
placement, every ``FREE`` closes one, and every kernel/DMA access is
checked against the live set — in host issue order, which is the order
the pool itself observes.  Rules:

* **MS101** use-after-release / use-before-alloc;
* **MS102** double free (freeing a buffer with no live allocation);
* **MS103** leak: non-persistent blocks still live at iteration end;
* **MS104** overlap: a new allocation's byte range intersects a live
  buffer's range, or a released range an in-flight offload may still be
  reading (release raced the DMA, and the pool recycled the bytes —
  the corruption HB002 warns about actually materializing);
* **MS105** refcount-gate violation (Fig. 3): a feature map released
  in the forward pass before its last forward consumer was issued, or
  discarded without offload although backward still needs it — needs a
  :class:`~repro.core.liveness.LivenessAnalysis` to know the consumers,
  so it only runs when one is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..core.liveness import LivenessAnalysis
from .diagnostics import Diagnostic
from .hb import HBGraph
from .trace import OpKind, ScheduleTrace, TraceOp


@dataclass
class _LiveBlock:
    """One open buffer lifetime during the replay."""

    buffer: str
    alloc: TraceOp
    offloads: List[TraceOp]

    @property
    def has_range(self) -> bool:
        return self.alloc.offset >= 0 and self.alloc.size > 0

    @property
    def range(self) -> Tuple[int, int]:
        return (self.alloc.offset, self.alloc.offset + self.alloc.size)


@dataclass
class _HotRange:
    """Released bytes an unsynchronized offload may still be reading."""

    lo: int
    hi: int
    buffer: str
    transfer: TraceOp


def _overlaps(lo_a: int, hi_a: int, lo_b: int, hi_b: int) -> bool:
    return lo_a < hi_b and lo_b < hi_a


def check_memory_safety(
    trace: ScheduleTrace,
    hb: Optional[HBGraph] = None,
    liveness: Optional[LivenessAnalysis] = None,
    subject: str = "",
) -> List[Diagnostic]:
    """Replay the trace's allocation schedule; returns MS1xx findings."""
    hb = hb or HBGraph(trace)
    diagnostics: List[Diagnostic] = []

    def report(rule: str, message: str, *ops: TraceOp) -> None:
        diagnostics.append(Diagnostic.make(
            rule, message, subject=subject, refs=[op.ref() for op in ops]))

    live: Dict[str, _LiveBlock] = {}
    hot: List[_HotRange] = []
    issued_kernels: Set[Tuple[int, str]] = set()  # (layer_index, phase)
    flagged_missing: Set[str] = set()

    for op in trace.ops:
        if op.kind is OpKind.ALLOC:
            _replay_alloc(op, live, hot, report)
        elif op.kind is OpKind.FREE:
            _replay_free(op, live, hot, hb, liveness, issued_kernels, report)
        elif op.kind is OpKind.SYNC:
            # The join guarantees every op on wait_stream through
            # wait_pos completed: their reads of released bytes are over.
            hot[:] = [h for h in hot
                      if not (h.transfer.stream == op.wait_stream
                              and h.transfer.pos <= op.wait_pos)]
        else:
            if op.kind is OpKind.KERNEL and op.layer_index >= 0:
                issued_kernels.add((op.layer_index, op.phase))
            for buffer in op.touched:
                block = live.get(buffer)
                if block is None:
                    if buffer not in flagged_missing:
                        flagged_missing.add(buffer)
                        report(
                            "MS101",
                            f"{buffer} accessed by {op.kind.value} "
                            f"{op.label or ''} with no live allocation "
                            f"(use after release, or never allocated)",
                            op)
                elif op.kind is OpKind.OFFLOAD and buffer == op.buffer:
                    block.offloads.append(op)

    for buffer, block in sorted(live.items()):
        if not block.alloc.persistent:
            report(
                "MS103",
                f"{buffer} ({block.alloc.nbytes} bytes) still live at "
                f"iteration end: leaked",
                block.alloc)
    return diagnostics


def _replay_alloc(op: TraceOp, live: Dict[str, _LiveBlock],
                  hot: List[_HotRange], report) -> None:
    if op.buffer in live:
        report(
            "MS104",
            f"{op.buffer} allocated twice without an intervening free",
            live[op.buffer].alloc, op)
    block = _LiveBlock(buffer=op.buffer, alloc=op, offloads=[])
    if block.has_range:
        lo, hi = block.range
        for other in live.values():
            if other.buffer != op.buffer and other.has_range and \
                    _overlaps(lo, hi, *other.range):
                report(
                    "MS104",
                    f"{op.buffer} at [{lo}, {hi}) overlaps live buffer "
                    f"{other.buffer} at "
                    f"[{other.range[0]}, {other.range[1]})",
                    op, other.alloc)
        for entry in hot:
            if _overlaps(lo, hi, entry.lo, entry.hi):
                report(
                    "MS104",
                    f"{op.buffer} at [{lo}, {hi}) reuses bytes of "
                    f"{entry.buffer} while its offload may still be "
                    f"reading them",
                    op, entry.transfer)
    live[op.buffer] = block


def _replay_free(op: TraceOp, live: Dict[str, _LiveBlock],
                 hot: List[_HotRange], hb: HBGraph,
                 liveness: Optional[LivenessAnalysis],
                 issued_kernels: Set[Tuple[int, str]], report) -> None:
    block = live.pop(op.buffer, None)
    if block is None:
        report(
            "MS102",
            f"{op.buffer} freed while not live (double free)",
            op)
        return
    # Bytes released under an in-flight, unsynchronized offload stay
    # "hot": a later allocation landing on them is real corruption.
    if block.has_range:
        lo, hi = block.range
        for transfer in block.offloads:
            if not hb.happens_before(transfer, op):
                hot.append(_HotRange(lo=lo, hi=hi, buffer=op.buffer,
                                     transfer=transfer))
    if liveness is not None and op.phase == "fwd" and op.owner >= 0:
        _check_refcount_gate(op, block, liveness, issued_kernels, report)


def _check_refcount_gate(op: TraceOp, block: _LiveBlock,
                         liveness: LivenessAnalysis,
                         issued_kernels: Set[Tuple[int, str]],
                         report) -> None:
    storage = liveness.storages.get(op.owner)
    if storage is None:
        return
    gate = storage.forward_release_at
    if (gate, "fwd") not in issued_kernels:
        report(
            "MS105",
            f"{op.buffer} released before its last forward consumer "
            f"(layer {gate}) was issued: refcount gate violated",
            op)
    elif storage.needed_backward and not block.offloads:
        report(
            "MS105",
            f"{op.buffer} discarded without offload although backward "
            f"layers {storage.backward_users} still need it",
            op)

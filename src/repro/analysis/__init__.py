"""Static analysis of generated schedules: the vDNN schedule sanitizer.

Three passes over already-generated artifacts (no re-simulation):

* :mod:`~repro.analysis.hb` — happens-before race detection over
  :class:`~repro.analysis.trace.ScheduleTrace` (HB0xx rules);
* :mod:`~repro.analysis.safety` — symbolic replay of the allocation
  schedule against pool semantics (MS1xx rules);
* :mod:`~repro.analysis.lint` — AST lint of the repo source for
  reproducibility invariants (LINT2xx rules);
* :mod:`~repro.analysis.static_plan` — abstract interpretation of
  compiled plans, proving the vDNN schedule and memory invariants
  before anything runs (SP4xx rules; ``repro verify --static``).

:mod:`~repro.analysis.verify` drives the trace passes over simulations
(``repro verify``); :func:`~repro.analysis.verify.verify_schedule`
covers the multi-tenant scheduler (MT3xx rules).

Attribute access is lazy (PEP 562): ``repro.core.executor`` imports
:mod:`repro.analysis.trace` while :mod:`repro.analysis.verify` imports
``repro.core`` — eager re-exports here would close that cycle.
"""

from __future__ import annotations

#: public name -> defining submodule
_EXPORTS = {
    "Diagnostic": "diagnostics",
    "Report": "diagnostics",
    "Severity": "diagnostics",
    "RULES": "diagnostics",
    "render_reports_json": "diagnostics",
    "ScheduleTrace": "trace",
    "TraceOp": "trace",
    "OpKind": "trace",
    "HOST_STREAM": "trace",
    "HBGraph": "hb",
    "check_races": "hb",
    "check_memory_safety": "safety",
    "analyze_trace": "verify",
    "verify_result": "verify",
    "verify_point": "verify",
    "verify_zoo": "verify",
    "verify_schedule": "verify",
    "SWEEP_POLICIES": "verify",
    "lint_paths": "lint",
    "lint_file": "lint",
    "PlanInterpretation": "static_plan",
    "interpret_plan": "static_plan",
    "audit_plan": "static_plan",
    "verify_compiled_plan": "static_plan",
    "verify_plan": "static_plan",
    "plan_dynamic_static": "static_plan",
    "verify_point_static": "static_plan",
    "verify_zoo_static": "static_plan",
    "verify_recompute_plan": "static_plan",
    "verify_service_plan": "static_plan",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))

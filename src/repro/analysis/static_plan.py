"""Static plan verifier: prove vDNN invariants before anything runs.

The dynamic sanitizer (:mod:`repro.analysis.hb` / ``safety``) certifies
a schedule by *running* it under ``verify=True`` — one full simulation
per point.  PR 7's :class:`~repro.core.plan.CompiledPlan` hoists the
exact facts those proofs need (liveness, release orders, refcount-gated
offload candidates, DMA issue order), so the same conditions can be
proved *statically*: this module walks the plan with an abstract
interpreter — an interval-abstracted pool (live/peak bytes, aligned
like the real :class:`~repro.alloc.pool.PoolAllocator`), a pinned-host
counter, and per-stream happens-before positions (a serial ``mem_pos``
issue counter against a ``synced_through`` watermark) — and either
certifies the SP4xx rules or produces a counterexample trace naming the
exact step.

Rules (catalog in :mod:`repro.analysis.diagnostics`):

* **SP401** — peak bytes ≤ device budget, with the first-violating
  step; warning severity, because an over-budget plan is *untrainable*,
  not unsafe (the dynamic side reports it the same way).
* **SP402** — the Fig. 3 refcount gate: nothing is released before its
  last forward consumer, nothing backward needs is discarded without
  offload, and no offloaded buffer is freed before a sync covers its
  transfer.
* **SP403** — the Fig. 10 / §III-C prefetch discipline: restored
  buffers are synced before backward reads them (error), and prefetch
  targets stay inside the CONV-bounded window (warning, mirroring
  HB004).
* **SP404** — release lists free every allocation exactly once: static
  leak, double free, or a release at the wrong backward step.
* **SP405** — recompute/checkpoint plans re-materialize every dropped
  storage before its consumer.
* **SP406** — serve :class:`~repro.serve.layering.ServicePlan`
  accounting is internally consistent.

The walk mirrors :class:`repro.core.executor._VDNNSimulation` step for
step (same allocation order, same ``find_prefetch_layer`` state
machine, same pinned-exhaustion abort point), so on a clean plan the
statically computed peak equals the simulated ``managed_max_bytes``
*exactly* — the differential tests assert bit-equality, not closeness.
No simulation runs anywhere in this module: the whole 140-point zoo grid
verifies in a few seconds, dominated by plan compilation that
every later simulation reuses (see docs/performance.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..alloc.pool import ALIGNMENT, _align
from ..core.algo_config import AlgoConfig
from ..core.dynamic import run_profiling_ladder
from ..core.liveness import LivenessAnalysis
from ..core.plan import CompiledPlan, StorageRecord, compiled_plan
from ..core.policy import TransferPolicy
from ..core.prefetcher import PrefetchState, find_prefetch_layer
from ..core.recompute import CheckpointPlan, checkpoint_plan
from ..graph.layer import LayerKind
from ..graph.network import Network
from ..hw.config import PAPER_SYSTEM, SystemConfig
from .diagnostics import Report, Severity


def _aligned(nbytes: int) -> int:
    """A pool allocation's true footprint (mirrors PoolAllocator.alloc)."""
    return max(_align(nbytes), ALIGNMENT)


# ----------------------------------------------------------------------
# Abstract interpretation of one CompiledPlan
# ----------------------------------------------------------------------
@dataclass
class PlanInterpretation:
    """What the abstract walk of one (plan, policy) point computed.

    On a clean plan every field matches the corresponding
    :class:`~repro.core.executor.IterationResult` field bit-for-bit
    (``peak_bytes`` == ``managed_max_bytes`` and so on) — the
    differential suite asserts exactly that.
    """

    subject: str
    budget_bytes: int
    external_bytes: int
    peak_bytes: int = 0
    peak_step: str = ""
    offload_bytes: int = 0
    prefetch_bytes: int = 0
    pinned_peak_bytes: int = 0
    #: Abort reason (pinned-host exhaustion), or None for a full walk.
    aborted: Optional[str] = None
    #: Counterexample for SP401: the first step whose allocation pushed
    #: usage over the device budget (None while the plan fits).
    first_over_budget: Optional[str] = None

    @property
    def max_usage_bytes(self) -> int:
        return self.peak_bytes + self.external_bytes

    @property
    def trainable(self) -> bool:
        return self.aborted is None \
            and self.max_usage_bytes <= self.budget_bytes


class _AbortWalk(Exception):
    """Internal: the walk hit the same hard stop the executor would."""


class _PlanInterpreter:
    """Symbolic forward+backward walk of one compiled plan.

    State tracked: aligned pool live/peak bytes, pinned-host live/peak,
    the owner→bytes device and gradient tables, the Fig. 10
    :class:`PrefetchState`, and the happens-before abstraction — every
    DMA gets a serial issue position ``mem_pos`` and every sync raises
    the ``synced_through`` watermark; an operation that reads or
    reuses a buffer is safe iff the covering transfer's position is at
    or below the watermark.
    """

    def __init__(
        self,
        network: Network,
        system: SystemConfig,
        plan: CompiledPlan,
        policy: TransferPolicy,
        *,
        bounded_prefetch_window: bool = True,
        sync_after_offload: bool = True,
        sync_after_prefetch: bool = True,
        report: Optional[Report] = None,
        flagged: FrozenSet[int] = frozenset(),
        subject: str = "",
    ):
        self.network = network
        self.system = system
        self.plan = plan
        self.policy = policy
        self.bounded_prefetch_window = bounded_prefetch_window
        self.sync_after_offload = sync_after_offload
        self.sync_after_prefetch = sync_after_prefetch
        self.report = report if report is not None else Report(subject)
        self.flagged = flagged

        self.wants = plan.offload_indices(policy, network)
        self.budget = system.gpu.memory_bytes
        self.pinned_capacity = system.host.max_pinned_bytes
        self.external = plan.external_bytes

        self.live = 0
        self.peak = 0
        self.peak_step = ""
        self.first_over_budget: Optional[str] = None
        self.device: Dict[int, int] = {}
        self.gradients: Dict[int, int] = {}
        self.pinned_live = 0
        self.pinned_peak = 0
        self.host: Dict[int, int] = {}

        self.mem_pos = 0
        self.synced_through = 0
        self.offload_pos: Dict[int, int] = {}
        self.prefetch_pos: Dict[int, int] = {}
        self.restored: Set[int] = set()
        self.prefetch_restored: Set[int] = set()
        self._sp403_checked: Set[int] = set()
        self._window_prefetched: Set[int] = set()

        self.state = PrefetchState.for_network(network)
        self.offloaded_at: Dict[int, List[StorageRecord]] = {}
        self.offload_bytes = 0
        self.prefetch_bytes = 0

    # -- pool abstraction ----------------------------------------------
    def _alloc(self, nbytes: int, label: str) -> None:
        self.live += _aligned(nbytes)
        if self.live > self.peak:
            self.peak = self.live
            self.peak_step = label
        if self.first_over_budget is None \
                and self.live + self.external > self.budget:
            self.first_over_budget = (
                f"{label}: managed {self.live} + external {self.external} "
                f"bytes > GPU capacity {self.budget} bytes")

    def _free(self, nbytes: int) -> None:
        self.live -= _aligned(nbytes)

    # -- forward pass --------------------------------------------------
    def _forward(self, step) -> None:
        index = step.index
        rec = step.alloc_rec
        if rec is not None:
            self.device[rec.owner] = rec.nbytes
            self._alloc(rec.nbytes, f"fwd {step.name}: alloc Y{rec.owner}")
        if step.is_input:
            return
        if step.ws_bytes:
            self._alloc(step.ws_bytes, f"fwd {step.name}: workspace")

        for dead in step.dead_releases:
            self._dead_release(step, dead)

        if step.offload_candidates and index in self.wants:
            self._offload(step)

        if step.ws_bytes:
            self._free(step.ws_bytes)

    def _dead_release(self, step, dead) -> None:
        index = step.index
        nbytes = self.device.pop(dead.owner, None)
        if nbytes is None:
            if dead.owner not in self.flagged:
                self.report.add(
                    "SP404",
                    f"fwd {step.name}: dead release of Y{dead.owner} "
                    f"targets nothing (buffer not on device)",
                    refs=(f"fwd#{index}",))
            return
        if dead.owner not in self.flagged:
            if dead.info.needed_backward:
                self.report.add(
                    "SP402",
                    f"fwd {step.name}: Y{dead.owner} ({dead.name}) "
                    f"discarded without offload although backward "
                    f"still needs it (Fig. 3 refcount gate)",
                    refs=(f"fwd#{index}",
                          f"first backward use: "
                          f"bwd#{dead.info.first_backward_use}"))
            elif dead.info.forward_release_at != index:
                self.report.add(
                    "SP402",
                    f"fwd {step.name}: Y{dead.owner} ({dead.name}) "
                    f"released at forward step {index} but its last "
                    f"forward consumer is layer "
                    f"{dead.info.forward_release_at} (released while "
                    f"a consumer still needs it)",
                    refs=(f"fwd#{index}",
                          f"last consumer: "
                          f"fwd#{dead.info.forward_release_at}"))
        self._free(nbytes)

    def _offload(self, step) -> None:
        index = step.index
        compress = self.policy.compresses(index)
        completed: List[StorageRecord] = []
        for rec in step.offload_candidates:
            # Mirror the executor's wire format: compressed offloads
            # stage and move comp_nbytes; device-side sizes are
            # untouched (decompression happens on the return DMA).
            wire = rec.comp_nbytes if compress else rec.nbytes
            if self.pinned_live + wire > self.pinned_capacity:
                # The executor raises PinnedMemoryError here and the
                # iteration aborts with partial stats: stop the walk at
                # the identical point.
                raise _AbortWalk(
                    f"host pinned memory exhausted at fwd {step.name}: "
                    f"{self.pinned_live} + {wire} > "
                    f"{self.pinned_capacity} bytes")
            self.pinned_live += wire
            self.pinned_peak = max(self.pinned_peak, self.pinned_live)
            self.host[rec.owner] = wire
            self.mem_pos += 1
            self.offload_pos[rec.owner] = self.mem_pos
            self.offload_bytes += wire
            completed.append(rec)
            if rec.owner not in self.flagged and (
                    not rec.info.needed_backward
                    or rec.info.forward_release_at != index):
                self.report.add(
                    "SP402",
                    f"fwd {step.name}: offload of Y{rec.owner} violates "
                    f"the refcount gate (needed_backward="
                    f"{rec.info.needed_backward}, last forward consumer "
                    f"is layer {rec.info.forward_release_at})",
                    refs=(f"fwd#{index}", f"mem op #{self.mem_pos}"))
        if not completed:
            return
        self.offloaded_at[index] = completed
        self.state.mark_offloaded(index)
        if self.sync_after_offload:
            self.synced_through = self.mem_pos
        for rec in completed:
            nbytes = self.device.pop(rec.owner, None)
            if nbytes is None:
                if rec.owner not in self.flagged:
                    self.report.add(
                        "SP404",
                        f"fwd {step.name}: post-offload release of "
                        f"Y{rec.owner} targets nothing",
                        refs=(f"fwd#{index}",))
                continue
            if rec.owner not in self.flagged \
                    and self.offload_pos[rec.owner] > self.synced_through:
                self.report.add(
                    "SP402",
                    f"fwd {step.name}: Y{rec.owner} freed while its "
                    f"offload (mem op #{self.offload_pos[rec.owner]}) "
                    f"may still be reading it — no sync since mem op "
                    f"#{self.synced_through} (missing end-of-layer "
                    f"sync, §III-B)",
                    refs=(f"fwd#{index}",
                          f"offload mem op #{self.offload_pos[rec.owner]}",
                          f"synced through #{self.synced_through}"))
            self._free(nbytes)

    # -- backward pass -------------------------------------------------
    def _backward(self, step) -> None:
        index = step.index

        for rec in step.required:
            if rec.owner in self.device:
                continue
            if rec.owner in self.host:
                self._demand_restore(step, rec)
                continue
            self._missing_required(step, rec)

        for rec in step.grad_allocs:
            if rec.owner not in self.gradients:
                self.gradients[rec.owner] = rec.nbytes
                self._alloc(rec.nbytes,
                            f"bwd {step.name}: alloc dY{rec.owner}")

        if step.ws_bytes:
            self._alloc(step.ws_bytes, f"bwd {step.name}: workspace")

        target = find_prefetch_layer(
            self.network, self.state, index,
            bounded_window=self.bounded_prefetch_window)
        launched = False
        if target is not None:
            for rec in self.offloaded_at.get(target, []):
                if rec.owner in self.restored:
                    continue
                self.device[rec.owner] = rec.nbytes
                self._alloc(rec.nbytes,
                            f"bwd {step.name}: prefetch Y{rec.owner}")
                self.mem_pos += 1
                self.prefetch_pos[rec.owner] = self.mem_pos
                wire = self.host.pop(rec.owner)
                self.prefetch_bytes += wire
                self.pinned_live -= wire
                self.restored.add(rec.owner)
                self.prefetch_restored.add(rec.owner)
                launched = True
            self._check_window(target, index)

        # The kernel reads its required buffers here: any of them that
        # arrived by an *asynchronous* prefetch must be covered by a
        # sync, or the read races the DMA (the static twin of HB003).
        for rec in step.required:
            if rec.owner not in self.prefetch_restored \
                    or rec.owner in self._sp403_checked:
                continue
            self._sp403_checked.add(rec.owner)
            pos = self.prefetch_pos[rec.owner]
            if pos > self.synced_through and rec.owner not in self.flagged:
                self.report.add(
                    "SP403",
                    f"bwd {step.name}: kernel reads Y{rec.owner} "
                    f"restored by prefetch (mem op #{pos}) with no sync "
                    f"since mem op #{self.synced_through} — the §III-C "
                    f"guarantee (prefetch ready before the next "
                    f"backward layer) does not hold",
                    refs=(f"bwd#{index}", f"prefetch mem op #{pos}",
                          f"synced through #{self.synced_through}"))

        if launched and self.sync_after_prefetch:
            self.synced_through = self.mem_pos

        for owner, is_gradient in step.releases:
            table = self.gradients if is_gradient else self.device
            nbytes = table.pop(owner, None)
            if nbytes is None:
                if owner not in self.flagged:
                    kind = "dY" if is_gradient else "Y"
                    self.report.add(
                        "SP404",
                        f"bwd {step.name}: release of {kind}{owner} "
                        f"targets nothing (already freed, or never "
                        f"allocated)",
                        refs=(f"bwd#{index}",))
                continue
            self._free(nbytes)

        if step.ws_bytes:
            self._free(step.ws_bytes)

    def _demand_restore(self, step, rec) -> None:
        # Demand fetch: blocking, so it synchronizes everything
        # issued so far — it can never race (emits nothing).
        self.device[rec.owner] = rec.nbytes
        self._alloc(rec.nbytes,
                    f"bwd {step.name}: demand restore Y{rec.owner}")
        self.mem_pos += 1
        wire = self.host.pop(rec.owner)
        self.prefetch_bytes += wire
        self.synced_through = self.mem_pos
        self.pinned_live -= wire
        self.restored.add(rec.owner)

    def _missing_required(self, step, rec) -> None:
        if rec.owner not in self.flagged:
            self.report.add(
                "SP404",
                f"bwd {step.name}: kernel needs Y{rec.owner} but it "
                f"is neither on device nor staged in host memory — "
                f"a release list freed it too early "
                f"(use-after-free)",
                refs=(f"bwd#{step.index}",))

    def _check_window(self, target: int, issue: int) -> None:
        """SP403 warning: the Fig. 10 CONV-bounded window (HB004 twin)."""
        for between in range(target + 1, issue):
            if between >= len(self.network):
                break
            if self.network[between].kind is not LayerKind.CONV:
                continue
            if between not in self.offloaded_at \
                    or between in self._window_prefetched:
                self.report.add(
                    "SP403",
                    f"prefetch of layer {target}'s X during backward of "
                    f"layer {issue} skips past CONV layer {between} "
                    f"({self.network[between].name}): outside the "
                    f"Fig. 10 search window",
                    refs=(f"bwd#{issue}", f"target fwd#{target}"),
                    severity=Severity.WARNING)
                break
        self._window_prefetched.add(target)

    # -- end of iteration ----------------------------------------------
    def _finish(self) -> None:
        """The executor's end sweep, plus the static leak check."""
        for owner, nbytes in list(self.device.items()):
            self._free(nbytes)
            rec = self.plan.records.get(owner)
            if rec is None or owner in self.flagged:
                continue
            info = rec.info
            has_consumers = info.forward_release_at != info.chain[-1]
            if info.needed_backward or has_consumers:
                self.report.add(
                    "SP404",
                    f"end sweep: Y{owner} ({rec.name}) still live after "
                    f"backward — no release list ever freed it "
                    f"(static leak)",
                    refs=("end-sweep",))
        self.device.clear()
        for owner, nbytes in list(self.gradients.items()):
            self._free(nbytes)
            if owner not in self.flagged:
                self.report.add(
                    "SP404",
                    f"end sweep: dY{owner} still live after backward — "
                    f"no release list ever freed it (static leak)",
                    refs=("end-sweep",))
        self.gradients.clear()

    def run(self) -> PlanInterpretation:
        result = PlanInterpretation(
            subject=self.report.subject,
            budget_bytes=self.budget,
            external_bytes=self.external,
        )
        try:
            for item in self.plan.persistent:
                self._alloc(item.nbytes, f"persistent W[{item.index}]")
                self._alloc(item.nbytes, f"persistent dW[{item.index}]")
            for step in self.plan.forward:
                self._forward(step)
            for step in self.plan.backward:
                self._backward(step)
            self._finish()
        except _AbortWalk as abort:
            result.aborted = str(abort)
        result.peak_bytes = self.peak
        result.peak_step = self.peak_step
        result.offload_bytes = self.offload_bytes
        result.prefetch_bytes = self.prefetch_bytes
        result.pinned_peak_bytes = self.pinned_peak
        result.first_over_budget = self.first_over_budget
        return result


def interpret_plan(
    network: Network,
    system: SystemConfig,
    plan: CompiledPlan,
    policy: TransferPolicy,
    *,
    bounded_prefetch_window: bool = True,
    sync_after_offload: bool = True,
    sync_after_prefetch: bool = True,
    report: Optional[Report] = None,
    flagged: FrozenSet[int] = frozenset(),
    subject: str = "",
) -> PlanInterpretation:
    """Abstractly execute one (plan, policy) point; no simulation runs.

    Diagnostics (SP402/SP403/SP404 walk findings) land in ``report``
    when one is given; ``flagged`` owners — already reported by
    :func:`audit_plan` — are skipped so one defect never reports twice.
    """
    return _PlanInterpreter(
        network, system, plan, policy,
        bounded_prefetch_window=bounded_prefetch_window,
        sync_after_offload=sync_after_offload,
        sync_after_prefetch=sync_after_prefetch,
        report=report, flagged=flagged, subject=subject,
    ).run()


# ----------------------------------------------------------------------
# Abstract interpretation of a joint (keep/offload/compress/recompute)
# configuration — mirrors core.joint._JointSimulation the same way the
# base interpreter mirrors _VDNNSimulation
# ----------------------------------------------------------------------
class _JointInterpreter(_PlanInterpreter):
    """Symbolic walk of one compiled plan under a joint decision set.

    Offload and compressed-offload triggers reuse the inherited walk
    verbatim (the config's policy carries the compress set).  Drop
    triggers discard their candidates with no DMA and no pinned
    staging; the backward ``_missing_required`` hook — a hard SP404 in
    the base walk — becomes the re-materialization recursion here,
    replaying producer chains abstractly (allocate Y, workspace
    alloc/free per chain member) in the exact order the executor
    replays them, so peak bytes still match the simulation bit for bit.
    """

    def __init__(self, network: Network, system: SystemConfig,
                 plan: CompiledPlan, config, **kwargs):
        super().__init__(network, system, plan, config.policy(), **kwargs)
        self.config = config
        self.drops = config.drop
        self.dropped: Set[int] = set()
        self._dead_resident: Set[int] = set()
        self._fwd_steps = {step.index: step for step in plan.forward}
        self._protected = frozenset(
            node.storage_index for node in network
            if node.kind is LayerKind.INPUT) if config.drop \
            else frozenset()
        self._sp405_seen: Set[int] = set()

    # -- forward --------------------------------------------------------
    def _dead_release(self, step, dead) -> None:
        if dead.owner in self._protected:
            return  # replays may need the input batch
        super()._dead_release(step, dead)

    def _offload(self, step) -> None:
        if step.index not in self.drops:
            super()._offload(step)
            return
        # RECOMPUTE: free now, regenerate from producers in backward.
        for rec in step.offload_candidates:
            self.dropped.add(rec.owner)
            nbytes = self.device.pop(rec.owner, None)
            if nbytes is None:
                if rec.owner not in self.flagged:
                    self.report.add(
                        "SP404",
                        f"fwd {step.name}: drop of Y{rec.owner} targets "
                        f"nothing (buffer not on device)",
                        refs=(f"fwd#{step.index}",))
                continue
            self._free(nbytes)

    # -- backward -------------------------------------------------------
    def _missing_required(self, step, rec) -> None:
        self._ensure(rec.owner, step)

    def _ensure(self, owner: int, step) -> None:
        if owner in self.device:
            return
        if owner in self.host:
            self._demand_restore(step, self.plan.records[owner])
            return
        self._remat(owner, step)

    def _remat(self, owner: int, step) -> None:
        rec = self.plan.records.get(owner)
        if rec is None or self.network[owner].kind is LayerKind.INPUT:
            # Inputs cannot be recomputed from anything: the replay
            # would allocate Y and run zero kernels — garbage data.
            if owner not in self.flagged \
                    and owner not in self._sp405_seen:
                self._sp405_seen.add(owner)
                self.report.add(
                    "SP405",
                    f"bwd {step.name}: re-materialization of Y{owner} "
                    f"bottoms out at the freed INPUT batch — inputs "
                    f"cannot be recomputed",
                    refs=(f"bwd#{step.index}",))
            if rec is None:
                return
        info = rec.info
        if not info.needed_backward:
            self._dead_resident.add(owner)
        for member in info.chain:
            for producer in self.network[member].producers:
                source = self.network[producer].storage_index
                if source != owner and source not in self.device:
                    self._ensure(source, step)
        self.device[owner] = rec.nbytes
        self._alloc(rec.nbytes,
                    f"bwd {step.name}: remat Y{owner} ({rec.name})")
        for member in info.chain:
            fstep = self._fwd_steps[member]
            if fstep.is_input:
                continue
            if fstep.ws_bytes:
                # alloc → replay kernel → free: same peak as the
                # executor's transient replay workspace.
                self._alloc(fstep.ws_bytes,
                            f"bwd {step.name}: remat workspace "
                            f"{fstep.name}(re)")
                self._free(fstep.ws_bytes)

    def _backward(self, step) -> None:
        super()._backward(step)
        if self._dead_resident:
            for owner in sorted(self._dead_resident):
                nbytes = self.device.pop(owner, None)
                if nbytes is not None:
                    self._free(nbytes)
            self._dead_resident.clear()

    # -- end of iteration ----------------------------------------------
    def _finish(self) -> None:
        # The protected input survives forward by design when anything
        # drops; free it silently so the leak sweep stays meaningful.
        for owner in self._protected:
            nbytes = self.device.pop(owner, None)
            if nbytes is not None:
                self._free(nbytes)
        super()._finish()


def interpret_joint_plan(
    network: Network,
    system: SystemConfig,
    plan: CompiledPlan,
    config,
    *,
    report: Optional[Report] = None,
    flagged: FrozenSet[int] = frozenset(),
    subject: str = "",
) -> PlanInterpretation:
    """Abstractly execute one (plan, joint config) point."""
    return _JointInterpreter(
        network, system, plan, config,
        report=report, flagged=flagged, subject=subject,
    ).run()


# ----------------------------------------------------------------------
# Structural audit (SP402/SP404): plan lifecycle vs liveness ground truth
# ----------------------------------------------------------------------
def audit_plan(network: Network, plan: CompiledPlan,
               report: Report) -> Set[int]:
    """Audit every storage's whole lifecycle against a fresh liveness.

    Position-independent checks: each allocation must be freed exactly
    once, at the step liveness dictates, by the mechanism the refcount
    gate allows.  Returns the set of flagged owners so the walk can
    skip its own (now redundant) findings for them.
    """
    liveness = LivenessAnalysis(network)
    releases = plan.release_schedule()
    dead_sites = plan.dead_release_sites()
    offload_sites = plan.offload_candidate_sites()
    grad_sites = plan.grad_alloc_sites()
    flagged: Set[int] = set()

    for info in liveness.all_storages():
        owner = info.owner
        name = network[owner].name
        has_consumers = info.forward_release_at != info.chain[-1]
        feature = [idx for idx, g in releases.get(owner, ()) if not g]
        grads = [idx for idx, g in releases.get(owner, ()) if g]
        dead = dead_sites.get(owner, [])
        offl = offload_sites.get(owner, [])

        if info.needed_backward:
            if dead:
                flagged.add(owner)
                report.add(
                    "SP402",
                    f"Y{owner} ({name}) appears in dead-release lists at "
                    f"forward steps {dead} although backward still needs "
                    f"it (Fig. 3 refcount gate)")
            expected = [info.forward_release_at] if has_consumers else []
            if offl != expected:
                flagged.add(owner)
                report.add(
                    "SP402",
                    f"Y{owner} ({name}) offload candidacy at forward "
                    f"steps {offl} disagrees with the refcount gate "
                    f"(expected {expected})")
            if not feature:
                flagged.add(owner)
                report.add(
                    "SP404",
                    f"Y{owner} ({name}) is never freed by any backward "
                    f"release list (static leak)")
            elif len(feature) > 1:
                flagged.add(owner)
                report.add(
                    "SP404",
                    f"Y{owner} ({name}) freed {len(feature)} times by "
                    f"backward release lists (double free) at steps "
                    f"{feature}")
            elif feature[0] != info.backward_release_after:
                flagged.add(owner)
                kind = ("use-after-free: freed before its last backward "
                        "consumer runs"
                        if feature[0] > info.backward_release_after
                        else "held past its last backward consumer")
                report.add(
                    "SP404",
                    f"Y{owner} ({name}) released after backward of layer "
                    f"{feature[0]}, but its last backward consumer is "
                    f"layer {info.backward_release_after} ({kind})")
        else:
            if feature:
                flagged.add(owner)
                report.add(
                    "SP404",
                    f"Y{owner} ({name}) appears in backward release "
                    f"lists at steps {feature} although backward never "
                    f"reads it")
            if offl:
                flagged.add(owner)
                report.add(
                    "SP402",
                    f"Y{owner} ({name}) is an offload candidate at "
                    f"forward steps {offl} although backward never "
                    f"reads it (nothing to restore for)")
            if has_consumers:
                if not dead:
                    flagged.add(owner)
                    report.add(
                        "SP404",
                        f"Y{owner} ({name}) is dead after forward but no "
                        f"dead-release list frees it (static leak)")
                elif len(dead) > 1:
                    flagged.add(owner)
                    report.add(
                        "SP404",
                        f"Y{owner} ({name}) freed {len(dead)} times by "
                        f"dead-release lists (double free) at steps "
                        f"{dead}")
            elif dead:
                flagged.add(owner)
                report.add(
                    "SP404",
                    f"Y{owner} ({name}) is a terminal storage (freed by "
                    f"the end sweep) but a dead-release list at steps "
                    f"{dead} frees it too (double free)")

        if info.needs_gradient:
            g_allocs = grad_sites.get(owner, [])
            if g_allocs != [info.gradient_alloc_at]:
                flagged.add(owner)
                report.add(
                    "SP404",
                    f"dY{owner} ({name}) allocation sites {g_allocs} "
                    f"disagree with liveness (first gradient writer is "
                    f"layer {info.gradient_alloc_at})")
            if grads != [info.gradient_release_after]:
                flagged.add(owner)
                report.add(
                    "SP404",
                    f"dY{owner} ({name}) release sites {grads} disagree "
                    f"with liveness (freed after the owner's backward, "
                    f"layer {info.gradient_release_after})")
        elif grads or grad_sites.get(owner):
            flagged.add(owner)
            report.add(
                "SP404",
                f"dY{owner} ({name}) is allocated/released although no "
                f"backward step writes a gradient for it")
    return flagged


# ----------------------------------------------------------------------
# SP407: compression-model consistency
# ----------------------------------------------------------------------
def audit_compression(network: Network, system: SystemConfig,
                      plan: CompiledPlan, report: Report) -> None:
    """Re-derive every record's wire format from the compression model.

    A plan whose ``comp_nbytes`` disagrees with the model (or escapes
    ``(0, nbytes]``) would make the static walk and the simulation
    account different PCIe traffic and pinned pressure for compressed
    policies — the exact drift the bit-equality differential tests
    exist to catch, reported here before anything runs.
    """
    comp = system.compression
    relu_owners = frozenset(
        node.storage_index for node in network
        if node.kind is LayerKind.ACTV)
    span = max(1, len(network) - 1)
    for owner in sorted(plan.records):
        rec = plan.records[owner]
        if rec.nbytes and not 0 < rec.comp_nbytes <= rec.nbytes:
            report.add(
                "SP407",
                f"Y{owner} ({rec.name}) wire size {rec.comp_nbytes} "
                f"escapes (0, {rec.nbytes}] — a compressed transfer must "
                f"move at least one and at most nbytes bytes")
            continue
        expected = comp.compressed_bytes(
            rec.nbytes, owner in relu_owners, owner / span)
        if rec.comp_nbytes != expected:  # repro: allow(LINT204)
            report.add(
                "SP407",
                f"Y{owner} ({rec.name}) wire size {rec.comp_nbytes} "
                f"disagrees with the compression model "
                f"(expected {expected} bytes)")
            continue
        expected_seconds = comp.engine_latency \
            + system.pcie.dma_time(rec.comp_nbytes)
        if rec.comp_dma_seconds != expected_seconds:  # repro: allow(LINT204)
            report.add(
                "SP407",
                f"Y{owner} ({rec.name}) compressed DMA duration "
                f"{rec.comp_dma_seconds} disagrees with engine latency "
                f"+ link time ({expected_seconds})")


# ----------------------------------------------------------------------
# Entry points for training plans
# ----------------------------------------------------------------------
def verify_compiled_plan(
    network: Network,
    system: SystemConfig,
    plan: CompiledPlan,
    policy: TransferPolicy,
    *,
    bounded_prefetch_window: bool = True,
    sync_after_offload: bool = True,
    sync_after_prefetch: bool = True,
    subject: str = "",
) -> Report:
    """Prove (or refute) the SP4xx rules for one compiled plan."""
    report = Report(subject=subject or
                    f"{plan.network_name} {policy.describe()} [static]")
    flagged = frozenset(audit_plan(network, plan, report))
    audit_compression(network, system, plan, report)
    interp = interpret_plan(
        network, system, plan, policy,
        bounded_prefetch_window=bounded_prefetch_window,
        sync_after_offload=sync_after_offload,
        sync_after_prefetch=sync_after_prefetch,
        report=report, flagged=flagged, subject=report.subject)
    if interp.aborted is not None:
        report.add("SP401",
                   f"plan aborts before completing: {interp.aborted}",
                   refs=("pinned-host budget",))
    elif interp.first_over_budget is not None:
        report.add("SP401",
                   f"statically computed peak {interp.max_usage_bytes} "
                   f"bytes exceeds GPU capacity {interp.budget_bytes} "
                   f"bytes; first over-budget allocation: "
                   f"{interp.first_over_budget}")
    return report


def verify_plan(
    network: Network,
    system: SystemConfig,
    policy: TransferPolicy,
    algos: AlgoConfig,
    *,
    bounded_prefetch_window: bool = True,
    sync_after_offload: bool = True,
    sync_after_prefetch: bool = True,
    subject: str = "",
) -> Report:
    """Build (or fetch) the compiled plan for a point and verify it."""
    plan = compiled_plan(network, system, algos)
    return verify_compiled_plan(
        network, system, plan, policy,
        bounded_prefetch_window=bounded_prefetch_window,
        sync_after_offload=sync_after_offload,
        sync_after_prefetch=sync_after_prefetch,
        subject=subject)


def verify_joint_plan(
    network: Network,
    system: SystemConfig,
    config,
    algos: AlgoConfig,
    subject: str = "",
) -> Report:
    """Prove the SP4xx rules for one joint configuration.

    Same ledger as :func:`verify_compiled_plan` (structural audit,
    SP407 compression consistency, the abstract walk, the SP401 tail),
    plus the SP405 obligation every drop trigger adds: each dropped
    storage must be re-materializable from state the mixed schedule
    actually keeps resident — which the joint walk itself discharges,
    reporting any replay that bottoms out at the freed INPUT batch.
    """
    report = Report(subject=subject or
                    f"{network.name} {config.describe()} [static]")
    plan = compiled_plan(network, system, algos)
    flagged = frozenset(audit_plan(network, plan, report))
    audit_compression(network, system, plan, report)
    interp = interpret_joint_plan(
        network, system, plan, config,
        report=report, flagged=flagged, subject=report.subject)
    if interp.aborted is not None:
        report.add("SP401",
                   f"plan aborts before completing: {interp.aborted}",
                   refs=("pinned-host budget",))
    elif interp.first_over_budget is not None:
        report.add("SP401",
                   f"statically computed peak {interp.max_usage_bytes} "
                   f"bytes exceeds GPU capacity {interp.budget_bytes} "
                   f"bytes; first over-budget allocation: "
                   f"{interp.first_over_budget}")
    return report


# ----------------------------------------------------------------------
# Static vDNN_dyn: replay the profiling ladder without simulating
# ----------------------------------------------------------------------
@dataclass
class StaticProbe:
    """Record of one interpreted (not simulated) ladder probe."""

    description: str
    policy_label: str
    algo_label: str
    trainable: bool


def plan_dynamic_static(
    network: Network, system: SystemConfig
) -> Tuple[TransferPolicy, AlgoConfig, List[StaticProbe]]:
    """The vDNN_dyn configuration, chosen by interpretation alone.

    Replays :func:`repro.core.dynamic.run_profiling_ladder` — the exact
    probe order and descriptions of :func:`plan_dynamic` — but each
    probe is an abstract walk of the compiled plan instead of a
    simulation, so trainability (peak + external vs budget, pinned
    abort) is decided without executing anything.  The differential
    suite asserts both ladders adopt the identical configuration.

    Raises :class:`repro.core.dynamic.UntrainableError` exactly when
    the dynamic planner would.
    """
    passes: List[StaticProbe] = []

    def probe(policy: TransferPolicy, algos: AlgoConfig,
              description: str) -> PlanInterpretation:
        plan = compiled_plan(network, system, algos)
        interp = interpret_plan(network, system, plan, policy,
                                subject=description)
        passes.append(StaticProbe(description, policy.describe(),
                                  algos.label, interp.trainable))
        return interp

    policy, algos, _adopted = run_profiling_ladder(
        network, probe, system.gpu.memory_bytes)
    return policy, algos, passes


def plan_joint_static(
    network: Network, system: SystemConfig
) -> Tuple["JointConfig", AlgoConfig, List[StaticProbe]]:
    """The joint configuration, chosen by interpretation alone.

    The joint analogue of :func:`plan_dynamic_static`: replays
    :func:`repro.core.joint.run_joint_ladder` probe for probe, each an
    abstract walk under :class:`_JointInterpreter`.  The ladder adopts
    by trainability and the deterministic plan-derived cost model only
    — never by simulated time — so this and
    :func:`repro.core.joint.plan_joint` always settle on the identical
    configuration (the parity differential test pins it).
    """
    from ..core.joint import run_joint_ladder

    passes: List[StaticProbe] = []

    def probe(config, algos: AlgoConfig,
              description: str) -> PlanInterpretation:
        plan = compiled_plan(network, system, algos)
        interp = interpret_joint_plan(network, system, plan, config,
                                      subject=description)
        passes.append(StaticProbe(description, config.describe(),
                                  algos.label, interp.trainable))
        return interp

    config, algos, _adopted = run_joint_ladder(
        network, system, probe, system.gpu.memory_bytes)
    return config, algos, passes


# ----------------------------------------------------------------------
# Point / zoo drivers (mirror verify.verify_point's subjects, so the
# differential harness can pair static and dynamic reports by subject)
# ----------------------------------------------------------------------
def _algos(network: Network, algo: str) -> AlgoConfig:
    if algo == "m":
        return AlgoConfig.memory_optimal(network)
    return AlgoConfig.performance_optimal(network)


def verify_point_static(
    network: Network,
    policy: str = "all",
    algo: str = "p",
    system: Optional[SystemConfig] = None,
) -> Report:
    """Statically verify one (network, policy, algo) point.

    Subjects match :func:`repro.analysis.verify.verify_point` so the
    two sweeps zip together point for point.
    """
    from ..core.dynamic import UntrainableError

    system = system or PAPER_SYSTEM
    subject = f"{network.name} {policy}({algo})"
    if policy == "base":
        # Baseline allocates network-wide up front: there is no
        # schedule to prove, only the feasibility bound of §IV-A.
        plan = compiled_plan(network, system, _algos(network, algo))
        report = Report(subject=subject)
        total = plan.baseline_breakdown["total"]
        if total > system.gpu.memory_bytes:
            report.add(
                "SP401",
                f"network-wide allocation of {total} bytes exceeds GPU "
                f"capacity of {system.gpu.memory_bytes} bytes")
        return report
    if policy == "dyn":
        subject = f"{network.name} dyn"
        try:
            transfer, algos, _passes = plan_dynamic_static(network, system)
        except UntrainableError:
            return Report(subject=f"{subject} (untrainable, skipped)")
        return verify_plan(network, system, transfer, algos,
                           subject=subject)
    if policy == "joint":
        subject = f"{network.name} joint"
        try:
            config, algos, _passes = plan_joint_static(network, system)
        except UntrainableError:
            return Report(subject=f"{subject} (untrainable, skipped)")
        return verify_joint_plan(network, system, config, algos,
                                 subject=subject)
    transfer = {
        "all": TransferPolicy.vdnn_all,
        "conv": TransferPolicy.vdnn_conv,
        "comp": TransferPolicy.vdnn_comp,
        "none": TransferPolicy.none,
    }[policy]()
    return verify_plan(network, system, transfer, _algos(network, algo),
                       subject=subject)


def verify_zoo_static(
    names: Optional[Sequence[str]] = None,
    batch: Optional[int] = None,
    policies: Optional[Sequence[Tuple[str, str]]] = None,
    system: Optional[SystemConfig] = None,
) -> List[Report]:
    """Statically verify the whole sweep grid; builds each network once.

    No worker pool: the entire 140-point grid interprets in a few
    seconds, so process fan-out would only add overhead.
    """
    from ..zoo import available, build

    if policies is None:
        from .verify import SWEEP_POLICIES
        policies = SWEEP_POLICIES
    names = list(names) if names else available()
    reports: List[Report] = []
    for name in names:
        network = build(name, batch)
        for policy, algo in policies:
            reports.append(verify_point_static(
                network, policy=policy, algo=algo, system=system))
    return reports


# ----------------------------------------------------------------------
# SP405: checkpoint/recompute plans
# ----------------------------------------------------------------------
def verify_recompute_plan(
    network: Network,
    segment_count: Optional[int] = None,
    plan: Optional[CheckpointPlan] = None,
    keep_input: bool = True,
    subject: str = "",
) -> Report:
    """Prove a checkpoint plan re-materializes everything it drops.

    Two layers of checks: the partition itself (checkpoints and dropped
    sets disjoint, covering exactly the droppable storages, in order),
    then an abstract regeneration walk — every dropped storage must be
    reachable from still-resident state by replaying producers, exactly
    the recursion :meth:`_RecomputeSimulation._ensure_storage` performs.

    ``keep_input=False`` models the ablation where the input batch does
    not survive forward propagation (the executor's input-protection
    guard removed): regeneration then bottoms out at freed state for
    any segment whose replay reaches the INPUT storage.
    """
    report = Report(subject=subject or f"{network.name} recompute [static]")
    liveness = LivenessAnalysis(network)
    if plan is None:
        plan = checkpoint_plan(network, liveness, segment_count)

    droppable_expected = sorted(
        s.owner for s in liveness.all_storages()
        if s.needed_backward
        and network[s.owner].is_feature_extraction
        and network[s.owner].kind is not LayerKind.INPUT)
    order = list(plan.droppable_order)

    overlap = plan.checkpoints & plan.dropped
    if overlap:
        report.add(
            "SP405",
            f"checkpoint partition inconsistent: storages "
            f"{sorted(overlap)} are both checkpointed and dropped")
    if set(order) != (plan.checkpoints | plan.dropped):
        report.add(
            "SP405",
            f"checkpoint partition inconsistent: droppable order "
            f"{order} does not cover checkpoints ∪ dropped exactly")
    if sorted(order) != droppable_expected:
        report.add(
            "SP405",
            f"droppable order {order} disagrees with liveness "
            f"(expected owners {droppable_expected})")
    elif order != sorted(order):
        report.add(
            "SP405",
            f"droppable order {order} is not ascending — the segment "
            f"walk-back would anchor on the wrong checkpoint")

    # Abstract regeneration walk.  Resident entering backward: every
    # needed-backward storage the forward pass did not drop, plus the
    # protected input batch.
    resident = {
        s.owner for s in liveness.all_storages()
        if s.needed_backward and s.owner not in plan.dropped
    }
    input_owners = {n.storage_index for n in network
                    if n.kind is LayerKind.INPUT}
    if plan.dropped:
        if keep_input:
            resident |= input_owners
        else:
            resident -= input_owners

    memo: Dict[int, bool] = {}

    def materializable(owner: int, stack: Set[int]) -> bool:
        if owner in resident:
            return True
        if owner in memo:
            return memo[owner]
        if owner in stack:
            return False
        if network[owner].kind is LayerKind.INPUT:
            return False  # inputs cannot be recomputed from anything
        stack.add(owner)
        good = True
        info = liveness.storages[owner]
        for member in info.chain:
            for producer in network[member].producers:
                source = network[producer].storage_index
                if source == owner:
                    continue
                if not materializable(source, stack):
                    good = False
        stack.discard(owner)
        memo[owner] = good
        return good

    for owner in sorted(plan.dropped):
        if not materializable(owner, set()):
            report.add(
                "SP405",
                f"dropped storage Y{owner} ({network[owner].name}) "
                f"cannot be re-materialized before its backward "
                f"consumer: regeneration bottoms out at freed state")
    return report


# ----------------------------------------------------------------------
# SP406: serve ServicePlan accounting
# ----------------------------------------------------------------------
def verify_service_plan(
    network: Network,
    system: Optional[SystemConfig],
    algos: AlgoConfig,
    plan,
    subject: str = "",
) -> Report:
    """Check a :class:`~repro.serve.layering.ServicePlan`'s invariants.

    Re-derives the plan's accounting from first principles (per-layer
    weights, liveness-based activation peak) and checks the pipeline
    identities that must hold for any serial-DMA/serial-compute
    recurrence.  Pass ``system=None`` to skip the SP401 footprint-vs-
    budget warning.
    """
    from ..core.inference import weight_load_bytes
    from ..serve.layering import activation_peak_bytes, streamed_layer_bytes

    report = Report(subject=subject or
                    f"{plan.model} serve[{plan.residency}] [static]")
    weights = weight_load_bytes(network)
    streamed = streamed_layer_bytes(network, plan)

    if plan.persistent_bytes + plan.streamed_bytes != plan.weight_bytes:  # repro: allow(LINT204)
        report.add(
            "SP406",
            f"persistent {plan.persistent_bytes} + streamed "
            f"{plan.streamed_bytes} != total weights "
            f"{plan.weight_bytes} bytes")
    if sum(streamed.values()) != plan.streamed_bytes:  # repro: allow(LINT204)
        report.add(
            "SP406",
            f"streamed_bytes {plan.streamed_bytes} disagrees with the "
            f"per-layer streamed map (sums to {sum(streamed.values())})")
    unknown = sorted(set(plan.pinned_layers) - set(weights))
    if unknown:
        report.add(
            "SP406",
            f"pinned layers {unknown} have no weights to pin")
    pinned_sum = sum(weights[i] for i in plan.pinned_layers
                     if i in weights)
    if pinned_sum != plan.persistent_bytes:  # repro: allow(LINT204)
        report.add(
            "SP406",
            f"pinned layers sum to {pinned_sum} bytes but "
            f"persistent_bytes is {plan.persistent_bytes}")
    if plan.residency == "resident" and plan.streamed_bytes:
        report.add(
            "SP406",
            f"resident plan streams {plan.streamed_bytes} bytes — "
            f"resident residency must keep every weight on-device")
    if plan.residency == "layered" and plan.persistent_bytes:
        report.add(
            "SP406",
            f"layered plan pins {plan.persistent_bytes} bytes — "
            f"layered residency keeps nothing persistent")
    if plan.streamed_bytes:
        largest = max(streamed.values(), default=0)
        if plan.window_bytes < largest:
            report.add(
                "SP406",
                f"window of {plan.window_bytes} bytes cannot hold the "
                f"largest streamed layer ({largest} bytes): the "
                f"pipeline can never make progress")
    elif plan.window_bytes or plan.dma_seconds or plan.stall_seconds:
        report.add(
            "SP406",
            f"nothing streams but window={plan.window_bytes}, "
            f"dma={plan.dma_seconds}, stall={plan.stall_seconds} are "
            f"not all zero")
    if plan.stall_seconds > plan.dma_seconds + 1e-9:
        report.add(
            "SP406",
            f"stall {plan.stall_seconds}s exceeds total DMA "
            f"{plan.dma_seconds}s: compute can only idle while a "
            f"transfer is in flight")
    if not math.isclose(plan.service_seconds,
                        plan.compute_seconds + plan.stall_seconds,
                        rel_tol=1e-9, abs_tol=1e-12):
        report.add(
            "SP406",
            f"service {plan.service_seconds}s != compute "
            f"{plan.compute_seconds}s + stall {plan.stall_seconds}s")
    expected_act = activation_peak_bytes(network, algos)
    if plan.activation_bytes != expected_act:  # repro: allow(LINT204)
        report.add(
            "SP406",
            f"activation_bytes {plan.activation_bytes} disagrees with "
            f"the liveness-derived peak {expected_act}")
    if system is not None \
            and plan.footprint_bytes > system.gpu.memory_bytes:
        report.add(
            "SP401",
            f"service footprint {plan.footprint_bytes} bytes exceeds "
            f"GPU capacity {system.gpu.memory_bytes} bytes")
    return report

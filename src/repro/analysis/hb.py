"""Happens-before race detection over schedule traces (pass 1).

Builds the happens-before relation of one :class:`ScheduleTrace` with a
single forward scan (vector clocks keyed by stream), then checks the
ordering invariants vDNN's correctness rests on:

* **HB001** — generic race: two accesses to one buffer epoch on
  different streams, at least one a write (or the epoch's release), with
  no happens-before path in either direction.
* **HB002** — release-before-transfer-complete: an offloaded feature
  map's pool block is released without an ordering edge from the offload
  DMA (the end-of-layer synchronization of Section III-B is what
  normally provides it).
* **HB003** — use-before-prefetch-complete: a backward kernel reads a
  restored buffer without an ordering edge from the prefetch DMA (the
  "guaranteed to be ready before layer(n-1)" sync of Section III-C).
* **HB004** (warning) — prefetch outside the Fig. 10 CONV-bounded
  search window: the restored X sits live across an intervening CONV
  layer's backward step, exactly the eager-prefetch behavior the
  bounded window exists to prevent.

The vector-clock model (see docs/analysis.md for the derivation):
streams execute their own ops in order; ``ALLOC``/``SYNC`` are
host-synchronous, so they are ordered with everything issued later;
``FREE`` is stream-ordered (cnmem's asynchronous release); kernels and
transfers are asynchronous, ordered across streams only through a sync
or an explicit event wait.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..graph.layer import LayerKind
from ..graph.network import Network
from .diagnostics import Diagnostic
from .trace import OpKind, ScheduleTrace, TraceOp


class HBGraph:
    """The happens-before relation of one trace, as per-op vector clocks.

    ``clock[i][stream]`` is the highest position on ``stream`` whose op
    is guaranteed complete before op ``i`` *starts*; ``a`` happens-before
    ``b`` iff ``clock[b][a.stream] >= a.pos``.
    """

    def __init__(self, trace: ScheduleTrace):
        self.trace = trace
        self.clock: List[Dict[str, int]] = []
        self._by_position: Dict[Tuple[str, int], int] = {
            (op.stream, op.pos): op.seq for op in trace.ops
        }
        self._build()

    def _build(self) -> None:
        host: Dict[str, int] = {}      # completions the host has observed
        last_on: Dict[str, int] = {}   # stream -> seq of its latest op
        for op in self.trace.ops:
            clock = dict(host)
            if not op.kind.host_synchronous:
                # In-order stream: the previous op on this stream (and
                # everything it saw) completes before this one starts.
                prev = last_on.get(op.stream)
                if prev is not None:
                    self._merge(clock, self.clock[prev])
                    prev_op = self.trace.ops[prev]
                    clock[op.stream] = max(clock.get(op.stream, -1),
                                           prev_op.pos)
            if op.wait_stream and op.wait_pos >= 0:
                # SYNC, or an async op gated on an event ("everything on
                # wait_stream through wait_pos has completed").
                clock[op.wait_stream] = max(clock.get(op.wait_stream, -1),
                                            op.wait_pos)
                waited = self._by_position.get((op.wait_stream, op.wait_pos))
                if waited is not None:
                    self._merge(clock, self.clock[waited])
            self.clock.append(clock)
            last_on[op.stream] = op.seq
            if op.kind.host_synchronous:
                # Completes at issue: the host observes it (and its
                # whole past) immediately.
                self._merge(host, clock)
                host[op.stream] = max(host.get(op.stream, -1), op.pos)

    @staticmethod
    def _merge(into: Dict[str, int], other: Dict[str, int]) -> None:
        for stream, pos in other.items():
            if into.get(stream, -1) < pos:
                into[stream] = pos

    # ------------------------------------------------------------------
    def happens_before(self, a: TraceOp, b: TraceOp) -> bool:
        """True when ``a`` is guaranteed complete before ``b`` starts."""
        return self.clock[b.seq].get(a.stream, -1) >= a.pos

    def ordered(self, a: TraceOp, b: TraceOp) -> bool:
        """True when the pair is ordered in either direction."""
        return self.happens_before(a, b) or self.happens_before(b, a)


@dataclass
class _Epoch:
    """One buffer lifetime: ALLOC .. FREE with the accesses in between."""

    buffer: str
    alloc: Optional[TraceOp]
    free: Optional[TraceOp] = None
    accesses: List[Tuple[TraceOp, str]] = field(default_factory=list)  # op, "r"/"w"


def _collect_epochs(trace: ScheduleTrace) -> List[_Epoch]:
    epochs: List[_Epoch] = []
    open_epochs: Dict[str, _Epoch] = {}

    def epoch_for(buffer: str) -> _Epoch:
        epoch = open_epochs.get(buffer)
        if epoch is None:
            # Access to a buffer with no open lifetime: safety pass
            # reports it (MS101/MS102); keep an implicit epoch so the
            # ordering rules still apply to whatever else touches it.
            epoch = _Epoch(buffer=buffer, alloc=None)
            open_epochs[buffer] = epoch
            epochs.append(epoch)
        return epoch

    for op in trace.ops:
        if op.kind is OpKind.ALLOC:
            epoch = _Epoch(buffer=op.buffer, alloc=op)
            open_epochs[op.buffer] = epoch
            epochs.append(epoch)
        elif op.kind is OpKind.FREE:
            epoch = epoch_for(op.buffer)
            epoch.free = op
            del open_epochs[op.buffer]
        else:
            for buffer in op.reads:
                epoch_for(buffer).accesses.append((op, "r"))
            for buffer in op.writes:
                epoch_for(buffer).accesses.append((op, "w"))
    return epochs


def check_races(
    trace: ScheduleTrace,
    hb: Optional[HBGraph] = None,
    network: Optional[Network] = None,
    subject: str = "",
) -> List[Diagnostic]:
    """Run the HB001-HB004 rules; returns the diagnostics found."""
    hb = hb or HBGraph(trace)
    diagnostics: List[Diagnostic] = []
    reported: Set[Tuple[int, int]] = set()

    def report(rule: str, message: str, *ops: TraceOp) -> None:
        if len(ops) == 2:
            reported.add((ops[0].seq, ops[1].seq))
            reported.add((ops[1].seq, ops[0].seq))
        diagnostics.append(Diagnostic.make(
            rule, message, subject=subject,
            refs=[op.ref() for op in ops]))

    epochs = _collect_epochs(trace)
    for epoch in epochs:
        if epoch.free is not None:
            # HB002: every offload of this lifetime must complete before
            # the release recycles its bytes.
            for op, _mode in epoch.accesses:
                if op.kind is OpKind.OFFLOAD and \
                        not hb.happens_before(op, epoch.free):
                    report(
                        "HB002",
                        f"{epoch.buffer} released while its offload may "
                        f"still be reading device memory",
                        op, epoch.free)
            # Release racing any other access (reads included: freeing a
            # buffer a kernel may still be reading is a race).
            for op, _mode in epoch.accesses:
                if (op.seq, epoch.free.seq) in reported:
                    continue
                if op.stream != epoch.free.stream and \
                        not hb.ordered(op, epoch.free):
                    report(
                        "HB001",
                        f"{epoch.buffer} released concurrently with an "
                        f"unordered {op.kind.value} access",
                        op, epoch.free)

        # HB003: prefetched data must land before any kernel reads it.
        transfers_in = [op for op, mode in epoch.accesses
                        if op.kind is OpKind.PREFETCH]
        for transfer in transfers_in:
            for op, mode in epoch.accesses:
                if op.kind is OpKind.KERNEL and mode == "r" \
                        and op.seq > transfer.seq \
                        and not hb.happens_before(transfer, op):
                    report(
                        "HB003",
                        f"{epoch.buffer} read by {op.label or 'a kernel'} "
                        f"before its prefetch is guaranteed complete",
                        transfer, op)
                    break  # one finding per unsynchronized transfer

        # HB001: remaining unordered conflicting access pairs.
        for i, (a, mode_a) in enumerate(epoch.accesses):
            for b, mode_b in epoch.accesses[i + 1:]:
                if a.stream == b.stream:
                    continue
                if mode_a == "r" and mode_b == "r":
                    continue
                if (a.seq, b.seq) in reported:
                    continue
                if not hb.ordered(a, b):
                    report(
                        "HB001",
                        f"unordered {mode_a}/{mode_b} accesses to "
                        f"{epoch.buffer} on different streams",
                        a, b)

    if network is not None:
        diagnostics.extend(_check_prefetch_window(trace, network, subject))
    return diagnostics


def _check_prefetch_window(
    trace: ScheduleTrace, network: Network, subject: str
) -> List[Diagnostic]:
    """HB004: re-derive the Fig. 10 window bound for every prefetch.

    ``findPrefetchLayer`` walking down from layer ``n`` stops at the
    first CONV layer that does not itself need prefetching, so a bounded
    search can never return a target ``t`` with a CONV layer strictly
    between ``t`` and ``n`` that either never offloaded or was already
    prefetched.  Any prefetch violating that was found by an unbounded
    (or buggy) search.
    """
    diagnostics: List[Diagnostic] = []
    offload_triggers = {op.target_layer
                        for op in trace.of_kind(OpKind.OFFLOAD)
                        if op.target_layer >= 0}
    prefetched: Set[int] = set()
    for op in trace.of_kind(OpKind.PREFETCH):
        target, issue = op.target_layer, op.layer_index
        if op.demand or target < 0 or issue < 0:
            continue
        for between in range(target + 1, issue):
            if between >= len(network):
                break
            if network[between].kind is not LayerKind.CONV:
                continue
            if between not in offload_triggers or between in prefetched:
                diagnostics.append(Diagnostic.make(
                    "HB004",
                    f"prefetch of layer {target}'s X during backward of "
                    f"layer {issue} skips past CONV layer {between} "
                    f"({network[between].name}): outside the Fig. 10 "
                    f"search window",
                    subject=subject, refs=[op.ref()]))
                break
        prefetched.add(target)
    return diagnostics

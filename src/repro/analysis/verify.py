"""The schedule sanitizer driver: simulate once, then verify statically.

``verify_point`` runs one (network, policy, algo) simulation with
``verify=True`` — the executor records a :class:`ScheduleTrace`
alongside its timeline — and feeds the trace to both analysis passes
(:mod:`repro.analysis.hb` and :mod:`repro.analysis.safety`).  No
re-simulation happens per rule: the passes are pure functions of the
already-generated artifacts.

``verify_zoo`` sweeps every zoo network across the paper's policy grid
{base, vDNN_conv, vDNN_all, vDNN_dyn} x {m, p} (dynamic picks its own
algorithms, so it contributes one point), optionally fanning points out
over worker processes — the CI ``verify-sweep`` gate.

``verify_schedule`` checks the multi-tenant scheduler's shared-pool
schedules (MT3xx rules): budget never exceeded, residency intervals
well-formed, no job allocation leaked, lifecycle records consistent.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from ..core.algo_config import AlgoConfig
from ..core.dynamic import UntrainableError, plan_dynamic
from ..core.executor import IterationResult, simulate_baseline, simulate_vdnn
from ..core.liveness import LivenessAnalysis
from ..core.policy import TransferPolicy
from ..graph.network import Network
from ..hw.config import PAPER_SYSTEM, SystemConfig
from ..sched.scheduler import ScheduleResult
from ..sim.timeline import EventKind
from .diagnostics import Report
from .hb import HBGraph, check_races
from .safety import check_memory_safety
from .trace import ScheduleTrace

#: The CI sweep grid: the four paper policies plus the cDMA-compressed
#: offload and the joint keep/offload/compress/recompute planner;
#: dynamic and joint select their own algorithm configuration, so each
#: is one point instead of two.
SWEEP_POLICIES: Tuple[Tuple[str, str], ...] = (
    ("base", "m"), ("base", "p"),
    ("conv", "m"), ("conv", "p"),
    ("all", "m"), ("all", "p"),
    ("comp", "m"), ("comp", "p"),
    ("dyn", "-"),
    ("joint", "-"),
)


def analyze_trace(
    trace: ScheduleTrace,
    network: Optional[Network] = None,
    liveness: Optional[LivenessAnalysis] = None,
    subject: str = "",
) -> Report:
    """Run both trace passes (races, memory safety) over one trace."""
    report = Report(subject=subject)
    hb = HBGraph(trace)
    report.extend(check_races(trace, hb, network=network, subject=subject))
    report.extend(check_memory_safety(trace, hb, liveness=liveness,
                                      subject=subject))
    return report


def verify_result(result: IterationResult,
                  network: Optional[Network] = None,
                  subject: str = "") -> Report:
    """Verify an executor result that carries a schedule trace."""
    subject = subject or f"{result.network_name} {result.label}"
    if result.schedule_trace is None:
        raise ValueError(
            f"{subject}: result carries no schedule trace; re-run the "
            f"simulation with verify=True")
    if result.failure and ("pinned" in result.failure
                           or "DMA transfer permanently failed"
                           in result.failure):
        # The iteration aborted mid-flight (pinned-host exhaustion or a
        # DMA that ran out of retries): the trace is truncated, so its
        # dangling lifetimes are artifacts, not leaks.
        return Report(subject=f"{subject} (aborted: {result.failure})")
    liveness = LivenessAnalysis(network) if network is not None else None
    return analyze_trace(result.schedule_trace, network=network,
                         liveness=liveness, subject=subject)


def verify_point(
    network: Network,
    policy: str = "all",
    algo: str = "p",
    system: Optional[SystemConfig] = None,
) -> Report:
    """Simulate one configuration with tracing on, then verify it."""
    system = system or PAPER_SYSTEM
    subject = f"{network.name} {policy}({algo})"
    if policy == "base":
        algos = _algos(network, algo)
        result = simulate_baseline(network, system, algos, verify=True)
    elif policy == "dyn":
        subject = f"{network.name} dyn"
        try:
            plan = plan_dynamic(network, system)
        except UntrainableError:
            # Nothing to verify: the planner found no feasible schedule,
            # so no schedule exists to be racy or unsafe.
            return Report(subject=f"{subject} (untrainable, skipped)")
        result = simulate_vdnn(network, system, plan.policy, plan.algos,
                               verify=True)
    elif policy == "joint":
        subject = f"{network.name} joint"
        from ..core.joint import plan_joint, simulate_joint_config

        try:
            jplan = plan_joint(network, system)
        except UntrainableError:
            return Report(subject=f"{subject} (untrainable, skipped)")
        result = simulate_joint_config(network, system, jplan.config,
                                       jplan.algos, verify=True)
    else:
        transfer = {
            "all": TransferPolicy.vdnn_all,
            "conv": TransferPolicy.vdnn_conv,
            "comp": TransferPolicy.vdnn_comp,
            "none": TransferPolicy.none,
        }[policy]()
        result = simulate_vdnn(network, system, transfer,
                               _algos(network, algo), verify=True)
    return verify_result(result, network=network, subject=subject)


def _algos(network: Network, algo: str) -> AlgoConfig:
    if algo == "m":
        return AlgoConfig.memory_optimal(network)
    return AlgoConfig.performance_optimal(network)


# ----------------------------------------------------------------------
# Zoo sweep (the CI gate)
# ----------------------------------------------------------------------
def _verify_point_task(task: Tuple[str, Optional[int], str, str]) -> Report:
    """Worker entry: build the network in-process and verify one point."""
    from ..zoo import build

    name, batch, policy, algo = task
    return verify_point(build(name, batch), policy=policy, algo=algo)


def verify_zoo(
    names: Optional[Sequence[str]] = None,
    batch: Optional[int] = None,
    jobs: int = 1,
    policies: Sequence[Tuple[str, str]] = SWEEP_POLICIES,
    mode: str = "dynamic",
) -> List[Report]:
    """Verify every (network, policy, algo) point of the sweep grid.

    ``mode`` selects the engine:

    * ``dynamic`` — simulate each point with tracing on and run the
      trace passes (the historical behaviour; one simulation per point).
    * ``static`` — prove the SP4xx invariants by abstract
      interpretation of the compiled plans
      (:mod:`repro.analysis.static_plan`); no simulation executes.
    * ``hybrid`` — static sweep first, then dynamic re-verification
      only for the points the static pass could not certify clean.
      Since static-clean implies dynamic-clean (the differential suite
      proves it), the skipped simulations are redundant by
      construction.  Reports keep grid order; re-verified points carry
      the dynamic report.
    """
    from ..zoo import available

    if mode not in ("dynamic", "static", "hybrid"):
        raise ValueError(f"unknown verify mode {mode!r}")
    if mode == "static":
        from .static_plan import verify_zoo_static

        return verify_zoo_static(names=names, batch=batch,
                                 policies=policies)

    names = list(names) if names else available()
    tasks = [(name, batch, policy, algo)
             for name in names for policy, algo in policies]

    if mode == "hybrid":
        from .static_plan import verify_zoo_static

        reports = verify_zoo_static(names=names, batch=batch,
                                    policies=policies)
        tasks = [task for task, report in zip(tasks, reports)
                 if not report.ok]
        if not tasks:
            return reports
        merged = list(reports)
        dirty = iter(_run_tasks(tasks, jobs))
        for position, report in enumerate(merged):
            if not report.ok:
                merged[position] = next(dirty)
        return merged

    return _run_tasks(tasks, jobs)


def _run_tasks(tasks: Sequence[Tuple[str, Optional[int], str, str]],
               jobs: int) -> List[Report]:
    if jobs > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            return list(pool.map(_verify_point_task, tasks))
    return [_verify_point_task(task) for task in tasks]


# ----------------------------------------------------------------------
# Multi-tenant shared-pool schedules
# ----------------------------------------------------------------------
def verify_schedule(result: ScheduleResult, subject: str = "") -> Report:
    """Check one multi-tenant schedule's shared-pool invariants.

    Budget checks honour the budget *step function*: a mid-run shrink
    (fault injection) lowers the bound from its instant onward, so
    occupancy legal under the earlier, larger budget is not flagged.
    """
    report = Report(subject=subject or f"multi-tenant {result.policy}")

    steps = sorted(result.budget_timeline) or [(0.0, result.budget_bytes)]
    max_budget = max(budget for _when, budget in steps)
    if result.peak_pool_bytes > max_budget:
        report.add(
            "MT301",
            f"pool high-water {result.peak_pool_bytes} bytes exceeds "
            f"budget {max_budget} bytes")

    # Usage samples against the budget in force strictly before each
    # sample: samples logged *during* a multi-victim shrink (occupancy
    # still draining at the shrink instant) are judged by the budget
    # they were accumulated under, not the one being installed.
    def budget_before(time: float) -> int:
        budget = steps[0][1]
        for when, value in steps:
            if when < time:
                budget = value
            else:
                break
        return budget

    for time, live in result.usage.curve():
        if live > budget_before(time):
            report.add(
                "MT301",
                f"pool occupancy {live} bytes at t={time} exceeds the "
                f"{budget_before(time)}-byte budget then in force")
            break

    # Independent of the usage samples: reconstruct concurrent occupancy
    # from the per-job RUN intervals and sweep the boundaries.  At equal
    # timestamps interval ends sort before budget changes before starts,
    # so work ending exactly at a shrink vacates first and work starting
    # there is judged by the new budget.
    boundaries = []
    for event in result.timeline.of_kind(EventKind.RUN):
        boundaries.append((event.start, 2, event.nbytes))
        boundaries.append((event.end, 0, -event.nbytes))
    for when, budget in steps:
        boundaries.append((when, 1, budget))
    occupancy, budget, worst, worst_budget = 0, steps[0][1], 0, steps[0][1]
    for _time, kind, payload in sorted(boundaries):
        if kind == 1:
            budget = payload
            continue
        occupancy += payload
        if occupancy > budget and occupancy - budget > worst - worst_budget:
            worst, worst_budget = occupancy, budget
    if worst > worst_budget:
        report.add(
            "MT301",
            f"concurrent job footprints reach {worst} bytes, over the "
            f"{worst_budget}-byte budget then in force")

    for record in result.records:
        intervals = sorted((start, end) for start, end, _n in record.residency)
        for (s0, e0), (s1, _e1) in zip(intervals, intervals[1:]):
            if s1 < e0:
                report.add(
                    "MT302",
                    f"job {record.job.name} residency [{s1}, ...) starts "
                    f"before [{s0}, {e0}) ends")
        if record.state.value == "finished":
            if record.admit_time is None:
                report.add(
                    "MT304",
                    f"job {record.job.name} finished without admission")
            elif record.finish_time is not None \
                    and record.finish_time < record.admit_time:
                report.add(
                    "MT304",
                    f"job {record.job.name} finishes at "
                    f"{record.finish_time} before its admission at "
                    f"{record.admit_time}")
        elif record.state.value == "rejected" and record.residency \
                and record.evictions == 0:
            # An evicted-then-rejected job legitimately ran before its
            # eviction; only never-admitted rejects must have no
            # residency.
            report.add(
                "MT304",
                f"rejected job {record.job.name} has residency intervals")

    if result.final_pool_live_bytes:
        report.add(
            "MT303",
            f"{result.final_pool_live_bytes} bytes still live in the "
            f"shared pool after the last event")
    return report

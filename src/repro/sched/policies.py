"""Pluggable admission-order policies for the job queue.

A policy decides *which pending job to consider next* and *whether a
non-fitting job blocks the jobs behind it*:

* ``fifo``     — strict arrival order with head-of-line blocking: if the
  oldest job does not fit the remaining pool, everything waits.  The
  honest baseline every cluster scheduler is measured against.
* ``sjf``      — shortest-job-first: arrival order replaced by estimated
  uncontended service time (still blocking on its head), minimizing
  mean job completion time for batch workloads.
* ``best_fit`` — memory-aware packing: scan *all* pending jobs,
  repeatedly admitting the fittable job with the largest minimal
  footprint (first-fit-decreasing, the classic bin-packing heuristic).
  Non-blocking — a job too big for the current gap never starves the
  jobs behind it.

Ties within every ordering break by descending priority, then arrival.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .admission import AdmissionController
from .job import JobRecord


class AdmissionPolicy:
    """Base: an ordering over pending jobs plus a blocking discipline."""

    #: Registry key; subclasses override.
    name = "abstract"
    #: True = stop admitting at the first job that does not fit.
    blocking = True

    def order(
        self,
        pending: List[JobRecord],
        controller: AdmissionController,
        budget_bytes: int,
    ) -> List[JobRecord]:
        raise NotImplementedError


class FIFOPolicy(AdmissionPolicy):
    """Arrival order, head-of-line blocking."""

    name = "fifo"
    blocking = True

    def order(self, pending, controller, budget_bytes):
        return sorted(
            pending,
            key=lambda r: (r.job.submit_time, -r.job.priority),
        )


class ShortestJobFirstPolicy(AdmissionPolicy):
    """Estimated-shortest service time first, blocking on its head."""

    name = "sjf"
    blocking = True

    def order(self, pending, controller, budget_bytes):
        return sorted(
            pending,
            key=lambda r: (
                controller.solo_service_seconds(r.job, budget_bytes),
                -r.job.priority,
                r.job.submit_time,
            ),
        )


class BestFitPolicy(AdmissionPolicy):
    """Memory-aware packing: largest fittable footprint first, no blocking."""

    name = "best_fit"
    blocking = False

    def order(self, pending, controller, budget_bytes):
        return sorted(
            pending,
            key=lambda r: (
                -controller.min_footprint(r.job),
                -r.job.priority,
                r.job.submit_time,
            ),
        )


_POLICIES: Dict[str, Callable[[], AdmissionPolicy]] = {
    FIFOPolicy.name: FIFOPolicy,
    ShortestJobFirstPolicy.name: ShortestJobFirstPolicy,
    BestFitPolicy.name: BestFitPolicy,
}


def available_policies() -> List[str]:
    """Registry keys accepted by :func:`make_policy`."""
    return sorted(_POLICIES)


def make_policy(name: str) -> AdmissionPolicy:
    """Instantiate a policy by registry key."""
    if name not in _POLICIES:
        raise KeyError(
            f"unknown admission policy {name!r}; "
            f"available: {available_policies()}"
        )
    return _POLICIES[name]()

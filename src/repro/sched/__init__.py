"""Multi-tenant GPU scheduler: pack concurrent training jobs onto one
virtualized GPU.

vDNN frees 89-95% of a GPU's average memory usage (Section I); this
subsystem spends that freed capacity on *co-location*: a shared pool, an
admission controller walking the degradation ladder
``base(p) -> conv(p) -> all(m) -> hybrid(recompute)``, pluggable queue
policies (FIFO / SJF / memory-aware best-fit), and a contention model
that splits compute time-slices and PCIe bandwidth across tenants.
"""

from .admission import LADDER, AdmissionController, RungEval, evaluate_ladder
from .contention import ContentionModel
from .job import Job, JobRecord, JobState
from .policies import (
    AdmissionPolicy,
    BestFitPolicy,
    FIFOPolicy,
    ShortestJobFirstPolicy,
    available_policies,
    make_policy,
)
from .report import fleet_table, job_table, schedule_report
from .scheduler import GPUScheduler, ScheduleResult, schedule_jobs

__all__ = [
    "LADDER",
    "AdmissionController",
    "AdmissionPolicy",
    "BestFitPolicy",
    "ContentionModel",
    "FIFOPolicy",
    "GPUScheduler",
    "Job",
    "JobRecord",
    "JobState",
    "RungEval",
    "ScheduleResult",
    "ShortestJobFirstPolicy",
    "available_policies",
    "evaluate_ladder",
    "fleet_table",
    "job_table",
    "make_policy",
    "schedule_jobs",
    "schedule_report",
]

"""Admission control: pick each job's cheapest workable configuration.

vDNN's observation (Section I) is that virtualizing feature maps frees
most of a GPU's memory, so one device can host *many* jobs.  The
admission controller exploits that with a **degradation ladder** — the
configurations a job can run under, ordered fastest-first /
hungriest-first:

1. ``base(p)``   — network-wide allocation, performance-optimal
   algorithms: the fastest rung, paper Section IV-A's baseline.
2. ``conv(p)``   — vDNN_conv offloading, performance-optimal algorithms:
   CONV layers' long kernels hide their offload traffic (Section V-C).
3. ``all(m)``    — vDNN_all offloading, memory-optimal algorithms: the
   paper's memory floor for offloading (Figure 11's ``all(m)`` bars).
4. ``hybrid``    — offloading's companion lever: sqrt(L) gradient
   checkpointing (Chen et al., *Training Deep Nets with Sublinear
   Memory Cost*), which *drops* feature maps instead of moving them —
   the last rung, paying recompute kernels instead of PCIe traffic.

Each rung is evaluated by running the corresponding single-job simulator
once (``simulate_baseline`` / ``simulate_vdnn`` / ``simulate_recompute``)
and distilling the :class:`RungEval` the scheduler needs: pool footprint,
solo iteration time, and the compute/PCIe demands the contention model
splits across co-resident tenants.  A job is admitted at the first rung
whose footprint fits the shared pool's *remaining* budget; a job whose
final rung exceeds even the empty pool is rejected outright.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.algo_config import AlgoConfig
from ..core.cached import cached_baseline, cached_recompute, cached_vdnn
from ..core.executor import IterationResult
from ..core.policy import TransferPolicy
from ..hw.config import PAPER_SYSTEM, SystemConfig
from ..sim.stream import COMPUTE_STREAM, MEMORY_STREAM
from .job import Job

#: Ladder rung labels, fastest (most memory-hungry) first.
LADDER = ("base(p)", "conv(p)", "all(m)", "hybrid")


@dataclass(frozen=True)
class RungEval:
    """One degradation-ladder rung's measured cost for one job.

    ``compute_seconds``/``pcie_seconds`` are per-iteration busy times of
    the two streams; the contention model scales them by the number of
    tenants sharing each resource.  ``iter_seconds`` is the solo
    (uncontended) iteration latency, a lower bound under contention.
    """

    rung: str
    footprint_bytes: int
    iter_seconds: float
    compute_seconds: float
    pcie_seconds: float
    pcie_bytes: int

    def fits(self, free_bytes: int) -> bool:
        return self.footprint_bytes <= free_bytes


def _distill(rung: str, result: IterationResult) -> RungEval:
    busy = result.timeline.busy_times(COMPUTE_STREAM, MEMORY_STREAM)
    return RungEval(
        rung=rung,
        footprint_bytes=result.max_usage_bytes,
        iter_seconds=result.total_time,
        compute_seconds=busy[COMPUTE_STREAM],
        pcie_seconds=busy[MEMORY_STREAM],
        pcie_bytes=result.offload_bytes + result.prefetch_bytes,
    )


def evaluate_ladder(network, system: SystemConfig) -> List[RungEval]:
    """Run the four rung simulations for one network, ladder order.

    Each rung goes through the content-addressed simulation cache
    (:mod:`repro.core.cached`), so N co-tenant jobs training the same
    (network, batch) — and repeated scheduler runs over one workload —
    reuse a single simulation per rung.
    """
    performance = AlgoConfig.performance_optimal(network)
    memory = AlgoConfig.memory_optimal(network)
    return [
        _distill("base(p)", cached_baseline(network, system, performance)),
        _distill("conv(p)", cached_vdnn(
            network, system, TransferPolicy.vdnn_conv(), performance)),
        _distill("all(m)", cached_vdnn(
            network, system, TransferPolicy.vdnn_all(), memory)),
        _distill("hybrid", cached_recompute(network, system, memory)),
    ]


class AdmissionController:
    """Memoized degradation-ladder oracle for job admission.

    Each distinct (network, batch) pair is simulated once per rung; the
    scheduler then answers every admission question from the cached
    :class:`RungEval` list.
    """

    def __init__(self, system: Optional[SystemConfig] = None):
        self.system = system or PAPER_SYSTEM
        self._cache: Dict[Tuple[str, Optional[int]], List[RungEval]] = {}

    def ladder(self, job: Job) -> List[RungEval]:
        """The job's rung evaluations, fastest first (memoized)."""
        key = (job.network, job.batch_size)
        if key not in self._cache:
            self._cache[key] = evaluate_ladder(job.build_network(), self.system)
        return self._cache[key]

    def cheapest_fit(self, job: Job, free_bytes: int) -> Optional[RungEval]:
        """Fastest rung whose footprint fits ``free_bytes`` (None = none)."""
        for rung in self.ladder(job):
            if rung.fits(free_bytes):
                return rung
        return None

    def min_footprint(self, job: Job) -> int:
        """The smallest footprint any rung achieves for this job."""
        return min(r.footprint_bytes for r in self.ladder(job))

    def solo_service_seconds(self, job: Job, budget_bytes: int) -> float:
        """Uncontended run time at the rung an empty pool would admit.

        Used by shortest-job-first ordering; infinite when the job
        cannot fit the budget at any rung.
        """
        rung = self.cheapest_fit(job, budget_bytes)
        if rung is None:
            return float("inf")
        return rung.iter_seconds * job.iterations

"""Render a schedule's per-job and fleet metrics as reporting tables."""

from __future__ import annotations

from ..reporting.tables import format_table, gb_str, mb_str
from .job import JobState
from .scheduler import ScheduleResult


def _seconds(value) -> str:
    return f"{value:,.3f} s" if value is not None else "-"


def job_table(result: ScheduleResult) -> str:
    """One row per submitted job: rung, memory, queueing delay, JCT."""
    rows = []
    for record in result.records:
        slowdown = record.slowdown
        rows.append([
            record.job.name,
            f"{record.job.network}"
            + (f"/{record.job.batch_size}" if record.job.batch_size else ""),
            record.job.iterations,
            record.state.value,
            record.rung or "-",
            gb_str(record.footprint_bytes) if record.footprint_bytes else "-",
            _seconds(record.queueing_delay),
            _seconds(record.completion_time),
            f"{slowdown:.2f}x" if slowdown is not None else "-",
        ])
    return format_table(
        ["job", "network", "iters", "state", "rung", "footprint",
         "queue delay", "JCT", "slowdown"],
        rows,
        title=f"Schedule ({result.policy}) on "
              f"{gb_str(result.budget_bytes)} budget",
    )


def fleet_table(result: ScheduleResult) -> str:
    """Aggregate fleet metrics for one schedule."""
    rows = [
        ["jobs finished / rejected",
         f"{len(result.finished)} / {len(result.rejected)}"],
        ["makespan", _seconds(result.makespan)],
        ["aggregate throughput",
         f"{result.aggregate_throughput:,.2f} iters/s"],
        ["mean queueing delay", _seconds(result.mean_queueing_delay)],
        ["pool high-water",
         f"{gb_str(result.peak_pool_bytes)} of {gb_str(result.budget_bytes)}"],
        ["pool utilization (time-avg)",
         f"{result.pool_utilization * 100:,.1f}%"],
        ["PCIe offload+prefetch traffic", mb_str(result.pcie_total_bytes)],
    ]
    return format_table(["metric", "value"], rows, title="Fleet metrics")


def faults_table(result: ScheduleResult) -> str:
    """Injected scheduler faults and how each one resolved."""
    report = result.fault_report
    rows = [[e.kind, f"{e.time:g}", e.target, e.outcome, e.detail]
            for e in report.events]
    if not rows:
        rows = [["-", "-", "-", "-", "no faults injected"]]
    return format_table(
        ["fault", "t", "target", "outcome", "detail"], rows,
        title=f"Faults (spec {report.spec.label}): "
              f"{report.recovery_rate:.0%} recovered",
    )


def schedule_report(result: ScheduleResult) -> str:
    """Full plain-text report: per-job table + fleet metrics."""
    parts = [job_table(result), "", fleet_table(result)]
    if result.fault_report is not None:
        parts += ["", faults_table(result)]
    failures = [
        f"  {r.job.name}: {r.failure}"
        for r in result.records
        if r.state is JobState.REJECTED and r.failure
    ]
    if failures:
        parts += ["", "Rejections:"] + failures
    return "\n".join(parts)

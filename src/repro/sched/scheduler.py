"""The multi-tenant GPU scheduler: admit, pack, and run N jobs.

One simulated GPU, one shared cnmem-style pool sized to the memory
budget, many tenants.  The scheduler is an event-driven fluid
simulation:

* **Admission.**  At every event (submit or completion) the configured
  :mod:`policy <repro.sched.policies>` orders the pending queue and the
  :class:`~repro.sched.admission.AdmissionController` picks each
  candidate's cheapest workable rung against the pool's *remaining*
  bytes.  An admitted job reserves its whole-rung footprint from the
  shared :class:`~repro.alloc.pool.PoolAllocator` — so the pool itself
  enforces that co-resident footprints never exceed the budget, and
  OOM is structurally impossible rather than merely checked.
* **Execution.**  Between events, every resident job progresses at the
  rate the :class:`~repro.sched.contention.ContentionModel` assigns it
  (compute time-sliced across tenants, PCIe bandwidth split across
  offloaders).  The next event is the earliest completion or arrival.
* **Accounting.**  Pool occupancy is sampled into a
  :class:`~repro.alloc.stats.UsageTracker` at every transition, and each
  residency interval is logged on a per-job ``job:<name>`` timeline lane
  (rendered one row per job by the Chrome-trace exporter).

:class:`ScheduleResult` carries per-job records (JCT, queueing delay,
chosen rung, slowdown) and fleet metrics (makespan, aggregate
throughput, memory high-water, PCIe traffic).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..alloc.pool import Allocation, PoolAllocator
from ..alloc.stats import UsageTracker
from ..faults import FaultEvent, FaultReport, FaultSpec
from ..hw.config import PAPER_SYSTEM, SystemConfig
from ..obs import Instrumentation
from ..sim.timeline import EventKind, Timeline
from .admission import AdmissionController, RungEval
from .contention import ContentionModel
from .job import Job, JobRecord, JobState
from .policies import AdmissionPolicy, make_policy

#: Iteration-count slack absorbing float progress arithmetic.
_EPSILON = 1e-9


@dataclass
class _Resident:
    """One job currently holding pool bytes and making progress."""

    record: JobRecord
    rung: RungEval
    allocation: Allocation
    remaining_iterations: float


@dataclass
class ScheduleResult:
    """Everything one scheduler run produces."""

    policy: str
    budget_bytes: int
    records: List[JobRecord]
    timeline: Timeline
    usage: UsageTracker
    #: Pool bytes still reserved after the last event — the schedule
    #: sanitizer's leak check (MT303); 0 on a clean run.
    final_pool_live_bytes: int = 0
    #: Budget step function as (time, budget_bytes) — one entry at the
    #: start plus one per mid-run shrink.  The sanitizer checks pool
    #: occupancy against the budget *in force at that time*, not just
    #: the final value.
    budget_timeline: List[Tuple[float, int]] = field(default_factory=list)
    #: Audit trail of injected scheduler faults (None = perfect machine).
    fault_report: Optional[FaultReport] = None

    # -- per-class views -----------------------------------------------
    @property
    def finished(self) -> List[JobRecord]:
        return [r for r in self.records if r.state is JobState.FINISHED]

    @property
    def rejected(self) -> List[JobRecord]:
        return [r for r in self.records if r.state is JobState.REJECTED]

    @property
    def evicted(self) -> List[JobRecord]:
        """Jobs evicted mid-run at least once (whatever their fate)."""
        return [r for r in self.records if r.evictions > 0]

    def budget_at(self, time: float) -> int:
        """The memory budget in force at ``time`` (step function)."""
        budget = self.budget_timeline[0][1] if self.budget_timeline \
            else self.budget_bytes
        for when, value in self.budget_timeline:
            if when <= time:
                budget = value
            else:
                break
        return budget

    # -- fleet metrics -------------------------------------------------
    @property
    def makespan(self) -> float:
        """First submit to last completion across finished jobs."""
        done = self.finished
        if not done:
            return 0.0
        start = min(r.job.submit_time for r in done)
        return max(r.finish_time for r in done) - start

    @property
    def total_iterations(self) -> float:
        return sum(r.job.iterations for r in self.finished)

    @property
    def aggregate_throughput(self) -> float:
        """Completed training iterations per second across the fleet."""
        span = self.makespan
        return self.total_iterations / span if span > 0 else 0.0

    @property
    def mean_queueing_delay(self) -> float:
        delays = [r.queueing_delay for r in self.records
                  if r.queueing_delay is not None]
        return sum(delays) / len(delays) if delays else 0.0

    @property
    def peak_pool_bytes(self) -> int:
        """Shared-pool memory high-water mark."""
        return self.usage.max_bytes

    @property
    def pool_utilization(self) -> float:
        """Time-weighted average pool occupancy over the budget."""
        if self.budget_bytes <= 0:
            return 0.0
        return self.usage.average_bytes / self.budget_bytes

    @property
    def pcie_total_bytes(self) -> int:
        """Offload+prefetch traffic the whole workload pushed over PCIe."""
        return sum(
            int(r.pcie_bytes_per_iter * r.job.iterations)
            for r in self.finished
        )


class GPUScheduler:
    """Packs concurrent training jobs onto one virtualized GPU."""

    def __init__(
        self,
        system: Optional[SystemConfig] = None,
        policy: Union[str, AdmissionPolicy] = "best_fit",
        budget_bytes: Optional[int] = None,
        controller: Optional[AdmissionController] = None,
        contention: Optional[ContentionModel] = None,
        faults: Optional[FaultSpec] = None,
        fault_seed: int = 0,
        obs: Optional[Instrumentation] = None,
    ):
        self.system = system or PAPER_SYSTEM
        if budget_bytes is None:
            budget_bytes = self.system.gpu.memory_bytes
        if budget_bytes <= 0:
            raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        self.initial_budget_bytes = budget_bytes
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.controller = controller or AdmissionController(self.system)
        self.contention = contention or ContentionModel()
        self.pool = PoolAllocator(self.budget_bytes)
        self.timeline = Timeline()
        self.usage = UsageTracker()
        self.records: List[JobRecord] = []
        self.faults = faults
        self.fault_report: Optional[FaultReport] = (
            FaultReport(spec=faults, seed=fault_seed)
            if faults is not None else None
        )
        self.budget_timeline: List[Tuple[float, int]] = []
        self.obs = obs
        #: (record, FaultEvent) pairs whose outcome depends on the job's
        #: final fate, finalized at the end of :meth:`run`.
        self._eviction_events: List[Tuple[JobRecord, FaultEvent]] = []

    def _sample_pool(self) -> None:
        if self.obs is not None:
            self.obs.pool_sample(self.pool.live_bytes, self.budget_bytes,
                                 self.pool.fragmentation)

    # ------------------------------------------------------------------
    def submit(self, job: Job) -> JobRecord:
        """Enqueue one job; returns its lifecycle record."""
        if any(r.job.name == job.name for r in self.records):
            raise ValueError(f"duplicate job name {job.name!r}")
        record = JobRecord(job=job)
        self.records.append(record)
        return record

    def submit_all(self, jobs: List[Job]) -> List[JobRecord]:
        return [self.submit(job) for job in jobs]

    # ------------------------------------------------------------------
    def _reject(self, record: JobRecord, clock: float) -> None:
        record.state = JobState.REJECTED
        record.failure = (
            f"smallest rung needs {self.controller.min_footprint(record.job)}"
            f" bytes > budget {self.budget_bytes} bytes"
        )
        record.finish_time = clock
        if self.obs is not None:
            self.obs.job_event("rejected")

    def _admit(self, record: JobRecord, rung: RungEval,
               clock: float, resident: List[_Resident]) -> None:
        allocation = self.pool.alloc(
            rung.footprint_bytes, tag=f"job[{record.job.name}]"
        )
        record.state = JobState.RUNNING
        record.rung = rung.rung
        record.footprint_bytes = rung.footprint_bytes
        record.solo_iter_seconds = rung.iter_seconds
        record.pcie_bytes_per_iter = rung.pcie_bytes
        record.admit_time = clock
        # Readmission after an eviction resumes from where the job left
        # off and waits only since it re-entered the queue.
        ready_since = record.requeued_at if record.requeued_at is not None \
            else record.job.submit_time
        if clock > ready_since:
            self.timeline.record(
                f"job:{record.job.name}", EventKind.STALL,
                "requeued" if record.requeued_at is not None else "queued",
                ready_since, clock,
            )
        resident.append(_Resident(
            record=record,
            rung=rung,
            allocation=allocation,
            remaining_iterations=float(record.job.iterations)
            - record.iterations_done,
        ))
        self.usage.record(clock, self.pool.live_bytes)
        if self.obs is not None:
            self.obs.job_admitted(max(clock - ready_since, 0.0), rung.rung)
            self._sample_pool()

    def _cheapest_fit_now(self, job: Job) -> Optional[RungEval]:
        """Fastest rung whose footprint fits a contiguous pool hole.

        Goes through :meth:`PoolAllocator.can_fit` rather than raw free
        bytes so fragmentation is honoured — the pool may hold enough
        free bytes in total while no single extent fits the rung.
        """
        for rung in self.controller.ladder(job):
            if self.pool.can_fit(rung.footprint_bytes):
                return rung
        return None

    def _try_admit(self, clock: float, pending: List[JobRecord],
                   resident: List[_Resident]) -> None:
        """Admit every job the policy allows at the current instant."""
        while True:
            queue = [r for r in pending if r.job.submit_time <= clock]
            if not queue:
                return
            admitted = False
            for record in self.policy.order(
                    queue, self.controller, self.budget_bytes):
                rung = self._cheapest_fit_now(record.job)
                if rung is None:
                    if self.controller.min_footprint(record.job) \
                            > self.budget_bytes:
                        # Can never run on this GPU, at any rung: reject
                        # instead of blocking the queue forever.
                        self._reject(record, clock)
                        pending.remove(record)
                        admitted = True  # re-order and keep scanning
                        break
                    if self.policy.blocking:
                        return
                    continue
                self._admit(record, rung, clock, resident)
                pending.remove(record)
                admitted = True
                break  # free_bytes changed; recompute the ordering
            if not admitted:
                return

    # ------------------------------------------------------------------
    # Fault reactions: eviction and mid-run budget shrink
    # ------------------------------------------------------------------
    def _evict(self, entry: _Resident, clock: float,
               pending: List[JobRecord], resident: List[_Resident],
               reason: str) -> None:
        """Evict a resident job, preserving its progress for readmission."""
        resident.remove(entry)
        self.pool.free(entry.allocation)
        record = entry.record
        record.iterations_done = float(record.job.iterations) \
            - max(entry.remaining_iterations, 0.0)
        record.state = JobState.PENDING
        record.evictions += 1
        record.requeued_at = clock
        record.rung = None
        record.footprint_bytes = 0
        pending.append(record)
        self.timeline.record(
            f"job:{record.job.name}", EventKind.FAULT, reason, clock, clock,
        )
        self.usage.record(clock, self.pool.live_bytes)
        if self.obs is not None:
            self.obs.job_event("evicted")
            self._sample_pool()

    def _apply_eviction(self, name: str, clock: float,
                        pending: List[JobRecord],
                        resident: List[_Resident]) -> None:
        """Timed ``evict@t=name`` fault: kick the named resident job."""
        entry = next(
            (e for e in resident if e.record.job.name == name), None)
        if entry is None:
            self.fault_report.add(FaultEvent(
                kind="eviction", time=clock, target=name,
                outcome="recovered", detail="job not resident; no-op",
            ))
            if self.obs is not None:
                self.obs.fault_event("eviction", "recovered")
            return
        self._evict(entry, clock, pending, resident, reason="evicted")
        event = self.fault_report.add(FaultEvent(
            kind="eviction", time=clock, target=name,
            nbytes=entry.rung.footprint_bytes,
            detail=f"evicted after {entry.record.iterations_done:g} "
                   f"iterations; re-queued",
        ))
        self._eviction_events.append((entry.record, event))

    def _apply_shrink(self, factor: float, clock: float,
                      pending: List[JobRecord],
                      resident: List[_Resident]) -> None:
        """Timed ``shrink@t=factor`` fault: cut the budget mid-run.

        The new budget is ``factor`` x the *original* budget.  Resident
        jobs whose footprints extend past the new boundary are evicted
        (highest offset first — they block the shrink) and re-queued;
        the admission ladder then readmits them at whatever rung still
        fits, degrading them gracefully instead of OOM-killing.
        """
        new_budget = int(self.initial_budget_bytes * factor)
        if new_budget >= self.budget_bytes:
            self.fault_report.add(FaultEvent(
                kind="budget-shrink", time=clock, target="pool",
                outcome="recovered", nbytes=new_budget,
                detail=f"budget already at or below "
                       f"{self.budget_bytes} bytes; no-op",
            ))
            if self.obs is not None:
                self.obs.fault_event("budget-shrink", "recovered")
            return
        victims = 0
        while True:
            blockers = self.pool.blockers_above(new_budget)
            if not blockers:
                break
            blocker = blockers[0]
            entry = next(
                e for e in resident if e.allocation is blocker)
            self._evict(entry, clock, pending, resident,
                        reason="evicted: budget shrink")
            event = self.fault_report.add(FaultEvent(
                kind="eviction", time=clock, target=entry.record.job.name,
                nbytes=blocker.size,
                detail="footprint extends past the shrunk budget; "
                       "re-queued for readmission",
            ))
            self._eviction_events.append((entry.record, event))
            victims += 1
        self.pool.shrink(new_budget)
        self.budget_bytes = new_budget
        self.budget_timeline.append((clock, new_budget))
        self.timeline.record(
            "scheduler", EventKind.FAULT, f"budget-shrink x{factor:g}",
            clock, clock, nbytes=new_budget,
        )
        self.fault_report.add(FaultEvent(
            kind="budget-shrink", time=clock, target="pool",
            outcome="degraded" if victims else "recovered",
            nbytes=new_budget,
            detail=f"budget {self.initial_budget_bytes} -> {new_budget} "
                   f"bytes, {victims} job(s) evicted",
        ))
        if self.obs is not None:
            self.obs.fault_event(
                "budget-shrink", "degraded" if victims else "recovered")
            self._sample_pool()

    def _finalize_fault_outcomes(self) -> None:
        """Settle eviction outcomes now that every job's fate is known."""
        for record, event in self._eviction_events:
            if record.state is JobState.FINISHED:
                event.outcome = "recovered"
            elif record.state is JobState.REJECTED:
                event.outcome = "rejected"
            else:
                event.outcome = "fatal"
            if self.obs is not None:
                # Counted here, not at injection time, so the label
                # reflects the settled outcome.
                self.obs.fault_event(event.kind, event.outcome)

    # ------------------------------------------------------------------
    def run(self) -> ScheduleResult:
        """Run the fleet to completion and return the schedule."""
        pending = [r for r in self.records if r.state is JobState.PENDING]
        resident: List[_Resident] = []
        clock = min((r.job.submit_time for r in pending), default=0.0)
        self.usage.record(clock, self.pool.live_bytes)
        self.budget_timeline = [(clock, self.budget_bytes)]

        # Timed faults as a min-heap on (time, seq): seq preserves the
        # old stable-sort order (shrinks before evictions at equal
        # timestamps) while replacing the sorted list's O(n) pop(0)
        # drain with O(log n) heappops.
        fault_queue: List[Tuple[float, int, str, object]] = []
        if self.faults is not None:
            events = [(t, "shrink", f) for t, f in self.faults.budget_shrinks]
            events += [(t, "evict", n) for t, n in self.faults.evictions]
            fault_queue = [(t, seq, kind, payload)
                           for seq, (t, kind, payload) in enumerate(events)]
            heapq.heapify(fault_queue)

        last_snapshot = None
        while pending or resident or fault_queue:
            while fault_queue and fault_queue[0][0] <= clock:
                _time, _seq, kind, payload = heapq.heappop(fault_queue)
                if kind == "shrink":
                    self._apply_shrink(payload, clock, pending, resident)
                else:
                    self._apply_eviction(payload, clock, pending, resident)

            # Every loop iteration must change *something* — otherwise
            # the event horizon has collapsed (e.g. float underflow in
            # the progress arithmetic) and we would spin forever.
            snapshot = (
                clock, len(pending), len(fault_queue),
                tuple((id(r), r.remaining_iterations) for r in resident),
            )
            if snapshot == last_snapshot:
                raise RuntimeError(
                    f"scheduler made no progress at t={clock} with "
                    f"{len(resident)} resident / {len(pending)} pending "
                    f"job(s); aborting instead of spinning"
                )
            last_snapshot = snapshot

            self._try_admit(clock, pending, resident)
            next_arrival = min(
                (r.job.submit_time for r in pending
                 if r.job.submit_time > clock),
                default=None,
            )
            next_fault = fault_queue[0][0] if fault_queue else None

            if not resident:
                next_times = [t for t in (next_arrival, next_fault)
                              if t is not None]
                if next_times:
                    clock = max(clock, min(next_times))
                    continue
                # Nothing running, nothing admissible, nothing arriving:
                # the pool is idle yet the head does not fit — only
                # possible transiently; reject the stragglers defensively.
                for record in list(pending):
                    self._reject(record, clock)
                    pending.remove(record)
                break

            # Fluid progress at contention-adjusted rates.  A zero-cost
            # rung completes instantly: zero its remaining work *before*
            # the horizon computation so the completion sweep below
            # collects it this iteration instead of spinning.
            rates = self.contention.iteration_seconds(
                [r.rung for r in resident]
            )
            for entry, iter_seconds in zip(resident, rates):
                if iter_seconds <= 0:
                    entry.remaining_iterations = 0.0
            finish_times = [
                clock + r.remaining_iterations * iter_seconds
                for r, iter_seconds in zip(resident, rates)
            ]
            horizon = min(finish_times)
            if next_arrival is not None:
                horizon = min(horizon, next_arrival)
            if next_fault is not None:
                horizon = min(horizon, next_fault)

            tenants = len(resident)
            for entry, iter_seconds in zip(resident, rates):
                if horizon > clock and iter_seconds > 0:
                    entry.remaining_iterations -= \
                        (horizon - clock) / iter_seconds
                    self.timeline.record(
                        f"job:{entry.record.job.name}", EventKind.RUN,
                        f"{entry.rung.rung} x{tenants}",
                        clock, horizon,
                        nbytes=entry.rung.footprint_bytes,
                    )
                    entry.record.residency.append((clock, horizon, tenants))
            clock = horizon

            # Completion sweep.  ``finish <= clock`` also collects jobs
            # whose per-step progress underflowed (clock + tiny == clock)
            # so the loop cannot spin on unfinishable float arithmetic.
            for entry, finish in [
                (e, f) for e, f in zip(resident, finish_times)
                if e.remaining_iterations <= _EPSILON or f <= clock
            ]:
                resident.remove(entry)
                self.pool.free(entry.allocation)
                entry.record.state = JobState.FINISHED
                entry.record.finish_time = clock
                entry.record.iterations_done = float(
                    entry.record.job.iterations
                )
                if not entry.record.residency:
                    # Zero-cost rung: it finished without accruing a RUN
                    # interval; log a zero-length one so the job's lane
                    # and residency accounting stay complete.
                    self.timeline.record(
                        f"job:{entry.record.job.name}", EventKind.RUN,
                        f"{entry.rung.rung} x{tenants}", clock, clock,
                        nbytes=entry.rung.footprint_bytes,
                    )
                    entry.record.residency.append((clock, clock, tenants))
                self.usage.record(clock, self.pool.live_bytes)
                if self.obs is not None:
                    self.obs.job_finished(
                        max(clock - entry.record.job.submit_time, 0.0))
                    self._sample_pool()

        self._finalize_fault_outcomes()
        result = ScheduleResult(
            policy=self.policy.name,
            budget_bytes=self.budget_bytes,
            records=list(self.records),
            timeline=self.timeline,
            usage=self.usage,
            final_pool_live_bytes=self.pool.live_bytes,
            budget_timeline=list(self.budget_timeline),
            fault_report=self.fault_report,
        )
        if self.obs is not None:
            self.obs.sched_makespan(result.makespan)
            for record in result.records:
                if record.finish_time is None:
                    continue
                self.obs.span(
                    record.job.name, "jobs",
                    record.job.submit_time,
                    max(record.finish_time, record.job.submit_time),
                    category="job", state=record.state.name.lower(),
                    rung=record.rung or "", evictions=record.evictions)
        return result


def schedule_jobs(
    jobs: List[Job],
    system: Optional[SystemConfig] = None,
    policy: Union[str, AdmissionPolicy] = "best_fit",
    budget_bytes: Optional[int] = None,
    controller: Optional[AdmissionController] = None,
    contention: Optional[ContentionModel] = None,
    faults: Optional[FaultSpec] = None,
    fault_seed: int = 0,
    obs: Optional[Instrumentation] = None,
) -> ScheduleResult:
    """Convenience: submit ``jobs`` to a fresh scheduler and run it."""
    scheduler = GPUScheduler(
        system=system, policy=policy, budget_bytes=budget_bytes,
        controller=controller, contention=contention,
        faults=faults, fault_seed=fault_seed, obs=obs,
    )
    scheduler.submit_all(jobs)
    return scheduler.run()

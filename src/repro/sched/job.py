"""Job abstraction for the multi-tenant scheduler.

A :class:`Job` is one tenant's training request: which network, at what
batch size, for how many iterations, with what priority/deadline.  The
scheduler turns each submitted job into a :class:`JobRecord` that tracks
its lifecycle — queued, admitted (with the degradation-ladder rung the
admission controller picked), running under contention, finished or
rejected — plus the timing facts every fleet metric derives from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..graph.network import Network
from ..zoo import available, build


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    FINISHED = "finished"
    REJECTED = "rejected"


@dataclass(frozen=True)
class Job:
    """One tenant's training request.

    Attributes:
        name: unique display name (defaults to ``<network>#<n>`` when
            parsed from a CLI spec).
        network: zoo key of the DNN to train (``repro.zoo.available()``).
        batch_size: per-iteration batch (``None`` = the zoo default).
        iterations: how many training iterations the job runs.
        priority: larger = more important; breaks ties in every policy.
        deadline: optional completion deadline in seconds after submit.
        submit_time: when the job enters the queue (simulated seconds).
    """

    name: str
    network: str
    batch_size: Optional[int] = None
    iterations: int = 100
    priority: int = 0
    deadline: Optional[float] = None
    submit_time: float = 0.0

    def __post_init__(self) -> None:
        if self.batch_size is not None and self.batch_size <= 0:
            raise ValueError(
                f"batch_size must be positive, got {self.batch_size}"
            )
        if self.iterations <= 0:
            raise ValueError("a job must run at least one iteration")
        if self.submit_time < 0:
            raise ValueError("submit_time cannot be negative")

    def build_network(self) -> Network:
        """Materialize the job's network from the zoo."""
        return build(self.network, self.batch_size)

    @classmethod
    def parse(cls, spec: str, index: int = 0) -> "Job":
        """Parse a CLI job spec: ``network[:batch[:iterations]]``.

        Examples: ``vgg16``, ``vgg16:64``, ``vgg16:64:200``.
        """
        parts = spec.strip().split(":")
        if not parts[0]:
            raise ValueError(f"empty network name in job spec {spec!r}")
        network = parts[0]
        if network not in available():
            raise ValueError(
                f"unknown network {network!r} in job spec {spec!r};"
                f" available: {', '.join(available())}"
            )
        try:
            batch = int(parts[1]) if len(parts) > 1 and parts[1] else None
            iterations = int(parts[2]) if len(parts) > 2 and parts[2] else 100
        except ValueError:
            raise ValueError(
                f"batch and iterations must be integers in {spec!r}"
                " (network[:batch[:iterations]])"
            ) from None
        return cls(
            name=f"{network}#{index}",
            network=network,
            batch_size=batch,
            iterations=iterations,
        )


@dataclass
class JobRecord:
    """Mutable lifecycle record the scheduler keeps per submitted job."""

    job: Job
    state: JobState = JobState.PENDING
    rung: Optional[str] = None            # degradation-ladder label
    footprint_bytes: int = 0              # bytes reserved in the shared pool
    solo_iter_seconds: float = 0.0        # uncontended iteration time
    pcie_bytes_per_iter: int = 0          # offload+prefetch traffic / iter
    admit_time: Optional[float] = None
    finish_time: Optional[float] = None
    iterations_done: float = 0.0
    failure: Optional[str] = None
    #: (start, end, concurrently resident jobs) residency intervals,
    #: recorded so slowdown vs. solo execution is reconstructable.
    residency: list = field(default_factory=list)
    #: How many times the job was evicted mid-run (fault injection);
    #: each eviction re-queues the job for readmission.
    evictions: int = 0
    #: When the job last re-entered the queue after an eviction.
    requeued_at: Optional[float] = None

    @property
    def queueing_delay(self) -> Optional[float]:
        """Seconds spent waiting for admission (None until admitted)."""
        if self.admit_time is None:
            return None
        return self.admit_time - self.job.submit_time

    @property
    def completion_time(self) -> Optional[float]:
        """Job completion time (JCT): submit -> finish.

        None unless the job actually FINISHED — a rejected record also
        carries a ``finish_time`` (the rejection instant), which must
        not masquerade as a completion.
        """
        if self.state is not JobState.FINISHED or self.finish_time is None:
            return None
        return self.finish_time - self.job.submit_time

    @property
    def service_time(self) -> Optional[float]:
        """Admission -> finish, i.e. JCT minus queueing delay."""
        if self.state is not JobState.FINISHED \
                or self.finish_time is None or self.admit_time is None:
            return None
        return self.finish_time - self.admit_time

    @property
    def slowdown(self) -> Optional[float]:
        """Contended service time over uncontended solo service time."""
        service = self.service_time
        if service is None or self.solo_iter_seconds <= 0:
            return None
        solo = self.solo_iter_seconds * self.job.iterations
        return service / solo if solo > 0 else None

    @property
    def deadline_met(self) -> Optional[bool]:
        """Whether the job finished before its deadline.

        None when there is no deadline (or the job is still in flight);
        False for a rejected job — work that never ran cannot have met
        anything, however generous its deadline.
        """
        if self.job.deadline is None:
            return None
        if self.state is JobState.REJECTED:
            return False
        if self.completion_time is None:
            return None
        return self.completion_time <= self.job.deadline

"""Contention model: how co-resident jobs share one GPU's resources.

Two resources are contended when vDNN frees enough memory to co-locate
jobs (the scenario Rhu et al.'s follow-up *Compressing DMA Engine* calls
out: offload/prefetch traffic turns PCIe into the shared bottleneck):

* **Compute** — SM time is time-sliced round-robin across every resident
  job, so a job's per-iteration compute demand scales with the number of
  tenants (plus an optional context-switch overhead per extra tenant).
* **PCIe** — offload/prefetch DMA bandwidth is split evenly across the
  jobs that actually generate transfer traffic; rungs with no offloading
  (``base(p)``, ``hybrid``) neither suffer nor cause PCIe contention.

A job's contended iteration time is the max of its scaled compute
demand, its scaled PCIe demand, and its solo iteration latency (the
overlap structure of the solo timeline is a hard lower bound).  This is
a fluid approximation — exact enough to expose the scheduling effects
that matter: packing compute-bound next to PCIe-bound jobs overlaps the
two resources and raises aggregate throughput, while packing two jobs
with the same bottleneck merely time-slices it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .admission import RungEval


@dataclass(frozen=True)
class ContentionModel:
    """Splits compute time-slices and PCIe bandwidth across tenants.

    Attributes:
        timeslice_overhead: extra compute fraction per additional
            co-resident job (kernel-launch interleaving, cache and
            scheduler pollution).  0 models ideal preemption.
    """

    timeslice_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.timeslice_overhead < 0:
            raise ValueError("timeslice_overhead cannot be negative")

    def iteration_seconds(self, rungs: Sequence[RungEval]) -> List[float]:
        """Contended per-iteration time for each co-resident rung."""
        tenants = len(rungs)
        pcie_users = sum(1 for r in rungs if r.pcie_seconds > 0)
        overhead = 1.0 + self.timeslice_overhead * max(tenants - 1, 0)
        contended = []
        for rung in rungs:
            compute = rung.compute_seconds * tenants * overhead
            pcie = rung.pcie_seconds * pcie_users
            contended.append(max(rung.iter_seconds, compute, pcie))
        return contended

    def slowdowns(self, rungs: Sequence[RungEval]) -> List[float]:
        """Per-job slowdown factor vs. running alone."""
        return [
            contended / rung.iter_seconds if rung.iter_seconds > 0 else 1.0
            for rung, contended in zip(rungs, self.iteration_seconds(rungs))
        ]

"""Observability layer: unified metrics + span tracing.

The paper's evaluation is observational (per-layer memory, offload
traffic, PCIe bandwidth); this package makes those quantities first-
class instead of per-figure one-offs.  One :class:`Instrumentation`
object is threaded through the executor, scheduler, prefetcher, result
cache and fault injector; it accumulates counters/gauges/histograms in
a :class:`MetricsRegistry` and phase/lifecycle :class:`Span` records,
both exported deterministically (Prometheus text, sorted-keys JSON,
Chrome-trace lanes).

Instrumentation is **bit-neutral**: every simulated metric, timeline
and report is byte-identical with observability on or off — see
``tests/test_obs_differential.py`` and docs/observability.md.
"""

from .export import metrics_dict, metrics_json, prometheus_text
from .instrument import (CACHE_EVENTS, DIRECTIONS, JOB_EVENTS,
                         PREFETCH_EVENTS, SERVE_OUTCOMES, STALL_CAUSES,
                         Instrumentation, NullInstrumentation)
from .metrics import (BYTES_BUCKETS, DURATION_BUCKETS, SERVE_LATENCY_BUCKETS,
                      Counter, Gauge, Histogram, MetricError, MetricsRegistry,
                      make_labels)
from .spans import SPAN_PROCESS, Span, SpanRecorder, spans_to_trace_events

__all__ = [
    "BYTES_BUCKETS",
    "CACHE_EVENTS",
    "Counter",
    "DIRECTIONS",
    "DURATION_BUCKETS",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "JOB_EVENTS",
    "MetricError",
    "MetricsRegistry",
    "NullInstrumentation",
    "PREFETCH_EVENTS",
    "SERVE_LATENCY_BUCKETS",
    "SERVE_OUTCOMES",
    "SPAN_PROCESS",
    "STALL_CAUSES",
    "Span",
    "SpanRecorder",
    "make_labels",
    "metrics_dict",
    "metrics_json",
    "prometheus_text",
    "spans_to_trace_events",
]

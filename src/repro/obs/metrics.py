"""Metric primitives: counters, gauges, fixed-bucket histograms.

Three deliberately small types back the whole observability layer:

* :class:`Counter` — a monotonically increasing total (bytes moved,
  faults injected, cache hits);
* :class:`Gauge` — a point-in-time value with an optional high-water
  mark (pool live bytes, fragmentation);
* :class:`Histogram` — observation counts over **fixed** bucket
  boundaries chosen at construction, plus sum and count (DMA durations,
  stall times, job completion times).

Fixed boundaries are what make histograms *mergeable*: two histograms
with identical boundaries merge by adding counts element-wise, so merge
is associative and commutative on the counts (the hypothesis property
suite pins this down).  Every type serialises to a plain dict and back
(:meth:`to_dict` / :meth:`from_dict`) so exports and golden fixtures are
byte-stable.

The :class:`MetricsRegistry` holds every metric of one instrumented run,
keyed by ``(name, sorted label pairs)``.  Registries never iterate in
creation order when exporting — consumers sort — so identical runs
produce identical exports regardless of code-path ordering.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Label set as stored on a metric: sorted, immutable.
Labels = Tuple[Tuple[str, str], ...]

#: Default bucket boundaries (seconds) for duration histograms: powers
#: of ten from 10 µs to 100 s, two steps per decade.
DURATION_BUCKETS: Tuple[float, ...] = (
    1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2,
    0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
)

#: Default bucket boundaries (bytes) for transfer-size histograms:
#: 64 KiB up to 8 GiB, one step per power of four.
BYTES_BUCKETS: Tuple[float, ...] = (
    1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24,
    1 << 26, 1 << 28, 1 << 30, 1 << 32, 1 << 33,
)

#: Bucket boundaries (seconds) for request-latency histograms: a 1-2-5
#: ladder from 100 µs to 10 s.  Finer than :data:`DURATION_BUCKETS`
#: because serving quantiles (p50/p95/p99) are interpolated within one
#: bucket, so bucket width bounds the estimate's error.
SERVE_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2,
    0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0,
)


def make_labels(labels: Optional[Dict[str, str]] = None) -> Labels:
    """Normalise a label dict to the canonical sorted-tuple form."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricError(ValueError):
    """Raised on metric misuse (negative counter step, bad merge, ...)."""


@dataclass
class Counter:
    """Monotonically increasing total."""

    name: str
    labels: Labels = ()
    help: str = ""
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(
                f"counter {self.name} cannot decrease (inc by {amount})")
        self.value += amount

    def merge(self, other: "Counter") -> "Counter":
        """A new counter holding both totals (same name + labels only)."""
        if (self.name, self.labels) != (other.name, other.labels):
            raise MetricError(
                f"cannot merge counter {self.name}{self.labels} with "
                f"{other.name}{other.labels}")
        return Counter(self.name, self.labels, self.help,
                       self.value + other.value)

    def to_dict(self) -> dict:
        return {
            "type": "counter",
            "name": self.name,
            "labels": {k: v for k, v in self.labels},
            "value": self.value,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Counter":
        return cls(data["name"], make_labels(data.get("labels")),
                   value=data["value"])


@dataclass
class Gauge:
    """Point-in-time value, with the largest value ever set kept as
    the high-water mark."""

    name: str
    labels: Labels = ()
    help: str = ""
    value: float = 0.0
    max_value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def set_max(self, value: float) -> None:
        """Raise the high-water mark without moving the current value."""
        if value > self.max_value:
            self.max_value = value

    def to_dict(self) -> dict:
        return {
            "type": "gauge",
            "name": self.name,
            "labels": {k: v for k, v in self.labels},
            "value": self.value,
            "max_value": self.max_value,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Gauge":
        return cls(data["name"], make_labels(data.get("labels")),
                   value=data["value"], max_value=data["max_value"])


@dataclass
class Histogram:
    """Observation counts over fixed, ascending bucket boundaries.

    ``bounds`` are inclusive upper edges; an implicit ``+Inf`` bucket
    catches everything beyond the last edge, so ``counts`` always has
    ``len(bounds) + 1`` entries.  The Prometheus export emits the
    conventional *cumulative* ``_bucket{le=...}`` series; internally the
    counts are per-bucket so merging is element-wise addition.
    """

    name: str
    bounds: Tuple[float, ...]
    labels: Labels = ()
    help: str = ""
    counts: List[int] = field(default_factory=list)
    sum: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        self.bounds = tuple(self.bounds)
        if not self.bounds:
            raise MetricError(f"histogram {self.name} needs >= 1 bound")
        if any(b >= a for b, a in zip(self.bounds, self.bounds[1:])):
            raise MetricError(
                f"histogram {self.name} bounds must strictly ascend: "
                f"{self.bounds}")
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)
        elif len(self.counts) != len(self.bounds) + 1:
            raise MetricError(
                f"histogram {self.name} needs {len(self.bounds) + 1} "
                f"counts, got {len(self.counts)}")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation in buckets.

        Observations are assumed uniformly distributed inside the bucket
        the quantile lands in, interpolating between the bucket's lower
        and upper edge (the first bucket interpolates up from 0.0, so
        durations/sizes — which are non-negative — are handled exactly
        at the bottom).  Documented bias at bucket edges:

        * the estimate is exact only when the true quantile sits on a
          bucket boundary; inside a bucket the error is bounded by the
          bucket width (which is why serving latencies use the finer
          :data:`SERVE_LATENCY_BUCKETS`);
        * a quantile landing in the implicit ``+Inf`` bucket is clamped
          to the last finite bound ``bounds[-1]`` — the true value may
          be arbitrarily larger (Prometheus ``histogram_quantile``
          behaves the same way).

        The estimate reads only ``bounds``/``counts``, so it is
        merge-invariant: observing a data set into one histogram and
        merging histograms over any partition of it yield identical
        quantiles (pinned by the hypothesis property suite).  Monotone
        non-decreasing in ``q``.  Raises :class:`MetricError` for ``q``
        outside [0, 1] or an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricError(
                f"quantile {q} of histogram {self.name} outside [0, 1]")
        if self.count == 0:
            raise MetricError(
                f"quantile of empty histogram {self.name} is undefined")
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count and cumulative + bucket_count >= rank:
                if index == len(self.bounds):
                    return self.bounds[-1]
                lower = 0.0 if index == 0 else self.bounds[index - 1]
                upper = self.bounds[index]
                fraction = max(rank - cumulative, 0.0) / bucket_count
                return lower + (upper - lower) * fraction
            cumulative += bucket_count
        return self.bounds[-1]

    def fraction_below(self, threshold: float) -> float:
        """Estimated fraction of observations ``<= threshold``.

        The inverse read of :meth:`quantile`, with the same
        uniform-within-bucket interpolation and the same bucket-edge
        bias; 0.0 for an empty histogram.  Used for SLO attainment:
        the share of request latencies at or under the SLO.
        """
        if self.count == 0:
            return 0.0
        below = 0.0
        lower = 0.0
        for index, bound in enumerate(self.bounds):
            if threshold >= bound:
                below += self.counts[index]
            else:
                if threshold > lower:
                    below += self.counts[index] \
                        * (threshold - lower) / (bound - lower)
                return below / self.count
            lower = bound
        # Threshold beyond the last finite bound: everything in finite
        # buckets qualifies; the +Inf bucket is (conservatively) not
        # counted — its observations exceed every finite bound.
        return below / self.count

    def cumulative(self) -> List[int]:
        """Cumulative counts per ``le`` edge (ending at ``+Inf``)."""
        total = 0
        out = []
        for item in self.counts:
            total += item
            out.append(total)
        return out

    def merge(self, other: "Histogram") -> "Histogram":
        """A new histogram combining both (same identity + bounds only)."""
        if (self.name, self.labels) != (other.name, other.labels):
            raise MetricError(
                f"cannot merge histogram {self.name}{self.labels} with "
                f"{other.name}{other.labels}")
        if self.bounds != other.bounds:
            raise MetricError(
                f"cannot merge histogram {self.name}: bucket boundaries "
                f"differ ({self.bounds} vs {other.bounds})")
        return Histogram(
            self.name, self.bounds, self.labels, self.help,
            counts=[a + b for a, b in zip(self.counts, other.counts)],
            sum=self.sum + other.sum, count=self.count + other.count,
        )

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "name": self.name,
            "labels": {k: v for k, v in self.labels},
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        return cls(data["name"], tuple(data["bounds"]),
                   make_labels(data.get("labels")),
                   counts=list(data["counts"]),
                   sum=data["sum"], count=data["count"])


class MetricsRegistry:
    """Every metric of one instrumented run, keyed by (name, labels)."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, Labels], object] = {}
        self._help: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def _get(self, kind: type, name: str, labels: Labels, help: str,
             **kwargs) -> object:
        key = (name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = kind(name=name, labels=labels, help=help, **kwargs)
            self._metrics[key] = metric
            if help and name not in self._help:
                self._help[name] = help
        elif not isinstance(metric, kind):
            raise MetricError(
                f"metric {name} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}")
        return metric

    def counter(self, name: str, help: str = "",
                labels: Optional[Dict[str, str]] = None) -> Counter:
        return self._get(Counter, name, make_labels(labels), help)

    def gauge(self, name: str, help: str = "",
              labels: Optional[Dict[str, str]] = None) -> Gauge:
        return self._get(Gauge, name, make_labels(labels), help)

    def histogram(self, name: str, bounds: Sequence[float],
                  help: str = "",
                  labels: Optional[Dict[str, str]] = None) -> Histogram:
        metric = self._get(Histogram, name, make_labels(labels), help,
                           bounds=tuple(bounds))
        if metric.bounds != tuple(bounds):
            raise MetricError(
                f"histogram {name} already registered with bounds "
                f"{metric.bounds}, asked for {tuple(bounds)}")
        return metric

    # ------------------------------------------------------------------
    def metrics(self) -> List[object]:
        """All metrics, deterministically sorted by (name, labels)."""
        return [self._metrics[key] for key in sorted(self._metrics)]

    def help_for(self, name: str) -> str:
        return self._help.get(name, "")

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterable[object]:
        return iter(self.metrics())

    def get(self, name: str,
            labels: Optional[Dict[str, str]] = None) -> Optional[object]:
        return self._metrics.get((name, make_labels(labels)))

"""Deterministic exports: Prometheus text format and sorted-keys JSON.

Both exporters sort series by ``(metric name, label pairs)`` and format
numbers canonically (integral floats print as integers, everything else
as Python's shortest round-trip repr), so *same run ⇒ byte-identical
export* — the property the golden-fixture tests assert.

Prometheus specifics:

* counters/gauges/histograms follow the text exposition format
  (``# HELP`` / ``# TYPE`` once per family, then one sample per series);
* histograms emit the conventional cumulative ``_bucket{le="..."}``
  series ending at ``le="+Inf"``, plus ``_sum`` and ``_count``;
* gauges additionally emit a ``<name>_max`` family carrying the
  high-water mark (e.g. ``repro_pool_live_bytes_max`` is the pool's
  peak footprint).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .metrics import Counter, Gauge, Histogram, Labels, MetricsRegistry
from .spans import SpanRecorder


def _fmt(value: float) -> str:
    """Canonical number formatting: 123 not 123.0, else shortest repr."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 2**53:
        return str(int(value))
    return repr(value)


def _labels_str(labels: Labels, extra: Optional[List[tuple]] = None) -> str:
    pairs = list(labels) + (extra or [])
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + inner + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: List[str] = []
    seen_headers = set()

    def header(name: str, kind: str, help_text: str) -> None:
        if name in seen_headers:
            return
        seen_headers.add(name)
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    metrics = registry.metrics()
    for metric in metrics:
        if isinstance(metric, Counter):
            header(metric.name, "counter",
                   metric.help or registry.help_for(metric.name))
            lines.append(
                f"{metric.name}{_labels_str(metric.labels)} "
                f"{_fmt(metric.value)}")
        elif isinstance(metric, Gauge):
            header(metric.name, "gauge",
                   metric.help or registry.help_for(metric.name))
            lines.append(
                f"{metric.name}{_labels_str(metric.labels)} "
                f"{_fmt(metric.value)}")
        elif isinstance(metric, Histogram):
            header(metric.name, "histogram",
                   metric.help or registry.help_for(metric.name))
            cumulative = metric.cumulative()
            for bound, total in zip(metric.bounds, cumulative):
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_labels_str(metric.labels, [('le', _fmt(bound))])} "
                    f"{total}")
            lines.append(
                f"{metric.name}_bucket"
                f"{_labels_str(metric.labels, [('le', '+Inf')])} "
                f"{cumulative[-1]}")
            lines.append(
                f"{metric.name}_sum{_labels_str(metric.labels)} "
                f"{_fmt(metric.sum)}")
            lines.append(
                f"{metric.name}_count{_labels_str(metric.labels)} "
                f"{metric.count}")

    # Gauge high-water marks as a trailing block of *_max families.
    for metric in metrics:
        if isinstance(metric, Gauge):
            header(f"{metric.name}_max", "gauge",
                   f"High-water mark of {metric.name}")
            lines.append(
                f"{metric.name}_max{_labels_str(metric.labels)} "
                f"{_fmt(metric.max_value)}")
    return "\n".join(lines) + "\n"


def metrics_dict(
    registry: MetricsRegistry,
    spans: Optional[SpanRecorder] = None,
    meta: Optional[Dict[str, object]] = None,
) -> dict:
    """The registry (and optionally spans) as a JSON-ready dict."""
    payload: Dict[str, object] = {
        "metrics": [m.to_dict() for m in registry.metrics()],
    }
    if meta:
        payload["meta"] = dict(meta)
    if spans is not None:
        payload["spans"] = spans.to_list()
    return payload


def metrics_json(
    registry: MetricsRegistry,
    spans: Optional[SpanRecorder] = None,
    meta: Optional[Dict[str, object]] = None,
    indent: Optional[int] = 2,
) -> str:
    """Sorted-keys JSON export: same run ⇒ byte-identical string."""
    return json.dumps(metrics_dict(registry, spans=spans, meta=meta),
                      sort_keys=True, indent=indent)

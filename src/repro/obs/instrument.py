"""The ``Instrumentation`` hook: one object, threaded everywhere.

Subsystems (executor, scheduler, prefetcher, result cache, fault
injector) accept an optional ``Instrumentation`` and call its hook
methods at interesting moments.  The contract every hook honours:

* **observe, never steer** — a hook reads values the simulation already
  computed and accumulates them into metrics/spans; it never mutates
  simulator state, draws randomness, or changes control flow.  That is
  what makes instrumented runs bit-identical to uninstrumented ones
  (the differential suite in ``tests/test_obs_differential.py`` pins
  this down for the whole zoo).
* **cheap** — the frequent hooks (DMA completions, stalls, prefetch
  searches) append one small tuple to a pending event log and return:
  the actual counter/histogram arithmetic is *deferred* and replayed
  when the registry is next read (every consumer reads through the
  draining :attr:`Instrumentation.registry` property, so deferral is
  invisible).  Counter increments and histogram observations commute,
  so replay order cannot change any exported value.  Paired updates
  share one dispatch (a completed transfer counts its own successful
  attempt, a prefetch claim counts its search hit); pool occupancy is
  reported once per run from the allocator's own exact ``peak_bytes``;
  and O(events) end-of-run summaries are likewise deferred to
  :meth:`Instrumentation.flush`, outside the simulated region.
  Rare hooks (gauges, cache/job/serve lifecycle counters) stay eager —
  gauge ``set`` does not commute, and off-hot-path dispatch is free.

:class:`NullInstrumentation` overrides every hook with ``pass`` — the
no-op registry whose overhead ``benchmarks/bench_obs_overhead.py``
shows is unmeasurable; passing ``obs=None`` (the default everywhere)
skips even the call.
"""

from __future__ import annotations

from typing import Dict, Optional

from .metrics import (BYTES_BUCKETS, DURATION_BUCKETS, SERVE_LATENCY_BUCKETS,
                      Counter, Gauge, Histogram, MetricsRegistry)
from .spans import Span, SpanRecorder

#: PCIe traffic directions, in the order the catalog lists them.
DIRECTIONS = ("offload", "prefetch", "demand")

#: Compute-stall causes the executor distinguishes.
STALL_CAUSES = ("offload-sync", "prefetch-sync", "demand-fetch")

#: Result-cache event names (mirrors ``perf.cache.CacheStats`` fields).
CACHE_EVENTS = ("hit", "miss", "disk_hit", "store", "eviction")

#: Prefetch lifecycle events (claim made, claim rolled back, demand
#: fetch fallback) — the hit/miss/unclaim accounting of the Fig. 10
#: scheduler.
PREFETCH_EVENTS = ("claimed", "unclaimed", "demand")

#: Scheduler job lifecycle events.
JOB_EVENTS = ("admitted", "finished", "evicted", "rejected")

#: Serving request terminal outcomes (ladder: completed beats shed
#: beats rejected).
SERVE_OUTCOMES = ("completed", "shed", "rejected")

#: Preallocated deferred-log entry for the hottest hook (one claim per
#: backward step) — saves even the tuple construction.
_CLAIMED = ("claimed",)


class Instrumentation:
    """Metrics + span recording for one instrumented run."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._registry = \
            registry if registry is not None else MetricsRegistry()
        self.spans = SpanRecorder()
        #: (timeline, stream names) pairs awaiting :meth:`flush`.
        self._deferred_streams: list = []
        #: Per-event hook records awaiting replay; hot hooks append
        #: here (via the pre-bound ``_push``) instead of touching
        #: metrics, and :meth:`_drain` replays them on first read.
        self._pending: list = []
        self._push = self._pending.append
        reg = self._registry

        # -- pre-bound hot-path metrics --------------------------------
        self._pool_live: Gauge = reg.gauge(
            "repro_pool_live_bytes",
            "Live bytes in the device pool (max = high-water mark)")
        self._pool_frag: Gauge = reg.gauge(
            "repro_pool_fragmentation_ratio",
            "1 - largest free extent / total free bytes")
        self._pool_capacity: Gauge = reg.gauge(
            "repro_pool_capacity_bytes",
            "Device pool capacity (budget) in force")
        self._pinned_peak: Gauge = reg.gauge(
            "repro_pinned_peak_bytes",
            "High-water mark of pinned host staging memory")

        self._pcie_bytes: Dict[str, Counter] = {}
        self._pcie_transfers: Dict[str, Counter] = {}
        self._dma_seconds: Dict[str, Histogram] = {}
        self._dma_bytes: Dict[str, Histogram] = {}
        for direction in DIRECTIONS:
            labels = {"direction": direction}
            self._pcie_bytes[direction] = reg.counter(
                "repro_pcie_bytes_total",
                "PCIe payload moved, split by transfer direction",
                labels)
            self._pcie_transfers[direction] = reg.counter(
                "repro_pcie_transfers_total",
                "Completed DMA transfers, split by direction", labels)
            self._dma_seconds[direction] = reg.histogram(
                "repro_dma_seconds", DURATION_BUCKETS,
                "Duration of completed DMA transfers", labels)
            self._dma_bytes[direction] = reg.histogram(
                "repro_dma_transfer_bytes", BYTES_BUCKETS,
                "Size distribution of completed DMA transfers", labels)

        self._dma_attempts: Dict[tuple, Counter] = {}
        for direction in DIRECTIONS:
            for result in ("ok", "fail"):
                self._dma_attempts[(direction, result)] = reg.counter(
                    "repro_dma_attempts_total",
                    "DMA attempts by direction and outcome",
                    {"direction": direction, "result": result})
        # One lookup per completed transfer: (bytes, transfers, ok
        # attempts, seconds histogram, bytes histogram) per direction.
        self._dma_by_direction = {
            direction: (self._pcie_bytes[direction],
                        self._pcie_transfers[direction],
                        self._dma_attempts[(direction, "ok")],
                        self._dma_seconds[direction],
                        self._dma_bytes[direction])
            for direction in DIRECTIONS
        }
        self._dma_backoffs: Counter = reg.counter(
            "repro_dma_backoffs_total",
            "Retry backoffs taken after failed DMA attempts")
        self._dma_backoff_seconds: Counter = reg.counter(
            "repro_dma_backoff_seconds_total",
            "Total time spent idling in retry backoff")

        self._stall_seconds: Dict[str, Histogram] = {}
        self._stall_events: Dict[str, Counter] = {}
        for cause in STALL_CAUSES:
            labels = {"cause": cause}
            self._stall_seconds[cause] = reg.histogram(
                "repro_stall_seconds", DURATION_BUCKETS,
                "Compute-stream stalls behind the memory stream", labels)
            self._stall_events[cause] = reg.counter(
                "repro_stall_events_total",
                "Compute-stream stall count by cause", labels)

        self._prefetch: Dict[str, Counter] = {
            event: reg.counter(
                "repro_prefetch_events_total",
                "Prefetch lifecycle: claims, rollbacks, demand fetches",
                {"event": event})
            for event in PREFETCH_EVENTS
        }
        self._prefetch_search: Dict[bool, Counter] = {
            hit: reg.counter(
                "repro_prefetch_search_total",
                "Fig. 10 findPrefetchLayer outcomes",
                {"result": "hit" if hit else "miss"})
            for hit in (True, False)
        }

        self._cache: Dict[str, Counter] = {
            event: reg.counter(
                "repro_cache_events_total",
                "Simulation result cache events", {"event": event})
            for event in CACHE_EVENTS
        }

        self._jobs: Dict[str, Counter] = {
            event: reg.counter(
                "repro_sched_jobs_total",
                "Scheduler job lifecycle events", {"event": event})
            for event in JOB_EVENTS
        }
        self._queueing: Histogram = reg.histogram(
            "repro_sched_queueing_seconds", DURATION_BUCKETS,
            "Submit (or requeue) to admission latency per job")
        self._jct: Histogram = reg.histogram(
            "repro_sched_jct_seconds", DURATION_BUCKETS,
            "Job completion time (submit to finish)")
        self._makespan: Gauge = reg.gauge(
            "repro_sched_makespan_seconds",
            "First submit to last completion across finished jobs")

    # ------------------------------------------------------------------
    # Deferred event log
    # ------------------------------------------------------------------
    @property
    def registry(self) -> MetricsRegistry:
        """The metrics registry, with pending hook events replayed.

        Every consumer (exporters, reports, tests) reads metrics
        through this property, so the hot hooks' deferral is
        invisible: by the time anyone looks, the arithmetic has
        happened.
        """
        if self._pending:
            self._drain()
        return self._registry

    def _drain(self) -> None:
        """Replay the pending per-event hook log into the metrics.

        All deferred events feed counters and histograms — commutative
        accumulations — so replay order is irrelevant to every exported
        value.
        """
        pending = self._pending
        self._pending = []
        self._push = self._pending.append
        dma = self._dma_by_direction
        attempts = self._dma_attempts
        for entry in pending:
            kind = entry[0]
            if kind == "dma":
                _, direction, nbytes, seconds = entry
                bytes_c, transfers_c, ok_c, seconds_h, bytes_h = \
                    dma[direction]
                bytes_c.value += nbytes
                transfers_c.value += 1.0
                ok_c.value += 1.0
                seconds_h.observe(seconds)
                bytes_h.observe(nbytes)
            elif kind == "stall":
                _, cause, seconds = entry
                self._stall_events[cause].value += 1.0
                self._stall_seconds[cause].observe(seconds)
            elif kind == "claimed":
                self._prefetch_search[True].value += 1.0
                self._prefetch["claimed"].value += 1.0
            elif kind == "search":
                self._prefetch_search[entry[1]].value += 1.0
            elif kind == "prefetch":
                self._prefetch[entry[1]].value += 1.0
            elif kind == "attempt":
                attempts[(entry[1], "ok" if entry[2] else "fail")] \
                    .value += 1.0
            elif kind == "streams":
                _, span, pairs = entry
                for stream, busy in pairs:
                    self.stream_totals(stream, busy,
                                       max(span - busy, 0.0))
            else:  # "backoff"
                self._dma_backoffs.value += 1.0
                self._dma_backoff_seconds.value += entry[1]

    # ------------------------------------------------------------------
    # Pool + pinned memory
    # ------------------------------------------------------------------
    def pool_sample(self, live_bytes: int, capacity: int,
                    fragmentation: float) -> None:
        """One pool-occupancy sample (pool transitions / end of run)."""
        self._pool_live.set(live_bytes)
        self._pool_capacity.set(capacity)
        self._pool_frag.set(fragmentation)

    def pool_peak(self, nbytes: int) -> None:
        """Exact allocator high-water mark.

        The executor reports the pool's own ``peak_bytes`` once per run
        instead of sampling on every alloc/free: same high-water number,
        none of the per-allocation hook traffic.
        """
        self._pool_live.set_max(nbytes)

    def pinned_peak(self, nbytes: int) -> None:
        self._pinned_peak.set(nbytes)

    # ------------------------------------------------------------------
    # DMA / PCIe
    # ------------------------------------------------------------------
    def pcie_transfer(self, direction: str, nbytes: int,
                      seconds: float) -> None:
        """One *completed* DMA transfer (also the successful attempt).

        A completed transfer *is* a successful DMA attempt, so this one
        hook ticks both families (at :meth:`_drain` time); call sites
        only report attempts separately when they fail.  The body is a
        single deferred-log append — these hooks fire per DMA on the
        simulator hot path, where even pre-bound counter math showed up
        once the compiled-plan core made iterations ~4x faster.
        """
        self._push(("dma", direction, nbytes, seconds))

    def dma_attempt(self, direction: str, ok: bool) -> None:
        self._push(("attempt", direction, ok))

    def dma_backoff(self, seconds: float) -> None:
        self._push(("backoff", seconds))

    def compression(self, raw_bytes: int, wire_bytes: int) -> None:
        """One cDMA-compressed offload: raw vs on-the-wire bytes.

        Created lazily (unlike the pre-bound DMA counters) so runs that
        never compress export an unchanged metric catalog — the golden
        obs fixtures for the plain policies stay byte-identical.
        """
        registry = self.registry
        registry.counter(
            "repro_compression_raw_bytes_total",
            "Uncompressed bytes behind cDMA-compressed offloads").value \
            += raw_bytes
        registry.counter(
            "repro_compression_wire_bytes_total",
            "Wire bytes actually moved by cDMA-compressed offloads"
        ).value += wire_bytes
        registry.counter(
            "repro_compression_transfers_total",
            "cDMA-compressed offload transfers").value += 1.0

    # ------------------------------------------------------------------
    # Executor
    # ------------------------------------------------------------------
    def stall(self, cause: str, seconds: float) -> None:
        self._push(("stall", cause, seconds))

    def prefetch_event(self, event: str) -> None:
        self._push(("prefetch", event))

    def prefetch_search(self, hit: bool) -> None:
        self._push(("search", hit))

    def prefetch_claimed(self) -> None:
        """A findPrefetchLayer search that found and claimed a layer.

        One hook for the (search hit, claim) pair — the two bookkeeping
        updates share a single dispatch (and, deferred, a single
        constant append).
        """
        self._push(_CLAIMED)

    def prefetch_searches(self, hits: int, misses: int) -> None:
        """Batched Fig. 10 search outcomes, reported once per run.

        The executor infers hit/miss from ``find_prefetch_layer``'s
        return value and counts in plain locals, so the per-backward-
        step search costs no hook dispatch at all; totals are identical
        to per-event :meth:`prefetch_claimed`/:meth:`prefetch_search`
        reporting.
        """
        if hits:
            self._prefetch_search[True].value += float(hits)
            self._prefetch["claimed"].value += float(hits)
        if misses:
            self._prefetch_search[False].value += float(misses)

    def stream_busy(self, span: float, pairs) -> None:
        """Final per-stream busy totals from incremental stream clocks.

        ``pairs`` is a tuple of ``(stream name, busy seconds)`` read
        straight off each :class:`~repro.sim.stream.SimStream`'s
        running ``busy_seconds`` total, so the hook is one deferred-log
        append — no timeline retained, no O(events) interval merge.
        The totals are bit-identical to ``Timeline.busy_times`` (see
        the invariant documented on ``SimStream.busy_seconds``).
        """
        self._push(("streams", span, pairs))

    def run_streams(self, timeline, *streams: str) -> None:
        """Per-stream busy/idle split from a finished timeline.

        Takes the (finished, read-only) timeline rather than precomputed
        numbers and *defers* the O(events) interval merge to
        :meth:`flush` — neither the uninstrumented path nor the
        simulated region of an instrumented run pays for it; the cost
        lands at export time.
        """
        self._deferred_streams.append((timeline, streams))

    def flush(self) -> "Instrumentation":
        """Resolve deferred end-of-run summaries into their gauges.

        Idempotent — each deferred timeline is consumed once; the export
        paths call this before reading the registry.
        """
        if self._pending:
            self._drain()
        deferred, self._deferred_streams = self._deferred_streams, []
        for timeline, streams in deferred:
            span = timeline.span
            busy = timeline.busy_times(*streams)
            for stream in streams:
                self.stream_totals(stream, busy[stream],
                                   max(span - busy[stream], 0.0))
        return self

    def stream_totals(self, stream: str, busy_seconds: float,
                      idle_seconds: float) -> None:
        """Final per-stream busy/idle split (recorded once per run)."""
        self.registry.gauge(
            "repro_stream_busy_seconds",
            "Union of productive intervals per stream",
            {"stream": stream}).set(busy_seconds)
        self.registry.gauge(
            "repro_stream_idle_seconds",
            "Timeline span minus busy time per stream",
            {"stream": stream}).set(idle_seconds)

    # ------------------------------------------------------------------
    # Result cache
    # ------------------------------------------------------------------
    def cache_event(self, event: str) -> None:
        self._cache[event].value += 1.0

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def fault_event(self, kind: str, outcome: str) -> None:
        self.registry.counter(
            "repro_faults_total",
            "Injected faults by family and resolution",
            {"kind": kind, "outcome": outcome}).inc()

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    def job_event(self, event: str) -> None:
        self._jobs[event].inc()

    def job_admitted(self, wait_seconds: float, rung: str) -> None:
        self._jobs["admitted"].inc()
        self._queueing.observe(wait_seconds)
        self.registry.counter(
            "repro_sched_admissions_total",
            "Admissions by degradation-ladder rung",
            {"rung": rung}).inc()

    def job_finished(self, jct_seconds: float) -> None:
        self._jobs["finished"].inc()
        self._jct.observe(jct_seconds)

    def sched_makespan(self, seconds: float) -> None:
        self._makespan.set(seconds)

    # ------------------------------------------------------------------
    # Cluster / fleet
    # ------------------------------------------------------------------
    def fleet_summary(self, utilization: float, fairness: float,
                      gpus: int) -> None:
        """End-of-run fleet rollup from the cluster scheduler.

        Per-job lifecycle (admissions, JCT histogram) flows through the
        shared scheduler hooks above; this adds the cluster-only gauges.
        """
        self.registry.gauge(
            "repro_fleet_gpus",
            "GPUs in the simulated cluster").set(gpus)
        self.registry.gauge(
            "repro_fleet_utilization",
            "Occupied GPU-seconds over available GPU-seconds"
        ).set(utilization)
        self.registry.gauge(
            "repro_fleet_fairness_jain",
            "Jain's fairness index over finished jobs' slowdowns"
        ).set(fairness)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve_request(self, model: str, outcome: str) -> None:
        """One request's terminal outcome (see :data:`SERVE_OUTCOMES`)."""
        self.registry.counter(
            "repro_serve_requests_total",
            "Serving requests by model and terminal outcome",
            {"model": model, "outcome": outcome}).inc()

    def serve_latency(self, model: str, seconds: float) -> None:
        """End-to-end latency (arrival to completion) of one request.

        These per-model histograms are the source of truth for the SLO
        report: p50/p95/p99 come from :meth:`Histogram.quantile` and
        attainment from :meth:`Histogram.fraction_below`.
        """
        self.registry.histogram(
            "repro_serve_latency_seconds", SERVE_LATENCY_BUCKETS,
            "End-to-end request latency (arrival to completion)",
            {"model": model}).observe(seconds)

    def serve_cold_start(self, model: str, seconds: float) -> None:
        """One model install (persistent weights DMA'd on-device)."""
        self.registry.counter(
            "repro_serve_cold_starts_total",
            "Model installs (cold starts) by model",
            {"model": model}).inc()
        self.registry.histogram(
            "repro_serve_cold_start_seconds", DURATION_BUCKETS,
            "Cold-start install latency", {"model": model}).observe(seconds)

    def serve_queue_depth(self, depth: int) -> None:
        """Pending-queue depth sample (max is the high-water mark)."""
        self.registry.gauge(
            "repro_serve_queue_depth",
            "Pending request queue depth (max = high-water)").set(depth)

    def serve_window_shrink(self, model: str) -> None:
        """Overload ladder rung 1 fired: a model's window halved."""
        self.registry.counter(
            "repro_serve_window_shrinks_total",
            "Demand-layering window shrinks under overload",
            {"model": model}).inc()

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(self, name: str, lane: str, start: float, end: float,
             category: str = "span", **attrs) -> Optional[Span]:
        return self.spans.record(name, lane, start, end,
                                 category=category, **attrs)


class NullInstrumentation(Instrumentation):
    """Records nothing: every hook is a no-op.

    The registry/span recorder still exist (and stay empty) so callers
    can treat null and live instrumentation uniformly.
    """

    def pool_sample(self, live_bytes, capacity, fragmentation):  # noqa: D102
        pass

    def pool_peak(self, nbytes):
        pass

    def pinned_peak(self, nbytes):
        pass

    def pcie_transfer(self, direction, nbytes, seconds):
        pass

    def dma_attempt(self, direction, ok):
        pass

    def dma_backoff(self, seconds):
        pass

    def compression(self, raw_bytes, wire_bytes):
        pass

    def stall(self, cause, seconds):
        pass

    def prefetch_event(self, event):
        pass

    def prefetch_search(self, hit):
        pass

    def prefetch_claimed(self):
        pass

    def prefetch_searches(self, hits, misses):
        pass

    def stream_busy(self, span, pairs):
        pass

    def run_streams(self, timeline, *streams):
        pass

    def stream_totals(self, stream, busy_seconds, idle_seconds):
        pass

    def cache_event(self, event):
        pass

    def fault_event(self, kind, outcome):
        pass

    def job_event(self, event):
        pass

    def job_admitted(self, wait_seconds, rung):
        pass

    def job_finished(self, jct_seconds):
        pass

    def sched_makespan(self, seconds):
        pass

    def fleet_summary(self, utilization, fairness, gpus):
        pass

    def serve_request(self, model, outcome):
        pass

    def serve_latency(self, model, seconds):
        pass

    def serve_cold_start(self, model, seconds):
        pass

    def serve_queue_depth(self, depth):
        pass

    def serve_window_shrink(self, model):
        pass

    def span(self, name, lane, start, end, category="span", **attrs):
        return None

"""Span tracing over *simulated* time.

The simulators already log kernel/DMA intervals on :class:`Timeline`;
spans sit one level above — phases (forward pass, backward pass,
admission rounds) and lifecycles (a job from submit to finish) — and
live on their own lanes when exported next to the stream rows in the
Chrome trace (:func:`repro.sim.trace.timeline_to_trace_events` accepts
them directly).

Timestamps are simulation seconds, not wall clock, so recording a span
can never perturb the run it describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Lane prefix in the Chrome-trace export (one trace process groups all
#: span lanes, one thread row per distinct ``lane``).
SPAN_PROCESS = "observability"


@dataclass(frozen=True)
class Span:
    """One named interval on one span lane."""

    name: str
    lane: str
    start: float
    end: float
    category: str = "span"
    attrs: Dict[str, object] = field(default_factory=dict, hash=False)

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"span {self.name!r} ends before it starts "
                f"({self.end} < {self.start})")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "lane": self.lane,
            "start": self.start,
            "end": self.end,
            "category": self.category,
            "attrs": dict(self.attrs),
        }


class SpanRecorder:
    """Append-only span log with deterministic export order."""

    def __init__(self) -> None:
        self._spans: List[Span] = []

    def record(self, name: str, lane: str, start: float, end: float,
               category: str = "span", **attrs) -> Span:
        span = Span(name=name, lane=lane, start=start, end=end,
                    category=category, attrs=attrs)
        self._spans.append(span)
        return span

    @property
    def spans(self) -> List[Span]:
        return list(self._spans)

    def on_lane(self, lane: str) -> List[Span]:
        return [s for s in self._spans if s.lane == lane]

    def __len__(self) -> int:
        return len(self._spans)

    def to_list(self) -> List[dict]:
        """Spans in recording order (simulation order) as plain dicts."""
        return [s.to_dict() for s in self._spans]


def spans_to_trace_events(
    spans: List[Span], pid: int, process_name: str = SPAN_PROCESS,
) -> List[dict]:
    """Render spans as Chrome trace-event dicts under one process.

    Each distinct lane becomes a thread row; events are complete ("X")
    slices in microseconds, matching the stream rows the Timeline
    exporter emits, so spans and kernels line up on one time axis.
    """
    if not spans:
        return []
    lanes = sorted({s.lane for s in spans})
    tid_of = {lane: tid for tid, lane in enumerate(lanes)}
    events: List[dict] = [{
        "name": "process_name", "ph": "M", "pid": pid,
        "args": {"name": process_name},
    }]
    for lane in lanes:
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid,
            "tid": tid_of[lane], "args": {"name": lane},
        })
    for span in spans:
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "pid": pid,
            "tid": tid_of[span.lane],
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "args": dict(span.attrs),
        })
    return events

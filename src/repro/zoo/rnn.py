"""Unrolled recurrent networks (the paper's "other types of networks").

Section II-A: "other types of networks are also gaining traction (e.g.,
recurrent neural networks for natural language processing) … the key
intuitions of our work are equally applicable to any neural network
that exhibits layer-wise computational characteristics and is trained
via SGD."  An RNN unrolled over T timesteps *is* such a network: a
T-deep chain of layers whose activations all camp in GPU memory until
backpropagation-through-time walks back over them — the same reuse-gap
structure vDNN exploits, with sequence length playing the role of depth.

:func:`build_unrolled_rnn` emits a vanilla (Elman) RNN as a plain
:class:`~repro.graph.Network`:

* the input batch packs the whole sequence as channels
  ``(batch, T * input_dim, 1, 1)``; a :class:`~repro.graph.Slice` layer
  cuts out each timestep;
* two weight-tied FC layers implement the recurrence
  ``h_t = tanh(W_xh x_t + W_hh h_{t-1})`` — every timestep shares the
  step-1 parameters via ``tied_to``, so backpropagation-through-time
  accumulates their gradients across all T steps;
* a classifier head reads the final hidden state.
"""

from __future__ import annotations

from ..graph import Network, NetworkBuilder


def build_unrolled_rnn(
    timesteps: int = 16,
    input_dim: int = 32,
    hidden_dim: int = 64,
    num_classes: int = 10,
    batch_size: int = 16,
) -> Network:
    """Build an Elman RNN unrolled over ``timesteps`` steps."""
    if timesteps < 1:
        raise ValueError("need at least one timestep")
    if min(input_dim, hidden_dim, num_classes, batch_size) < 1:
        raise ValueError("all dimensions must be positive")

    b = NetworkBuilder(
        f"RNN-T{timesteps}({batch_size})",
        (batch_size, timesteps * input_dim, 1, 1),
    )
    packed = b.tap()

    # Step 1 owns W_xh (there is no previous hidden state yet).
    b.slice(0, input_dim, name="x_t01", after=packed)
    b.fc(hidden_dim, name="W_xh")
    b.tanh(name="h_t01")
    hidden = b.tap()

    for t in range(2, timesteps + 1):
        b.slice((t - 1) * input_dim, t * input_dim,
                name=f"x_t{t:02d}", after=packed)
        b.fc(hidden_dim, name=f"W_xh_t{t:02d}", tied_to="W_xh")
        xh = b.tap()
        # Step 2 owns W_hh; later steps tie to it.
        hh_name = "W_hh" if t == 2 else f"W_hh_t{t:02d}"
        b.fc(hidden_dim, name=hh_name, after=hidden,
             tied_to=None if t == 2 else "W_hh")
        hh = b.tap()
        b.add([xh, hh], name=f"pre_t{t:02d}")
        b.tanh(name=f"h_t{t:02d}")
        hidden = b.tap()

    b.at(hidden)
    b.fc(num_classes, name="head")
    b.softmax()
    return b.build()

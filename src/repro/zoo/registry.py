"""Named catalog of every network configuration the paper studies.

Section IV-C lists ten studied DNNs: four conventional ImageNet winners
(AlexNet, OverFeat, GoogLeNet at batch 128; VGG-16 at batch 64/128/256)
and four very deep VGG variants at batch 32.  :data:`PAPER_NETWORKS`
preserves the paper's figure ordering, and :func:`build` resolves any
of them (or a custom batch size) by name.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..graph import Network
from .alexnet import build_alexnet
from .googlenet import build_googlenet
from .overfeat import build_overfeat
from .resnet import build_deep_resnet, build_resnet
from .lstm import build_unrolled_lstm
from .rnn import build_unrolled_rnn
from .vgg import build_deep_vgg, build_vgg16

_BUILDERS: Dict[str, Callable[[int], Network]] = {
    "alexnet": build_alexnet,
    "overfeat": build_overfeat,
    "googlenet": build_googlenet,
    "vgg16": build_vgg16,
    "vgg116": lambda batch: build_deep_vgg(116, batch),
    "vgg216": lambda batch: build_deep_vgg(216, batch),
    "vgg316": lambda batch: build_deep_vgg(316, batch),
    "vgg416": lambda batch: build_deep_vgg(416, batch),
    "resnet18": lambda batch: build_resnet(18, batch),
    "resnet34": lambda batch: build_resnet(34, batch),
    "resnet50": lambda batch: build_resnet(50, batch),
    "resnet152": lambda batch: build_resnet(152, batch),
    "rnn": lambda batch: build_unrolled_rnn(batch_size=batch),
    "lstm": lambda batch: build_unrolled_lstm(batch_size=batch),
}

#: (builder key, batch size) in the paper's presentation order.
PAPER_CONVENTIONAL = [
    ("alexnet", 128),
    ("overfeat", 128),
    ("googlenet", 128),
    ("vgg16", 64),
    ("vgg16", 128),
    ("vgg16", 256),
]

PAPER_VERY_DEEP = [
    ("vgg116", 32),
    ("vgg216", 32),
    ("vgg316", 32),
    ("vgg416", 32),
]

PAPER_NETWORKS = PAPER_CONVENTIONAL + PAPER_VERY_DEEP


def available() -> List[str]:
    """Names accepted by :func:`build`."""
    return sorted(_BUILDERS)


def build(name: str, batch_size: Optional[int] = None) -> Network:
    """Build a catalog network by name.

    Args:
        name: one of :func:`available` (case-insensitive, dashes ignored).
        batch_size: overrides the paper's default for that network
            (128 for the conventional nets, 64 for VGG-16, 32 for the
            very deep variants).
    """
    key = name.lower().replace("-", "").replace("_", "")
    if key not in _BUILDERS:
        raise KeyError(f"unknown network {name!r}; available: {available()}")
    if batch_size is None:
        defaults = {"vgg16": 64, "vgg116": 32, "vgg216": 32,
                    "vgg316": 32, "vgg416": 32}
        batch_size = defaults.get(key, 128)
    if batch_size <= 0:
        raise ValueError(f"batch size must be positive, got {batch_size}")
    return _BUILDERS[key](batch_size)


def paper_conventional_networks() -> List[Network]:
    """The six conventional configurations of Figures 1, 4, 11, 12, 14."""
    return [build(name, batch) for name, batch in PAPER_CONVENTIONAL]


def paper_very_deep_networks() -> List[Network]:
    """The four very deep configurations of Figure 15."""
    return [build(name, batch) for name, batch in PAPER_VERY_DEEP]

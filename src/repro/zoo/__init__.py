"""Reference network zoo: every configuration the paper evaluates."""

from .alexnet import build_alexnet
from .googlenet import build_googlenet
from .overfeat import build_overfeat
from .resnet import RESNET_STAGES, build_deep_resnet, build_resnet
from .lstm import build_unrolled_lstm
from .rnn import build_unrolled_rnn
from .registry import (
    PAPER_CONVENTIONAL,
    PAPER_NETWORKS,
    PAPER_VERY_DEEP,
    available,
    build,
    paper_conventional_networks,
    paper_very_deep_networks,
)
from .vgg import VGG16_GROUPS, build_deep_vgg, build_vgg16

__all__ = [
    "PAPER_CONVENTIONAL",
    "PAPER_NETWORKS",
    "PAPER_VERY_DEEP",
    "RESNET_STAGES",
    "VGG16_GROUPS",
    "available",
    "build",
    "build_alexnet",
    "build_deep_resnet",
    "build_deep_vgg",
    "build_resnet",
    "build_unrolled_lstm",
    "build_unrolled_rnn",
    "build_googlenet",
    "build_overfeat",
    "build_vgg16",
    "paper_conventional_networks",
    "paper_very_deep_networks",
]

"""Unrolled LSTM (Hochreiter & Schmidhuber) — gated recurrence under vDNN.

The strongest stress test of the memory manager's generality: every
timestep materializes four gate activations, two cell-state products
and a hidden state, all joined by element-wise multiplies whose backward
reads *both* operands — so nearly every buffer in the unrolled graph
must survive until backpropagation-through-time returns to its step,
exactly the camping-feature-map problem vDNN attacks.  Weights are tied
across timesteps like the Elman RNN's.
"""

from __future__ import annotations

from ..graph import Network, NetworkBuilder

_GATES = ("i", "f", "o", "g")


def build_unrolled_lstm(
    timesteps: int = 8,
    input_dim: int = 32,
    hidden_dim: int = 64,
    num_classes: int = 10,
    batch_size: int = 16,
) -> Network:
    """Build an LSTM unrolled over ``timesteps`` steps."""
    if timesteps < 1:
        raise ValueError("need at least one timestep")
    if min(input_dim, hidden_dim, num_classes, batch_size) < 1:
        raise ValueError("all dimensions must be positive")

    b = NetworkBuilder(
        f"LSTM-T{timesteps}({batch_size})",
        (batch_size, timesteps * input_dim, 1, 1),
    )
    packed = b.tap()
    hidden = None  # h_{t-1}
    cell = None    # c_{t-1}

    for t in range(1, timesteps + 1):
        b.slice((t - 1) * input_dim, t * input_dim,
                name=f"x_t{t:02d}", after=packed)
        x_t = b.tap()

        gates = {}
        for gate in _GATES:
            if gate == "f" and cell is None:
                # No previous cell state to forget at step 1; building
                # the gate would create a dead-end layer.
                continue
            # Input projection: step 1 owns W_x<gate> (W_xf at step 2).
            owns_wx = (t == 1) or (gate == "f" and t == 2)
            b.fc(hidden_dim,
                 name=f"W_x{gate}" if owns_wx else f"W_x{gate}_t{t:02d}",
                 after=x_t,
                 tied_to=None if owns_wx else f"W_x{gate}")
            xw = b.tap()
            if hidden is not None:
                # Recurrent projection: step 2 owns W_h<gate>.
                b.fc(hidden_dim,
                     name=f"W_h{gate}" if t == 2 else f"W_h{gate}_t{t:02d}",
                     after=hidden,
                     tied_to=None if t == 2 else f"W_h{gate}")
                hw = b.tap()
                b.add([xw, hw], name=f"pre_{gate}_t{t:02d}")
            pre = b.tap()
            if gate == "g":
                b.tanh(name=f"{gate}_t{t:02d}", after=pre)
            else:
                b.sigmoid(name=f"{gate}_t{t:02d}", after=pre)
            gates[gate] = b.tap()

        b.mul([gates["i"], gates["g"]], name=f"ig_t{t:02d}")
        new_cell = b.tap()
        if cell is not None:
            b.mul([gates["f"], cell], name=f"fc_t{t:02d}")
            forgotten = b.tap()
            b.add([new_cell, forgotten], name=f"c_t{t:02d}")
            new_cell = b.tap()
        cell = new_cell

        b.tanh(name=f"ctanh_t{t:02d}", after=cell)
        squashed = b.tap()
        b.mul([gates["o"], squashed], name=f"h_t{t:02d}")
        hidden = b.tap()

    b.at(hidden)
    b.fc(num_classes, name="head")
    b.softmax()
    return b.build()

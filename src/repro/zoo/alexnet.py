"""AlexNet (Krizhevsky et al., 2012), single-tower Caffe reference layout.

Matches the reference model the paper evaluates (Section IV-C, batch 128):
5 CONV + 3 FC layers with ReLU, LRN after conv1/conv2, and 3x3/stride-2
max pooling.  Grouped convolutions in the original two-GPU AlexNet are
flattened into full convolutions, as every modern reference model does.
"""

from __future__ import annotations

from ..graph import Network, NetworkBuilder, PoolMode


def build_alexnet(batch_size: int = 128) -> Network:
    """Build AlexNet for the given batch size (paper default: 128)."""
    b = NetworkBuilder(f"AlexNet({batch_size})", (batch_size, 3, 227, 227))
    b.conv(96, kernel=11, stride=4, name="conv_01").relu()
    b.lrn(name="lrn_01")
    b.pool(kernel=3, stride=2, name="pool_01")
    b.conv(256, kernel=5, pad=2, name="conv_02").relu()
    b.lrn(name="lrn_02")
    b.pool(kernel=3, stride=2, name="pool_02")
    b.conv(384, kernel=3, pad=1, name="conv_03").relu()
    b.conv(384, kernel=3, pad=1, name="conv_04").relu()
    b.conv(256, kernel=3, pad=1, name="conv_05").relu()
    b.pool(kernel=3, stride=2, name="pool_03")
    b.fc(4096, name="fc_01").relu().dropout()
    b.fc(4096, name="fc_02").relu().dropout()
    b.fc(1000, name="fc_03").softmax()
    return b.build()

"""OverFeat "fast" model (Sermanet et al., 2013).

Matches the convnet-benchmarks reference configuration the paper uses
(Section IV-C, batch 128): 5 CONV + 3 FC layers on 231x231 inputs.
"""

from __future__ import annotations

from ..graph import Network, NetworkBuilder


def build_overfeat(batch_size: int = 128) -> Network:
    """Build OverFeat (fast) for the given batch size (paper default: 128)."""
    b = NetworkBuilder(f"OverFeat({batch_size})", (batch_size, 3, 231, 231))
    b.conv(96, kernel=11, stride=4, name="conv_01").relu()
    b.pool(kernel=2, stride=2, name="pool_01")
    b.conv(256, kernel=5, name="conv_02").relu()
    b.pool(kernel=2, stride=2, name="pool_02")
    b.conv(512, kernel=3, pad=1, name="conv_03").relu()
    b.conv(1024, kernel=3, pad=1, name="conv_04").relu()
    b.conv(1024, kernel=3, pad=1, name="conv_05").relu()
    b.pool(kernel=2, stride=2, name="pool_03")
    b.fc(3072, name="fc_01").relu().dropout()
    b.fc(4096, name="fc_02").relu().dropout()
    b.fc(1000, name="fc_03").softmax()
    return b.build()

"""Residual networks (He et al., 2015 — the paper's reference [15]).

The paper motivates vDNN with "the most recent ImageNet winning network
adopting more than a hundred convolutional layers"; that network is
ResNet.  These builders produce the basic-block ImageNet ResNets
(ResNet-18 and ResNet-34) plus arbitrary-depth variants, exercising the
two features the paper's own benchmarks do not: element-wise residual
joins (fan-out refcounts on every block boundary) and BatchNorm layers
whose backward re-reads X (making BN a first-class offload candidate).
"""

from __future__ import annotations

from typing import Sequence

from ..graph import Network, NetworkBuilder, PoolMode

#: Blocks per stage for the standard basic-block ResNets.
RESNET_STAGES = {
    18: (2, 2, 2, 2),
    34: (3, 4, 6, 3),
}

#: Blocks per stage for the bottleneck ResNets; ResNet-152 is "the most
#: recent ImageNet winning network" of the paper's introduction.
RESNET_BOTTLENECK_STAGES = {
    50: (3, 4, 6, 3),
    101: (3, 4, 23, 3),
    152: (3, 8, 36, 3),
}

_STAGE_CHANNELS = (64, 128, 256, 512)
_BOTTLENECK_EXPANSION = 4


def _basic_block(b: NetworkBuilder, channels: int, stride: int,
                 name: str) -> None:
    """Two 3x3 conv-BN pairs plus an identity/projection shortcut."""
    shortcut = b.tap()
    b.conv(channels, kernel=3, stride=stride, pad=1, name=f"{name}_conv1")
    b.batchnorm(name=f"{name}_bn1").relu(name=f"{name}_relu1")
    b.conv(channels, kernel=3, stride=1, pad=1, name=f"{name}_conv2")
    b.batchnorm(name=f"{name}_bn2")
    main = b.tap()

    if stride != 1:
        # Projection shortcut: 1x1/stride-2 conv + BN.
        b.conv(channels, kernel=1, stride=stride, name=f"{name}_proj",
               after=shortcut)
        b.batchnorm(name=f"{name}_proj_bn")
        shortcut = b.tap()

    b.add([main, shortcut], name=f"{name}_add")
    b.relu(name=f"{name}_out")


def _bottleneck_block(b: NetworkBuilder, channels: int, stride: int,
                      first_in_stage_one: bool, name: str) -> None:
    """1x1 reduce -> 3x3 -> 1x1 expand, with identity/projection shortcut."""
    out_channels = channels * _BOTTLENECK_EXPANSION
    shortcut = b.tap()
    b.conv(channels, kernel=1, name=f"{name}_conv1")
    b.batchnorm(name=f"{name}_bn1").relu(name=f"{name}_relu1")
    b.conv(channels, kernel=3, stride=stride, pad=1, name=f"{name}_conv2")
    b.batchnorm(name=f"{name}_bn2").relu(name=f"{name}_relu2")
    b.conv(out_channels, kernel=1, name=f"{name}_conv3")
    b.batchnorm(name=f"{name}_bn3")
    main = b.tap()

    if stride != 1 or first_in_stage_one:
        # Channel count changes at every stage entry, so the shortcut
        # needs a projection even at stride 1 (stage 1's first block).
        b.conv(out_channels, kernel=1, stride=stride, name=f"{name}_proj",
               after=shortcut)
        b.batchnorm(name=f"{name}_proj_bn")
        shortcut = b.tap()

    b.add([main, shortcut], name=f"{name}_add")
    b.relu(name=f"{name}_out")


def build_resnet(depth: int = 34, batch_size: int = 128) -> Network:
    """Build an ImageNet ResNet.

    Depths 18/34 use basic blocks; 50/101/152 use bottleneck blocks.
    """
    if depth in RESNET_STAGES:
        return _build(RESNET_STAGES[depth], f"ResNet-{depth}({batch_size})",
                      batch_size)
    if depth in RESNET_BOTTLENECK_STAGES:
        return _build(RESNET_BOTTLENECK_STAGES[depth],
                      f"ResNet-{depth}({batch_size})", batch_size,
                      bottleneck=True)
    raise ValueError(
        f"ResNet depth must be one of "
        f"{sorted(RESNET_STAGES) + sorted(RESNET_BOTTLENECK_STAGES)}, "
        f"got {depth}"
    )


def build_deep_resnet(blocks_per_stage: int, batch_size: int = 32) -> Network:
    """A uniformly deep basic-block ResNet (the very-deep analogue)."""
    if blocks_per_stage < 1:
        raise ValueError("need at least one block per stage")
    depth = 8 * blocks_per_stage + 2
    return _build((blocks_per_stage,) * 4,
                  f"ResNet-{depth}({batch_size})", batch_size)


def _build(stages: Sequence[int], name: str, batch_size: int,
           bottleneck: bool = False) -> Network:
    b = NetworkBuilder(name, (batch_size, 3, 224, 224))
    b.conv(64, kernel=7, stride=2, pad=3, name="stem_conv")
    b.batchnorm(name="stem_bn").relu(name="stem_relu")
    b.pool(kernel=3, stride=2, name="stem_pool")  # ceil mode: 112 -> 56

    for stage_index, block_count in enumerate(stages):
        channels = _STAGE_CHANNELS[stage_index]
        for block_index in range(block_count):
            stride = 2 if stage_index > 0 and block_index == 0 else 1
            block_name = f"s{stage_index + 1}b{block_index + 1}"
            if bottleneck:
                _bottleneck_block(
                    b, channels, stride,
                    first_in_stage_one=(stage_index == 0 and block_index == 0),
                    name=block_name,
                )
            else:
                _basic_block(b, channels, stride, name=block_name)

    b.pool(kernel=7, stride=1, mode=PoolMode.AVG, name="head_pool")
    b.fc(1000, name="fc_01").softmax()
    return b.build()

"""VGG-16 (Simonyan & Zisserman, 2015) and the paper's very deep variants.

The paper counts CONV layers only: its "VGG-16" has **16 CONV and 3 FC
layers** (Section IV-C; Figure 5 labels CONV_01..CONV_16), i.e. five groups
of 3x3/pad-1 convolutions with depths 2/2/4/4/4 and channel widths
64/128/256/512/512, separated by 2x2/stride-2 max pooling, followed by
three FC layers.  The paper studies it at batch 64/128/256.

Section IV-C extends VGG to hundreds of layers: "Each addition of 100 CONV
layers is done by adding 20 more CONV layers to each of the five CONV layer
groups", keeping that group's channel width — giving VGG-116/216/316/416,
studied at batch 32.  :func:`build_deep_vgg` implements exactly that rule.
"""

from __future__ import annotations

from typing import Sequence

from ..graph import Network, NetworkBuilder

#: (number of CONV layers, output channels) for VGG-16's five groups.
VGG16_GROUPS = ((2, 64), (2, 128), (4, 256), (4, 512), (4, 512))


def _vgg_body(b: NetworkBuilder, groups: Sequence[tuple]) -> NetworkBuilder:
    conv_id = 0
    for group_index, (depth, channels) in enumerate(groups, start=1):
        for _ in range(depth):
            conv_id += 1
            b.conv(channels, kernel=3, pad=1, name=f"conv_{conv_id:02d}").relu()
        b.pool(kernel=2, stride=2, name=f"pool_{group_index:02d}")
    b.fc(4096, name="fc_01").relu().dropout()
    b.fc(4096, name="fc_02").relu().dropout()
    b.fc(1000, name="fc_03").softmax()
    return b


def build_vgg16(batch_size: int = 64) -> Network:
    """Build VGG-16 for the given batch size (paper: 64, 128 and 256)."""
    b = NetworkBuilder(f"VGG-16({batch_size})", (batch_size, 3, 224, 224))
    return _vgg_body(b, VGG16_GROUPS).build()


def build_deep_vgg(total_conv_layers: int, batch_size: int = 32) -> Network:
    """Build a very deep VGG per the paper's extension rule.

    Args:
        total_conv_layers: one of 116, 216, 316, 416 (any value of the
            form ``16 + 100*k`` with k >= 0 is accepted).
        batch_size: the paper uses 32 for the very deep study.
    """
    extra = total_conv_layers - 16
    if extra < 0 or extra % 100:
        raise ValueError(
            "deep VGG depth must be 16 + 100*k CONV layers, got "
            f"{total_conv_layers}"
        )
    per_group = extra // 100 * 20
    groups = [(depth + per_group, channels) for depth, channels in VGG16_GROUPS]
    b = NetworkBuilder(
        f"VGG-{total_conv_layers}({batch_size})", (batch_size, 3, 224, 224)
    )
    return _vgg_body(b, groups).build()

"""GoogLeNet (Szegedy et al., 2014) — the non-linear fork/join benchmark.

Nine inception modules exactly per Table 1 of the GoogLeNet paper; the two
auxiliary classifiers are omitted, matching the convnet-benchmarks
reference model the paper evaluates (Section IV-C, batch 128).  Inception
modules exercise vDNN's refcount-gated offload logic (paper Figure 3):
each module's input feeds four branches, so its producer's Y has
``Refcnt = 4`` and may only be offloaded/released by the *last* branch
that consumes it.
"""

from __future__ import annotations

from ..graph import Network, NetworkBuilder, PoolMode


def build_googlenet(batch_size: int = 128) -> Network:
    """Build GoogLeNet v1 for the given batch size (paper default: 128)."""
    b = NetworkBuilder(f"GoogLeNet({batch_size})", (batch_size, 3, 224, 224))
    b.conv(64, kernel=7, stride=2, pad=3, name="conv_01").relu()
    b.pool(kernel=3, stride=2, name="pool_01")
    b.lrn(name="lrn_01")
    b.conv(64, kernel=1, name="conv_02").relu()
    b.conv(192, kernel=3, pad=1, name="conv_03").relu()
    b.lrn(name="lrn_02")
    b.pool(kernel=3, stride=2, name="pool_02")

    b.inception(64, 96, 128, 16, 32, 32, name="incep_3a")
    b.inception(128, 128, 192, 32, 96, 64, name="incep_3b")
    b.pool(kernel=3, stride=2, name="pool_03")

    b.inception(192, 96, 208, 16, 48, 64, name="incep_4a")
    b.inception(160, 112, 224, 24, 64, 64, name="incep_4b")
    b.inception(128, 128, 256, 24, 64, 64, name="incep_4c")
    b.inception(112, 144, 288, 32, 64, 64, name="incep_4d")
    b.inception(256, 160, 320, 32, 128, 128, name="incep_4e")
    b.pool(kernel=3, stride=2, name="pool_04")

    b.inception(256, 160, 320, 32, 128, 128, name="incep_5a")
    b.inception(384, 192, 384, 48, 128, 128, name="incep_5b")
    b.pool(kernel=7, stride=1, mode=PoolMode.AVG, name="pool_05")

    b.dropout(rate=0.4)
    b.fc(1000, name="fc_01").softmax()
    return b.build()

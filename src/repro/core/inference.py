"""Forward-only (inference) memory management — the paper's Figure 7.

During inference no feature map needs to survive for a backward pass,
so a layer-wise manager can release every X at its last consumer (the
black-X arrows of Figure 7) with no offloading at all.  The baseline,
by contrast, still allocates "the sum of all green (W) and red (X)
arrows" network-wide (Figure 2).  This executor quantifies that gap —
the inference-side counterpart of Figure 11.
"""

from __future__ import annotations

from typing import Dict

from ..alloc.pool import Allocation, PoolAllocator
from ..alloc.stats import UsageTracker
from ..graph.layer import LayerKind
from ..graph.network import Network
from ..hw.config import SystemConfig
from ..kernels.latency import LatencyModel
from ..sim.stream import make_stream_pair
from ..sim.timeline import EventKind
from .algo_config import AlgoConfig
from .executor import IterationResult, _feature_extraction_time
from .liveness import LivenessAnalysis

_UNBOUNDED = 1 << 50


def _validate_inference_batch(network: Network) -> None:
    """Reject non-positive batch sizes with the same contract as
    :class:`repro.sched.Job`.

    The zoo's :func:`~repro.zoo.build` and :class:`~repro.graph.tensor.
    TensorSpec` already guard their own paths; this guards hand-built
    networks handed straight to the inference simulators, so the error
    names the actual problem instead of surfacing as a downstream
    shape/latency anomaly.
    """
    batch = network.input_node.output_spec.batch
    if batch <= 0:
        raise ValueError(f"batch_size must be positive, got {batch}")


def weight_load_bytes(network: Network) -> Dict[int, int]:
    """Per-layer weight bytes an inference pass must have on-device.

    The single accounting path shared by :func:`simulate_inference`
    (which exposes it on its result), the demand-layering executor in
    :mod:`repro.serve.layering` (which streams exactly these bytes
    through the sliding window) and ``bench_ext_inference.py``.  Keys
    are layer indices; only layers that own weights appear.
    """
    return {
        node.index: node.weight_bytes
        for node in network
        if node.weight_bytes
    }


def baseline_inference_bytes(network: Network, algos: AlgoConfig) -> int:
    """Network-wide inference allocation: all Xs + W + shared WS."""
    _validate_inference_batch(network)
    liveness = LivenessAnalysis(network)
    return (liveness.total_feature_map_bytes()
            + network.total_weight_bytes()
            + algos.max_workspace_bytes())


def simulate_inference(
    network: Network,
    system: SystemConfig,
    algos: AlgoConfig,
) -> IterationResult:
    """One forward pass under layer-wise release (Figure 7).

    Returns an :class:`IterationResult` with ``policy_label``
    ``"inference"``; backward-related fields are zero and
    ``weight_load_bytes`` carries the per-layer weight accounting the
    serving subsystem's demand-layering executor reuses.
    """
    _validate_inference_batch(network)
    latency = LatencyModel(system.gpu)
    liveness = LivenessAnalysis(network)
    pool = PoolAllocator(_UNBOUNDED)
    compute, _memory, timeline = make_stream_pair()
    usage = UsageTracker()
    device: Dict[int, Allocation] = {}

    def sample() -> None:
        usage.record(compute.ready_time, pool.live_bytes)

    persistent = 0
    external = 0
    for node in network:
        if not node.weight_bytes:
            continue
        if node.is_feature_extraction:
            pool.alloc(node.weight_bytes, f"W[{node.name}]")
            sample()
        else:
            external += node.weight_bytes
        persistent += node.weight_bytes

    for index in network.forward_schedule():
        node = network[index]
        if not node.in_place:
            storage = liveness.storage_of(index)
            device[storage.owner] = pool.alloc(storage.nbytes,
                                               f"Y[{node.name}]")
            sample()
        if node.kind is not LayerKind.INPUT:
            workspace = None
            ws_bytes = algos.workspace_bytes(node)
            if ws_bytes:
                workspace = pool.alloc(ws_bytes, f"WS[{node.name}]")
                sample()
            timing = latency.forward(network, node, algos.profile(node))
            compute.enqueue(EventKind.FORWARD, node.name, timing.seconds,
                            nbytes=int(timing.dram_bytes), layer_index=index)
            if workspace is not None:
                pool.free(workspace)
                sample()
        # Figure 7: free every input at its last consumer, full stop.
        for storage in liveness.input_storages(index):
            if storage.forward_release_at == index:
                pool.free(device.pop(storage.owner))
                sample()

    # The network output remains live for the caller; free it last.
    for allocation in list(device.values()):
        pool.free(allocation)
    device.clear()
    usage.record(timeline.end_time, pool.live_bytes)

    peak = usage.max_bytes
    total_peak = peak + external
    trainable = total_peak <= system.gpu.memory_bytes
    return IterationResult(
        network_name=network.name,
        policy_label="inference",
        algo_label=algos.label,
        trainable=trainable,
        failure=None if trainable else "inference footprint exceeds GPU",
        timeline=timeline,
        usage=usage,
        managed_max_bytes=peak,
        managed_avg_bytes=usage.average_bytes,
        external_bytes=external,
        persistent_bytes=persistent,
        total_time=timeline.span,
        feature_extraction_time=_feature_extraction_time(network, timeline),
        offload_bytes=0,
        prefetch_bytes=0,
        pinned_peak_bytes=0,
        compute_stall_seconds=0.0,
        weight_load_bytes=weight_load_bytes(network),
    )

"""Training-run planning: from one simulated iteration to a full run.

The paper's pitch to practitioners is about whole training runs —
"millions to billions of iterations" (Section II-B) over "days to weeks"
(Section III-C).  :func:`plan_training_run` extends the one-iteration
simulation to that scale: given a dataset size and epoch count, it picks
the vDNN_dyn configuration, then reports end-to-end time, energy (from
the Section V-D power model), and total PCIe traffic — the numbers a
user needs before committing a GPU-month.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..graph.network import Network
from ..hw.config import SystemConfig
from ..sim.power import PowerReport, analyze_power
from .dynamic import DynamicPlan, plan_dynamic
from .executor import IterationResult


@dataclass(frozen=True)
class TrainingRunPlan:
    """Projected cost of one full training run under vDNN_dyn."""

    network_name: str
    configuration: str
    dataset_size: int
    epochs: int
    batch_size: int
    iterations: int
    iteration_seconds: float
    gpu_peak_bytes: int
    host_peak_bytes: int
    pcie_bytes_per_iteration: int
    average_watts: float

    @property
    def total_seconds(self) -> float:
        return self.iterations * self.iteration_seconds

    @property
    def total_hours(self) -> float:
        return self.total_seconds / 3600.0

    @property
    def energy_kwh(self) -> float:
        return self.average_watts * self.total_seconds / 3.6e6

    @property
    def total_pcie_bytes(self) -> int:
        return self.pcie_bytes_per_iteration * self.iterations

    @property
    def images_per_second(self) -> float:
        if self.iteration_seconds == 0:
            return 0.0
        return self.batch_size / self.iteration_seconds

    def summary_rows(self) -> List[List[str]]:
        """Rows for the CLI/reporting table."""
        from ..reporting.tables import gb_str, ms_str

        return [
            ["configuration", self.configuration],
            ["iterations", f"{self.iterations:,}"],
            ["iteration time", ms_str(self.iteration_seconds)],
            ["throughput", f"{self.images_per_second:,.0f} images/s"],
            ["total wall time", f"{self.total_hours:,.1f} h"],
            ["GPU peak memory", gb_str(self.gpu_peak_bytes)],
            ["host pinned peak", gb_str(self.host_peak_bytes)],
            ["PCIe traffic / run", gb_str(self.total_pcie_bytes)],
            ["average power", f"{self.average_watts:,.0f} W"],
            ["energy", f"{self.energy_kwh:,.1f} kWh"],
        ]


def plan_training_run(
    network: Network,
    system: SystemConfig,
    dataset_size: int = 1_281_167,   # ImageNet-1k train split
    epochs: int = 74,                # VGG's published schedule
    plan: Optional[DynamicPlan] = None,
) -> TrainingRunPlan:
    """Project a full training run under the vDNN_dyn configuration.

    Raises :class:`~repro.core.dynamic.UntrainableError` when no vDNN
    configuration fits the GPU at all.
    """
    if dataset_size <= 0 or epochs <= 0:
        raise ValueError("dataset_size and epochs must be positive")
    plan = plan or plan_dynamic(network, system)
    result: IterationResult = plan.result
    batch = network.batch_size
    iterations_per_epoch = -(-dataset_size // batch)
    power: PowerReport = analyze_power(result.timeline, system.gpu)
    return TrainingRunPlan(
        network_name=network.name,
        configuration=plan.description,
        dataset_size=dataset_size,
        epochs=epochs,
        batch_size=batch,
        iterations=iterations_per_epoch * epochs,
        iteration_seconds=result.total_time,
        gpu_peak_bytes=result.max_usage_bytes,
        host_peak_bytes=result.pinned_peak_bytes,
        pcie_bytes_per_iteration=result.offload_bytes + result.prefetch_bytes,
        average_watts=power.average_watts,
    )

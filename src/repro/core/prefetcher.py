"""The vDNN prefetch-candidate search (paper Figure 10, verbatim).

Before ``stream_compute`` starts a layer's backward computation, vDNN
searches the *preceding* layers (lower indices) for the closest one that
offloaded its input feature maps and has not been prefetched yet.  The
search window is deliberately bounded: it stops at the first CONV layer
that does not itself need prefetching, "guaranteeing that the prefetched
X will not end up being used too far away in the future".

The per-layer ``offloaded`` / ``prefetched`` flags live in
:class:`PrefetchState`; the executor sets ``offloaded`` during forward
propagation and calls :func:`find_prefetch_layer` before every backward
kernel, exactly as the pseudo code prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..graph.layer import LayerKind
from ..graph.network import Network
from ..obs import Instrumentation


@dataclass
class PrefetchState:
    """The ``layers[n]->offloaded`` / ``->prefetched`` flags of Fig. 10."""

    offloaded: Dict[int, bool] = field(default_factory=dict)
    prefetched: Dict[int, bool] = field(default_factory=dict)

    @classmethod
    def for_network(cls, network: Network) -> "PrefetchState":
        return cls(
            offloaded={n.index: False for n in network},
            prefetched={n.index: False for n in network},
        )

    def mark_offloaded(self, layer_index: int) -> None:
        self.offloaded[layer_index] = True

    def claim(self, layer_index: int) -> None:
        """Mark a layer as prefetched so the search skips it from now on."""
        self.prefetched[layer_index] = True

    def unclaim(self, layer_index: int) -> None:
        """Roll back a claim whose prefetch failed to materialise.

        The executor calls this when the pool allocation or the DMA for
        a claimed layer fails permanently: the layer's X is still only
        in host memory, so it must stay eligible for a later prefetch
        (or the demand-fetch safety net) instead of being silently lost.
        """
        self.prefetched[layer_index] = False

    def pending(self) -> List[int]:
        """Layers offloaded but not yet prefetched, ascending."""
        return [
            i for i, off in sorted(self.offloaded.items())
            if off and not self.prefetched[i]
        ]


def find_prefetch_layer(
    network: Network,
    state: PrefetchState,
    current_layer_id: int,
    bounded_window: bool = True,
    obs: Optional[Instrumentation] = None,
) -> Optional[int]:
    """Pick the layer whose offloaded X should be prefetched now.

    Transcription of the paper's ``Network::findPrefetchLayer``: walk
    layer ids downward from ``current_layer_id - 1``; the first layer
    that is offloaded-and-not-prefetched is claimed (its ``prefetched``
    flag is set, so each layer is prefetched exactly once) and returned.
    Hitting a CONV layer that does not need prefetching ends the search
    window (line 14 of Fig. 10).

    The claim is made through :meth:`PrefetchState.claim`; a caller
    whose subsequent allocation or DMA fails must call
    :meth:`PrefetchState.unclaim` so the layer is retried rather than
    permanently lost.

    Args:
        bounded_window: set False to disable the CONV-layer bound — the
            ablation of DESIGN.md §5.2 (prefetch as early as possible,
            trading memory savings for scheduling slack).
        obs: optional instrumentation; records search hit/miss and
            claim counts without affecting the search itself.

    Returns:
        The layer id to prefetch, or None when nothing (suitable) is
        pending.
    """
    for layer_id in range(current_layer_id - 1, -1, -1):
        if state.offloaded[layer_id] and not state.prefetched[layer_id]:
            state.claim(layer_id)
            if obs is not None:
                obs.prefetch_claimed()
            return layer_id
        if bounded_window and network[layer_id].kind is LayerKind.CONV:
            if obs is not None:
                obs.prefetch_search(False)
            return None
    if obs is not None:
        obs.prefetch_search(False)
    return None

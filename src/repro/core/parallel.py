"""Multi-GPU data parallelism — the paper's alternative to vDNN.

Section I/IV-C: before vDNN, the way to train VGG-16 at batch 256 was to
"parallelize the DNN across multiple GPUs" — Simonyan & Zisserman split
it over four GPUs, each training a batch-64 replica that fits in one
card.  This module models that option so the benchmarks can compare
"N GPUs, baseline policy" against "1 GPU, vDNN" on cost-normalized
terms: per-GPU trainability, gradient all-reduce time over the shared
PCIe fabric, and end-to-end images/second.

Model: synchronous data parallelism with a ring all-reduce of all weight
gradients after backward propagation.  Ring all-reduce moves
``2 * (N-1)/N * weight_bytes`` through each GPU's link; with every GPU
behind the same PCIe switch the transfers serialize per link, giving
``allreduce_time = 2 * (N-1)/N * weight_bytes / dma_bandwidth``.
Compute does not overlap the all-reduce (the paper-era frameworks did
not overlap either).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.network import Network
from ..hw.config import SystemConfig
from .algo_config import AlgoConfig
from .executor import IterationResult, simulate_baseline


@dataclass(frozen=True)
class DataParallelReport:
    """One synchronous data-parallel training iteration."""

    network_name: str
    num_gpus: int
    global_batch: int
    per_gpu_batch: int
    per_gpu_trainable: bool
    compute_seconds: float
    allreduce_seconds: float

    @property
    def iteration_seconds(self) -> float:
        return self.compute_seconds + self.allreduce_seconds

    @property
    def images_per_second(self) -> float:
        if self.iteration_seconds == 0:
            return 0.0
        return self.global_batch / self.iteration_seconds

    @property
    def scaling_efficiency(self) -> float:
        """Achieved speedup over 1 GPU, divided by the GPU count."""
        ideal = self.compute_seconds + self.allreduce_seconds
        return self.compute_seconds / ideal if ideal else 0.0


def simulate_data_parallel(
    network: Network,
    num_gpus: int,
    system: SystemConfig,
    algo: str = "p",
) -> DataParallelReport:
    """Split ``network``'s global batch across ``num_gpus`` replicas.

    The network's own batch size is the *global* batch; it must divide
    evenly by the GPU count (as in the paper's 4x VGG-16 (64) setup).
    """
    if num_gpus < 1:
        raise ValueError("need at least one GPU")
    global_batch = network.batch_size
    if global_batch % num_gpus:
        raise ValueError(
            f"global batch {global_batch} does not divide across "
            f"{num_gpus} GPUs"
        )
    per_gpu_batch = global_batch // num_gpus
    replica = network.with_batch_size(per_gpu_batch)
    algos = (AlgoConfig.performance_optimal(replica) if algo == "p"
             else AlgoConfig.memory_optimal(replica))
    result: IterationResult = simulate_baseline(replica, system, algos)

    weight_bytes = network.total_weight_bytes()
    if num_gpus == 1:
        allreduce = 0.0
    else:
        volume = 2 * (num_gpus - 1) / num_gpus * weight_bytes
        allreduce = system.pcie.dma_time(int(volume))

    return DataParallelReport(
        network_name=network.name,
        num_gpus=num_gpus,
        global_batch=global_batch,
        per_gpu_batch=per_gpu_batch,
        per_gpu_trainable=result.trainable,
        compute_seconds=result.total_time,
        allreduce_seconds=allreduce,
    )


def min_gpus_for_baseline(
    network: Network, system: SystemConfig, algo: str = "p",
    max_gpus: int = 64,
) -> int:
    """Fewest GPUs whose per-replica slice fits the baseline policy.

    Returns 0 when even a batch-1 replica does not fit (very deep
    networks: no amount of data parallelism helps, which is the paper's
    Figure 15 punchline).
    """
    for num_gpus in range(1, max_gpus + 1):
        if network.batch_size % num_gpus:
            continue
        report = simulate_data_parallel(network, num_gpus, system, algo)
        if report.per_gpu_trainable:
            return num_gpus
    tiny = network.with_batch_size(1)
    algos = (AlgoConfig.performance_optimal(tiny) if algo == "p"
             else AlgoConfig.memory_optimal(tiny))
    if not simulate_baseline(tiny, system, algos).trainable:
        return 0
    return max_gpus

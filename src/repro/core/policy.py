"""vDNN memory-transfer policies (Section III-C).

A policy answers one question per layer: *should this layer offload its
input feature maps to host memory during its forward computation?*  The
paper evaluates two static answers plus a dynamic one:

* ``vDNN_all``  — every feature-extraction layer offloads its X: the most
  memory-efficient choice;
* ``vDNN_conv`` — only CONV layers offload (their long forward latency
  hides the transfer);
* ``vDNN_none`` — nothing offloads (used by the dynamic policy's "fits
  entirely in GPU memory" configuration);
* custom offload sets, which the dynamic policy (and ablations) build.

Mechanism-level eligibility (refcounts, in-place ACTV exclusion,
classifier exclusion) is enforced by the executor, not here — a policy
only expresses intent, like the paper's per-layer ``offloaded`` flag.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from ..graph.layer import LayerKind
from ..graph.network import Network, NetworkNode


class PolicyKind(enum.Enum):
    ALL = "all"
    CONV = "conv"
    NONE = "none"
    COMP = "comp"
    CUSTOM = "custom"


@dataclass(frozen=True)
class TransferPolicy:
    """Which layers offload their input feature maps.

    Use the factory classmethods; ``CUSTOM`` policies carry an explicit
    set of layer indices allowed to offload, plus the subset of those
    whose transfers ride the compressing DMA engine.  ``COMP`` offloads
    everywhere ``ALL`` does but compresses every transfer.
    """

    kind: PolicyKind
    offload_layers: FrozenSet[int] = field(default_factory=frozenset)
    compress_layers: FrozenSet[int] = field(default_factory=frozenset)

    # -- factories ------------------------------------------------------
    @classmethod
    def vdnn_all(cls) -> "TransferPolicy":
        return cls(PolicyKind.ALL)

    @classmethod
    def vdnn_conv(cls) -> "TransferPolicy":
        return cls(PolicyKind.CONV)

    @classmethod
    def none(cls) -> "TransferPolicy":
        return cls(PolicyKind.NONE)

    @classmethod
    def vdnn_comp(cls) -> "TransferPolicy":
        return cls(PolicyKind.COMP)

    @classmethod
    def custom(cls, offload_layers,
               compress_layers=()) -> "TransferPolicy":
        return cls(PolicyKind.CUSTOM, frozenset(offload_layers),
                   frozenset(compress_layers))

    # -- queries --------------------------------------------------------
    def wants_offload(self, node: NetworkNode) -> bool:
        """Policy intent for one layer's input X.

        ACTV (and DROPOUT) layers never offload: they are refactored
        in-place and their backward uses only Y and dY, "obviating the
        need for memory offloading" (Section III-B).  Classifier layers
        are outside vDNN's scope (Section III).
        """
        if not node.is_feature_extraction:
            return False
        if node.kind in (LayerKind.ACTV, LayerKind.DROPOUT, LayerKind.INPUT):
            return False
        if self.kind in (PolicyKind.ALL, PolicyKind.COMP):
            return True
        if self.kind is PolicyKind.CONV:
            return node.kind is LayerKind.CONV
        if self.kind is PolicyKind.NONE:
            return False
        return node.index in self.offload_layers

    def compresses(self, index: int) -> bool:
        """Whether layer ``index``'s offload DMA uses the cDMA engine."""
        if self.kind is PolicyKind.COMP:
            return True
        return index in self.compress_layers

    def offload_set(self, network: Network) -> FrozenSet[int]:
        """All layer indices this policy would like to offload."""
        return frozenset(n.index for n in network if self.wants_offload(n))

    def describe(self) -> str:
        if self.kind is PolicyKind.CUSTOM:
            return f"custom({len(self.offload_layers)} layers)"
        return f"vDNN_{self.kind.value}"

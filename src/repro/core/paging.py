"""The page-migration strawman (Section II-C), as an executable model.

The paper's argument for explicit offload/prefetch is that OS-style,
demand-paged GPU virtualization moves data at page-fault speed: each
4 KB page costs 20-50 us of interrupts, page-table and TLB maintenance
— 80-200 MB/s against DMA's 12.8 GB/s.  This module models training a
memory-oversubscribed network under such a system, to quantify the gap
vDNN's design sidesteps.

Model: when the network-wide footprint exceeds physical GPU memory by B
bytes, each training iteration must (at least) page B bytes out during
forward propagation and page the same B bytes back in during backward
propagation, and page faults block the faulting kernel (no overlap —
the faulting thread *is* the computation).  This is deliberately
charitable to paging: perfect (oracular) page placement, no thrashing,
every byte moved exactly twice.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.network import Network
from ..hw.config import SystemConfig
from ..hw.pcie import TransferMode
from .algo_config import AlgoConfig
from .executor import IterationResult, simulate_baseline


@dataclass(frozen=True)
class PagingReport:
    """Cost of training one iteration under demand paging."""

    network_name: str
    footprint_bytes: int
    oversubscribed_bytes: int
    compute_seconds: float
    paging_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.paging_seconds

    @property
    def slowdown(self) -> float:
        """Iteration-time multiplier vs. a big-enough GPU."""
        if self.compute_seconds == 0:
            return 1.0
        return self.total_seconds / self.compute_seconds

    @property
    def fits(self) -> bool:
        return self.oversubscribed_bytes == 0


def simulate_page_migration(
    network: Network,
    system: SystemConfig,
    algos: AlgoConfig,
    mode: TransferMode = TransferMode.PAGE_MIGRATION,
) -> PagingReport:
    """One training iteration under page-migration virtualization.

    Args:
        mode: pass :attr:`TransferMode.DMA` to model a hypothetical
            paging system that somehow moved pages at DMA speed — the
            upper bound on what smarter paging hardware could achieve
            (still unable to overlap, unlike vDNN).
    """
    oracle = simulate_baseline(network, system.with_oracular_gpu(), algos)
    footprint = oracle.max_usage_bytes
    over = max(0, footprint - system.gpu.memory_bytes)
    paging_seconds = 2 * system.pcie.transfer_time(over, mode)
    return PagingReport(
        network_name=network.name,
        footprint_bytes=footprint,
        oversubscribed_bytes=over,
        compute_seconds=oracle.total_time,
        paging_seconds=paging_seconds,
    )


def paging_vs_vdnn(
    network: Network, system: SystemConfig
) -> dict:
    """Head-to-head: demand paging vs. vDNN_dyn on one network.

    Returns a dict with the paging slowdown, the DMA-speed-paging
    slowdown, and vDNN_dyn's slowdown — the three points of the
    Section II-C argument.
    """
    from .dynamic import simulate_dynamic

    algos = AlgoConfig.performance_optimal(network)
    paging = simulate_page_migration(network, system, algos)
    paging_dma = simulate_page_migration(
        network, system, algos, mode=TransferMode.DMA
    )
    dyn = simulate_dynamic(network, system)
    oracle = simulate_baseline(network, system.with_oracular_gpu(), algos)
    vdnn_slowdown = (dyn.total_time / oracle.total_time
                     if oracle.total_time else 1.0)
    return {
        "network": network.name,
        "oversubscribed_bytes": paging.oversubscribed_bytes,
        "paging_slowdown": paging.slowdown,
        "paging_dma_slowdown": paging_dma.slowdown,
        "vdnn_dyn_slowdown": vdnn_slowdown,
    }

"""vDNN_dyn: the dynamic memory-transfer / algorithm selection policy.

Section III-C: because training repeats one identical iteration millions
of times, vDNN can afford a short profiling stage that *tries*
configurations in decreasing order of performance and adopts the first
one that is trainable:

1. ``vDNN_all`` with memory-optimal algorithms — the feasibility probe.
   If even this does not fit, the network is untrainable, full stop.
2. No offloading + performance-optimal algorithms (the best possible
   configuration).  If it fits, use it for the whole training run.
   Otherwise try the same fastest algorithms with ``vDNN_conv`` and then
   ``vDNN_all`` offloading.
3. A greedy pass that starts from the fastest algorithms and locally
   downgrades individual layers to less workspace-hungry algorithms
   until the configuration fits, tried first with ``vDNN_conv`` then
   with ``vDNN_all``.
4. Fallback: ``vDNN_all`` with memory-optimal algorithms (known to fit
   from step 1).

Each probe here is one run of the iteration simulator — the analogue of
the paper's single profiled training pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..graph.network import Network
from ..hw.config import SystemConfig
from .algo_config import AlgoConfig
from .cached import cached_vdnn, dynamic_key
from .executor import IterationResult
from .policy import TransferPolicy


class UntrainableError(RuntimeError):
    """Even vDNN_all with memory-optimal algorithms does not fit."""


@dataclass
class ProfilingPass:
    """Record of one configuration probe."""

    description: str
    policy: TransferPolicy
    algo_label: str
    trainable: bool
    max_usage_bytes: int
    feature_extraction_time: float


@dataclass
class DynamicPlan:
    """The configuration vDNN_dyn settles on, plus its probe history."""

    policy: TransferPolicy
    algos: AlgoConfig
    result: IterationResult
    passes: List[ProfilingPass] = field(default_factory=list)

    @property
    def description(self) -> str:
        return f"{self.policy.describe()} + algos[{self.algos.label}]"


def _probe(
    network: Network,
    system: SystemConfig,
    policy: TransferPolicy,
    algos: AlgoConfig,
    description: str,
    passes: List[ProfilingPass],
    use_cache: Optional[bool] = None,
) -> IterationResult:
    # Each profiling pass is one content-addressed simulation point:
    # repeated planning over the same network replays passes as hits.
    result = cached_vdnn(network, system, policy, algos, use_cache=use_cache)
    passes.append(ProfilingPass(
        description=description,
        policy=policy,
        algo_label=algos.label,
        trainable=result.trainable,
        max_usage_bytes=result.max_usage_bytes,
        feature_extraction_time=result.feature_extraction_time,
    ))
    return result


def _greedy_downgrade(
    network: Network,
    policy: TransferPolicy,
    probe,
    max_probes: int = 64,
) -> Optional[Tuple[AlgoConfig, object]]:
    """Pass-3 greedy: shrink the most workspace-hungry layers until fit.

    The paper walks layers in order and downgrades any whose fastest
    algorithm would overflow the budget; with a simulator per probe we
    can be slightly smarter and always downgrade the layer contributing
    the largest live workspace, which reaches the same fixed points.
    """
    algos = AlgoConfig.performance_optimal(network)
    algos.label = "dyn"
    for probe_index in range(max_probes):
        result = probe(
            policy, algos, f"greedy[{policy.describe()}] probe {probe_index}"
        )
        if result.trainable:
            return algos, result
        # Downgrade the layer with the largest current workspace.
        candidates = sorted(
            algos.profiles.items(),
            key=lambda item: item[1].workspace_bytes,
            reverse=True,
        )
        downgraded = False
        for layer_index, profile in candidates:
            if profile.workspace_bytes == 0:
                break
            if algos.downgrade(network, layer_index):
                downgraded = True
                break
        if not downgraded:
            return None  # everything is already at implicit GEMM
    return None


def run_profiling_ladder(
    network: Network,
    probe,
    budget_bytes: int,
) -> Tuple[TransferPolicy, AlgoConfig, object]:
    """The vDNN_dyn ladder, abstracted over how configurations are tried.

    ``probe(policy, algos, description)`` evaluates one configuration
    and returns an object with ``trainable`` and ``max_usage_bytes``
    attributes.  :func:`plan_dynamic` probes by *simulating* (via the
    result cache); the static verifier probes by *interpreting* the
    compiled plan, replaying the identical probe sequence without a
    single simulation — both walk this one ladder, so their adopted
    configurations can never drift apart.

    Returns the adopted ``(policy, algos, probe_result)``; raises
    :class:`UntrainableError` when the pass-1 feasibility probe fails.
    """
    memory_optimal = AlgoConfig.memory_optimal(network)
    performance_optimal = AlgoConfig.performance_optimal(network)

    # Pass 1: trainability probe — vDNN_all, memory-optimal.
    feasibility = probe(
        TransferPolicy.vdnn_all(), memory_optimal,
        "pass1: vDNN_all(m) feasibility",
    )
    if not feasibility.trainable:
        raise UntrainableError(
            f"{network.name}: even vDNN_all with memory-optimal algorithms "
            f"needs {feasibility.max_usage_bytes} bytes "
            f"(> {budget_bytes})"
        )

    # Pass 2: fastest algorithms, no offloading at all.
    best = probe(
        TransferPolicy.none(), performance_optimal, "pass2: no-offload(p)"
    )
    if best.trainable:
        return TransferPolicy.none(), performance_optimal, best

    # Pass 2b: fastest algorithms with static offloading.
    for policy in (TransferPolicy.vdnn_conv(), TransferPolicy.vdnn_all()):
        result = probe(
            policy, performance_optimal, f"pass2b: {policy.describe()}(p)"
        )
        if result.trainable:
            return policy, performance_optimal, result

    # Pass 3: greedy per-layer algorithm downgrades.
    for policy in (TransferPolicy.vdnn_conv(), TransferPolicy.vdnn_all()):
        greedy = _greedy_downgrade(network, policy, probe)
        if greedy is not None:
            algos, result = greedy
            return policy, algos, result

    # Fallback: the known-feasible configuration from pass 1.
    return TransferPolicy.vdnn_all(), memory_optimal, feasibility


def plan_dynamic(
    network: Network,
    system: SystemConfig,
    use_cache: Optional[bool] = None,
) -> DynamicPlan:
    """Run the vDNN_dyn profiling passes and return the adopted plan."""
    passes: List[ProfilingPass] = []

    def probe(policy: TransferPolicy, algos: AlgoConfig,
              description: str) -> IterationResult:
        return _probe(network, system, policy, algos, description, passes,
                      use_cache=use_cache)

    policy, algos, result = run_profiling_ladder(
        network, probe, system.gpu.memory_bytes)
    return DynamicPlan(policy, algos, result, passes)


def simulate_dynamic(
    network: Network,
    system: SystemConfig,
    use_cache: Optional[bool] = None,
) -> IterationResult:
    """Convenience: run vDNN_dyn and relabel the adopted result.

    The adopted (already relabeled) result is itself cached under a
    ``dynamic`` point, so a warm ``evaluate(..., policy="dyn")`` skips
    the whole profiling ladder; a cold run still benefits from any
    previously cached individual passes.
    """
    from ..perf.cache import cache_enabled, get_cache

    enabled = cache_enabled(use_cache)
    key = dynamic_key(network, system) if enabled else None
    if enabled:
        cached = get_cache().get(key)
        if cached is not None:
            return cached

    plan = plan_dynamic(network, system, use_cache=use_cache)
    result = plan.result
    result.policy_label = "vDNN_dyn"
    result.algo_label = plan.algos.label
    if enabled:
        get_cache().put(key, result)
    return result

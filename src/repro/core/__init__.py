"""vDNN core: memory-transfer policies, executor, dynamic planner."""

from .algo_config import AlgoConfig
from .api import compare_policies, evaluate, oracular_baseline
from .cached import cached_baseline, cached_recompute, cached_vdnn
from .capacity import CapacityReport, capacity_report, max_trainable_batch
from .paging import PagingReport, paging_vs_vdnn, simulate_page_migration
from .parallel import (
    DataParallelReport,
    min_gpus_for_baseline,
    simulate_data_parallel,
)
from .inference import (
    baseline_inference_bytes,
    simulate_inference,
    weight_load_bytes,
)
from .joint import (
    JointConfig,
    JointDecision,
    JointPlan,
    plan_joint,
    simulate_joint,
    simulate_joint_config,
)
from .planner import TrainingRunPlan, plan_training_run
from .recompute import RecomputePlan, plan_recompute, simulate_recompute
from .dynamic import (
    DynamicPlan,
    ProfilingPass,
    UntrainableError,
    plan_dynamic,
    simulate_dynamic,
)
from .executor import (
    IterationResult,
    baseline_allocation_bytes,
    simulate_baseline,
    simulate_vdnn,
)
from .liveness import LivenessAnalysis, StorageInfo
from .policy import PolicyKind, TransferPolicy
from .prefetcher import PrefetchState, find_prefetch_layer

__all__ = [
    "AlgoConfig",
    "CapacityReport",
    "DataParallelReport",
    "DynamicPlan",
    "JointConfig",
    "JointDecision",
    "JointPlan",
    "PagingReport",
    "RecomputePlan",
    "TrainingRunPlan",
    "IterationResult",
    "LivenessAnalysis",
    "PolicyKind",
    "PrefetchState",
    "ProfilingPass",
    "StorageInfo",
    "TransferPolicy",
    "UntrainableError",
    "baseline_allocation_bytes",
    "cached_baseline",
    "cached_recompute",
    "cached_vdnn",
    "capacity_report",
    "compare_policies",
    "evaluate",
    "find_prefetch_layer",
    "max_trainable_batch",
    "min_gpus_for_baseline",
    "oracular_baseline",
    "paging_vs_vdnn",
    "plan_dynamic",
    "plan_joint",
    "plan_recompute",
    "plan_training_run",
    "baseline_inference_bytes",
    "simulate_baseline",
    "simulate_data_parallel",
    "simulate_dynamic",
    "simulate_inference",
    "simulate_joint",
    "simulate_joint_config",
    "simulate_page_migration",
    "simulate_recompute",
    "simulate_vdnn",
    "weight_load_bytes",
]

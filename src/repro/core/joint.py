"""Joint keep/offload/compress/recompute planning (the merged frontier).

vDNN moves feature maps across PCIe (offload), the cDMA engine shrinks
what moves (compressed offload), and gradient checkpointing drops and
re-materializes them from producers (recompute).  Each is the right
answer for *some* layers: a cheap-to-replay tail storage wastes PCIe
bandwidth a heavyweight early CONV output needs, while a highly sparse
ReLU output compresses so well that offloading it is nearly free.  This
module decides among all four choices **per trigger layer** under one
deterministic plan-derived cost model and executes the mixed schedule
on the vDNN executor substrate.

Structure mirrors :mod:`repro.core.dynamic`: a probe-abstracted ladder
(:func:`run_joint_ladder`) whose adoption depends only on trainability
and on modeled costs — never on simulated time — so the static verifier
can replay the identical ladder by abstract interpretation and prove
both sides adopt the same configuration (the parity differential
tests in ``tests/test_joint.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..alloc.pinned import PinnedMemoryError
from ..graph.layer import LayerKind
from ..graph.network import Network
from ..hw.config import SystemConfig
from ..perf.cache import cache_enabled, get_cache
from ..perf.fingerprint import fingerprint_point
from .algo_config import AlgoConfig
from .dynamic import ProfilingPass, UntrainableError
from .executor import IterationResult, _FORWARD, _VDNNSimulation, \
    _feature_extraction_time
from .plan import CompiledPlan, compiled_plan
from .policy import TransferPolicy


class JointDecision(enum.Enum):
    """What one trigger layer does with its offload candidates."""

    KEEP = "keep"
    OFFLOAD = "offload"
    OFFLOAD_COMP = "comp"
    RECOMPUTE = "recompute"


#: Deterministic tie-break when two actions model the same cost:
#: compression wins (least pinned pressure), recompute loses (it
#: re-runs kernels and its modeled replay is the least certain).
_ACTION_RANK = {
    JointDecision.OFFLOAD_COMP: 0,
    JointDecision.OFFLOAD: 1,
    JointDecision.RECOMPUTE: 2,
}


@dataclass(frozen=True)
class JointConfig:
    """Per-trigger-layer joint decisions.

    The three sets partition the *managed* triggers (disjoint by
    construction in the ladder); every other trigger keeps its
    candidates resident (KEEP).  ``policy()`` lowers the config to the
    executor's :class:`~repro.core.policy.TransferPolicy`: drop
    triggers ride the offload wants-set so the forward walk visits
    them, and :class:`_JointSimulation` intercepts them before any DMA.
    """

    offload: FrozenSet[int] = field(default_factory=frozenset)
    compress: FrozenSet[int] = field(default_factory=frozenset)
    drop: FrozenSet[int] = field(default_factory=frozenset)

    def policy(self) -> TransferPolicy:
        return TransferPolicy.custom(
            self.offload | self.compress | self.drop, self.compress)

    def describe(self) -> str:
        return (f"joint(off={len(self.offload)}, "
                f"comp={len(self.compress)}, drop={len(self.drop)})")


@dataclass
class JointPlan:
    """The configuration the joint ladder settles on, plus its probes."""

    config: JointConfig
    algos: AlgoConfig
    result: IterationResult
    passes: List[ProfilingPass] = field(default_factory=list)

    @property
    def description(self) -> str:
        return f"{self.config.describe()} + algos[{self.algos.label}]"


# ----------------------------------------------------------------------
# Deterministic cost model
# ----------------------------------------------------------------------
def droppable_owners(network: Network, plan: CompiledPlan) -> FrozenSet[int]:
    """Storages a joint plan may drop: recomputable feature maps.

    Same eligibility as :func:`repro.core.recompute.checkpoint_plan` —
    needed backward, produced by a feature-extraction layer, and not
    the INPUT batch (inputs cannot be recomputed from anything).
    """
    return frozenset(
        rec.owner for rec in plan.records.values()
        if rec.info.needed_backward
        and network[rec.owner].is_feature_extraction
        and network[rec.owner].kind is not LayerKind.INPUT)


def trigger_costs(
    network: Network, plan: CompiledPlan
) -> Dict[int, Dict[JointDecision, float]]:
    """Modeled exposed seconds of each action, per trigger layer.

    Pure plan arithmetic — no simulation — so the dynamic and static
    ladders rank flips identically:

    * OFFLOAD / OFFLOAD_COMP: the transfer time not hidden behind the
      trigger kernel, paid once out and once back (``2 * max(0,
      dma - kernel)`` per candidate, with the compressed wire format
      for OFFLOAD_COMP).
    * RECOMPUTE: the replayed forward kernel time of every candidate's
      chain — only offered when *all* of a trigger's candidates are
      recomputable (the INPUT batch never is).
    """
    droppable = droppable_owners(network, plan)
    fwd = {step.index: step for step in plan.forward}
    costs: Dict[int, Dict[JointDecision, float]] = {}
    for step in plan.forward:
        if not step.offload_candidates:
            continue
        kernel = step.seconds
        off = sum(2.0 * max(0.0, rec.dma_seconds - kernel)
                  for rec in step.offload_candidates)
        comp = sum(2.0 * max(0.0, rec.comp_dma_seconds - kernel)
                   for rec in step.offload_candidates)
        table = {JointDecision.OFFLOAD: off,
                 JointDecision.OFFLOAD_COMP: comp}
        if all(rec.owner in droppable for rec in step.offload_candidates):
            replay = 0.0
            for rec in step.offload_candidates:
                for member in rec.info.chain:
                    mstep = fwd.get(member)
                    if mstep is not None and not mstep.is_input:
                        replay += mstep.seconds
            table[JointDecision.RECOMPUTE] = replay
        costs[step.index] = table
    return costs


def _best_action(
    table: Dict[JointDecision, float]
) -> Tuple[JointDecision, float]:
    action, cost = min(table.items(),
                       key=lambda kv: (kv[1], _ACTION_RANK[kv[0]]))
    return action, cost


def _config_of(chosen: Dict[int, JointDecision]) -> JointConfig:
    return JointConfig(
        offload=frozenset(t for t, a in chosen.items()
                          if a is JointDecision.OFFLOAD),
        compress=frozenset(t for t, a in chosen.items()
                           if a is JointDecision.OFFLOAD_COMP),
        drop=frozenset(t for t, a in chosen.items()
                       if a is JointDecision.RECOMPUTE),
    )


def _modeled_cost(config: JointConfig,
                  costs: Dict[int, Dict[JointDecision, float]]) -> float:
    total = 0.0
    for trigger in config.offload:
        total += costs[trigger][JointDecision.OFFLOAD]
    for trigger in config.compress:
        total += costs[trigger][JointDecision.OFFLOAD_COMP]
    for trigger in config.drop:
        total += costs[trigger][JointDecision.RECOMPUTE]
    return total


# ----------------------------------------------------------------------
# The joint ladder
# ----------------------------------------------------------------------
def run_joint_ladder(
    network: Network,
    system: SystemConfig,
    probe,
    budget_bytes: int,
    max_probes: int = 64,
):
    """The joint planning ladder, abstracted over how probes run.

    ``probe(config, algos, description)`` evaluates one joint
    configuration and returns an object with ``trainable`` and
    ``max_usage_bytes`` attributes.  :func:`plan_joint` probes by
    simulating (through the result cache); the static verifier probes
    by interpreting the compiled plan — adoption depends only on
    trainability and the deterministic cost model, so both ladders
    always agree.

    1. Feasibility with memory-optimal algorithms: everything
       offloaded; if that misses, everything recomputable dropped.
       Both missing means the network is untrainable, full stop.
    2. Keep everything on device with the fastest algorithms.
    3. Greedy: flip triggers one at a time to their modeled-cheapest
       action (cheapest first) until the configuration fits.
    4. The pure frontiers at fastest algorithms: all-compress,
       all-offload, all-recompute.  Among every trainable candidate
       from passes 3-4, adopt the modeled-cheapest (ladder order
       breaks ties) — this is what makes the joint plan never worse
       than its pure constituents at the same budget.
    5. Greedy per-layer algorithm downgrades under the all-cheapest
       decision set.
    6. Fallback: the known-feasible pass-1 configuration.

    Returns ``(config, algos, probe_result)``; raises
    :class:`~repro.core.dynamic.UntrainableError` when pass 1 fails.
    """
    memory_optimal = AlgoConfig.memory_optimal(network)
    performance_optimal = AlgoConfig.performance_optimal(network)
    plan = compiled_plan(network, system, performance_optimal)
    triggers = sorted(plan.offload_indices(
        TransferPolicy.vdnn_all(), network))
    costs = trigger_costs(network, plan)
    drop_ok = frozenset(t for t in triggers
                        if JointDecision.RECOMPUTE in costs[t])

    all_offload = JointConfig(offload=frozenset(triggers))
    all_compress = JointConfig(compress=frozenset(triggers))
    # "All recompute": undroppable triggers (e.g. the INPUT batch's
    # consumer) offload instead — dropping them is impossible.
    all_drop = JointConfig(offload=frozenset(triggers) - drop_ok,
                           drop=drop_ok)

    # Pass 1: feasibility, memory-optimal algorithms.
    feasibility = probe(all_offload, memory_optimal,
                        "pass1: joint all-offload(m) feasibility")
    fallback = (all_offload, memory_optimal, feasibility)
    if not feasibility.trainable:
        drop_feasibility = probe(all_drop, memory_optimal,
                                 "pass1b: joint all-recompute(m) "
                                 "feasibility")
        if not drop_feasibility.trainable:
            raise UntrainableError(
                f"{network.name}: neither all-offload nor all-recompute "
                f"fits with memory-optimal algorithms "
                f"({feasibility.max_usage_bytes} and "
                f"{drop_feasibility.max_usage_bytes} bytes "
                f"> {budget_bytes})")
        fallback = (all_drop, memory_optimal, drop_feasibility)

    # Pass 2: keep everything on device, fastest algorithms.
    keep = JointConfig()
    best = probe(keep, performance_optimal, "pass2: joint keep-all(p)")
    if best.trainable:
        return keep, performance_optimal, best

    # Passes 3 + 4: collect trainable candidates, adopt the
    # modeled-cheapest one.
    candidates: List[Tuple[float, int, JointConfig, object]] = []
    order = sorted(triggers, key=lambda t: (_best_action(costs[t])[1], t))
    chosen: Dict[int, JointDecision] = {}
    for trigger in order:
        chosen[trigger] = _best_action(costs[trigger])[0]
        config = _config_of(chosen)
        result = probe(config, performance_optimal,
                       f"pass3: joint greedy flip "
                       f"{len(chosen)}/{len(order)}")
        if result.trainable:
            candidates.append(
                (_modeled_cost(config, costs), 0, config, result))
            break
    for seq, (config, label) in enumerate((
            (all_compress, "all-compress"),
            (all_offload, "all-offload"),
            (all_drop, "all-recompute"))):
        result = probe(config, performance_optimal,
                       f"pass4: joint {label}(p)")
        if result.trainable:
            candidates.append(
                (_modeled_cost(config, costs), 1 + seq, config, result))
    if candidates:
        candidates.sort(key=lambda item: (item[0], item[1]))
        _cost, _seq, config, result = candidates[0]
        return config, performance_optimal, result

    # Pass 5: greedy per-layer algorithm downgrades, cheapest decisions.
    cheapest = _config_of(
        {t: _best_action(costs[t])[0] for t in triggers})
    algos = AlgoConfig.performance_optimal(network)
    algos.label = "joint"
    for probe_index in range(max_probes):
        result = probe(cheapest, algos,
                       f"pass5: joint downgrade probe {probe_index}")
        if result.trainable:
            return cheapest, algos, result
        hungriest = sorted(
            algos.profiles.items(),
            key=lambda item: item[1].workspace_bytes,
            reverse=True,
        )
        downgraded = False
        for layer_index, profile in hungriest:
            if profile.workspace_bytes == 0:
                break
            if algos.downgrade(network, layer_index):
                downgraded = True
                break
        if not downgraded:
            break

    # Pass 6: the known-feasible configuration from pass 1.
    return fallback


# ----------------------------------------------------------------------
# Executor: the vDNN walk with joint decisions layered on
# ----------------------------------------------------------------------
class _JointSimulation(_VDNNSimulation):
    """One iteration under an explicit joint decision set.

    OFFLOAD and OFFLOAD_COMP triggers ride the inherited machinery
    unchanged (the policy's compress set picks each wire format);
    RECOMPUTE triggers free their candidates with ``phase="drop"`` —
    no DMA, no pinned staging — and the backward safety net regenerates
    them by replaying producer forward kernels, the same recursion
    :class:`~repro.core.recompute._RecomputeSimulation` performs.

    ``_forward_layer`` is a near-verbatim copy of the parent's hot walk
    with one added guard (the input batch survives forward when
    anything drops, because replays may need it); the static
    :class:`~repro.analysis.static_plan._JointInterpreter` mirrors both
    byte for byte, and the differential tests pin that equality.
    """

    def __init__(self, network: Network, system: SystemConfig,
                 config: JointConfig, algos: AlgoConfig,
                 plan: CompiledPlan, **kwargs):
        super().__init__(network, system, config.policy(), algos, plan,
                         **kwargs)
        self.config = config
        self.drops = config.drop
        self.dropped_owners: Set[int] = set()
        self._dead_resident: Set[int] = set()
        self._fwd_steps = {step.index: step for step in plan.forward}
        self._protected = frozenset(
            node.storage_index for node in network
            if node.kind is LayerKind.INPUT) if config.drop \
            else frozenset()
        self.recompute_seconds = 0.0

    # -- forward --------------------------------------------------------
    def _forward_layer(self, step) -> None:
        index = step.index
        rec = step.alloc_rec
        if rec is not None:
            self.device[rec.owner] = self._alloc(
                rec.owner, rec.nbytes, step.y_tag,
                buffer=rec.y_buf, layer=index, towner=rec.owner,
            )
        if step.is_input:
            return
        workspace = None
        if step.ws_bytes:
            workspace = self._alloc(index, step.ws_bytes, step.ws_tag,
                                    buffer=step.ws_buf, layer=index)
        fwd_start, fwd_end = self.compute.push(
            _FORWARD, step.name, step.seconds,
            nbytes=step.dram_nbytes, layer_index=index,
        )
        fwd_op = None
        if self.trace is not None:
            fwd_op = self.trace.kernel(
                step.name, self.compute.name, reads=step.trace_reads,
                writes=step.trace_writes, layer=index, phase="fwd",
                start=fwd_start, end=fwd_end,
            )
        for rec in step.dead_releases:
            if rec.owner in self._protected:
                continue  # replays may need the input batch
            self._free(self.device.pop(rec.owner), layer=index,
                       phase="fwd")
        if step.offload_candidates and index in self.wants:
            self._offload_inputs(step, fwd_start, fwd_op)
        if workspace is not None:
            self._free(workspace, layer=index, phase="fwd")

    def _offload_inputs(self, step, fwd_start, fwd_op) -> None:
        if step.index not in self.drops:
            super()._offload_inputs(step, fwd_start, fwd_op)
            return
        # RECOMPUTE: discard now, replay later.  The "drop" phase keeps
        # the sanitizer's refcount gate (MS105) out of the way — the
        # gate judges forward frees, and this free is the checkpoint
        # discipline's, covered by SP405 and the remat walk instead.
        for rec in step.offload_candidates:
            self.dropped_owners.add(rec.owner)
            self._free(self.device.pop(rec.owner),
                       layer=step.index, phase="drop")

    # -- backward -------------------------------------------------------
    def _restore_on_demand(self, rec, index: int) -> None:
        if rec.owner in self.host_buffers:
            super()._restore_on_demand(rec, index)
            return
        self._rematerialize(rec.owner, index)

    def _ensure(self, owner: int, index: int) -> None:
        if owner in self.device:
            return
        if owner in self.host_buffers:
            super()._restore_on_demand(self.plan.records[owner], index)
            return
        self._rematerialize(owner, index)

    def _rematerialize(self, owner: int, index: int) -> None:
        """Regenerate a dropped storage by replaying its producers."""
        rec = self.plan.records[owner]
        info = rec.info
        if not info.needed_backward:
            # A dead intermediate the replay flows through; discard it
            # again after the current backward step.
            self._dead_resident.add(owner)
        for member in info.chain:
            for producer in self.network[member].producers:
                source = self.network[producer].storage_index
                if source != owner and source not in self.device:
                    self._ensure(source, index)
        self.device[owner] = self._alloc(
            owner, rec.nbytes, f"Y[{rec.name}](re)",
            buffer=rec.y_buf, layer=index, towner=owner,
        )
        for member in info.chain:
            fstep = self._fwd_steps[member]
            if fstep.is_input:
                continue
            workspace = None
            if fstep.ws_bytes:
                workspace = self._alloc(member, fstep.ws_bytes,
                                        fstep.ws_tag,
                                        buffer=fstep.ws_buf, layer=index)
            start, end = self.compute.push(
                _FORWARD, fstep.name + "(re)", fstep.seconds,
                nbytes=fstep.dram_nbytes, layer_index=member,
            )
            self.recompute_seconds += fstep.seconds
            if self.trace is not None:
                self.trace.kernel(
                    fstep.name + "(re)", self.compute.name,
                    reads=fstep.trace_reads, writes=fstep.trace_writes,
                    layer=member, phase="bwd", start=start, end=end,
                )
            if workspace is not None:
                self._free(workspace, layer=index, phase="bwd")

    def _backward_layer(self, step) -> None:
        super()._backward_layer(step)
        if self._dead_resident:
            for owner in sorted(self._dead_resident):
                allocation = self.device.pop(owner, None)
                if allocation is not None:
                    self._free(allocation, layer=step.index, phase="bwd")
            self._dead_resident.clear()


def simulate_joint_config(
    network: Network,
    system: SystemConfig,
    config: JointConfig,
    algos: AlgoConfig,
    verify: bool = False,
    obs=None,
) -> IterationResult:
    """One training iteration under an explicit joint decision set.

    The joint analogue of :func:`~repro.core.executor.simulate_vdnn`
    (no fault injection: the joint executor's DMA legs inherit the
    fault machinery, but planning under faults is out of scope).
    """
    plan = compiled_plan(network, system, algos)
    sim = _JointSimulation(network, system, config, algos, plan,
                           verify=verify, obs=obs)
    failure: Optional[str] = None
    persistent = sim.allocate_persistent()
    try:
        sim.run_forward()
        sim.run_backward()
    except PinnedMemoryError as error:
        failure = f"host pinned memory exhausted: {error}"
    sim.usage.record(sim.timeline.end_time, sim.pool.live_bytes)
    if obs is not None:
        obs.pool_sample(sim.pool.live_bytes, system.gpu.memory_bytes,
                        sim.pool.fragmentation)
        obs.pool_peak(sim.pool.peak_bytes)
        obs.pinned_peak(sim.pinned.peak_bytes)
        obs.prefetch_searches(sim.prefetch_hits, sim.prefetch_misses)
        obs.stream_busy(sim.timeline.span,
                        ((sim.compute.name, sim.compute.busy_seconds),
                         (sim.memory.name, sim.memory.busy_seconds)))
        obs.span("iteration", "phase", 0.0, sim.timeline.end_time,
                 category="phase", network=network.name,
                 policy=config.describe(), algo=algos.label)

    peak = sim.usage.max_bytes
    total_peak = peak + sim.external_bytes
    if failure is None and total_peak > system.gpu.memory_bytes:
        failure = (
            f"peak usage {total_peak} bytes exceeds GPU capacity "
            f"{system.gpu.memory_bytes} bytes"
        )
    trainable = failure is None
    return IterationResult(
        network_name=network.name,
        policy_label=config.describe(),
        algo_label=algos.label,
        trainable=trainable,
        failure=failure,
        timeline=sim.timeline,
        usage=sim.usage,
        managed_max_bytes=peak,
        managed_avg_bytes=sim.usage.average_bytes,
        external_bytes=sim.external_bytes,
        persistent_bytes=persistent,
        total_time=sim.timeline.span,
        feature_extraction_time=_feature_extraction_time(
            network, sim.timeline, classifier=plan.classifier_indices),
        offload_bytes=sim.offload_bytes,
        prefetch_bytes=sim.prefetch_bytes,
        pinned_peak_bytes=sim.pinned.peak_bytes,
        compute_stall_seconds=sim.stall_seconds,
        offload_raw_bytes=sim.offload_raw_bytes,
        offloaded_layers=sim.offloaded_layers,
        schedule_trace=sim.trace,
    )


# ----------------------------------------------------------------------
# Cache-aware entry points (mirror core/cached.py's idiom; they live
# here because cached.py is imported by dynamic.py, which this module
# imports — the joint keys would otherwise create an import cycle)
# ----------------------------------------------------------------------
def joint_key(network: Network, system: SystemConfig,
              config: JointConfig, algos: AlgoConfig) -> str:
    # The policy canonicalizes offload ∪ drop together; `extra` carries
    # the drop partition so OFFLOAD-vs-RECOMPUTE configs never collide.
    return fingerprint_point("joint", network, system,
                             policy=config.policy(), algos=algos,
                             extra={"drop": sorted(config.drop)})


def adopted_joint_key(network: Network, system: SystemConfig) -> str:
    return fingerprint_point("joint-adopted", network, system)


def cached_joint(
    network: Network,
    system: SystemConfig,
    config: JointConfig,
    algos: AlgoConfig,
    use_cache: Optional[bool] = None,
) -> IterationResult:
    """:func:`simulate_joint_config` through the content-addressed cache."""
    if not cache_enabled(use_cache):
        return simulate_joint_config(network, system, config, algos)
    return get_cache().get_or_compute(
        joint_key(network, system, config, algos),
        lambda: simulate_joint_config(network, system, config, algos))


def plan_joint(
    network: Network,
    system: SystemConfig,
    use_cache: Optional[bool] = None,
) -> JointPlan:
    """Run the joint planning ladder and return the adopted plan."""
    passes: List[ProfilingPass] = []

    def probe(config: JointConfig, algos: AlgoConfig,
              description: str) -> IterationResult:
        result = cached_joint(network, system, config, algos,
                              use_cache=use_cache)
        passes.append(ProfilingPass(
            description=description,
            policy=config.policy(),
            algo_label=algos.label,
            trainable=result.trainable,
            max_usage_bytes=result.max_usage_bytes,
            feature_extraction_time=result.feature_extraction_time,
        ))
        return result

    config, algos, result = run_joint_ladder(
        network, system, probe, system.gpu.memory_bytes)
    return JointPlan(config, algos, result, passes)


def simulate_joint(
    network: Network,
    system: SystemConfig,
    use_cache: Optional[bool] = None,
) -> IterationResult:
    """Convenience: run the joint planner and relabel the adopted result.

    Mirrors :func:`~repro.core.dynamic.simulate_dynamic`: the adopted
    (relabeled) result is cached under its own ``joint-adopted`` point,
    so a warm ``evaluate(..., policy="joint")`` skips the ladder.
    """
    enabled = cache_enabled(use_cache)
    key = adopted_joint_key(network, system) if enabled else None
    if enabled:
        cached = get_cache().get(key)
        if cached is not None:
            return cached
    plan = plan_joint(network, system, use_cache=use_cache)
    result = plan.result
    result.policy_label = "vDNN_joint"
    result.algo_label = plan.algos.label
    if enabled:
        get_cache().put(key, result)
    return result

"""Capacity planning: the largest batch a GPU can train (Section I).

The paper motivates vDNN with exactly this question: "a single GPU can
only accommodate a batch size of 64 for VGG-16" under the baseline
policy, while the best-performing batch is 256.  This module answers it
for any network/policy/GPU combination by exponential + binary search
over the batch dimension, using the same trainability oracle as the
rest of the system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..graph.network import Network
from ..hw.config import SystemConfig
from .api import evaluate
from .dynamic import UntrainableError


def _trainable(network: Network, system: SystemConfig,
               policy: str, algo: str, batch: int) -> bool:
    sized = network.with_batch_size(batch)
    try:
        return evaluate(sized, system, policy=policy, algo=algo).trainable
    except UntrainableError:
        return False


def max_trainable_batch(
    network: Network,
    system: SystemConfig,
    policy: str = "base",
    algo: str = "p",
    upper_limit: int = 4096,
) -> int:
    """Largest batch size trainable under the given policy (0 if none).

    Monotonicity in the batch dimension holds for every policy here
    (all allocations scale with N except weights, which are constant),
    so binary search is sound.
    """
    if not _trainable(network, system, policy, algo, 1):
        return 0

    # Exponential probe for an untrainable upper bound.
    low = 1
    high = 2
    while high <= upper_limit and _trainable(network, system, policy, algo, high):
        low, high = high, high * 2
    if high > upper_limit:
        return upper_limit

    # Binary search in (low trainable, high untrainable].
    while high - low > 1:
        mid = (low + high) // 2
        if _trainable(network, system, policy, algo, mid):
            low = mid
        else:
            high = mid
    return low


@dataclass(frozen=True)
class CapacityReport:
    """Max batch per policy for one network on one GPU."""

    network_name: str
    gpu_name: str
    max_batch: Dict[str, int]

    def headroom(self, policy: str, baseline: str = "base") -> float:
        """Batch multiplier a policy buys over the baseline."""
        base = self.max_batch.get(baseline, 0)
        if base == 0:
            return float("inf") if self.max_batch.get(policy, 0) else 1.0
        return self.max_batch.get(policy, 0) / base


def capacity_report(
    network: Network,
    system: SystemConfig,
    policies: Optional[Dict[str, tuple]] = None,
    upper_limit: int = 1024,
) -> CapacityReport:
    """Max trainable batch for the paper's main policy points.

    Default sweep: baseline(p), baseline(m), vDNN_conv(p), vDNN_all(m)
    and vDNN_dyn.
    """
    policies = policies or {
        "base(p)": ("base", "p"),
        "base(m)": ("base", "m"),
        "conv(p)": ("conv", "p"),
        "all(m)": ("all", "m"),
        "dyn": ("dyn", "p"),
    }
    result = {}
    for label, (policy, algo) in policies.items():
        result[label] = max_trainable_batch(
            network, system, policy, algo, upper_limit
        )
    return CapacityReport(network.name, system.gpu.name, result)

"""Gradient checkpointing (recomputation) — the offloading alternative.

The paper saves memory by *moving* feature maps across PCIe; the other
classic approach (Chen et al.'s sublinear-memory training, later
combined with offloading by SuperNeurons) saves memory by *dropping*
feature maps after forward propagation and recomputing them from sparse
checkpoints during backward propagation — trading an extra forward pass
for capacity instead of PCIe bandwidth.

:func:`simulate_recompute` runs one training iteration under sqrt(L)
checkpointing on the same pool/latency substrate as the vDNN executor,
so `benchmarks/bench_ext_recompute.py` can compare the two fairly:
memory floor, time overhead, and where each wins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..alloc.pool import Allocation, PoolAllocator
from ..alloc.stats import UsageTracker
from ..graph.layer import LayerKind
from ..graph.network import Network
from ..hw.config import SystemConfig
from ..kernels.latency import LatencyModel
from ..sim.stream import make_stream_pair
from ..sim.timeline import EventKind
from .algo_config import AlgoConfig
from .executor import IterationResult, _feature_extraction_time
from .liveness import LivenessAnalysis, StorageInfo

_UNBOUNDED = 1 << 50


@dataclass(frozen=True)
class CheckpointPlan:
    """Which storages a recompute run keeps vs drops.

    A pure partition of the droppable feature-extraction storages —
    every droppable owner is a checkpoint or dropped, never both —
    plus the droppable order the segment walk-back follows.  Built by
    :func:`checkpoint_plan`; consumed by :class:`_RecomputeSimulation`
    and audited statically by
    :func:`repro.analysis.static_plan.verify_recompute_plan` (SP405).
    """

    checkpoints: FrozenSet[int]
    dropped: FrozenSet[int]
    droppable_order: Tuple[int, ...]


def checkpoint_plan(network: Network, liveness: LivenessAnalysis,
                    segment_count: Optional[int] = None) -> CheckpointPlan:
    """sqrt(L) checkpoint selection over the droppable storages.

    Orders the droppable feature-extraction storages (needed backward,
    not the INPUT batch) by owner and keeps every segment boundary:
    ``segment_count`` segments when given, else ``isqrt(count)``.
    """
    droppable = [
        s for s in liveness.all_storages()
        if s.needed_backward
        and network[s.owner].is_feature_extraction
        and network[s.owner].kind is not LayerKind.INPUT
    ]
    droppable.sort(key=lambda s: s.owner)
    count = len(droppable)
    segments = segment_count or max(1, math.isqrt(count))
    stride = max(1, math.ceil(count / segments))
    checkpoints = frozenset(
        s.owner for i, s in enumerate(droppable) if i % stride == 0)
    return CheckpointPlan(
        checkpoints=checkpoints,
        dropped=frozenset(
            s.owner for s in droppable if s.owner not in checkpoints),
        droppable_order=tuple(s.owner for s in droppable),
    )


class _RecomputeSimulation:
    """One iteration under checkpoint/recompute memory management."""

    def __init__(self, network: Network, system: SystemConfig,
                 algos: AlgoConfig, segment_count: Optional[int]):
        self.network = network
        self.system = system
        self.algos = algos
        self.latency = LatencyModel(system.gpu)
        self.liveness = LivenessAnalysis(network)
        self.pool = PoolAllocator(_UNBOUNDED)
        self.compute, _memory, self.timeline = make_stream_pair()
        self.usage = UsageTracker()
        self.device: Dict[int, Allocation] = {}
        self.gradients: Dict[int, Allocation] = {}
        self.recompute_kernel_seconds = 0.0
        self._dead_resident: Set[int] = set()

        plan = checkpoint_plan(network, self.liveness, segment_count)
        self.checkpoints = plan.checkpoints
        self.dropped = plan.dropped
        # Map each storage to the checkpointed segment that regenerates
        # it: the contiguous run of dropped owners after a checkpoint.
        self._droppable_order = plan.droppable_order

    # -- helpers --------------------------------------------------------
    def _sample(self) -> None:
        self.usage.record(self.compute.ready_time, self.pool.live_bytes)

    def _alloc(self, owner: int, nbytes: int, tag: str) -> Allocation:
        allocation = self.pool.alloc(nbytes, tag)
        self._sample()
        return allocation

    def _free(self, allocation: Allocation) -> None:
        self.pool.free(allocation)
        self._sample()

    def _forward_kernel(self, index: int, recompute: bool = False) -> None:
        node = self.network[index]
        timing = self.latency.forward(self.network, node,
                                      self.algos.profile(node))
        label = node.name + ("(re)" if recompute else "")
        self.compute.enqueue(EventKind.FORWARD, label, timing.seconds,
                             nbytes=int(timing.dram_bytes), layer_index=index)
        if recompute:
            self.recompute_kernel_seconds += timing.seconds

    # -- persistent -----------------------------------------------------
    def allocate_persistent(self) -> int:
        persistent = 0
        self.external_bytes = 0
        for node in self.network:
            if not node.weight_bytes:
                continue
            if node.is_feature_extraction:
                self._alloc(node.index, node.weight_bytes, f"W[{node.name}]")
                self._alloc(node.index, node.weight_bytes, f"dW[{node.name}]")
            else:
                self.external_bytes += 2 * node.weight_bytes
            persistent += 2 * node.weight_bytes
        return persistent

    # -- forward --------------------------------------------------------
    def run_forward(self) -> None:
        for index in self.network.forward_schedule():
            node = self.network[index]
            if not node.in_place:
                storage = self.liveness.storage_of(index)
                self.device[storage.owner] = self._alloc(
                    storage.owner, storage.nbytes, f"Y[{node.name}]"
                )
            if node.kind is not LayerKind.INPUT:
                workspace = self._maybe_workspace(node)
                self._forward_kernel(index)
                if workspace is not None:
                    self._free(workspace)
            for storage in self.liveness.input_storages(index):
                if storage.forward_release_at != index:
                    continue
                if storage.owner == 0 and self.dropped:
                    continue  # replays may need the input batch
                if not storage.needed_backward or storage.owner in self.dropped:
                    self._free(self.device.pop(storage.owner))

    def _maybe_workspace(self, node) -> Optional[Allocation]:
        ws_bytes = self.algos.workspace_bytes(node)
        if ws_bytes:
            return self._alloc(node.index, ws_bytes, f"WS[{node.name}]")
        return None

    # -- recompute ------------------------------------------------------
    def _ensure_storage(self, owner: int) -> None:
        """Regenerate a dropped storage (and its segment) on demand."""
        if owner in self.device:
            return
        if owner in self._droppable_order:
            # The segment: walk back to the nearest materialized storage
            # in droppable order, then replay forward kernels to `owner`.
            position = self._droppable_order.index(owner)
            start = position
            while start > 0 and \
                    self._droppable_order[start - 1] not in self.device:
                start -= 1
            to_rebuild = self._droppable_order[start:position + 1]
        else:
            # A dead intermediate the replay flows through (e.g. a BN
            # output feeding only an ADD): regenerate just its chain and
            # remember to discard it after the current backward step.
            to_rebuild = [owner]
            self._dead_resident.add(owner)

        # Inputs feeding the rebuild range but produced outside it must
        # themselves be live (recurse; terminates at checkpoints/input).
        rebuild_set = set(to_rebuild)
        for owner_index in to_rebuild:
            storage = self.liveness.storages[owner_index]
            for member in storage.chain:
                for producer in self.network[member].producers:
                    source = self.network[producer].storage_index
                    if source not in rebuild_set and source not in self.device:
                        self._ensure_storage(source)

        for owner_index in to_rebuild:
            if owner_index in self.device:
                continue  # regenerated by a recursive ensure above
            storage = self.liveness.storages[owner_index]
            self.device[owner_index] = self._alloc(
                owner_index, storage.nbytes,
                f"Y[{self.network[owner_index].name}](re)"
            )
            for member in storage.chain:
                node = self.network[member]
                if node.kind is LayerKind.INPUT:
                    continue
                workspace = self._maybe_workspace(node)
                self._forward_kernel(member, recompute=True)
                if workspace is not None:
                    self._free(workspace)

    # -- backward -------------------------------------------------------
    def run_backward(self) -> None:
        for index in self.network.backward_schedule():
            node = self.network[index]

            required: List[StorageInfo] = []
            if node.layer.backward_needs_x:
                required.extend(self.liveness.input_storages(index))
            if node.layer.backward_needs_y:
                required.append(self.liveness.storage_of(index))
            for storage in required:
                self._ensure_storage(storage.owner)

            for storage in self.liveness.all_storages():
                if storage.needs_gradient and \
                        storage.gradient_alloc_at == index and \
                        storage.owner not in self.gradients:
                    self.gradients[storage.owner] = self._alloc(
                        storage.owner, storage.nbytes, f"dY[{storage.owner}]"
                    )

            workspace = self._maybe_workspace(node)
            timing = self.latency.backward(self.network, node,
                                           self.algos.profile(node))
            self.compute.enqueue(EventKind.BACKWARD, node.name, timing.seconds,
                                 nbytes=int(timing.dram_bytes),
                                 layer_index=index)

            for storage in self.liveness.all_storages():
                if storage.needed_backward and \
                        storage.backward_release_after == index:
                    allocation = self.device.pop(storage.owner, None)
                    if allocation is not None:
                        self._free(allocation)
                if storage.needs_gradient and \
                        storage.gradient_release_after == index:
                    allocation = self.gradients.pop(storage.owner, None)
                    if allocation is not None:
                        self._free(allocation)
            if workspace is not None:
                self._free(workspace)

            # Regenerated dead intermediates served this step's replay;
            # drop them rather than let them camp in memory.
            for owner in self._dead_resident:
                allocation = self.device.pop(owner, None)
                if allocation is not None:
                    self._free(allocation)
            self._dead_resident.clear()

        for allocation in list(self.device.values()):
            self._free(allocation)
        self.device.clear()
        for allocation in list(self.gradients.values()):
            self._free(allocation)
        self.gradients.clear()


def droppable_count(network: Network,
                    liveness: Optional[LivenessAnalysis] = None) -> int:
    """How many storages a checkpoint plan may drop (Chen et al.'s L)."""
    liveness = liveness or LivenessAnalysis(network)
    return sum(
        1 for s in liveness.all_storages()
        if s.needed_backward
        and network[s.owner].is_feature_extraction
        and network[s.owner].kind is not LayerKind.INPUT)


@dataclass(frozen=True)
class RecomputePlan:
    """A budget-fitted checkpoint plan plus the probes that chose it.

    ``probes`` records every ``(segment_count, fits)`` pair the ladder
    tried, in order — the recompute analogue of vDNN_dyn's profiling
    passes.
    """

    segment_count: int
    plan: CheckpointPlan
    result: IterationResult
    probes: Tuple[Tuple[int, bool], ...]


def plan_recompute(
    network: Network,
    system: SystemConfig,
    algos: AlgoConfig,
    budget_bytes: Optional[int] = None,
    use_cache: Optional[bool] = None,
) -> RecomputePlan:
    """Budgeted segment selection: the most checkpoints that fit.

    Recompute time falls monotonically as checkpoints grow (shorter
    replays), while memory grows — so the cheapest plan under a budget
    is the one with the most segments that still fits.  The ladder
    walks the stride values 1, 2, 3, ... (segment counts descending
    from "checkpoint everything" toward the sqrt(L) default and past it
    to a single segment) and adopts the first fitting count; each probe
    is one content-addressed :func:`simulate_recompute` point.  With no
    budget the GPU capacity is used, so ``plan.result.trainable``
    matches the adoption decision.
    """
    from .cached import cached_recompute

    liveness = LivenessAnalysis(network)
    count = droppable_count(network, liveness)
    budget = system.gpu.memory_bytes if budget_bytes is None \
        else budget_bytes
    probes: List[Tuple[int, bool]] = []
    seen: set = set()
    adopted: Optional[Tuple[int, IterationResult]] = None
    for stride in range(1, max(count, 1) + 1):
        segments = max(1, math.ceil(count / stride))
        if segments in seen:
            continue
        seen.add(segments)
        result = cached_recompute(network, system, algos, segments,
                                  use_cache=use_cache)
        fits = result.max_usage_bytes <= budget
        probes.append((segments, fits))
        if fits:
            adopted = (segments, result)
            break
    if adopted is None:
        # Even the single-checkpoint floor misses the budget; return it
        # anyway so callers can report the (untrainable) memory floor.
        result = cached_recompute(network, system, algos, 1,
                                  use_cache=use_cache)
        if not probes or probes[-1][0] != 1:
            probes.append((1, result.max_usage_bytes <= budget))
        adopted = (1, result)
    segments, result = adopted
    return RecomputePlan(
        segment_count=segments,
        plan=checkpoint_plan(network, liveness, segments),
        result=result,
        probes=tuple(probes),
    )


def simulate_recompute(
    network: Network,
    system: SystemConfig,
    algos: AlgoConfig,
    segment_count: Optional[int] = None,
) -> IterationResult:
    """One training iteration under sqrt(L) gradient checkpointing.

    Returns an :class:`IterationResult` comparable with the vDNN and
    baseline executors (``policy_label`` is ``"recompute"``;
    ``offload_bytes`` is zero — nothing crosses PCIe).
    """
    sim = _RecomputeSimulation(network, system, algos, segment_count)
    persistent = sim.allocate_persistent()
    sim.run_forward()
    sim.run_backward()
    sim.usage.record(sim.timeline.end_time, sim.pool.live_bytes)

    peak = sim.usage.max_bytes
    total_peak = peak + sim.external_bytes
    trainable = total_peak <= system.gpu.memory_bytes
    return IterationResult(
        network_name=network.name,
        policy_label="recompute",
        algo_label=algos.label,
        trainable=trainable,
        failure=None if trainable else (
            f"peak usage {total_peak} bytes exceeds GPU capacity "
            f"{system.gpu.memory_bytes} bytes"
        ),
        timeline=sim.timeline,
        usage=sim.usage,
        managed_max_bytes=peak,
        managed_avg_bytes=sim.usage.average_bytes,
        external_bytes=sim.external_bytes,
        persistent_bytes=persistent,
        total_time=sim.timeline.span,
        feature_extraction_time=_feature_extraction_time(network, sim.timeline),
        offload_bytes=0,
        prefetch_bytes=0,
        pinned_peak_bytes=0,
        compute_stall_seconds=sim.recompute_kernel_seconds,
    )

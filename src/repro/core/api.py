"""High-level public API: evaluate networks under memory-manager policies.

Typical use::

    from repro import zoo
    from repro.core import evaluate, compare_policies

    net = zoo.build("vgg16", 256)
    result = evaluate(net, policy="dyn")
    print(result.trainable, result.max_usage_bytes, result.total_time)

``policy`` accepts ``"base"``, ``"all"``, ``"conv"``, ``"comp"``
(compressed offload through the cDMA engine), ``"none"``, ``"dyn"`` or
``"joint"`` (the per-layer keep/offload/compress/recompute planner);
``algo`` accepts ``"m"`` (memory-optimal) or ``"p"``
(performance-optimal).  ``compare_policies`` reproduces one network's
column group of the paper's Figures 11/14.

Every entry point consults the content-addressed simulation cache
(:mod:`repro.perf`): identical (network, system, policy, algo) points
are simulated once and replayed from pickled results afterwards.  Pass
``use_cache=False`` (or set ``REPRO_NO_CACHE=1``) to force fresh
simulation; results are bit-identical either way.  ``compare_policies``
additionally accepts ``jobs`` to fan its ten configurations out
across worker processes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..faults import FaultSpec
from ..graph.network import Network
from ..hw.config import PAPER_SYSTEM, SystemConfig
from ..obs import Instrumentation
from .algo_config import AlgoConfig
from .cached import cached_baseline, cached_vdnn
from .dynamic import simulate_dynamic
from .executor import IterationResult
from .policy import TransferPolicy

_POLICIES = ("all", "conv", "comp", "dyn", "joint", "base", "none")
_ALGOS = ("m", "p")


def _algo_config(network: Network, algo: str) -> AlgoConfig:
    if algo == "m":
        return AlgoConfig.memory_optimal(network)
    if algo == "p":
        return AlgoConfig.performance_optimal(network)
    raise ValueError(f"algo must be one of {_ALGOS}, got {algo!r}")


def evaluate(
    network: Network,
    system: Optional[SystemConfig] = None,
    policy: str = "dyn",
    algo: str = "p",
    use_cache: Optional[bool] = None,
    verify: bool = False,
    faults: Optional[FaultSpec] = None,
    fault_seed: int = 0,
    obs: Optional[Instrumentation] = None,
) -> IterationResult:
    """Simulate one training iteration of ``network`` under a policy.

    ``faults`` injects a deterministic :class:`~repro.faults.FaultSpec`
    into the vDNN transfer machinery.  Faulted (and traced) runs always
    simulate fresh — the content-addressed cache only stores perfect-
    machine results, so it can never replay a faulted run as clean or
    vice versa.  ``base`` has no transfer machinery to fault: asking for
    it is a usage error rather than a silent no-op.

    ``obs`` attaches an :class:`~repro.obs.Instrumentation` object that
    accumulates metrics and spans during the run.  Instrumented runs
    simulate fresh for the same reason traced runs do (a cache replay
    would observe nothing), and are bit-identical to uninstrumented
    ones — the differential suite asserts this for the whole zoo.
    """
    system = system or PAPER_SYSTEM
    if policy not in _POLICIES:
        raise ValueError(f"policy must be one of {_POLICIES}, got {policy!r}")
    if faults is not None or verify or obs is not None:
        from .dynamic import plan_dynamic
        from .executor import simulate_baseline, simulate_vdnn

        if policy == "base":
            if faults is not None:
                raise ValueError(
                    "the baseline policy performs no offload/prefetch "
                    "transfers; fault injection applies to vDNN policies "
                    "(all, conv, dyn)")
            return simulate_baseline(
                network, system, _algo_config(network, algo), verify=verify,
                obs=obs)
        if policy == "dyn":
            plan = plan_dynamic(network, system, use_cache=use_cache)
            result = simulate_vdnn(
                network, system, plan.policy, plan.algos, verify=verify,
                faults=faults, fault_seed=fault_seed, obs=obs)
            # Match simulate_dynamic's relabeling so fresh (verified,
            # faulted, instrumented) dyn runs compare equal to cached ones.
            result.policy_label = "vDNN_dyn"
            result.algo_label = plan.algos.label
            return result
        if policy == "joint":
            if faults is not None:
                raise ValueError(
                    "joint planning under fault injection is not "
                    "supported; fault injection applies to the vDNN "
                    "transfer policies (all, conv, comp, dyn)")
            from .joint import plan_joint, simulate_joint_config

            jplan = plan_joint(network, system, use_cache=use_cache)
            result = simulate_joint_config(
                network, system, jplan.config, jplan.algos,
                verify=verify, obs=obs)
            # Same relabeling contract as dyn above.
            result.policy_label = "vDNN_joint"
            result.algo_label = jplan.algos.label
            return result
        transfer = {
            "all": TransferPolicy.vdnn_all,
            "conv": TransferPolicy.vdnn_conv,
            "comp": TransferPolicy.vdnn_comp,
            "none": TransferPolicy.none,
        }[policy]()
        return simulate_vdnn(
            network, system, transfer, _algo_config(network, algo),
            verify=verify, faults=faults, fault_seed=fault_seed, obs=obs)
    if policy == "dyn":
        return simulate_dynamic(network, system, use_cache=use_cache)
    if policy == "joint":
        from .joint import simulate_joint

        return simulate_joint(network, system, use_cache=use_cache)
    algos = _algo_config(network, algo)
    if policy == "base":
        return cached_baseline(network, system, algos, use_cache=use_cache)
    transfer = {
        "all": TransferPolicy.vdnn_all,
        "conv": TransferPolicy.vdnn_conv,
        "comp": TransferPolicy.vdnn_comp,
        "none": TransferPolicy.none,
    }[policy]()
    return cached_vdnn(network, system, transfer, algos, use_cache=use_cache)


def oracular_baseline(
    network: Network,
    system: Optional[SystemConfig] = None,
    use_cache: Optional[bool] = None,
) -> IterationResult:
    """The paper's oracle: baseline(p) on a capacity-unlimited GPU."""
    system = (system or PAPER_SYSTEM).with_oracular_gpu()
    return cached_baseline(
        network, system, AlgoConfig.performance_optimal(network),
        use_cache=use_cache,
    )


def compare_policies(
    network: Network,
    system: Optional[SystemConfig] = None,
    include_dynamic: bool = True,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
) -> Dict[str, IterationResult]:
    """One network's full policy x algorithm sweep (Figures 11/14).

    Keys follow the paper's column labels: ``all(m)``, ``all(p)``,
    ``conv(m)``, ``conv(p)``, ``comp(m)``, ``comp(p)``, ``dyn``,
    ``joint``, ``base(m)``, ``base(p)``.

    With ``jobs > 1`` the configurations are simulated concurrently in
    worker processes (warming the cache), then assembled serially from
    cache hits — same results, less wall time.
    """
    system = system or PAPER_SYSTEM

    from ..perf.sweep import SweepPoint, resolve_jobs, sweep

    if resolve_jobs(jobs) > 1 and cache_is_on(use_cache):
        points = [
            SweepPoint(network=network, policy=policy, algo=algo,
                       system=system)
            for policy in ("all", "conv", "comp") for algo in _ALGOS
        ]
        if include_dynamic:
            points.append(
                SweepPoint(network=network, policy="dyn", system=system))
            points.append(
                SweepPoint(network=network, policy="joint", system=system))
        points += [
            SweepPoint(network=network, policy="base", algo=algo,
                       system=system)
            for algo in _ALGOS
        ]
        sweep(points, jobs=jobs, use_cache=use_cache)

    results: Dict[str, IterationResult] = {}
    for policy in ("all", "conv", "comp"):
        for algo in _ALGOS:
            results[f"{policy}({algo})"] = evaluate(
                network, system, policy, algo, use_cache=use_cache)
    if include_dynamic:
        results["dyn"] = evaluate(network, system, "dyn",
                                  use_cache=use_cache)
        results["joint"] = evaluate(network, system, "joint",
                                    use_cache=use_cache)
    for algo in _ALGOS:
        results[f"base({algo})"] = evaluate(
            network, system, "base", algo, use_cache=use_cache)
    return results


def cache_is_on(use_cache: Optional[bool] = None) -> bool:
    """Whether the simulation cache applies (flag, then environment)."""
    from ..perf.cache import cache_enabled

    return cache_enabled(use_cache)

"""High-level public API: evaluate networks under memory-manager policies.

Typical use::

    from repro import zoo
    from repro.core import evaluate, compare_policies

    net = zoo.build("vgg16", 256)
    result = evaluate(net, policy="dyn")
    print(result.trainable, result.max_usage_bytes, result.total_time)

``policy`` accepts ``"base"``, ``"all"``, ``"conv"``, ``"none"`` or
``"dyn"``; ``algo`` accepts ``"m"`` (memory-optimal) or ``"p"``
(performance-optimal).  ``compare_policies`` reproduces one network's
column group of the paper's Figures 11/14.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..graph.network import Network
from ..hw.config import PAPER_SYSTEM, SystemConfig
from .algo_config import AlgoConfig
from .dynamic import simulate_dynamic
from .executor import IterationResult, simulate_baseline, simulate_vdnn
from .policy import TransferPolicy

_POLICIES = ("all", "conv", "dyn", "base", "none")
_ALGOS = ("m", "p")


def _algo_config(network: Network, algo: str) -> AlgoConfig:
    if algo == "m":
        return AlgoConfig.memory_optimal(network)
    if algo == "p":
        return AlgoConfig.performance_optimal(network)
    raise ValueError(f"algo must be one of {_ALGOS}, got {algo!r}")


def evaluate(
    network: Network,
    system: Optional[SystemConfig] = None,
    policy: str = "dyn",
    algo: str = "p",
) -> IterationResult:
    """Simulate one training iteration of ``network`` under a policy."""
    system = system or PAPER_SYSTEM
    if policy not in _POLICIES:
        raise ValueError(f"policy must be one of {_POLICIES}, got {policy!r}")
    if policy == "dyn":
        return simulate_dynamic(network, system)
    algos = _algo_config(network, algo)
    if policy == "base":
        return simulate_baseline(network, system, algos)
    transfer = {
        "all": TransferPolicy.vdnn_all,
        "conv": TransferPolicy.vdnn_conv,
        "none": TransferPolicy.none,
    }[policy]()
    return simulate_vdnn(network, system, transfer, algos)


def oracular_baseline(
    network: Network, system: Optional[SystemConfig] = None
) -> IterationResult:
    """The paper's oracle: baseline(p) on a capacity-unlimited GPU."""
    system = (system or PAPER_SYSTEM).with_oracular_gpu()
    return simulate_baseline(
        network, system, AlgoConfig.performance_optimal(network)
    )


def compare_policies(
    network: Network,
    system: Optional[SystemConfig] = None,
    include_dynamic: bool = True,
) -> Dict[str, IterationResult]:
    """One network's full policy x algorithm sweep (Figures 11/14).

    Keys follow the paper's column labels: ``all(m)``, ``all(p)``,
    ``conv(m)``, ``conv(p)``, ``dyn``, ``base(m)``, ``base(p)``.
    """
    system = system or PAPER_SYSTEM
    results: Dict[str, IterationResult] = {}
    for policy in ("all", "conv"):
        for algo in _ALGOS:
            results[f"{policy}({algo})"] = evaluate(network, system, policy, algo)
    if include_dynamic:
        results["dyn"] = evaluate(network, system, "dyn")
    for algo in _ALGOS:
        results[f"base({algo})"] = evaluate(network, system, "base", algo)
    return results

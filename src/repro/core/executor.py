"""Event-driven execution of one training iteration under a memory manager.

Two entry points:

* :func:`simulate_baseline` — the Torch-style network-wide allocation
  policy of Section IV-A: everything (all feature maps, weights, the two
  reused dY/dX ping-pong buffers, one shared maximum-size workspace) is
  allocated up front, so maximum usage equals average usage, and the
  network is trainable iff that total fits the GPU.
* :func:`simulate_vdnn` — the vDNN manager of Section III: layer-wise
  allocation from a cnmem-style pool, offload of input feature maps on
  ``stream_memory`` overlapped with the owning layer's forward kernel,
  end-of-layer synchronization, release at the refcount-gated last
  consumer, and Figure-10 prefetching overlapped with backward kernels.

Both run the same roofline kernel latencies on the same simulated CUDA
streams, so their timelines are directly comparable (Figure 14).  The
simulation allocates from an *unbounded* pool and judges trainability by
comparing the peak live bytes against the GPU's physical capacity — with
no thrashing in the model this is exact, and it lets untrainable
configurations still report the memory they would have needed (the
``(*)``-marked bars of Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..alloc.pinned import PinnedHostAllocator, PinnedMemoryError
from ..alloc.pool import Allocation, PoolAllocator
from ..alloc.stats import UsageTracker
from ..analysis.trace import ScheduleTrace
from ..faults import DMAAbortError, FaultInjector, FaultReport, FaultSpec, make_injector
from ..graph.layer import LayerKind
from ..graph.network import Network
from ..hw.config import SystemConfig
from ..kernels.latency import LatencyModel
from ..obs import Instrumentation
from ..sim.stream import SimStream, make_stream_pair
from ..sim.timeline import EventKind, Timeline
from .algo_config import AlgoConfig
from .liveness import LivenessAnalysis, StorageInfo
from .policy import TransferPolicy
from .prefetcher import PrefetchState, find_prefetch_layer

#: Pool capacity used for simulation runs; trainability is decided by
#: comparing peak usage to the *real* GPU capacity afterwards.
_UNBOUNDED = 1 << 50


@dataclass
class IterationResult:
    """Everything one simulated training iteration produces.

    Memory is reported at two scopes, mirroring the paper's prototype
    (Section IV-A): the **managed** scope is the vDNN/cnmem pool holding
    feature maps, gradient maps, workspaces and feature-extraction
    weights — what Figure 11's usage bars measure — while classifier
    (FC) weights "remain unchanged and use the same cuBLAS routines used
    in Torch", i.e. live outside the pool (``external_bytes``).  The
    trainability check uses the sum of both scopes.
    """

    network_name: str
    policy_label: str
    algo_label: str
    trainable: bool
    failure: Optional[str]
    timeline: Timeline
    usage: UsageTracker
    managed_max_bytes: int
    managed_avg_bytes: float
    external_bytes: int
    persistent_bytes: int
    total_time: float
    feature_extraction_time: float
    offload_bytes: int
    prefetch_bytes: int
    pinned_peak_bytes: int
    compute_stall_seconds: float
    offloaded_layers: List[int] = field(default_factory=list)
    #: Per-layer weight bytes an inference pass must load on-device,
    #: keyed by layer index (populated by ``simulate_inference``; empty
    #: for training results).  One accounting path shared with the
    #: serving subsystem's demand-layering executor.
    weight_load_bytes: Dict[int, int] = field(default_factory=dict)
    #: Populated only when the simulation ran with ``verify=True``; the
    #: schedule sanitizer's input (see :mod:`repro.analysis`).  Excluded
    #: from equality: tracing must not change what a result *is*.
    schedule_trace: Optional[ScheduleTrace] = field(
        default=None, compare=False, repr=False)
    #: Populated only when the simulation ran under fault injection; the
    #: audit trail of every injected fault and its resolution.  Excluded
    #: from equality like the trace (a report of what happened, not part
    #: of what the result *is*).
    fault_report: Optional[FaultReport] = field(
        default=None, compare=False, repr=False)

    @property
    def max_usage_bytes(self) -> int:
        """Peak device-memory footprint including unmanaged allocations."""
        return self.managed_max_bytes + self.external_bytes

    @property
    def avg_usage_bytes(self) -> float:
        """Average device-memory footprint including unmanaged allocations."""
        return self.managed_avg_bytes + self.external_bytes

    @property
    def label(self) -> str:
        return f"{self.policy_label}({self.algo_label})"


def _feature_extraction_time(network: Network, timeline: Timeline) -> float:
    """Wall time minus the classifier window (Section V-C's metric)."""
    classifier = {n.index for n in network.classifier_nodes}
    events = [e for e in timeline.events if e.layer_index in classifier]
    if not events:
        return timeline.span
    window = max(e.end for e in events) - min(e.start for e in events)
    return max(timeline.span - window, 0.0)


# ----------------------------------------------------------------------
# Baseline manager
# ----------------------------------------------------------------------
def baseline_allocation_bytes(
    network: Network, algos: AlgoConfig, liveness: Optional[LivenessAnalysis] = None
) -> Dict[str, int]:
    """Network-wide allocation breakdown of the baseline policy.

    Returns a dict with keys ``weights``, ``weight_gradients``,
    ``feature_maps``, ``gradient_maps``, ``workspace`` and ``total`` —
    the functional breakdown of the paper's Figure 4.
    """
    liveness = liveness or LivenessAnalysis(network)
    weights = network.total_weight_bytes()
    feature_maps = liveness.total_feature_map_bytes()
    # Two reused dY/dX buffers, each sized to the maximum gradient map
    # (Section IV-A's improved baseline, after [38, 39]).
    gradient_maps = 2 * liveness.max_gradient_bytes()
    workspace = algos.max_workspace_bytes()
    return {
        "weights": weights,
        "weight_gradients": weights,
        "feature_maps": feature_maps,
        "gradient_maps": gradient_maps,
        "workspace": workspace,
        "total": weights * 2 + feature_maps + gradient_maps + workspace,
    }


def simulate_baseline(
    network: Network,
    system: SystemConfig,
    algos: AlgoConfig,
    verify: bool = False,
    obs: Optional[Instrumentation] = None,
) -> IterationResult:
    """One iteration under the network-wide allocation policy."""
    latency = LatencyModel(system.gpu)
    compute, _memory, timeline = make_stream_pair()
    liveness = LivenessAnalysis(network)
    breakdown = baseline_allocation_bytes(network, algos, liveness)
    total = breakdown["total"]

    usage = UsageTracker()
    usage.record(0.0, total)
    if obs is not None:
        obs.pool_sample(total, system.gpu.memory_bytes, 0.0)

    # Baseline has one network-wide reservation and one stream: the
    # trace degenerates to alloc / kernels / free, but running it through
    # the sanitizer still checks the MS1xx lifetime rules.
    trace = ScheduleTrace() if verify else None
    if trace is not None:
        trace.alloc("NET", total, label="network-wide")

    for index in network.forward_schedule():
        node = network[index]
        if node.kind is LayerKind.INPUT:
            continue
        timing = latency.forward(network, node, algos.profile(node))
        event = compute.enqueue(EventKind.FORWARD, node.name, timing.seconds,
                                nbytes=int(timing.dram_bytes), layer_index=index)
        if trace is not None:
            trace.kernel(node.name, compute.name, reads=("NET",),
                         writes=("NET",), layer=index, phase="fwd",
                         start=event.start, end=event.end)
    forward_end = compute.ready_time
    for index in network.backward_schedule():
        node = network[index]
        timing = latency.backward(network, node, algos.profile(node))
        event = compute.enqueue(EventKind.BACKWARD, node.name, timing.seconds,
                                nbytes=int(timing.dram_bytes), layer_index=index)
        if trace is not None:
            trace.kernel(node.name, compute.name, reads=("NET",),
                         writes=("NET",), layer=index, phase="bwd",
                         start=event.start, end=event.end)

    if trace is not None:
        trace.free("NET", compute.name, label="network-wide", phase="end",
                   start=timeline.end_time)
    usage.record(timeline.end_time, total)
    if obs is not None:
        obs.span("forward", "phase", 0.0, forward_end, category="phase",
                 network=network.name, policy="base")
        obs.span("backward", "phase", forward_end, compute.ready_time,
                 category="phase", network=network.name, policy="base")
        obs.run_streams(timeline, compute.name)
    trainable = total <= system.gpu.memory_bytes
    return IterationResult(
        network_name=network.name,
        policy_label="base",
        algo_label=algos.label,
        trainable=trainable,
        failure=None if trainable else (
            f"network-wide allocation of {total} bytes exceeds GPU "
            f"capacity of {system.gpu.memory_bytes} bytes"
        ),
        timeline=timeline,
        usage=usage,
        managed_max_bytes=total,
        managed_avg_bytes=float(total),
        external_bytes=0,
        persistent_bytes=breakdown["weights"] * 2,
        total_time=timeline.span,
        feature_extraction_time=_feature_extraction_time(network, timeline),
        offload_bytes=0,
        prefetch_bytes=0,
        pinned_peak_bytes=0,
        compute_stall_seconds=0.0,
        schedule_trace=trace,
    )


# ----------------------------------------------------------------------
# vDNN manager
# ----------------------------------------------------------------------
class _VDNNSimulation:
    """Stateful walk of one iteration under the vDNN manager."""

    def __init__(
        self,
        network: Network,
        system: SystemConfig,
        policy: TransferPolicy,
        algos: AlgoConfig,
        bounded_prefetch_window: bool = True,
        sync_after_offload: bool = True,
        verify: bool = False,
        faults: Optional[FaultInjector] = None,
        obs: Optional[Instrumentation] = None,
    ):
        self.network = network
        self.system = system
        self.policy = policy
        self.algos = algos
        self.bounded_prefetch_window = bounded_prefetch_window
        self.sync_after_offload = sync_after_offload
        self.faults = faults
        self.obs = obs
        self.trace: Optional[ScheduleTrace] = ScheduleTrace() if verify else None
        # pool offset -> (trace buffer id, storage owner) of the live
        # block there; offsets are unique among live blocks, so this maps
        # every Allocation back to its trace identity at free time.
        self._traced: Dict[int, tuple] = {}

        self.latency = LatencyModel(system.gpu)
        self.liveness = LivenessAnalysis(network)
        self.pool = PoolAllocator(_UNBOUNDED)
        pinned_capacity = system.host.max_pinned_bytes
        if faults is not None and faults.spec.pinned_budget_factor != 1.0:
            pinned_capacity = int(
                pinned_capacity * faults.spec.pinned_budget_factor)
        self.pinned = PinnedHostAllocator(pinned_capacity)
        self.compute, self.memory, self.timeline = make_stream_pair()
        self.usage = UsageTracker()
        self.state = PrefetchState.for_network(network)

        # storage owner -> live device Allocation
        self.device: Dict[int, Allocation] = {}
        # storage owner -> live gradient Allocation
        self.gradients: Dict[int, Allocation] = {}
        # trigger layer -> storages it offloaded
        self.offloaded_at: Dict[int, List[StorageInfo]] = {}
        # storage owner -> pinned host buffer
        self.host_buffers: Dict[int, object] = {}
        # storage owner -> True once restored by a prefetch
        self.restored: Dict[int, bool] = {}

        self.stall_seconds = 0.0
        self.offload_bytes = 0
        self.prefetch_bytes = 0
        self.external_bytes = 0
        self.offloaded_layers: List[int] = []

    # -- bookkeeping helpers -------------------------------------------
    def _sample(self) -> None:
        # No obs hook here: this runs on every alloc/free, and the pool
        # already tracks its exact high-water mark.  The end-of-run block
        # in simulate_vdnn reports it via pool_sample + pool_peak.
        self.usage.record(self.compute.ready_time, self.pool.live_bytes)

    def _alloc(self, owner: int, nbytes: int, tag: str,
               buffer: str = "", layer: int = -1, towner: int = -1,
               persistent: bool = False) -> Allocation:
        """Pool allocation; ``buffer``/``towner`` name it in the trace.

        ``towner`` is the storage-owner layer recorded for feature/
        gradient buffers (the refcount-gate rule keys on it); workspace
        and weight blocks pass -1 so the gate never applies to them.
        """
        allocation = self.pool.alloc(nbytes, tag)
        self._sample()
        if self.trace is not None and buffer:
            self.trace.alloc(
                buffer, nbytes, offset=allocation.offset,
                size=allocation.size, label=tag, layer=layer,
                owner=towner, persistent=persistent,
                start=self.compute.ready_time,
            )
            self._traced[allocation.offset] = (buffer, towner)
        return allocation

    def _free(self, allocation: Allocation, layer: int = -1,
              phase: str = "") -> None:
        if self.trace is not None:
            buffer, towner = self._traced.pop(allocation.offset, ("", -1))
            if buffer:
                self.trace.free(
                    buffer, self.compute.name, offset=allocation.offset,
                    size=allocation.size, label=allocation.tag,
                    layer=layer, owner=towner, phase=phase,
                    start=self.compute.ready_time,
                )
        self.pool.free(allocation)
        self._sample()

    def _stall(self, label: str, layer_index: int,
               cause: str = "offload-sync") -> None:
        """Synchronize compute behind memory, logging any wasted time."""
        before = self.compute.ready_time
        if self.trace is not None:
            # Always traced, even when it costs nothing: a free sync is
            # still the ordering edge the later release depends on.
            self.trace.sync(self.memory.name, label=label,
                            layer=layer_index, start=before)
        stall = self.compute.wait_for(self.memory)
        if stall > 0:
            self.stall_seconds += stall
            self.timeline.record(
                self.compute.name, EventKind.STALL, label,
                before, before + stall, layer_index=layer_index,
            )
            if self.obs is not None:
                self.obs.stall(cause, stall)
        if self.trace is not None:
            self.timeline.record(
                self.compute.name, EventKind.SYNC, label,
                before + max(stall, 0.0), before + max(stall, 0.0),
                layer_index=layer_index,
            )

    # -- DMA with fault injection --------------------------------------
    def _transfer(self, kind, label: str, nbytes: int,
                  earliest_start: float, layer_index: int,
                  fault_kind: str, direction: str = ""):
        """Enqueue one DMA on ``stream_memory``, retrying under faults.

        Without an injector this is exactly one :meth:`SimStream.enqueue`
        at the link's nominal rate.  With one, each attempt draws a
        (possibly degraded/jittered) duration and may transiently fail;
        a failed attempt occupies the engine for its full duration (the
        error surfaces at completion), then the retry backs off
        exponentially on the same stream before re-attempting, up to
        ``max_dma_attempts``.

        Returns:
            ``(event, attempts)`` — the successful transfer's timeline
            event, or ``None`` when the retry budget was exhausted.
        """
        direction = direction or fault_kind
        if self.faults is None:
            event = self.memory.enqueue(
                kind, label, self.system.pcie.dma_time(nbytes),
                earliest_start=earliest_start, nbytes=nbytes,
                layer_index=layer_index,
            )
            if self.obs is not None:
                self.obs.pcie_transfer(direction, nbytes, event.duration)
            return event, 1
        attempts = 0
        while True:
            attempts += 1
            duration = self.faults.dma_seconds(self.system.pcie, nbytes)
            if not self.faults.dma_fails(fault_kind):
                event = self.memory.enqueue(
                    kind, label, duration,
                    earliest_start=earliest_start, nbytes=nbytes,
                    layer_index=layer_index,
                )
                if self.obs is not None:
                    self.obs.pcie_transfer(direction, nbytes, event.duration)
                return event, attempts
            self.memory.enqueue(
                EventKind.FAULT, f"{label}!{attempts}", duration,
                earliest_start=earliest_start, nbytes=nbytes,
                layer_index=layer_index,
            )
            if self.obs is not None:
                self.obs.dma_attempt(direction, False)
            if attempts >= self.faults.spec.max_dma_attempts:
                return None, attempts
            backoff = self.faults.spec.backoff_seconds(attempts)
            if backoff > 0:
                self.memory.enqueue(
                    EventKind.RETRY, f"{label}~{attempts}", backoff,
                    layer_index=layer_index,
                )
                if self.obs is not None:
                    self.obs.dma_backoff(backoff)

    # -- persistent allocations ----------------------------------------
    def allocate_persistent(self) -> int:
        """Weights and weight gradients.

        Feature-extraction weights live in the vDNN pool; classifier
        weights are Torch/cuBLAS allocations outside it (Section IV-A)
        and are accounted in :attr:`external_bytes`.
        """
        persistent = 0
        self.external_bytes = 0
        for node in self.network:
            if not node.weight_bytes:
                continue
            if node.is_feature_extraction:
                self._alloc(node.index, node.weight_bytes, f"W[{node.name}]",
                            buffer=f"W{node.index}", layer=node.index,
                            persistent=True)
                self._alloc(node.index, node.weight_bytes, f"dW[{node.name}]",
                            buffer=f"dW{node.index}", layer=node.index,
                            persistent=True)
            else:
                self.external_bytes += 2 * node.weight_bytes
            persistent += 2 * node.weight_bytes
        return persistent

    # -- forward pass ----------------------------------------------------
    def run_forward(self) -> None:
        start = self.compute.ready_time
        try:
            for index in self.network.forward_schedule():
                self._forward_layer(index)
        finally:
            if self.obs is not None:
                self.obs.span(
                    "forward", "phase", start,
                    max(self.compute.ready_time, self.memory.ready_time),
                    category="phase", network=self.network.name,
                    policy=self.policy.describe())

    def _forward_layer(self, index: int) -> None:
        node = self.network[index]

        # Layer-wise allocation: this layer's output (unless in-place)
        # and its transient convolution workspace.
        if not node.in_place:
            storage = self.liveness.storage_of(index)
            self.device[storage.owner] = self._alloc(
                storage.owner, storage.nbytes, f"Y[{node.name}]",
                buffer=f"Y{storage.owner}", layer=index,
                towner=storage.owner,
            )

        if node.kind is LayerKind.INPUT:
            return

        workspace: Optional[Allocation] = None
        ws_bytes = self.algos.workspace_bytes(node)
        if ws_bytes:
            workspace = self._alloc(index, ws_bytes, f"WS[{node.name}]",
                                    buffer=f"WSf{index}", layer=index)

        timing = self.latency.forward(self.network, node, self.algos.profile(node))
        fwd = self.compute.enqueue(
            EventKind.FORWARD, node.name, timing.seconds,
            nbytes=int(timing.dram_bytes), layer_index=index,
        )
        fwd_op = None
        if self.trace is not None:
            reads = [f"Y{s.owner}" for s in self.liveness.input_storages(index)]
            if node.weight_bytes and node.is_feature_extraction:
                reads.append(f"W{index}")
            own = self.liveness.storage_of(index)
            writes = [f"Y{own.owner}"]
            if workspace is not None:
                writes.append(f"WSf{index}")
            fwd_op = self.trace.kernel(
                node.name, self.compute.name, reads=reads, writes=writes,
                layer=index, phase="fwd", start=fwd.start, end=fwd.end,
            )

        # Offload/release any input storage whose last consumer we are
        # (the refcount gate of Figure 3).
        offloads: List[StorageInfo] = []
        for storage in self.liveness.input_storages(index):
            if storage.forward_release_at != index:
                continue
            if storage.needed_backward:
                if self.policy.wants_offload(node):
                    offloads.append(storage)
            else:
                # Dead after forward: release without any transfer
                # (the black-X arrows of Figure 7).
                self._free(self.device.pop(storage.owner),
                           layer=index, phase="fwd")

        if offloads:
            completed: List[StorageInfo] = []
            for storage in offloads:
                owner_name = self.network[storage.owner].name
                try:
                    buffer = self.pinned.alloc(storage.nbytes,
                                               f"host[{storage.owner}]")
                except PinnedMemoryError as error:
                    if self.faults is None:
                        raise
                    # Pinned-budget pressure: no staging buffer, so this
                    # tensor simply stays resident on the device — more
                    # memory used, but execution stays correct.
                    self.faults.record(
                        "pinned-pressure", self.memory.ready_time,
                        f"Y{storage.owner}", outcome="degraded",
                        nbytes=storage.nbytes,
                        detail=f"offload skipped, tensor stays resident "
                               f"({error})",
                    )
                    continue
                self.host_buffers[storage.owner] = buffer
                transfer, attempts = self._transfer(
                    EventKind.OFFLOAD, owner_name, storage.nbytes,
                    earliest_start=fwd.start, layer_index=index,
                    fault_kind="offload",
                )
                if transfer is None:
                    # Retry budget exhausted: abandon the offload and
                    # keep the tensor resident instead.
                    self.pinned.free(self.host_buffers.pop(storage.owner))
                    self.faults.record(
                        "dma-offload", self.memory.ready_time,
                        f"Y{storage.owner}", attempts=attempts,
                        outcome="degraded", nbytes=storage.nbytes,
                        detail="offload abandoned, tensor stays resident",
                    )
                    continue
                if attempts > 1:
                    self.faults.record(
                        "dma-offload", transfer.end, f"Y{storage.owner}",
                        attempts=attempts, outcome="recovered",
                        nbytes=storage.nbytes,
                        detail="transient DMA failure, retry succeeded",
                    )
                if self.trace is not None:
                    # The DMA starts no earlier than the trigger kernel,
                    # i.e. after everything before it on compute: the
                    # event-wait edge that keeps the producer ordered
                    # before the transfer that reads its output.
                    self.trace.offload(
                        f"Y{storage.owner}", self.memory.name,
                        nbytes=storage.nbytes,
                        label=f"off[{owner_name}]",
                        layer=index, owner=storage.owner, target_layer=index,
                        wait_stream=self.compute.name,
                        wait_pos=fwd_op.pos - 1,
                        start=transfer.start, end=transfer.end,
                    )
                self.offload_bytes += storage.nbytes
                completed.append(storage)
            if completed:
                self.offloaded_at[index] = completed
                self.state.mark_offloaded(index)
                self.offloaded_layers.append(index)

                if self.sync_after_offload:
                    self._stall(f"offload-sync {node.name}", index)
                for storage in completed:
                    self._free(self.device.pop(storage.owner),
                               layer=index, phase="fwd")

        if workspace is not None:
            self._free(workspace, layer=index, phase="fwd")

    # -- backward pass ---------------------------------------------------
    def run_backward(self) -> None:
        start = self.compute.ready_time
        try:
            for index in self.network.backward_schedule():
                self._backward_layer(index)
            self._release_remaining()
        finally:
            if self.obs is not None:
                self.obs.span(
                    "backward", "phase", start,
                    max(self.compute.ready_time, self.memory.ready_time),
                    category="phase", network=self.network.name,
                    policy=self.policy.describe())

    def _required_storages(self, index: int) -> List[StorageInfo]:
        node = self.network[index]
        required: Dict[int, StorageInfo] = {}
        if node.layer.backward_needs_x:
            for storage in self.liveness.input_storages(index):
                required[storage.owner] = storage
        if node.layer.backward_needs_y:
            storage = self.liveness.storage_of(index)
            required[storage.owner] = storage
        return list(required.values())

    def _restore_on_demand(self, storage: StorageInfo, index: int) -> None:
        """Blocking prefetch for data the scheduler failed to stage."""
        self.device[storage.owner] = self._alloc(
            storage.owner, storage.nbytes, f"X[{storage.owner}](demand)",
            buffer=f"Y{storage.owner}", layer=index, towner=storage.owner,
        )
        if self.obs is not None:
            self.obs.prefetch_event("demand")
        transfer, attempts = self._transfer(
            EventKind.PREFETCH,
            self.network[storage.owner].name + "(demand)",
            storage.nbytes,
            earliest_start=self.compute.ready_time, layer_index=index,
            fault_kind="prefetch", direction="demand",
        )
        if transfer is None:
            # The backward kernel cannot run without this tensor and the
            # link refuses to deliver it: the iteration fails, loudly.
            self._free(self.device.pop(storage.owner), layer=index)
            self.faults.record(
                "dma-demand", self.memory.ready_time, f"Y{storage.owner}",
                attempts=attempts, outcome="fatal", nbytes=storage.nbytes,
                detail="demand fetch exhausted its retry budget",
            )
            raise DMAAbortError(
                f"demand fetch of Y{storage.owner} for layer {index} "
                f"failed after {attempts} attempts"
            )
        if attempts > 1:
            self.faults.record(
                "dma-demand", transfer.end, f"Y{storage.owner}",
                attempts=attempts, outcome="recovered",
                nbytes=storage.nbytes,
                detail="transient DMA failure, retry succeeded",
            )
        if self.trace is not None:
            self.trace.prefetch(
                f"Y{storage.owner}", self.memory.name,
                nbytes=storage.nbytes,
                label=f"pre[{self.network[storage.owner].name}](demand)",
                layer=index, owner=storage.owner,
                wait_stream=self.compute.name,
                wait_pos=self.trace.position(self.compute.name),
                demand=True, start=transfer.start, end=transfer.end,
            )
        self.prefetch_bytes += storage.nbytes
        self._stall(f"demand-fetch {storage.owner}", index,
                    cause="demand-fetch")
        self.pinned.free(self.host_buffers.pop(storage.owner))
        self.restored[storage.owner] = True

    def _backward_layer(self, index: int) -> None:
        node = self.network[index]

        # Safety net: anything this kernel reads must be on-device.
        for storage in self._required_storages(index):
            if storage.owner not in self.device:
                self._restore_on_demand(storage, index)

        # Gradient twins born at this backward step.
        for storage in self.liveness.all_storages():
            if storage.needs_gradient and storage.gradient_alloc_at == index \
                    and storage.owner not in self.gradients:
                self.gradients[storage.owner] = self._alloc(
                    storage.owner, storage.nbytes, f"dY[{storage.owner}]",
                    buffer=f"dY{storage.owner}", layer=index,
                    towner=storage.owner,
                )

        workspace: Optional[Allocation] = None
        ws_bytes = self.algos.workspace_bytes(node)
        if ws_bytes:
            workspace = self._alloc(index, ws_bytes, f"WS[{node.name}]",
                                    buffer=f"WSb{index}", layer=index)

        # Figure 10: launch (at most) one prefetch overlapped with this
        # backward kernel.
        prefetch_target = find_prefetch_layer(
            self.network, self.state, index,
            bounded_window=self.bounded_prefetch_window,
            obs=self.obs,
        )
        launched_prefetch = False
        kernel_start = max(self.compute.ready_time, 0.0)
        if prefetch_target is not None:
            for storage in self.offloaded_at.get(prefetch_target, []):
                if self.restored.get(storage.owner):
                    continue
                self.device[storage.owner] = self._alloc(
                    storage.owner, storage.nbytes, f"X[{storage.owner}](pre)",
                    buffer=f"Y{storage.owner}", layer=index,
                    towner=storage.owner,
                )
                transfer, attempts = self._transfer(
                    EventKind.PREFETCH,
                    self.network[storage.owner].name,
                    storage.nbytes,
                    earliest_start=kernel_start, layer_index=index,
                    fault_kind="prefetch",
                )
                if transfer is None:
                    # Prefetch abandoned: roll back the claim so the
                    # layer stays eligible (Fig. 10 retry or the demand
                    # safety net) instead of its X being silently lost.
                    self._free(self.device.pop(storage.owner), layer=index)
                    self.state.unclaim(prefetch_target)
                    if self.obs is not None:
                        self.obs.prefetch_event("unclaimed")
                    self.faults.record(
                        "dma-prefetch", self.memory.ready_time,
                        f"Y{storage.owner}", attempts=attempts,
                        outcome="deferred", nbytes=storage.nbytes,
                        detail="prefetch abandoned, claim rolled back; "
                               "will retry or demand-fetch",
                    )
                    continue
                if attempts > 1:
                    self.faults.record(
                        "dma-prefetch", transfer.end, f"Y{storage.owner}",
                        attempts=attempts, outcome="recovered",
                        nbytes=storage.nbytes,
                        detail="transient DMA failure, retry succeeded",
                    )
                if self.trace is not None:
                    self.trace.prefetch(
                        f"Y{storage.owner}", self.memory.name,
                        nbytes=storage.nbytes,
                        label=f"pre[{self.network[storage.owner].name}]",
                        layer=index, owner=storage.owner,
                        target_layer=prefetch_target,
                        wait_stream=self.compute.name,
                        wait_pos=self.trace.position(self.compute.name),
                        start=transfer.start, end=transfer.end,
                    )
                self.prefetch_bytes += storage.nbytes
                self.pinned.free(self.host_buffers.pop(storage.owner))
                self.restored[storage.owner] = True
                launched_prefetch = True

        timing = self.latency.backward(self.network, node, self.algos.profile(node))
        bwd = self.compute.enqueue(
            EventKind.BACKWARD, node.name, timing.seconds,
            nbytes=int(timing.dram_bytes), layer_index=index,
        )
        if self.trace is not None:
            own = self.liveness.storage_of(index)
            reads = [f"Y{s.owner}" for s in self._required_storages(index)]
            if own.owner in self.gradients:
                reads.append(f"dY{own.owner}")
            if node.weight_bytes and node.is_feature_extraction:
                reads.append(f"W{index}")
            writes = [f"dY{s.owner}"
                      for s in self.liveness.input_storages(index)
                      if s.owner in self.gradients and s.owner != own.owner]
            if node.weight_bytes and node.is_feature_extraction:
                writes.append(f"dW{index}")
            if workspace is not None:
                writes.append(f"WSb{index}")
            self.trace.kernel(
                node.name, self.compute.name, reads=reads, writes=writes,
                layer=index, phase="bwd", start=bwd.start, end=bwd.end,
            )

        # "Any prefetch operation launched during layer(n)'s backward
        # computation is guaranteed to be ready before layer(n-1)'s."
        if launched_prefetch:
            self._stall(f"prefetch-sync {node.name}", index,
                        cause="prefetch-sync")

        # Release whatever this backward step finished with (Figure 8).
        for storage in self.liveness.all_storages():
            if storage.needed_backward and storage.backward_release_after == index:
                allocation = self.device.pop(storage.owner, None)
                if allocation is not None:
                    self._free(allocation, layer=index, phase="bwd")
            if storage.needs_gradient and storage.gradient_release_after == index:
                allocation = self.gradients.pop(storage.owner, None)
                if allocation is not None:
                    self._free(allocation, layer=index, phase="bwd")

        if workspace is not None:
            self._free(workspace, layer=index, phase="bwd")

    def _release_remaining(self) -> None:
        """Free anything still live (e.g. the input batch's storage)."""
        for allocation in list(self.device.values()):
            self._free(allocation, phase="end")
        self.device.clear()
        for allocation in list(self.gradients.values()):
            self._free(allocation, phase="end")
        self.gradients.clear()


def simulate_vdnn(
    network: Network,
    system: SystemConfig,
    policy: TransferPolicy,
    algos: AlgoConfig,
    bounded_prefetch_window: bool = True,
    sync_after_offload: bool = True,
    verify: bool = False,
    faults: Optional[FaultSpec] = None,
    fault_seed: int = 0,
    obs: Optional[Instrumentation] = None,
) -> IterationResult:
    """One training iteration under the vDNN memory manager.

    Args:
        network: the DNN to train.
        system: GPU + host + PCIe models.
        policy: which layers offload their input feature maps.
        algos: per-CONV-layer algorithm (and workspace) choices.
        bounded_prefetch_window: disable for the DESIGN.md ablation of
            Figure 10's CONV-bounded search window.
        sync_after_offload: disable for the end-of-layer-sync ablation
            (release then happens at the same point but compute no
            longer waits — an *unsafe* configuration kept for study).
        verify: record a :class:`~repro.analysis.trace.ScheduleTrace` of
            every alloc/free/kernel/transfer/sync on the result, for the
            schedule sanitizer (``repro verify``).  Debug-only: traced
            runs bypass the result cache.
        faults: inject deterministic faults from this
            :class:`~repro.faults.FaultSpec` (None = the perfect
            machine; faulted runs bypass the result cache).
        fault_seed: RNG seed for the fault stream; same
            ``(spec, seed)`` ⇒ bit-identical run and FaultReport.
        obs: record metrics and spans into this
            :class:`~repro.obs.Instrumentation`.  Observation only —
            the run is bit-identical with or without it (the
            differential suite asserts this across the zoo); like
            traced runs, instrumented runs bypass the result cache.

    Returns:
        The :class:`IterationResult`; ``trainable`` reflects whether the
        peak pool usage fits the physical GPU.
    """
    injector = make_injector(faults, fault_seed, obs=obs)
    sim = _VDNNSimulation(
        network, system, policy, algos,
        bounded_prefetch_window=bounded_prefetch_window,
        sync_after_offload=sync_after_offload,
        verify=verify,
        faults=injector,
        obs=obs,
    )
    failure: Optional[str] = None
    persistent = sim.allocate_persistent()
    try:
        sim.run_forward()
        sim.run_backward()
    except PinnedMemoryError as error:
        # Host DRAM cannot stage this policy's offload traffic; the
        # configuration is untrainable on this node (partial stats kept).
        failure = f"host pinned memory exhausted: {error}"
    except DMAAbortError as error:
        # A demand fetch exhausted its retries: structured failure, not
        # a hang or silent corruption.
        failure = f"DMA transfer permanently failed: {error}"
    sim.usage.record(sim.timeline.end_time, sim.pool.live_bytes)
    if obs is not None:
        obs.pool_sample(sim.pool.live_bytes, system.gpu.memory_bytes,
                        sim.pool.fragmentation)
        obs.pool_peak(sim.pool.peak_bytes)
        obs.pinned_peak(sim.pinned.peak_bytes)
        obs.run_streams(sim.timeline, sim.compute.name, sim.memory.name)
        obs.span("iteration", "phase", 0.0, sim.timeline.end_time,
                 category="phase", network=network.name,
                 policy=policy.describe(), algo=algos.label)

    peak = sim.usage.max_bytes
    total_peak = peak + sim.external_bytes
    if failure is None and total_peak > system.gpu.memory_bytes:
        failure = (
            f"peak usage {total_peak} bytes exceeds GPU capacity "
            f"{system.gpu.memory_bytes} bytes"
        )
    trainable = failure is None
    return IterationResult(
        network_name=network.name,
        policy_label=policy.describe(),
        algo_label=algos.label,
        trainable=trainable,
        failure=failure,
        timeline=sim.timeline,
        usage=sim.usage,
        managed_max_bytes=peak,
        managed_avg_bytes=sim.usage.average_bytes,
        external_bytes=sim.external_bytes,
        persistent_bytes=persistent,
        total_time=sim.timeline.span,
        feature_extraction_time=_feature_extraction_time(network, sim.timeline),
        offload_bytes=sim.offload_bytes,
        prefetch_bytes=sim.prefetch_bytes,
        pinned_peak_bytes=sim.pinned.peak_bytes,
        compute_stall_seconds=sim.stall_seconds,
        offloaded_layers=sim.offloaded_layers,
        schedule_trace=sim.trace,
        fault_report=injector.report if injector is not None else None,
    )
